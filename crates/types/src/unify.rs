//! Unification with levels, occurs check, and equality-attribute
//! propagation.

use crate::registry::TyconRegistry;
use crate::ty::{label_cmp, EqProp, Tv, TvRef, Ty, TyconKind};
use std::fmt;

/// A unification failure.
#[derive(Clone, Debug)]
pub enum UnifyError {
    /// The two types have incompatible shapes.
    Mismatch(Ty, Ty),
    /// A variable occurs in the type it would be bound to.
    Occurs(Ty),
    /// An equality type variable was unified with a type that does not
    /// admit equality.
    NotEquality(Ty),
}

impl fmt::Display for UnifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnifyError::Mismatch(a, b) => write!(f, "cannot unify `{a}` with `{b}`"),
            UnifyError::Occurs(t) => write!(f, "circular type `{t}`"),
            UnifyError::NotEquality(t) => write!(f, "type `{t}` does not admit equality"),
        }
    }
}

impl std::error::Error for UnifyError {}

/// Result alias for unification.
pub type UnifyResult = Result<(), UnifyError>;

/// Unifies `a` and `b` in place.
///
/// # Errors
///
/// Returns a [`UnifyError`] if the types are incompatible; the types may
/// be partially unified in that case (elaboration aborts on error, so
/// partial effects are harmless).
pub fn unify(reg: &TyconRegistry, a: &Ty, b: &Ty) -> UnifyResult {
    let a = a.head();
    let b = b.head();
    match (&a, &b) {
        (Ty::Var(va), Ty::Var(vb)) if va.same(vb) => Ok(()),
        (Ty::Var(v), _) => bind(reg, v, &b),
        (_, Ty::Var(v)) => bind(reg, v, &a),
        (Ty::Con(ca, argsa), Ty::Con(cb, argsb)) => {
            if ca.stamp != cb.stamp || argsa.len() != argsb.len() {
                return Err(UnifyError::Mismatch(a.clone(), b.clone()));
            }
            for (x, y) in argsa.iter().zip(argsb) {
                unify(reg, x, y)?;
            }
            Ok(())
        }
        (Ty::Record(fa), Ty::Record(fb)) => {
            if fa.len() != fb.len() {
                return Err(UnifyError::Mismatch(a.clone(), b.clone()));
            }
            for ((la, ta), (lb, tb)) in fa.iter().zip(fb) {
                if la != lb {
                    return Err(UnifyError::Mismatch(a.clone(), b.clone()));
                }
                unify(reg, ta, tb)?;
            }
            Ok(())
        }
        (Ty::Arrow(a1, r1), Ty::Arrow(a2, r2)) => {
            unify(reg, a1, a2)?;
            unify(reg, r1, r2)
        }
        _ => Err(UnifyError::Mismatch(a.clone(), b.clone())),
    }
}

fn bind(reg: &TyconRegistry, v: &TvRef, t: &Ty) -> UnifyResult {
    let (level, eq) = match &*v.0.borrow() {
        Tv::Unbound { level, eq, .. } => (*level, *eq),
        Tv::Gen(_) => {
            // Generic variables are rigid: they only unify with themselves
            // (handled by the `same` check in `unify`).
            return Err(UnifyError::Mismatch(Ty::Var(v.clone()), t.clone()));
        }
        Tv::Link(_) => unreachable!("head resolves links"),
    };
    occurs_adjust(v, t, level)?;
    if eq {
        force_equality(reg, t)?;
    }
    *v.0.borrow_mut() = Tv::Link(t.clone());
    Ok(())
}

/// Occurs check combined with level adjustment: every unbound variable in
/// `t` is lowered to at most `level` so that it will not be generalized
/// past the binder of `v`.
fn occurs_adjust(v: &TvRef, t: &Ty, level: u32) -> UnifyResult {
    match t.head() {
        Ty::Var(u) => {
            if u.same(v) {
                return Err(UnifyError::Occurs(Ty::Var(v.clone())));
            }
            let mut cell = u.0.borrow_mut();
            if let Tv::Unbound { level: ul, .. } = &mut *cell {
                if *ul > level {
                    *ul = level;
                }
            }
            Ok(())
        }
        Ty::Con(_, args) => args.iter().try_for_each(|a| occurs_adjust(v, a, level)),
        Ty::Record(fs) => fs.iter().try_for_each(|(_, a)| occurs_adjust(v, a, level)),
        Ty::Arrow(a, b) => {
            occurs_adjust(v, &a, level)?;
            occurs_adjust(v, &b, level)
        }
    }
}

/// Requires `t` to admit equality, marking any unbound variables inside it
/// as equality variables.
pub fn force_equality(reg: &TyconRegistry, t: &Ty) -> UnifyResult {
    match t.head() {
        Ty::Var(u) => {
            let mut cell = u.0.borrow_mut();
            match &mut *cell {
                Tv::Unbound { eq, .. } => {
                    *eq = true;
                    Ok(())
                }
                // A generic variable's equality attribute was fixed at
                // generalization time; trust the scheme.
                Tv::Gen(_) => Ok(()),
                Tv::Link(_) => unreachable!("head resolves links"),
            }
        }
        Ty::Con(c, args) => match c.eq {
            EqProp::Never => Err(UnifyError::NotEquality(t.clone())),
            EqProp::Always => Ok(()),
            EqProp::IfArgs => {
                // For datatypes this is sound because registration already
                // verified that all payloads admit equality when the
                // arguments do.
                if c.kind == TyconKind::Data && !reg.datatype_admits_eq(c.stamp) {
                    return Err(UnifyError::NotEquality(t.clone()));
                }
                args.iter().try_for_each(|a| force_equality(reg, a))
            }
        },
        Ty::Record(fs) => fs.iter().try_for_each(|(_, a)| force_equality(reg, a)),
        Ty::Arrow(..) => Err(UnifyError::NotEquality(t.clone())),
    }
}

/// Convenience: builds a record type from unsorted fields, sorting labels
/// canonically. Duplicate labels are the caller's responsibility.
pub fn make_record(mut fields: Vec<(sml_ast::Symbol, Ty)>) -> Ty {
    fields.sort_by(|(a, _), (b, _)| label_cmp(*a, *b));
    Ty::Record(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::Tycon;

    fn reg() -> TyconRegistry {
        TyconRegistry::with_builtins()
    }

    #[test]
    fn unify_var_with_con() {
        let r = reg();
        let v = TvRef::fresh(0);
        let t = Ty::Var(v);
        unify(&r, &t, &Ty::int()).unwrap();
        assert_eq!(t.zonk().to_string(), "int");
    }

    #[test]
    fn unify_mismatch() {
        let r = reg();
        assert!(unify(&r, &Ty::int(), &Ty::real()).is_err());
        assert!(unify(&r, &Ty::arrow(Ty::int(), Ty::int()), &Ty::int()).is_err());
    }

    #[test]
    fn occurs_check() {
        let r = reg();
        let v = TvRef::fresh(0);
        let t = Ty::Var(v.clone());
        let lst = Ty::list(Ty::Var(v));
        assert!(matches!(unify(&r, &t, &lst), Err(UnifyError::Occurs(_))));
    }

    #[test]
    fn levels_are_lowered() {
        let r = reg();
        let outer = TvRef::fresh(1);
        let inner = TvRef::fresh(5);
        unify(&r, &Ty::Var(outer), &Ty::list(Ty::Var(inner.clone()))).unwrap();
        match &*inner.0.borrow() {
            Tv::Unbound { level, .. } => assert_eq!(*level, 1),
            _ => panic!("inner should stay unbound"),
        };
    }

    #[test]
    fn equality_propagation() {
        let r = reg();
        let ev = TvRef::fresh_eq(0, true);
        // ''a unifies with int list: fine.
        unify(&r, &Ty::Var(ev), &Ty::list(Ty::int())).unwrap();
        // ''b does not unify with int -> int.
        let ev2 = TvRef::fresh_eq(0, true);
        assert!(matches!(
            unify(&r, &Ty::Var(ev2), &Ty::arrow(Ty::int(), Ty::int())),
            Err(UnifyError::NotEquality(_))
        ));
    }

    #[test]
    fn equality_infects_variables() {
        let r = reg();
        let ev = TvRef::fresh_eq(0, true);
        let plain = TvRef::fresh(0);
        unify(&r, &Ty::Var(ev), &Ty::list(Ty::Var(plain.clone()))).unwrap();
        match &*plain.0.borrow() {
            Tv::Unbound { eq, .. } => assert!(*eq, "variable under eq var becomes eq"),
            _ => panic!(),
        };
    }

    #[test]
    fn ref_is_always_eq() {
        let r = reg();
        let ev = TvRef::fresh_eq(0, true);
        // 'a ref admits equality even when 'a doesn't (here: a function type).
        unify(
            &r,
            &Ty::Var(ev),
            &Ty::reference(Ty::arrow(Ty::int(), Ty::int())),
        )
        .unwrap();
    }

    #[test]
    fn records_unify_fieldwise() {
        let r = reg();
        let v = TvRef::fresh(0);
        let t1 = Ty::pair(Ty::int(), Ty::Var(v));
        let t2 = Ty::pair(Ty::int(), Ty::real());
        unify(&r, &t1, &t2).unwrap();
        assert_eq!(t1.zonk().to_string(), "int * real");
        // Different widths fail.
        assert!(unify(
            &r,
            &Ty::tuple(vec![Ty::int()]),
            &Ty::pair(Ty::int(), Ty::int())
        )
        .is_err());
    }

    #[test]
    fn gen_vars_are_rigid() {
        let r = reg();
        let v = TvRef::fresh(0);
        *v.0.borrow_mut() = Tv::Gen(0);
        assert!(unify(&r, &Ty::Var(v), &Ty::int()).is_err());
    }

    #[test]
    fn abstract_tycons_unify_by_stamp() {
        let r = reg();
        let t1 = Tycon::fresh_abstract(sml_ast::Symbol::intern("t"), 0, false);
        let t2 = Tycon::fresh_abstract(sml_ast::Symbol::intern("t"), 0, false);
        assert!(unify(
            &r,
            &Ty::Con(t1.clone(), vec![]),
            &Ty::Con(t1.clone(), vec![])
        )
        .is_ok());
        assert!(unify(&r, &Ty::Con(t1, vec![]), &Ty::Con(t2, vec![])).is_err());
    }
}
