//! Hindley-Milner semantic types for the `smlc` type-based compiler.
//!
//! Provides types with mutable unification cells, levels-based
//! let-generalization, equality type variables (SML's `''a`), a datatype
//! registry with constructor-representation assignment, and
//! anti-unification (used by the minimum-typing-derivations pass).
//!
//! # Examples
//!
//! ```
//! use sml_types::{unify, Ty, TvRef, TyconRegistry};
//! let reg = TyconRegistry::with_builtins();
//! let v = Ty::Var(TvRef::fresh(0));
//! unify(&reg, &v, &Ty::list(Ty::int())).unwrap();
//! assert_eq!(v.zonk().to_string(), "int list");
//! ```

#![warn(missing_docs)]

pub mod gen;
pub mod registry;
pub mod ty;
pub mod unify;

pub use gen::{generalize, generalize_many, AntiUnifier, Disagreement};
pub use registry::{assign_reps, certainly_boxed, ConDef, ConRep, DatatypeDef, TyconRegistry};
pub use ty::{label_cmp, sort_fields, EqProp, Scheme, Stamp, Tv, TvRef, Ty, Tycon, TyconKind};
pub use unify::{force_equality, make_record, unify, UnifyError, UnifyResult};
