//! Semantic types for the SML subset: type constructors, types with
//! mutable unification variables, and type schemes.
//!
//! Types use the classic mutable-cell representation: a [`Ty::Var`] holds
//! a shared [`TvRef`] cell that is either unbound, a link to another type,
//! or a generalized ("generic") variable of an enclosing scheme.
//! Generalization marks cells **in place**, so every type annotation that
//! shares a cell sees the same change — this sharing is what makes the
//! minimum-typing-derivation pass (paper §3) a constant-time re-linking of
//! cells rather than a re-elaboration.

use sml_ast::Symbol;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU32, Ordering as AtomicOrdering};

/// A unique identity for a type constructor.
///
/// Stamps below [`Stamp::FIRST_FRESH`] are reserved for built-in tycons.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Stamp(pub u32);

static NEXT_STAMP: AtomicU32 = AtomicU32::new(Stamp::FIRST_FRESH);

impl Stamp {
    /// First stamp handed out by [`Stamp::fresh`].
    pub const FIRST_FRESH: u32 = 100;

    /// Allocates a fresh, process-unique stamp.
    pub fn fresh() -> Stamp {
        Stamp(NEXT_STAMP.fetch_add(1, AtomicOrdering::Relaxed))
    }
}

/// How a type constructor admits equality.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EqProp {
    /// Never an equality type (e.g. `->`, abstract types by default).
    Never,
    /// Always an equality type regardless of arguments (`ref`, `array`).
    Always,
    /// Equality type iff all arguments are (e.g. `list`, most datatypes).
    IfArgs,
}

/// The built-in classification of a type constructor.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TyconKind {
    /// Primitive `int` (tagged 31-bit at runtime).
    Int,
    /// Primitive `real` (IEEE double).
    Real,
    /// Primitive `string`.
    String,
    /// Primitive `char`.
    Char,
    /// Primitive `exn`.
    Exn,
    /// Primitive mutable cell `'a ref`.
    Ref,
    /// Primitive mutable array `'a array`.
    Array,
    /// First-class continuation `'a cont`.
    Cont,
    /// A user (or built-in) datatype; constructors live in the
    /// [`registry`](crate::registry::TyconRegistry) under this stamp.
    Data,
    /// A flexible (abstract) type constructor introduced by a signature
    /// specification or `abstraction` matching (paper §4.3).
    Abstract,
}

/// A type constructor: primitive, datatype, or abstract.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Tycon {
    /// Identity.
    pub stamp: Stamp,
    /// Printed name.
    pub name: Symbol,
    /// Number of type arguments.
    pub arity: usize,
    /// Classification.
    pub kind: TyconKind,
    /// Equality admission.
    pub eq: EqProp,
}

macro_rules! builtin_tycon {
    ($fname:ident, $stamp:expr, $name:expr, $arity:expr, $kind:expr, $eq:expr) => {
        #[doc = concat!("The built-in `", $name, "` type constructor.")]
        pub fn $fname() -> Tycon {
            Tycon {
                stamp: Stamp($stamp),
                name: Symbol::intern($name),
                arity: $arity,
                kind: $kind,
                eq: $eq,
            }
        }
    };
}

impl Tycon {
    builtin_tycon!(int, 0, "int", 0, TyconKind::Int, EqProp::Always);
    // The Definition of SML '90 (which the paper targets) makes `real` an
    // equality type; the Life/MTD experiment depends on primitive real
    // equality being expressible.
    builtin_tycon!(real, 1, "real", 0, TyconKind::Real, EqProp::Always);
    builtin_tycon!(string, 2, "string", 0, TyconKind::String, EqProp::Always);
    builtin_tycon!(char, 3, "char", 0, TyconKind::Char, EqProp::Always);
    builtin_tycon!(exn, 4, "exn", 0, TyconKind::Exn, EqProp::Never);
    builtin_tycon!(reference, 5, "ref", 1, TyconKind::Ref, EqProp::Always);
    builtin_tycon!(array, 6, "array", 1, TyconKind::Array, EqProp::Always);
    builtin_tycon!(cont, 7, "cont", 1, TyconKind::Cont, EqProp::Never);
    builtin_tycon!(bool, 8, "bool", 0, TyconKind::Data, EqProp::Always);
    builtin_tycon!(list, 9, "list", 1, TyconKind::Data, EqProp::IfArgs);
    builtin_tycon!(option, 10, "option", 1, TyconKind::Data, EqProp::IfArgs);
    builtin_tycon!(order, 11, "order", 0, TyconKind::Data, EqProp::Always);

    /// Creates a fresh datatype tycon.
    pub fn fresh_data(name: Symbol, arity: usize, eq: EqProp) -> Tycon {
        Tycon {
            stamp: Stamp::fresh(),
            name,
            arity,
            kind: TyconKind::Data,
            eq,
        }
    }

    /// Creates a fresh abstract (flexible) tycon, as introduced by a
    /// signature type specification.
    pub fn fresh_abstract(name: Symbol, arity: usize, eq: bool) -> Tycon {
        Tycon {
            stamp: Stamp::fresh(),
            name,
            arity,
            kind: TyconKind::Abstract,
            eq: if eq { EqProp::IfArgs } else { EqProp::Never },
        }
    }

    /// True for *rigid* constructors in the paper's sense (§4.3): all
    /// constructors except flexible/abstract ones. Rigid constructor types
    /// translate to `BOXEDty`; flexible ones to `RBOXEDty`.
    pub fn is_rigid(&self) -> bool {
        self.kind != TyconKind::Abstract
    }
}

/// The contents of a unification-variable cell.
#[derive(Clone, Debug)]
pub enum Tv {
    /// An unresolved variable.
    Unbound {
        /// Unique id (for printing and hashing).
        id: u32,
        /// Binding level for let-generalization.
        level: u32,
        /// Whether the variable must be an equality type (`''a`).
        eq: bool,
    },
    /// Resolved: behaves as the linked type.
    Link(Ty),
    /// Generalized in place: the `i`th generic variable of its scheme.
    Gen(u32),
}

/// A shared, mutable unification-variable cell.
#[derive(Clone)]
pub struct TvRef(pub Rc<RefCell<Tv>>);

static NEXT_TV: AtomicU32 = AtomicU32::new(0);

impl TvRef {
    /// Fresh unbound variable at `level`.
    pub fn fresh(level: u32) -> TvRef {
        TvRef::fresh_eq(level, false)
    }

    /// Fresh unbound variable at `level`, with equality attribute `eq`.
    pub fn fresh_eq(level: u32, eq: bool) -> TvRef {
        let id = NEXT_TV.fetch_add(1, AtomicOrdering::Relaxed);
        TvRef(Rc::new(RefCell::new(Tv::Unbound { id, level, eq })))
    }

    /// The cell's unique id if unbound, or `None`.
    pub fn unbound_id(&self) -> Option<u32> {
        match &*self.0.borrow() {
            Tv::Unbound { id, .. } => Some(*id),
            _ => None,
        }
    }

    /// Pointer identity.
    pub fn same(&self, other: &TvRef) -> bool {
        Rc::ptr_eq(&self.0, &other.0)
    }
}

impl fmt::Debug for TvRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &*self.0.borrow() {
            Tv::Unbound { id, eq, .. } => write!(f, "{}t{}", if *eq { "''" } else { "'" }, id),
            Tv::Link(t) => write!(f, "{t:?}"),
            Tv::Gen(i) => write!(f, "'g{i}"),
        }
    }
}

/// A semantic type.
#[derive(Clone, Debug)]
pub enum Ty {
    /// A unification variable (possibly resolved via its cell).
    Var(TvRef),
    /// Constructor application; all primitive types are nullary `Con`s.
    Con(Tycon, Vec<Ty>),
    /// Record type with fields sorted by [`label_cmp`]; tuples use numeric
    /// labels `1..n` and `unit` is the empty record.
    Record(Vec<(Symbol, Ty)>),
    /// Function type.
    Arrow(Box<Ty>, Box<Ty>),
}

impl Ty {
    /// The `int` type.
    pub fn int() -> Ty {
        Ty::Con(Tycon::int(), Vec::new())
    }

    /// The `real` type.
    pub fn real() -> Ty {
        Ty::Con(Tycon::real(), Vec::new())
    }

    /// The `string` type.
    pub fn string() -> Ty {
        Ty::Con(Tycon::string(), Vec::new())
    }

    /// The `char` type.
    pub fn char() -> Ty {
        Ty::Con(Tycon::char(), Vec::new())
    }

    /// The `bool` type.
    pub fn bool() -> Ty {
        Ty::Con(Tycon::bool(), Vec::new())
    }

    /// The `exn` type.
    pub fn exn() -> Ty {
        Ty::Con(Tycon::exn(), Vec::new())
    }

    /// The `unit` type (empty record).
    pub fn unit() -> Ty {
        Ty::Record(Vec::new())
    }

    /// `t list`.
    pub fn list(t: Ty) -> Ty {
        Ty::Con(Tycon::list(), vec![t])
    }

    /// `t ref`.
    pub fn reference(t: Ty) -> Ty {
        Ty::Con(Tycon::reference(), vec![t])
    }

    /// `t array`.
    pub fn array(t: Ty) -> Ty {
        Ty::Con(Tycon::array(), vec![t])
    }

    /// `t cont`.
    pub fn cont(t: Ty) -> Ty {
        Ty::Con(Tycon::cont(), vec![t])
    }

    /// `t1 -> t2`.
    pub fn arrow(a: Ty, b: Ty) -> Ty {
        Ty::Arrow(Box::new(a), Box::new(b))
    }

    /// An n-tuple with numeric labels (already in order).
    pub fn tuple(parts: Vec<Ty>) -> Ty {
        Ty::Record(
            parts
                .into_iter()
                .enumerate()
                .map(|(i, t)| (Symbol::numeric(i + 1), t))
                .collect(),
        )
    }

    /// `t1 * t2`.
    pub fn pair(a: Ty, b: Ty) -> Ty {
        Ty::tuple(vec![a, b])
    }

    /// Follows `Link` cells one step at a time until the head is not a
    /// resolved variable; returns a structural clone of the head.
    pub fn head(&self) -> Ty {
        let mut t = self.clone();
        loop {
            match t {
                Ty::Var(ref v) => {
                    let next = match &*v.0.borrow() {
                        Tv::Link(u) => u.clone(),
                        _ => return t.clone(),
                    };
                    t = next;
                }
                _ => return t,
            }
        }
    }

    /// Deeply resolves all links, producing a canonical type.
    pub fn zonk(&self) -> Ty {
        match self.head() {
            Ty::Var(v) => Ty::Var(v),
            Ty::Con(c, args) => Ty::Con(c, args.iter().map(Ty::zonk).collect()),
            Ty::Record(fs) => Ty::Record(fs.iter().map(|(l, t)| (*l, t.zonk())).collect()),
            Ty::Arrow(a, b) => Ty::arrow(a.zonk(), b.zonk()),
        }
    }

    /// True if the zonked type contains no unbound or generic variables.
    pub fn is_monomorphic(&self) -> bool {
        match self.head() {
            Ty::Var(_) => false,
            Ty::Con(_, args) => args.iter().all(Ty::is_monomorphic),
            Ty::Record(fs) => fs.iter().all(|(_, t)| t.is_monomorphic()),
            Ty::Arrow(a, b) => a.is_monomorphic() && b.is_monomorphic(),
        }
    }

    /// Collects the distinct generic variable indices in the type.
    pub fn gen_vars(&self) -> Vec<u32> {
        fn go(t: &Ty, out: &mut Vec<u32>) {
            match t.head() {
                Ty::Var(v) => {
                    if let Tv::Gen(i) = *v.0.borrow() {
                        if !out.contains(&i) {
                            out.push(i);
                        }
                    }
                }
                Ty::Con(_, args) => args.iter().for_each(|a| go(a, out)),
                Ty::Record(fs) => fs.iter().for_each(|(_, a)| go(a, out)),
                Ty::Arrow(a, b) => {
                    go(&a, out);
                    go(&b, out);
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut out);
        out
    }

    /// Substitutes generic variables: `Gen(i)` becomes `subst[i]`.
    /// Positions beyond `subst.len()` are left as-is.
    pub fn subst_gen(&self, subst: &[Ty]) -> Ty {
        match self.head() {
            Ty::Var(v) => {
                if let Tv::Gen(i) = *v.0.borrow() {
                    if let Some(t) = subst.get(i as usize) {
                        return t.clone();
                    }
                }
                Ty::Var(v)
            }
            Ty::Con(c, args) => Ty::Con(c, args.iter().map(|a| a.subst_gen(subst)).collect()),
            Ty::Record(fs) => {
                Ty::Record(fs.iter().map(|(l, t)| (*l, t.subst_gen(subst))).collect())
            }
            Ty::Arrow(a, b) => Ty::arrow(a.subst_gen(subst), b.subst_gen(subst)),
        }
    }
}

/// SML record-label ordering: numeric labels numerically, before
/// alphabetic labels, which compare lexicographically.
pub fn label_cmp(a: Symbol, b: Symbol) -> Ordering {
    match (a.as_numeric(), b.as_numeric()) {
        (Some(x), Some(y)) => x.cmp(&y),
        (Some(_), None) => Ordering::Less,
        (None, Some(_)) => Ordering::Greater,
        (None, None) => a.as_str().cmp(b.as_str()),
    }
}

/// Sorts record fields into canonical label order.
pub fn sort_fields<T>(fields: &mut [(Symbol, T)]) {
    fields.sort_by(|(a, _), (b, _)| label_cmp(*a, *b));
}

/// A polymorphic type scheme: `arity` generic variables and a body in
/// which they appear as [`Tv::Gen`] cells.
#[derive(Clone, Debug)]
pub struct Scheme {
    /// Number of generic variables (`Gen(0) .. Gen(arity-1)`).
    pub arity: usize,
    /// Whether each generic variable carries the equality attribute.
    pub eq_flags: Vec<bool>,
    /// The actual generalized cells, indexed by generic-variable number.
    /// Kept so the MTD pass can re-link them in place, and so recursive
    /// occurrences can be annotated with the identity instantiation.
    pub cells: Vec<TvRef>,
    /// Scheme body.
    pub body: Ty,
}

impl Scheme {
    /// A monomorphic scheme.
    pub fn mono(ty: Ty) -> Scheme {
        Scheme {
            arity: 0,
            eq_flags: Vec::new(),
            cells: Vec::new(),
            body: ty,
        }
    }

    /// The identity instantiation: each generic variable maps to itself.
    pub fn identity_instance(&self) -> Vec<Ty> {
        self.cells.iter().map(|c| Ty::Var(c.clone())).collect()
    }

    /// True if the scheme binds no variables.
    pub fn is_mono(&self) -> bool {
        self.arity == 0
    }

    /// Instantiates the scheme with fresh unification variables at
    /// `level`, returning the instantiated body and the fresh instance
    /// vector (one entry per generic variable). The instance vector is
    /// what the elaborator records at each use of a polymorphic variable
    /// (paper §3).
    pub fn instantiate(&self, level: u32) -> (Ty, Vec<Ty>) {
        let fresh: Vec<Ty> = (0..self.arity)
            .map(|i| {
                let eq = self.eq_flags.get(i).copied().unwrap_or(false);
                Ty::Var(TvRef::fresh_eq(level, eq))
            })
            .collect();
        (self.body.subst_gen(&fresh), fresh)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn prec(t: &Ty, f: &mut fmt::Formatter<'_>, level: u8) -> fmt::Result {
            match t.head() {
                Ty::Var(v) => match &*v.0.borrow() {
                    Tv::Unbound { id, eq, .. } => {
                        write!(f, "{}X{}", if *eq { "''" } else { "'" }, id)
                    }
                    Tv::Gen(i) => {
                        let c = (b'a' + (*i % 26) as u8) as char;
                        write!(f, "'{c}")
                    }
                    Tv::Link(_) => unreachable!("head resolves links"),
                },
                Ty::Con(c, args) => {
                    match args.len() {
                        0 => {}
                        1 => {
                            prec(&args[0], f, 2)?;
                            write!(f, " ")?;
                        }
                        _ => {
                            write!(f, "(")?;
                            for (i, a) in args.iter().enumerate() {
                                if i > 0 {
                                    write!(f, ", ")?;
                                }
                                prec(a, f, 0)?;
                            }
                            write!(f, ") ")?;
                        }
                    }
                    write!(f, "{}", c.name)
                }
                Ty::Record(fs) => {
                    if fs.is_empty() {
                        return write!(f, "unit");
                    }
                    let is_tuple = fs
                        .iter()
                        .enumerate()
                        .all(|(i, (l, _))| l.as_numeric() == Some(i + 1));
                    if is_tuple {
                        if level >= 2 {
                            write!(f, "(")?;
                        }
                        for (i, (_, t)) in fs.iter().enumerate() {
                            if i > 0 {
                                write!(f, " * ")?;
                            }
                            prec(t, f, 2)?;
                        }
                        if level >= 2 {
                            write!(f, ")")?;
                        }
                        Ok(())
                    } else {
                        write!(f, "{{")?;
                        for (i, (l, t)) in fs.iter().enumerate() {
                            if i > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "{l} : ")?;
                            prec(t, f, 0)?;
                        }
                        write!(f, "}}")
                    }
                }
                Ty::Arrow(a, b) => {
                    if level >= 1 {
                        write!(f, "(")?;
                    }
                    prec(&a, f, 1)?;
                    write!(f, " -> ")?;
                    prec(&b, f, 0)?;
                    if level >= 1 {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
            }
        }
        prec(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_basic() {
        assert_eq!(Ty::int().to_string(), "int");
        assert_eq!(Ty::arrow(Ty::int(), Ty::real()).to_string(), "int -> real");
        assert_eq!(Ty::pair(Ty::real(), Ty::real()).to_string(), "real * real");
        assert_eq!(
            Ty::list(Ty::pair(Ty::int(), Ty::int())).to_string(),
            "(int * int) list"
        );
        assert_eq!(Ty::unit().to_string(), "unit");
        assert_eq!(
            Ty::arrow(Ty::arrow(Ty::int(), Ty::int()), Ty::int()).to_string(),
            "(int -> int) -> int"
        );
    }

    #[test]
    fn head_follows_links() {
        let v = TvRef::fresh(0);
        let t = Ty::Var(v.clone());
        *v.0.borrow_mut() = Tv::Link(Ty::int());
        assert!(matches!(t.head(), Ty::Con(c, _) if c.kind == TyconKind::Int));
    }

    #[test]
    fn zonk_resolves_deeply() {
        let v = TvRef::fresh(0);
        let t = Ty::list(Ty::Var(v.clone()));
        *v.0.borrow_mut() = Tv::Link(Ty::real());
        assert_eq!(t.zonk().to_string(), "real list");
    }

    #[test]
    fn scheme_instantiation_is_fresh() {
        // forall 'a. 'a -> 'a
        let v = TvRef::fresh(0);
        *v.0.borrow_mut() = Tv::Gen(0);
        let body = Ty::arrow(Ty::Var(v.clone()), Ty::Var(v.clone()));
        let s = Scheme {
            arity: 1,
            eq_flags: vec![false],
            cells: vec![v],
            body,
        };
        let (t1, inst1) = s.instantiate(0);
        let (_t2, inst2) = s.instantiate(0);
        assert_eq!(inst1.len(), 1);
        // Distinct instantiations do not share variables.
        match (&inst1[0].head(), &inst2[0].head()) {
            (Ty::Var(a), Ty::Var(b)) => assert!(!a.same(b)),
            _ => panic!("expected fresh vars"),
        }
        assert!(matches!(t1, Ty::Arrow(..)));
    }

    #[test]
    fn label_ordering() {
        let one = Symbol::numeric(1);
        let two = Symbol::numeric(2);
        let ten = Symbol::numeric(10);
        let a = Symbol::intern("a");
        assert_eq!(label_cmp(one, two), Ordering::Less);
        assert_eq!(
            label_cmp(two, ten),
            Ordering::Less,
            "numeric labels compare numerically"
        );
        assert_eq!(label_cmp(one, a), Ordering::Less);
        assert_eq!(label_cmp(a, Symbol::intern("b")), Ordering::Less);
    }

    #[test]
    fn builtin_tycons_distinct() {
        assert_ne!(Tycon::int().stamp, Tycon::real().stamp);
        assert!(Tycon::int().is_rigid());
        assert!(!Tycon::fresh_abstract(Symbol::intern("t"), 0, false).is_rigid());
    }

    #[test]
    fn gen_vars_collects() {
        let v0 = TvRef::fresh(0);
        let v1 = TvRef::fresh(0);
        *v0.0.borrow_mut() = Tv::Gen(0);
        *v1.0.borrow_mut() = Tv::Gen(1);
        let t = Ty::pair(Ty::Var(v0.clone()), Ty::pair(Ty::Var(v1), Ty::Var(v0)));
        assert_eq!(t.gen_vars(), vec![0, 1]);
    }
}
