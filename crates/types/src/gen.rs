//! Let-generalization and anti-unification (least common generalization).
//!
//! Generalization marks unification cells [`Tv::Gen`] *in place*, so every
//! annotation sharing the cell observes the change. Anti-unification is
//! the core of the minimum-typing-derivations pass (paper §3, after
//! Bjørner): given all actual instantiations of a let-bound variable, it
//! computes the least general type scheme that generalizes them all.

use crate::ty::{Scheme, Tv, TvRef, Ty};

/// Generalizes `ty` at `level`: every unbound variable bound strictly
/// deeper than `level` becomes a generic variable of the returned scheme.
///
/// The marking happens in place, so other types sharing those cells (the
/// body of the declaration being generalized) see generic variables too.
pub fn generalize(ty: &Ty, level: u32) -> Scheme {
    generalize_many(std::slice::from_ref(ty), level)
        .pop()
        .expect("one scheme per type")
}

/// Generalizes a group of mutually recursive binding types together: all
/// generalized cells share a single index space, and every returned scheme
/// carries the full cell vector (so mutually recursive functions agree on
/// instantiation-vector layout).
pub fn generalize_many(tys: &[Ty], level: u32) -> Vec<Scheme> {
    let mut eq_flags = Vec::new();
    let mut cells = Vec::new();
    for ty in tys {
        go(ty, level, &mut eq_flags, &mut cells);
    }
    tys.iter()
        .map(|ty| Scheme {
            arity: cells.len(),
            eq_flags: eq_flags.clone(),
            cells: cells.clone(),
            body: ty.clone(),
        })
        .collect()
}

fn go(ty: &Ty, level: u32, eq_flags: &mut Vec<bool>, cells: &mut Vec<TvRef>) {
    match ty.head() {
        Ty::Var(v) => {
            let mut cell = v.0.borrow_mut();
            if let Tv::Unbound { level: vl, eq, .. } = &*cell {
                if *vl > level {
                    let idx = eq_flags.len() as u32;
                    eq_flags.push(*eq);
                    *cell = Tv::Gen(idx);
                    drop(cell);
                    cells.push(v.clone());
                }
            }
        }
        Ty::Con(_, args) => args.iter().for_each(|a| go(a, level, eq_flags, cells)),
        Ty::Record(fs) => fs.iter().for_each(|(_, a)| go(a, level, eq_flags, cells)),
        Ty::Arrow(a, b) => {
            go(&a, level, eq_flags, cells);
            go(&b, level, eq_flags, cells);
        }
    }
}

/// One disagreement position discovered during anti-unification.
#[derive(Clone, Debug)]
pub struct Disagreement {
    /// The fresh variable standing for this position in the LCG.
    pub var: TvRef,
    /// The concrete type at this position in each use, in use order.
    pub uses: Vec<Ty>,
    /// Whether the variable needs the equality attribute.
    pub eq: bool,
}

/// Computes least common generalizations over a fixed set of "uses".
///
/// All [`AntiUnifier::lcg`] calls against one `AntiUnifier` must pass
/// slices of the same length (one entry per use); disagreement positions
/// that agree across *all* uses share a single fresh variable, exactly as
/// in first-order anti-unification.
pub struct AntiUnifier {
    level: u32,
    entries: Vec<Disagreement>,
}

impl AntiUnifier {
    /// Creates an anti-unifier producing fresh variables at `level`.
    pub fn new(level: u32) -> AntiUnifier {
        AntiUnifier {
            level,
            entries: Vec::new(),
        }
    }

    /// The least common generalization of `uses` (which must be
    /// non-empty).
    ///
    /// # Panics
    ///
    /// Panics if `uses` is empty.
    pub fn lcg(&mut self, uses: &[Ty]) -> Ty {
        assert!(!uses.is_empty(), "lcg of zero uses");
        let heads: Vec<Ty> = uses.iter().map(Ty::head).collect();
        match &heads[0] {
            Ty::Con(c0, args0) => {
                let all_same = heads.iter().all(
                    |h| matches!(h, Ty::Con(c, args) if c.stamp == c0.stamp && args.len() == args0.len()),
                );
                if all_same {
                    let args = (0..args0.len())
                        .map(|i| {
                            let col: Vec<Ty> = heads
                                .iter()
                                .map(|h| match h {
                                    Ty::Con(_, a) => a[i].clone(),
                                    _ => unreachable!(),
                                })
                                .collect();
                            self.lcg(&col)
                        })
                        .collect();
                    return Ty::Con(c0.clone(), args);
                }
            }
            Ty::Record(fs0) => {
                let all_same = heads.iter().all(|h| {
                    matches!(h, Ty::Record(fs) if fs.len() == fs0.len()
                        && fs.iter().zip(fs0).all(|((l, _), (l0, _))| l == l0))
                });
                if all_same {
                    let fields = (0..fs0.len())
                        .map(|i| {
                            let col: Vec<Ty> = heads
                                .iter()
                                .map(|h| match h {
                                    Ty::Record(fs) => fs[i].1.clone(),
                                    _ => unreachable!(),
                                })
                                .collect();
                            (fs0[i].0, self.lcg(&col))
                        })
                        .collect();
                    return Ty::Record(fields);
                }
            }
            Ty::Arrow(..) => {
                if heads.iter().all(|h| matches!(h, Ty::Arrow(..))) {
                    let doms: Vec<Ty> = heads
                        .iter()
                        .map(|h| match h {
                            Ty::Arrow(a, _) => (**a).clone(),
                            _ => unreachable!(),
                        })
                        .collect();
                    let rans: Vec<Ty> = heads
                        .iter()
                        .map(|h| match h {
                            Ty::Arrow(_, b) => (**b).clone(),
                            _ => unreachable!(),
                        })
                        .collect();
                    return Ty::arrow(self.lcg(&doms), self.lcg(&rans));
                }
            }
            Ty::Var(v0) => {
                // All the same variable cell: keep it.
                if heads.iter().all(|h| matches!(h, Ty::Var(v) if v.same(v0))) {
                    return Ty::Var(v0.clone());
                }
            }
        }
        self.disagree(&heads)
    }

    fn disagree(&mut self, heads: &[Ty]) -> Ty {
        let keys: Vec<String> = heads.iter().map(|h| format!("{:?}", h.zonk())).collect();
        for e in &self.entries {
            let ekeys: Vec<String> = e.uses.iter().map(|u| format!("{:?}", u.zonk())).collect();
            if ekeys == keys {
                return Ty::Var(e.var.clone());
            }
        }
        let var = TvRef::fresh(self.level);
        self.entries.push(Disagreement {
            var: var.clone(),
            uses: heads.to_vec(),
            eq: false,
        });
        Ty::Var(var)
    }

    /// The discovered disagreement positions, in first-encounter order.
    pub fn disagreements(&self) -> &[Disagreement] {
        &self.entries
    }

    /// Consumes the anti-unifier, returning the disagreement positions.
    pub fn into_disagreements(self) -> Vec<Disagreement> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::TyconRegistry;
    use crate::unify::unify;

    #[test]
    fn generalize_marks_in_place() {
        let v = TvRef::fresh(5);
        let t = Ty::arrow(Ty::Var(v.clone()), Ty::Var(v.clone()));
        let s = generalize(&t, 0);
        assert_eq!(s.arity, 1);
        assert!(matches!(*v.0.borrow(), Tv::Gen(0)));
        // The body shares the marked cells.
        assert_eq!(s.body.to_string(), "'a -> 'a");
    }

    #[test]
    fn generalize_respects_level() {
        let shallow = TvRef::fresh(1);
        let deep = TvRef::fresh(3);
        let t = Ty::pair(Ty::Var(shallow.clone()), Ty::Var(deep));
        let s = generalize(&t, 1);
        assert_eq!(s.arity, 1, "only the deeper variable generalizes");
        assert!(matches!(*shallow.0.borrow(), Tv::Unbound { .. }));
    }

    #[test]
    fn generalize_keeps_eq_flags() {
        let v = TvRef::fresh_eq(5, true);
        let t = Ty::Var(v);
        let s = generalize(&t, 0);
        assert_eq!(s.eq_flags, vec![true]);
    }

    #[test]
    fn lcg_identical_types() {
        let mut au = AntiUnifier::new(0);
        let t = au.lcg(&[Ty::int(), Ty::int()]);
        assert_eq!(t.to_string(), "int");
        assert!(au.disagreements().is_empty());
    }

    #[test]
    fn lcg_disagreement_becomes_var() {
        let mut au = AntiUnifier::new(0);
        let t = au.lcg(&[Ty::list(Ty::int()), Ty::list(Ty::real())]);
        assert!(matches!(t.head(), Ty::Con(ref c, _) if c.name.as_str() == "list"));
        assert_eq!(au.disagreements().len(), 1);
    }

    #[test]
    fn lcg_shares_consistent_disagreements() {
        // (int * int) vs (real * real): both positions disagree the same
        // way, so the LCG is 'a * 'a, not 'a * 'b.
        let mut au = AntiUnifier::new(0);
        let t = au.lcg(&[
            Ty::pair(Ty::int(), Ty::int()),
            Ty::pair(Ty::real(), Ty::real()),
        ]);
        assert_eq!(au.disagreements().len(), 1);
        match t.head() {
            Ty::Record(fs) => match (fs[0].1.head(), fs[1].1.head()) {
                (Ty::Var(a), Ty::Var(b)) => assert!(a.same(&b)),
                _ => panic!("expected shared var"),
            },
            _ => panic!("expected record"),
        }
    }

    #[test]
    fn lcg_distinct_disagreements() {
        // (int * real) vs (real * int) yields 'a * 'b.
        let mut au = AntiUnifier::new(0);
        let _ = au.lcg(&[
            Ty::pair(Ty::int(), Ty::real()),
            Ty::pair(Ty::real(), Ty::int()),
        ]);
        assert_eq!(au.disagreements().len(), 2);
    }

    #[test]
    fn lcg_single_use_is_identity() {
        // With one use, MTD degenerates to "assign exactly the use type".
        let mut au = AntiUnifier::new(0);
        let t = au.lcg(&[Ty::arrow(Ty::real(), Ty::bool())]);
        assert_eq!(t.to_string(), "real -> bool");
        assert!(au.disagreements().is_empty());
    }

    #[test]
    fn lcg_generalizes_each_use() {
        // Property: the LCG unifies with (a fresh copy of) each use.
        let reg = TyconRegistry::with_builtins();
        let uses = vec![
            Ty::list(Ty::pair(Ty::int(), Ty::real())),
            Ty::list(Ty::pair(Ty::bool(), Ty::real())),
        ];
        let mut au = AntiUnifier::new(1);
        let lcg = au.lcg(&uses);
        // lcg = ('a * real) list; generalize the disagreement var and
        // instantiate a fresh copy per use so the unifications don't
        // interfere.
        let s = generalize(&lcg, 0);
        for u in &uses {
            let (copy, _) = s.instantiate(1);
            unify(&reg, &copy, u).expect("LCG generalizes each use");
        }
    }
}
