//! The datatype registry: constructor descriptions and runtime
//! representations for every datatype in a compilation.
//!
//! Constructor representations follow SML/NJ (Appel, *Compiling with
//! Continuations*, ch. 4): nullary constructors become small tagged
//! integers; if exactly one constructor carries a value whose type is
//! certainly boxed, it is represented *transparently* (no tag record);
//! otherwise value-carrying constructors become `[tag, value]` records.

use crate::ty::{Stamp, Tv, TvRef, Ty, Tycon, TyconKind};
use sml_ast::Symbol;
use std::collections::HashMap;

/// One datatype in a `register_batch` call: the type constructor,
/// its bound variables, and its `(constructor, payload)` list.
pub type DatatypeBatchItem = (Tycon, Vec<TvRef>, Vec<(Symbol, Option<Ty>)>);

/// Runtime representation of a data constructor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConRep {
    /// Nullary constructor, represented as the tagged integer `n`.
    Constant(usize),
    /// Value-carrying constructor represented as a `[tag, value]` record.
    Tagged(usize),
    /// The only value-carrying constructor of its datatype, with a
    /// certainly-boxed payload: represented as the payload itself.
    Transparent,
    /// Exception constructor carrying a value: `[tag, value]` record at
    /// runtime, where `tag` is the exception's runtime tag object
    /// (allocated when the `exception` declaration is evaluated, so
    /// exceptions passed through functor parameters keep their identity).
    Exn,
    /// Constant exception constructor: represented by its runtime tag
    /// object itself.
    ExnConst,
}

impl ConRep {
    /// True if values with this representation are heap pointers.
    pub fn is_boxed(self) -> bool {
        !matches!(self, ConRep::Constant(_))
    }
}

/// Description of one data constructor.
#[derive(Clone, Debug)]
pub struct ConDef {
    /// Constructor name.
    pub name: Symbol,
    /// Payload type (in terms of the datatype's generic parameters), if
    /// value-carrying.
    pub payload: Option<Ty>,
    /// Runtime representation.
    pub rep: ConRep,
    /// Declaration index within the datatype.
    pub index: usize,
}

/// A registered datatype: its tycon, generic parameters, and constructors.
#[derive(Clone, Debug)]
pub struct DatatypeDef {
    /// The datatype's tycon (kind [`TyconKind::Data`]).
    pub tycon: Tycon,
    /// Generic parameter cells, marked [`Tv::Gen`]`(0..arity)`.
    pub params: Vec<TvRef>,
    /// The constructors in declaration order.
    pub cons: Vec<ConDef>,
    /// Whether the datatype admits equality when its arguments do.
    pub admits_eq: bool,
}

/// True if every value of `ty` is certainly a heap pointer, so a
/// transparent constructor representation can be distinguished from
/// constant constructors by a boxity test.
pub fn certainly_boxed(ty: &Ty) -> bool {
    match ty.head() {
        Ty::Record(fs) => !fs.is_empty(),
        Ty::Arrow(..) => true,
        Ty::Con(c, _) => matches!(
            c.kind,
            TyconKind::String
                | TyconKind::Ref
                | TyconKind::Array
                | TyconKind::Real
                | TyconKind::Exn
        ),
        Ty::Var(_) => false,
    }
}

/// Assigns [`ConRep`]s to a list of `(name, payload)` constructor
/// declarations.
pub fn assign_reps(cons: &[(Symbol, Option<Ty>)]) -> Vec<ConDef> {
    let n_carrying = cons.iter().filter(|(_, p)| p.is_some()).count();
    let single_transparent = n_carrying == 1
        && cons
            .iter()
            .filter_map(|(_, p)| p.as_ref())
            .all(certainly_boxed);
    let mut const_idx = 0;
    let mut tag_idx = 0;
    cons.iter()
        .enumerate()
        .map(|(index, (name, payload))| {
            let rep = match payload {
                None => {
                    let r = ConRep::Constant(const_idx);
                    const_idx += 1;
                    r
                }
                Some(_) if single_transparent => ConRep::Transparent,
                Some(_) => {
                    let r = ConRep::Tagged(tag_idx);
                    tag_idx += 1;
                    r
                }
            };
            ConDef {
                name: *name,
                payload: payload.clone(),
                rep,
                index,
            }
        })
        .collect()
}

/// All datatypes known to a compilation, keyed by tycon stamp.
#[derive(Clone, Debug, Default)]
pub struct TyconRegistry {
    map: HashMap<Stamp, DatatypeDef>,
}

impl TyconRegistry {
    /// An empty registry (no built-ins; mostly for tests).
    pub fn new() -> TyconRegistry {
        TyconRegistry::default()
    }

    /// A registry pre-populated with `bool`, `'a list`, `'a option`, and
    /// `order`.
    pub fn with_builtins() -> TyconRegistry {
        let mut reg = TyconRegistry::new();

        // datatype bool = false | true  (false = 0, true = 1)
        reg.register_batch(vec![(
            Tycon::bool(),
            Vec::new(),
            vec![
                (Symbol::intern("false"), None),
                (Symbol::intern("true"), None),
            ],
        )]);

        // datatype 'a list = nil | :: of 'a * 'a list
        let p = TvRef::fresh(0);
        *p.0.borrow_mut() = Tv::Gen(0);
        let elem = Ty::Var(p.clone());
        let payload = Ty::pair(elem.clone(), Ty::list(elem));
        reg.register_batch(vec![(
            Tycon::list(),
            vec![p],
            vec![
                (Symbol::intern("nil"), None),
                (Symbol::intern("::"), Some(payload)),
            ],
        )]);

        // datatype 'a option = NONE | SOME of 'a
        let p = TvRef::fresh(0);
        *p.0.borrow_mut() = Tv::Gen(0);
        let elem = Ty::Var(p.clone());
        reg.register_batch(vec![(
            Tycon::option(),
            vec![p],
            vec![
                (Symbol::intern("NONE"), None),
                (Symbol::intern("SOME"), Some(elem)),
            ],
        )]);

        // datatype order = LESS | EQUAL | GREATER
        reg.register_batch(vec![(
            Tycon::order(),
            Vec::new(),
            vec![
                (Symbol::intern("LESS"), None),
                (Symbol::intern("EQUAL"), None),
                (Symbol::intern("GREATER"), None),
            ],
        )]);

        reg
    }

    /// Registers a (possibly mutually recursive) batch of datatypes,
    /// assigning constructor representations and computing equality
    /// admission by fixpoint over the batch.
    pub fn register_batch(&mut self, batch: Vec<DatatypeBatchItem>) {
        let stamps: Vec<Stamp> = batch.iter().map(|(t, _, _)| t.stamp).collect();
        // Optimistically assume every member admits equality, then iterate.
        let mut admits: HashMap<Stamp, bool> = stamps.iter().map(|s| (*s, true)).collect();
        loop {
            let mut changed = false;
            for (tycon, _, cons) in &batch {
                if !admits[&tycon.stamp] {
                    continue;
                }
                let ok = cons.iter().all(|(_, p)| {
                    p.as_ref()
                        .is_none_or(|t| self.payload_admits_eq(t, &admits))
                });
                if !ok {
                    admits.insert(tycon.stamp, false);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for (tycon, params, cons) in batch {
            let defs = assign_reps(&cons);
            let admits_eq = admits[&tycon.stamp];
            self.map.insert(
                tycon.stamp,
                DatatypeDef {
                    tycon,
                    params,
                    cons: defs,
                    admits_eq,
                },
            );
        }
    }

    /// Equality admission for a payload type, assuming generic parameters
    /// admit equality and using `pending` for members of the current batch.
    fn payload_admits_eq(&self, t: &Ty, pending: &HashMap<Stamp, bool>) -> bool {
        match t.head() {
            Ty::Var(_) => true, // parameters assumed eq
            Ty::Record(fs) => fs.iter().all(|(_, t)| self.payload_admits_eq(t, pending)),
            Ty::Arrow(..) => false,
            Ty::Con(c, args) => match c.eq {
                crate::ty::EqProp::Never => false,
                crate::ty::EqProp::Always => true,
                crate::ty::EqProp::IfArgs => {
                    let self_ok = if c.kind == TyconKind::Data {
                        pending
                            .get(&c.stamp)
                            .copied()
                            .unwrap_or_else(|| self.datatype_admits_eq(c.stamp))
                    } else {
                        true
                    };
                    self_ok && args.iter().all(|a| self.payload_admits_eq(a, pending))
                }
            },
        }
    }

    /// Looks up a datatype by stamp.
    pub fn datatype(&self, stamp: Stamp) -> Option<&DatatypeDef> {
        self.map.get(&stamp)
    }

    /// Whether the datatype with `stamp` admits equality (false for
    /// unknown stamps, e.g. abstract tycons).
    pub fn datatype_admits_eq(&self, stamp: Stamp) -> bool {
        self.map.get(&stamp).is_some_and(|d| d.admits_eq)
    }

    /// Iterates over all registered datatypes.
    pub fn iter(&self) -> impl Iterator<Item = &DatatypeDef> {
        self.map.values()
    }

    /// Inserts a fully formed definition under its tycon's stamp,
    /// replacing any previous entry. Used when deep-forking an
    /// elaboration checkpoint: representations were already assigned by
    /// [`TyconRegistry::register_batch`] in the original, so the forked
    /// copy is re-inserted verbatim rather than re-analyzed.
    pub fn insert_def(&mut self, def: DatatypeDef) {
        self.map.insert(def.tycon.stamp, def);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_list_reps() {
        let reg = TyconRegistry::with_builtins();
        let list = reg.datatype(Tycon::list().stamp).unwrap();
        assert_eq!(list.cons[0].rep, ConRep::Constant(0), "nil");
        assert_eq!(
            list.cons[1].rep,
            ConRep::Transparent,
            "cons cell is transparent"
        );
        assert!(list.admits_eq);
    }

    #[test]
    fn builtin_bool_reps() {
        let reg = TyconRegistry::with_builtins();
        let b = reg.datatype(Tycon::bool().stamp).unwrap();
        assert_eq!(b.cons[0].name.as_str(), "false");
        assert_eq!(b.cons[0].rep, ConRep::Constant(0));
        assert_eq!(b.cons[1].rep, ConRep::Constant(1));
    }

    #[test]
    fn option_is_tagged() {
        // SOME's payload ('a) is not certainly boxed, so it gets a tag
        // record.
        let reg = TyconRegistry::with_builtins();
        let o = reg.datatype(Tycon::option().stamp).unwrap();
        assert_eq!(o.cons[1].rep, ConRep::Tagged(0));
    }

    #[test]
    fn multiple_carrying_cons_are_tagged() {
        let cons = vec![
            (Symbol::intern("A"), Some(Ty::pair(Ty::int(), Ty::int()))),
            (Symbol::intern("B"), Some(Ty::pair(Ty::real(), Ty::real()))),
            (Symbol::intern("C"), None),
        ];
        let defs = assign_reps(&cons);
        assert_eq!(defs[0].rep, ConRep::Tagged(0));
        assert_eq!(defs[1].rep, ConRep::Tagged(1));
        assert_eq!(defs[2].rep, ConRep::Constant(0));
    }

    #[test]
    fn eq_admission_fixpoint() {
        // datatype t = F of int -> int   does not admit equality.
        let mut reg = TyconRegistry::with_builtins();
        let tycon = Tycon::fresh_data(Symbol::intern("t"), 0, crate::ty::EqProp::IfArgs);
        reg.register_batch(vec![(
            tycon.clone(),
            Vec::new(),
            vec![(Symbol::intern("F"), Some(Ty::arrow(Ty::int(), Ty::int())))],
        )]);
        assert!(!reg.datatype_admits_eq(tycon.stamp));

        // Recursive datatype over ints admits equality.
        let t2 = Tycon::fresh_data(Symbol::intern("tree"), 0, crate::ty::EqProp::IfArgs);
        let rec_ty = Ty::Con(t2.clone(), vec![]);
        reg.register_batch(vec![(
            t2.clone(),
            Vec::new(),
            vec![
                (Symbol::intern("Leaf"), None),
                (
                    Symbol::intern("Node"),
                    Some(Ty::pair(rec_ty.clone(), rec_ty)),
                ),
            ],
        )]);
        assert!(reg.datatype_admits_eq(t2.stamp));
    }

    #[test]
    fn certainly_boxed_cases() {
        assert!(certainly_boxed(&Ty::pair(Ty::int(), Ty::int())));
        assert!(certainly_boxed(&Ty::string()));
        assert!(certainly_boxed(&Ty::real()));
        assert!(certainly_boxed(&Ty::arrow(Ty::int(), Ty::int())));
        assert!(!certainly_boxed(&Ty::int()));
        assert!(!certainly_boxed(&Ty::bool()));
        assert!(!certainly_boxed(&Ty::Var(TvRef::fresh(0))));
    }
}
