//! Property tests for unification and generalization (driven by the
//! std-only `sml-testkit` harness).

use sml_testkit::{run_cases, Rng};
use sml_types::{generalize, unify, Ty, TyconRegistry};

/// Generator of closed (variable-free) types.
fn gen_closed_ty(rng: &mut Rng, depth: usize) -> Ty {
    if depth == 0 || rng.range_usize(0, 10) < 4 {
        return match rng.range_usize(0, 5) {
            0 => Ty::int(),
            1 => Ty::real(),
            2 => Ty::string(),
            3 => Ty::bool(),
            _ => Ty::unit(),
        };
    }
    let d = depth - 1;
    match rng.range_usize(0, 4) {
        0 => Ty::arrow(gen_closed_ty(rng, d), gen_closed_ty(rng, d)),
        1 => Ty::pair(gen_closed_ty(rng, d), gen_closed_ty(rng, d)),
        2 => Ty::list(gen_closed_ty(rng, d)),
        _ => Ty::reference(gen_closed_ty(rng, d)),
    }
}

#[test]
fn unify_is_reflexive() {
    run_cases("unify_is_reflexive", 128, |rng| {
        let t = gen_closed_ty(rng, 3);
        let reg = TyconRegistry::with_builtins();
        assert!(unify(&reg, &t, &t).is_ok());
    });
}

#[test]
fn unify_with_fresh_var_links() {
    run_cases("unify_with_fresh_var_links", 128, |rng| {
        let t = gen_closed_ty(rng, 3);
        let reg = TyconRegistry::with_builtins();
        let v = Ty::Var(sml_types::TvRef::fresh(0));
        unify(&reg, &v, &t).unwrap();
        assert_eq!(v.zonk().to_string(), t.zonk().to_string());
    });
}

#[test]
fn unify_symmetric_on_distinct_types() {
    run_cases("unify_symmetric_on_distinct_types", 128, |rng| {
        let a = gen_closed_ty(rng, 3);
        let b = gen_closed_ty(rng, 3);
        let reg = TyconRegistry::with_builtins();
        let ab = unify(&reg, &a, &b).is_ok();
        let ba = unify(&reg, &b, &a).is_ok();
        assert_eq!(ab, ba);
    });
}

#[test]
fn generalize_then_instantiate_unifies() {
    run_cases("generalize_then_instantiate_unifies", 128, |rng| {
        // A scheme instantiated with fresh variables must unify with its
        // own body shape.
        let t = gen_closed_ty(rng, 3);
        let reg = TyconRegistry::with_builtins();
        let v = Ty::Var(sml_types::TvRef::fresh(5));
        let pair = Ty::pair(v, t.clone());
        let scheme = generalize(&pair, 0);
        assert_eq!(scheme.arity, 1);
        let (inst, fresh) = scheme.instantiate(1);
        assert_eq!(fresh.len(), 1);
        assert!(unify(&reg, &inst, &Ty::pair(Ty::int(), t)).is_ok());
    });
}

#[test]
fn zonk_is_idempotent() {
    run_cases("zonk_is_idempotent", 128, |rng| {
        let t = gen_closed_ty(rng, 3);
        assert_eq!(t.zonk().to_string(), t.zonk().zonk().to_string());
    });
}

#[test]
fn display_roundtrips_structure() {
    run_cases("display_roundtrips_structure", 128, |rng| {
        // Types that display identically must unify; types that unify
        // and are closed display identically.
        let a = gen_closed_ty(rng, 3);
        let b = gen_closed_ty(rng, 3);
        let reg = TyconRegistry::with_builtins();
        if a.to_string() == b.to_string() {
            assert!(unify(&reg, &a, &b).is_ok());
        } else {
            assert!(unify(&reg, &a, &b).is_err());
        }
    });
}
