//! Property tests for unification and generalization.

use proptest::prelude::*;
use sml_types::{generalize, unify, Ty, TyconRegistry};

/// Generator of closed (variable-free) types.
fn arb_closed_ty() -> impl Strategy<Value = Ty> {
    let leaf = prop_oneof![
        Just(Ty::int()),
        Just(Ty::real()),
        Just(Ty::string()),
        Just(Ty::bool()),
        Just(Ty::unit()),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ty::arrow(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ty::pair(a, b)),
            inner.clone().prop_map(Ty::list),
            inner.clone().prop_map(Ty::reference),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn unify_is_reflexive(t in arb_closed_ty()) {
        let reg = TyconRegistry::with_builtins();
        prop_assert!(unify(&reg, &t, &t).is_ok());
    }

    #[test]
    fn unify_with_fresh_var_links(t in arb_closed_ty()) {
        let reg = TyconRegistry::with_builtins();
        let v = Ty::Var(sml_types::TvRef::fresh(0));
        unify(&reg, &v, &t).unwrap();
        prop_assert_eq!(v.zonk().to_string(), t.zonk().to_string());
    }

    #[test]
    fn unify_symmetric_on_distinct_types(a in arb_closed_ty(), b in arb_closed_ty()) {
        let reg = TyconRegistry::with_builtins();
        let ab = unify(&reg, &a, &b).is_ok();
        let ba = unify(&reg, &b, &a).is_ok();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn generalize_then_instantiate_unifies(t in arb_closed_ty()) {
        // A scheme instantiated with fresh variables must unify with its
        // own body shape.
        let reg = TyconRegistry::with_builtins();
        let v = Ty::Var(sml_types::TvRef::fresh(5));
        let pair = Ty::pair(v, t.clone());
        let scheme = generalize(&pair, 0);
        prop_assert_eq!(scheme.arity, 1);
        let (inst, fresh) = scheme.instantiate(1);
        prop_assert_eq!(fresh.len(), 1);
        prop_assert!(unify(&reg, &inst, &Ty::pair(Ty::int(), t)).is_ok());
    }

    #[test]
    fn zonk_is_idempotent(t in arb_closed_ty()) {
        prop_assert_eq!(t.zonk().to_string(), t.zonk().zonk().to_string());
    }

    #[test]
    fn display_roundtrips_structure(a in arb_closed_ty(), b in arb_closed_ty()) {
        // Types that display identically must unify; types that unify
        // and are closed display identically.
        let reg = TyconRegistry::with_builtins();
        if a.to_string() == b.to_string() {
            prop_assert!(unify(&reg, &a, &b).is_ok());
        } else {
            prop_assert!(unify(&reg, &a, &b).is_err());
        }
    }
}
