//! Elaboration environments and the initial (built-in) environment.

use crate::absyn::{Access, CompTy, ConInfo, Prim, StrTy, VarId, VarTable};
use sml_ast::{SigExp, Symbol};
use sml_types::{ConRep, Scheme, Stamp, Tv, TvRef, Ty, Tycon, TyconRegistry};
use std::collections::HashMap;
use std::rc::Rc;

/// Overload classes for the overloaded source operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OvClass {
    /// `+ - * ~`: int or real.
    Num,
    /// `< <= > >=`: int, real, string, or char.
    NumText,
}

impl OvClass {
    /// Whether `ty` (a resolved head constructor) belongs to the class.
    pub fn admits(self, tycon: &Tycon) -> bool {
        use sml_types::TyconKind::*;
        match self {
            OvClass::Num => matches!(tycon.kind, Int | Real),
            OvClass::NumText => matches!(tycon.kind, Int | Real | String | Char),
        }
    }
}

/// A value-namespace binding.
#[derive(Clone, Debug)]
pub enum ValBind {
    /// An ordinary variable.
    Var {
        /// How to reach it.
        access: Access,
        /// Its scheme.
        scheme: Scheme,
    },
    /// A data or exception constructor.
    Con(ConInfo),
    /// A compiler primitive.
    Prim {
        /// The primitive.
        prim: Prim,
        /// Its scheme.
        scheme: Scheme,
        /// Overload class if the primitive is an overloaded pseudo-prim.
        overload: Option<OvClass>,
    },
}

/// A type function: `arity` generic parameters and a body (used for
/// `type` abbreviations and manifest signature specs).
#[derive(Clone, Debug)]
pub struct TyFun {
    /// Parameter cells (marked `Gen(0..)`).
    pub params: Vec<TvRef>,
    /// The body.
    pub body: Ty,
}

impl TyFun {
    /// A nullary type function.
    pub fn constant(ty: Ty) -> TyFun {
        TyFun {
            params: Vec::new(),
            body: ty,
        }
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.params.len()
    }

    /// Applies the type function to `args`.
    pub fn apply(&self, args: &[Ty]) -> Ty {
        self.body.subst_gen(args)
    }
}

/// A type-namespace binding: a real tycon or an abbreviation.
#[derive(Clone, Debug)]
pub enum TyconBind {
    /// A proper type constructor.
    Tycon(Tycon),
    /// A `type` abbreviation.
    Abbrev(TyFun),
}

impl TyconBind {
    /// The binding's arity.
    pub fn arity(&self) -> usize {
        match self {
            TyconBind::Tycon(t) => t.arity,
            TyconBind::Abbrev(f) => f.arity(),
        }
    }

    /// Applies the binding to argument types.
    pub fn apply(&self, args: Vec<Ty>) -> Ty {
        match self {
            TyconBind::Tycon(t) => Ty::Con(t.clone(), args),
            TyconBind::Abbrev(f) => f.apply(&args),
        }
    }

    /// As a type function (tycon eta-expanded).
    pub fn to_tyfun(&self) -> TyFun {
        match self {
            TyconBind::Abbrev(f) => f.clone(),
            TyconBind::Tycon(t) => {
                let params: Vec<TvRef> = (0..t.arity)
                    .map(|i| {
                        let c = TvRef::fresh(0);
                        *c.0.borrow_mut() = Tv::Gen(i as u32);
                        c
                    })
                    .collect();
                let args = params.iter().map(|c| Ty::Var(c.clone())).collect();
                TyFun {
                    params,
                    body: Ty::Con(t.clone(), args),
                }
            }
        }
    }
}

/// A structure binding: its runtime access, component environment, and
/// structure type.
#[derive(Clone, Debug)]
pub struct StrEntry {
    /// Where the structure record lives.
    pub access: Access,
    /// The components, with accesses already rooted at `access`.
    pub env: Rc<Env>,
    /// The structure type.
    pub ty: StrTy,
}

/// A signature definition: kept as syntax plus its definition environment
/// and re-elaborated at each use so every use gets fresh flexible stamps.
#[derive(Clone, Debug)]
pub struct SigDef {
    /// The definition.
    pub ast: Rc<SigExp>,
    /// The environment at the definition site.
    pub env: Env,
}

/// An elaborated signature instance: an ordered list of items with a
/// particular choice of flexible (abstract) tycon stamps.
#[derive(Clone, Debug, Default)]
pub struct SigInstance {
    /// Items in specification order.
    pub items: Vec<SigItem>,
    /// Stamps of the flexible tycons introduced by this instance (for
    /// functor-application instantiation).
    pub flex: Vec<Stamp>,
}

/// One elaborated signature item.
#[derive(Clone, Debug)]
pub enum SigItem {
    /// `val name : scheme`.
    Val {
        /// Component name.
        name: Symbol,
        /// Specified scheme.
        scheme: Scheme,
    },
    /// `type`/`eqtype` spec; `Abstract` tycon when flexible, abbreviation
    /// when manifest.
    Type {
        /// Type name.
        name: Symbol,
        /// The binding visible to later specs.
        bind: TyconBind,
    },
    /// A `datatype` spec: the spec's own (fresh) tycon and constructors.
    Datatype {
        /// Datatype name.
        name: Symbol,
        /// The spec's tycon.
        tycon: Tycon,
        /// Constructor infos (view schemes over the spec tycon).
        cons: Vec<ConInfo>,
    },
    /// `exception` spec.
    Exn {
        /// Exception name.
        name: Symbol,
        /// Payload type, if any.
        payload: Option<Ty>,
    },
    /// `structure` spec.
    Str {
        /// Substructure name.
        name: Symbol,
        /// Its signature instance.
        sig: SigInstance,
    },
}

impl SigInstance {
    /// The structure type a structure matching this signature presents:
    /// value components, exception tags, and substructures, in spec order.
    pub fn str_ty(&self) -> StrTy {
        let mut comps = Vec::new();
        for item in &self.items {
            match item {
                SigItem::Val { name, scheme } => comps.push((*name, CompTy::Val(scheme.clone()))),
                SigItem::Exn { name, .. } => comps.push((*name, CompTy::Exn)),
                SigItem::Str { name, sig } => comps.push((*name, CompTy::Str(sig.str_ty()))),
                SigItem::Type { .. } | SigItem::Datatype { .. } => {}
            }
        }
        StrTy(comps)
    }
}

/// A functor binding.
#[derive(Clone, Debug)]
pub struct FctDef {
    /// Where the functor closure lives.
    pub access: Access,
    /// The elaborated parameter signature (its flexible stamps are the
    /// ones to instantiate at application).
    pub param_sig: Rc<SigInstance>,
    /// The result environment, expressed over the parameter's abstract
    /// tycons, with accesses rooted at a placeholder; rebuilt per
    /// application.
    pub result_env: Rc<Env>,
    /// The abstract result structure type.
    pub result_ty: StrTy,
}

/// An elaboration environment: five namespaces, functionally extended.
#[derive(Clone, Debug, Default)]
pub struct Env {
    /// Value bindings (variables, constructors, primitives).
    pub vals: HashMap<Symbol, ValBind>,
    /// Type constructor bindings.
    pub tycons: HashMap<Symbol, TyconBind>,
    /// Structure bindings.
    pub strs: HashMap<Symbol, StrEntry>,
    /// Signature bindings.
    pub sigs: HashMap<Symbol, SigDef>,
    /// Functor bindings.
    pub fcts: HashMap<Symbol, FctDef>,
}

impl Env {
    /// An empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Merges `other`'s bindings over `self`'s (right-biased).
    pub fn extend(&mut self, other: &Env) {
        for (k, v) in &other.vals {
            self.vals.insert(*k, v.clone());
        }
        for (k, v) in &other.tycons {
            self.tycons.insert(*k, v.clone());
        }
        for (k, v) in &other.strs {
            self.strs.insert(*k, v.clone());
        }
        for (k, v) in &other.sigs {
            self.sigs.insert(*k, v.clone());
        }
        for (k, v) in &other.fcts {
            self.fcts.insert(*k, v.clone());
        }
    }
}

/// Variable ids of the built-in exception tags, needed by later phases
/// (the translator raises `Match`, `Bind`, `Div`, `Subscript`, `Size`,
/// and `Chr` from generated code).
#[derive(Clone, Copy, Debug)]
pub struct BuiltinExns {
    /// `Match` — non-exhaustive match failure.
    pub match_exn: VarId,
    /// `Bind` — non-exhaustive binding failure.
    pub bind_exn: VarId,
    /// `Div` — integer division by zero.
    pub div_exn: VarId,
    /// `Overflow` — integer overflow.
    pub overflow_exn: VarId,
    /// `Subscript` — array/string index out of bounds.
    pub subscript_exn: VarId,
    /// `Size` — negative size argument.
    pub size_exn: VarId,
    /// `Chr` — `chr` argument out of range.
    pub chr_exn: VarId,
    /// `Fail of string` — general failure.
    pub fail_exn: VarId,
}

impl BuiltinExns {
    /// All tag variables with their names, in allocation order.
    pub fn all(&self) -> Vec<(VarId, &'static str)> {
        vec![
            (self.match_exn, "Match"),
            (self.bind_exn, "Bind"),
            (self.div_exn, "Div"),
            (self.overflow_exn, "Overflow"),
            (self.subscript_exn, "Subscript"),
            (self.size_exn, "Size"),
            (self.chr_exn, "Chr"),
            (self.fail_exn, "Fail"),
        ]
    }
}

/// Builds a scheme `forall 'a. body('a)`; `eq` marks the variable as an
/// equality variable.
pub fn poly1(eq: bool, f: impl FnOnce(Ty) -> Ty) -> Scheme {
    let c = TvRef::fresh(0);
    *c.0.borrow_mut() = Tv::Gen(0);
    Scheme {
        arity: 1,
        eq_flags: vec![eq],
        cells: vec![c.clone()],
        body: f(Ty::Var(c)),
    }
}

/// Builds a scheme `forall 'a 'b. body('a, 'b)`.
pub fn poly2(f: impl FnOnce(Ty, Ty) -> Ty) -> Scheme {
    let a = TvRef::fresh(0);
    let b = TvRef::fresh(0);
    *a.0.borrow_mut() = Tv::Gen(0);
    *b.0.borrow_mut() = Tv::Gen(1);
    Scheme {
        arity: 2,
        eq_flags: vec![false, false],
        cells: vec![a.clone(), b.clone()],
        body: f(Ty::Var(a), Ty::Var(b)),
    }
}

fn prim(env: &mut Env, name: &str, prim: Prim, scheme: Scheme) {
    env.vals.insert(
        Symbol::intern(name),
        ValBind::Prim {
            prim,
            scheme,
            overload: None,
        },
    );
}

fn oprim(env: &mut Env, name: &str, p: Prim, class: OvClass, scheme: Scheme) {
    env.vals.insert(
        Symbol::intern(name),
        ValBind::Prim {
            prim: p,
            scheme,
            overload: Some(class),
        },
    );
}

fn mono(ty: Ty) -> Scheme {
    Scheme::mono(ty)
}

/// Builds the initial environment: primitive operations, built-in
/// datatype constructors, built-in exceptions (whose tag variables are
/// allocated in `vars`), and primitive tycons.
pub fn builtin_env(reg: &TyconRegistry, vars: &mut VarTable) -> (Env, BuiltinExns) {
    let mut env = Env::new();

    // ----- tycons ---------------------------------------------------------
    for t in [
        Tycon::int(),
        Tycon::real(),
        Tycon::string(),
        Tycon::char(),
        Tycon::exn(),
        Tycon::reference(),
        Tycon::array(),
        Tycon::cont(),
        Tycon::bool(),
        Tycon::list(),
        Tycon::option(),
        Tycon::order(),
    ] {
        env.tycons.insert(t.name, TyconBind::Tycon(t));
    }
    env.tycons.insert(
        Symbol::intern("unit"),
        TyconBind::Abbrev(TyFun::constant(Ty::unit())),
    );

    // ----- datatype constructors -----------------------------------------
    for dt in reg.iter() {
        for con in &dt.cons {
            let args: Vec<Ty> = dt.params.iter().map(|c| Ty::Var(c.clone())).collect();
            let dt_ty = Ty::Con(dt.tycon.clone(), args);
            let body = match &con.payload {
                Some(p) => Ty::arrow(p.clone(), dt_ty),
                None => dt_ty,
            };
            let scheme = Scheme {
                arity: dt.params.len(),
                eq_flags: vec![false; dt.params.len()],
                cells: dt.params.clone(),
                body,
            };
            env.vals.insert(
                con.name,
                ValBind::Con(ConInfo {
                    name: con.name,
                    dt_stamp: dt.tycon.stamp,
                    index: con.index,
                    span: dt.cons.len(),
                    rep: con.rep,
                    scheme,
                    origin: None,
                    tag: None,
                }),
            );
        }
    }

    // ----- overloaded operators -------------------------------------------
    use Prim::*;
    let bin = |t: Ty| {
        // Shared-variable scheme 'a * 'a -> 'a is built by the callers.
        t
    };
    let _ = bin;
    oprim(
        &mut env,
        "+",
        OAdd,
        OvClass::Num,
        poly1(false, |a| Ty::arrow(Ty::pair(a.clone(), a.clone()), a)),
    );
    oprim(
        &mut env,
        "-",
        OSub,
        OvClass::Num,
        poly1(false, |a| Ty::arrow(Ty::pair(a.clone(), a.clone()), a)),
    );
    oprim(
        &mut env,
        "*",
        OMul,
        OvClass::Num,
        poly1(false, |a| Ty::arrow(Ty::pair(a.clone(), a.clone()), a)),
    );
    oprim(
        &mut env,
        "~",
        ONeg,
        OvClass::Num,
        poly1(false, |a| Ty::arrow(a.clone(), a)),
    );
    oprim(
        &mut env,
        "<",
        OLt,
        OvClass::NumText,
        poly1(false, |a| Ty::arrow(Ty::pair(a.clone(), a), Ty::bool())),
    );
    oprim(
        &mut env,
        "<=",
        OLe,
        OvClass::NumText,
        poly1(false, |a| Ty::arrow(Ty::pair(a.clone(), a), Ty::bool())),
    );
    oprim(
        &mut env,
        ">",
        OGt,
        OvClass::NumText,
        poly1(false, |a| Ty::arrow(Ty::pair(a.clone(), a), Ty::bool())),
    );
    oprim(
        &mut env,
        ">=",
        OGe,
        OvClass::NumText,
        poly1(false, |a| Ty::arrow(Ty::pair(a.clone(), a), Ty::bool())),
    );

    // ----- fixed-type primitives ------------------------------------------
    let ii_i = || mono(Ty::arrow(Ty::pair(Ty::int(), Ty::int()), Ty::int()));
    let rr_r = || mono(Ty::arrow(Ty::pair(Ty::real(), Ty::real()), Ty::real()));
    let r_r = || mono(Ty::arrow(Ty::real(), Ty::real()));
    prim(&mut env, "div", IDiv, ii_i());
    prim(&mut env, "mod", IMod, ii_i());
    prim(&mut env, "/", FDiv, rr_r());
    prim(&mut env, "sqrt", FSqrt, r_r());
    prim(&mut env, "sin", FSin, r_r());
    prim(&mut env, "cos", FCos, r_r());
    prim(&mut env, "arctan", FAtan, r_r());
    prim(&mut env, "exp", FExp, r_r());
    prim(&mut env, "ln", FLn, r_r());
    prim(
        &mut env,
        "floor",
        Floor,
        mono(Ty::arrow(Ty::real(), Ty::int())),
    );
    prim(
        &mut env,
        "real",
        IntToReal,
        mono(Ty::arrow(Ty::int(), Ty::real())),
    );

    // Polymorphic equality: forall ''a. ''a * ''a -> bool.
    prim(
        &mut env,
        "=",
        PolyEq,
        poly1(true, |a| Ty::arrow(Ty::pair(a.clone(), a), Ty::bool())),
    );
    prim(
        &mut env,
        "<>",
        PolyNe,
        poly1(true, |a| Ty::arrow(Ty::pair(a.clone(), a), Ty::bool())),
    );

    // References.
    prim(
        &mut env,
        "ref",
        MakeRef,
        poly1(false, |a| Ty::arrow(a.clone(), Ty::reference(a))),
    );
    prim(
        &mut env,
        "!",
        Deref,
        poly1(false, |a| Ty::arrow(Ty::reference(a.clone()), a)),
    );
    prim(
        &mut env,
        ":=",
        Assign,
        poly1(false, |a| {
            Ty::arrow(Ty::pair(Ty::reference(a.clone()), a), Ty::unit())
        }),
    );

    // Strings and chars.
    prim(
        &mut env,
        "size",
        StrSize,
        mono(Ty::arrow(Ty::string(), Ty::int())),
    );
    prim(
        &mut env,
        "strsub",
        StrSub,
        mono(Ty::arrow(Ty::pair(Ty::string(), Ty::int()), Ty::char())),
    );
    prim(
        &mut env,
        "^",
        StrCat,
        mono(Ty::arrow(
            Ty::pair(Ty::string(), Ty::string()),
            Ty::string(),
        )),
    );
    prim(&mut env, "ord", Ord, mono(Ty::arrow(Ty::char(), Ty::int())));
    prim(&mut env, "chr", Chr, mono(Ty::arrow(Ty::int(), Ty::char())));
    prim(
        &mut env,
        "itos",
        IntToString,
        mono(Ty::arrow(Ty::int(), Ty::string())),
    );
    prim(
        &mut env,
        "rtos",
        RealToString,
        mono(Ty::arrow(Ty::real(), Ty::string())),
    );

    // Arrays.
    prim(
        &mut env,
        "array",
        ArrayMake,
        poly1(false, |a| {
            Ty::arrow(Ty::pair(Ty::int(), a.clone()), Ty::array(a))
        }),
    );
    prim(
        &mut env,
        "asub",
        ArraySub,
        poly1(false, |a| {
            Ty::arrow(Ty::pair(Ty::array(a.clone()), Ty::int()), a)
        }),
    );
    prim(
        &mut env,
        "aupdate",
        ArrayUpdate,
        poly1(false, |a| {
            Ty::arrow(
                Ty::tuple(vec![Ty::array(a.clone()), Ty::int(), a]),
                Ty::unit(),
            )
        }),
    );
    prim(
        &mut env,
        "alength",
        ArrayLength,
        poly1(false, |a| Ty::arrow(Ty::array(a), Ty::int())),
    );

    // Continuations.
    prim(
        &mut env,
        "callcc",
        Callcc,
        poly1(false, |a| {
            Ty::arrow(Ty::arrow(Ty::cont(a.clone()), a.clone()), a)
        }),
    );
    prim(
        &mut env,
        "throw",
        Throw,
        poly2(|a, b| Ty::arrow(Ty::cont(a.clone()), Ty::arrow(a, b))),
    );

    // Output.
    prim(
        &mut env,
        "print",
        Print,
        mono(Ty::arrow(Ty::string(), Ty::unit())),
    );

    // ----- built-in exceptions ---------------------------------------------
    let mut mk_exn = |env: &mut Env, name: &str, payload: Option<Ty>| -> VarId {
        let sym = Symbol::intern(name);
        let var = vars.fresh(sym, Ty::exn());
        let (rep, scheme) = match &payload {
            Some(p) => (ConRep::Exn, mono(Ty::arrow(p.clone(), Ty::exn()))),
            None => (ConRep::ExnConst, mono(Ty::exn())),
        };
        env.vals.insert(
            sym,
            ValBind::Con(ConInfo {
                name: sym,
                dt_stamp: Tycon::exn().stamp,
                index: 0,
                span: usize::MAX,
                rep,
                scheme,
                origin: None,
                tag: Some(Access::Var(var)),
            }),
        );
        var
    };
    let exns = BuiltinExns {
        match_exn: mk_exn(&mut env, "Match", None),
        bind_exn: mk_exn(&mut env, "Bind", None),
        div_exn: mk_exn(&mut env, "Div", None),
        overflow_exn: mk_exn(&mut env, "Overflow", None),
        subscript_exn: mk_exn(&mut env, "Subscript", None),
        size_exn: mk_exn(&mut env, "Size", None),
        chr_exn: mk_exn(&mut env, "Chr", None),
        fail_exn: mk_exn(&mut env, "Fail", Some(Ty::string())),
    };

    (env, exns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_env_has_core_bindings() {
        let reg = TyconRegistry::with_builtins();
        let mut vars = VarTable::new();
        let (env, exns) = builtin_env(&reg, &mut vars);
        assert!(env.vals.contains_key(&Symbol::intern("+")));
        assert!(env.vals.contains_key(&Symbol::intern("::")));
        assert!(env.vals.contains_key(&Symbol::intern("callcc")));
        assert!(env.tycons.contains_key(&Symbol::intern("int")));
        assert!(env.tycons.contains_key(&Symbol::intern("unit")));
        assert_eq!(exns.all().len(), 8);
        assert_eq!(vars.len(), 8, "one tag variable per built-in exception");
    }

    #[test]
    fn cons_carry_reps() {
        let reg = TyconRegistry::with_builtins();
        let mut vars = VarTable::new();
        let (env, _) = builtin_env(&reg, &mut vars);
        let ValBind::Con(c) = &env.vals[&Symbol::intern("::")] else {
            panic!()
        };
        assert_eq!(c.rep, ConRep::Transparent);
        assert_eq!(c.scheme.arity, 1);
        let ValBind::Con(t) = &env.vals[&Symbol::intern("true")] else {
            panic!()
        };
        assert_eq!(t.rep, ConRep::Constant(1));
    }

    #[test]
    fn overloads_are_marked() {
        let reg = TyconRegistry::with_builtins();
        let mut vars = VarTable::new();
        let (env, _) = builtin_env(&reg, &mut vars);
        let ValBind::Prim { overload, .. } = &env.vals[&Symbol::intern("+")] else {
            panic!()
        };
        assert_eq!(*overload, Some(OvClass::Num));
        let ValBind::Prim { overload, .. } = &env.vals[&Symbol::intern("div")] else {
            panic!()
        };
        assert!(overload.is_none());
    }

    #[test]
    fn tyfun_apply() {
        let f = poly1(false, |a| Ty::pair(a.clone(), a));
        let tf = TyFun {
            params: f.cells.clone(),
            body: f.body.clone(),
        };
        let t = tf.apply(&[Ty::int()]);
        assert_eq!(t.to_string(), "int * int");
    }
}
