//! A resumable elaboration session for component-wise incremental
//! compilation.
//!
//! [`ElabSession`] exposes the elaborator one top-level declaration at a
//! time: the incremental driver in `crates/core` elaborates a prefix of
//! the program, snapshots the session at each component boundary with
//! [`ElabSession::fork`], and on a later edit resumes from the deepest
//! still-valid snapshot instead of starting over. [`crate::elaborate`]
//! is now a thin wrapper that runs a fresh session over every
//! declaration, so the batch and incremental paths share one code path.
//!
//! Forks are *identity-preserving deep copies* (see [`crate::fork`]):
//! every unification cell, environment, and typed term reachable from
//! the session is rebuilt with sharing preserved, so later in-place
//! mutation of the live session (unification, overload defaulting, the
//! MTD pass re-linking scheme cells) can never corrupt a stored
//! snapshot, and vice versa.

use crate::absyn::{TDec, VarTable};
use crate::elaborate::{Elaboration, Elaborator};
use crate::env::{builtin_env, Env};
use crate::error::ElabResult;
use crate::fork::Forker;
use sml_ast as ast;
use sml_ast::{Span, Symbol};
use sml_types::TyconRegistry;
use std::collections::HashMap;

/// An in-progress elaboration that can accept declarations one at a
/// time, be forked at any declaration boundary, and be finished into an
/// [`Elaboration`].
#[derive(Debug)]
pub struct ElabSession {
    pub(crate) elab: Elaborator,
    pub(crate) env: Env,
    pub(crate) decs: Vec<TDec>,
    pub(crate) builtins: crate::env::BuiltinExns,
}

impl Default for ElabSession {
    fn default() -> ElabSession {
        ElabSession::new()
    }
}

impl ElabSession {
    /// A fresh session over the initial (built-in) environment, with the
    /// built-in exception-tag declarations already emitted.
    pub fn new() -> ElabSession {
        let registry = TyconRegistry::with_builtins();
        let mut vars = VarTable::new();
        let (env, builtins) = builtin_env(&registry, &mut vars);
        let elab = Elaborator {
            reg: registry,
            vars,
            level: 0,
            overloads: Vec::new(),
            flex: Vec::new(),
            tyvar_scopes: vec![HashMap::new()],
            fct_roots: HashMap::new(),
        };
        let decs: Vec<TDec> = builtins
            .all()
            .into_iter()
            .map(|(var, name)| TDec::Exception {
                var,
                name: Symbol::intern(name),
            })
            .collect();
        ElabSession {
            elab,
            env,
            decs,
            builtins,
        }
    }

    /// Elaborates one top-level declaration, extending the environment.
    ///
    /// # Errors
    ///
    /// Returns the first type error in the declaration; the session must
    /// not be used further after an error.
    pub fn elab_dec(&mut self, dec: &ast::Dec) -> ElabResult<()> {
        self.elab.elab_dec(&mut self.env, dec, &mut self.decs)
    }

    /// Completes the session: resolves any still-pending overload and
    /// flexible-record constraints and returns the accumulated typed
    /// program.
    ///
    /// # Errors
    ///
    /// Returns an error if a flexible record pattern never closed.
    pub fn finish(mut self) -> ElabResult<Elaboration> {
        self.elab.resolve_pending(0, 0, Span::dummy())?;
        Ok(Elaboration {
            decs: self.decs,
            vars: self.elab.vars,
            registry: self.elab.reg,
            builtins: self.builtins,
        })
    }

    /// An identity-preserving deep copy of the whole session.
    ///
    /// The copy shares **no** mutable state (unification cells,
    /// environments, typed terms) with `self`: it is a closed graph that
    /// is isomorphic to the original, safe to stash in a cache while the
    /// original keeps elaborating — or to hand to another thread, as
    /// long as each copy is only touched by one thread at a time.
    #[must_use]
    pub fn fork(&self) -> ElabSession {
        Forker::default().session(self)
    }

    /// Number of typed declarations accumulated so far (including the
    /// prepended built-in exception tags).
    pub fn dec_count(&self) -> usize {
        self.decs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_matches_batch_elaborate() {
        let src = "fun map f nil = nil | map f (x :: r) = f x :: map f r \
                   val doubled = map (fn n => n + n) [1, 2, 3]";
        let prog = ast::parse(src).unwrap();
        let batch = crate::elaborate(&prog).unwrap();
        let mut s = ElabSession::new();
        for d in &prog.decs {
            s.elab_dec(d).unwrap();
        }
        let incr = s.finish().unwrap();
        assert_eq!(batch.decs.len(), incr.decs.len());
        assert_eq!(batch.vars.len(), incr.vars.len());
    }

    #[test]
    fn fork_isolates_later_mutation() {
        let prog = ast::parse("val pair = (1, \"x\")").unwrap();
        let mut s = ElabSession::new();
        for d in &prog.decs {
            s.elab_dec(d).unwrap();
        }
        let snap = s.fork();
        // Keep elaborating the original: unification mutates cells the
        // snapshot must not see.
        let more = ast::parse("val again = pair").unwrap();
        for d in &more.decs {
            s.elab_dec(d).unwrap();
        }
        let from_snap = snap.finish().unwrap();
        let from_live = s.finish().unwrap();
        assert_eq!(from_live.decs.len(), from_snap.decs.len() + 1);
    }

    #[test]
    fn fork_then_resume_matches_straight_line() {
        let first = ast::parse("datatype t = A | B of int").unwrap();
        let second = ast::parse("val v = B 3 val w = (case v of A => 0 | B n => n)").unwrap();
        let mut straight = ElabSession::new();
        for d in first.decs.iter().chain(&second.decs) {
            straight.elab_dec(d).unwrap();
        }
        let straight = straight.finish().unwrap();

        let mut prefix = ElabSession::new();
        for d in &first.decs {
            prefix.elab_dec(d).unwrap();
        }
        let mut resumed = prefix.fork();
        for d in &second.decs {
            resumed.elab_dec(d).unwrap();
        }
        let resumed = resumed.finish().unwrap();
        assert_eq!(straight.decs.len(), resumed.decs.len());
        assert_eq!(straight.vars.len(), resumed.vars.len());
    }
}
