//! The elaborator / type checker for the core language.
//!
//! Produces typed abstract syntax in which every occurrence of a
//! polymorphic variable, primitive, or constructor is annotated with its
//! type instantiation (paper §3). Module-language elaboration (signature
//! matching, abstraction, functors) lives in [`crate::modules`].

use crate::absyn::*;
use crate::env::*;
use crate::error::{ElabError, ElabResult};
use sml_ast::{self as ast, ExpKind, PatKind, Span, Symbol, TyKind};
use sml_types::{
    generalize_many, unify, EqProp, Scheme, Tv, TvRef, Ty, Tycon, TyconRegistry, UnifyResult,
};
use std::collections::HashMap;

/// The result of elaborating a whole program.
#[derive(Debug)]
pub struct Elaboration {
    /// Top-level typed declarations (the built-in exception-tag
    /// declarations are prepended).
    pub decs: Vec<TDec>,
    /// All term variables.
    pub vars: VarTable,
    /// All datatypes.
    pub registry: TyconRegistry,
    /// Tag variables of the built-in exceptions.
    pub builtins: BuiltinExns,
}

/// Elaborates a parsed program against the initial environment.
///
/// # Errors
///
/// Returns the first type error encountered.
///
/// # Examples
///
/// ```
/// let prog = sml_ast::parse("fun twice f x = f (f x)").unwrap();
/// let elab = sml_elab::elaborate(&prog).unwrap();
/// assert!(!elab.decs.is_empty());
/// ```
pub fn elaborate(prog: &ast::Program) -> ElabResult<Elaboration> {
    let mut session = crate::incremental::ElabSession::new();
    for dec in &prog.decs {
        session.elab_dec(dec)?;
    }
    session.finish()
}

/// A pending flexible-record constraint: the record type, the fields the
/// pattern listed, and the span to report if the record never closes.
pub(crate) type FlexConstraint = (Ty, Vec<(Symbol, Ty)>, Span);

#[derive(Debug)]
pub(crate) struct Elaborator {
    pub(crate) reg: TyconRegistry,
    pub(crate) vars: VarTable,
    pub(crate) level: u32,
    /// Pending overload constraints `(instance var, class, span)`.
    pub(crate) overloads: Vec<(Ty, OvClass, Span)>,
    /// Pending flexible-record constraints.
    pub(crate) flex: Vec<FlexConstraint>,
    /// Stack of implicit/explicit type-variable scopes for `'a` syntax.
    pub(crate) tyvar_scopes: Vec<HashMap<Symbol, Ty>>,
    /// Placeholder root variables of functor result environments, keyed
    /// by the functor's closure variable.
    pub(crate) fct_roots: HashMap<VarId, VarId>,
}

impl Elaborator {
    pub(crate) fn fresh_ty(&self) -> Ty {
        Ty::Var(TvRef::fresh(self.level))
    }

    fn err<T>(&self, span: Span, msg: impl Into<String>) -> ElabResult<T> {
        Err(ElabError::new(span, msg))
    }

    pub(crate) fn unify(&self, span: Span, a: &Ty, b: &Ty) -> ElabResult<()> {
        to_elab(unify(&self.reg, a, b), span)
    }

    // ----- pending-constraint resolution ---------------------------------

    /// Resolves overload and flexible-record constraints registered after
    /// the given marks. Overloads whose type is still undetermined are
    /// *retained* (demoted so they are not generalized) unless this is a
    /// top-level declaration boundary, where they default to `int` — SML's
    /// overload resolution happens at the outermost enclosing declaration.
    pub(crate) fn resolve_pending(
        &mut self,
        ov_mark: usize,
        flex_mark: usize,
        span: Span,
    ) -> ElabResult<()> {
        let final_boundary = self.level == 0;
        // Flexible records first: they may pin overloaded types.
        for (recty, fields, fspan) in self.flex.split_off(flex_mark) {
            match recty.head() {
                Ty::Record(have) => {
                    for (lab, want) in fields {
                        match have.iter().find(|(l, _)| *l == lab) {
                            Some((_, t)) => self.unify(fspan, &want, t)?,
                            None => {
                                return self.err(
                                    fspan,
                                    format!("record type `{}` has no field `{lab}`", recty.zonk()),
                                )
                            }
                        }
                    }
                }
                other => {
                    return self.err(
                        fspan,
                        format!(
                            "unresolved flexible record (inferred `{}`); add a type annotation",
                            other.zonk()
                        ),
                    )
                }
            }
        }
        let mut keep = Vec::new();
        for (ty, class, ospan) in self.overloads.split_off(ov_mark) {
            match ty.head() {
                Ty::Var(v) => {
                    if final_boundary {
                        // Default to int.
                        self.unify(ospan, &ty, &Ty::int())?;
                    } else {
                        // Keep pending; prevent generalization by
                        // demoting the variable to the current level.
                        if let Tv::Unbound { level, .. } = &mut *v.0.borrow_mut() {
                            if *level > self.level {
                                *level = self.level;
                            }
                        }
                        keep.push((ty, class, ospan));
                    }
                }
                Ty::Con(c, _) if class.admits(&c) => {}
                Ty::Record(fs) if fs.is_empty() && !final_boundary => {
                    // `unit` can appear transiently; treat as undetermined.
                    keep.push((ty, class, ospan));
                }
                other => {
                    return self.err(
                        ospan,
                        format!("overloaded operator used at type `{}`", other.zonk()),
                    )
                }
            }
        }
        self.overloads.extend(keep);
        let _ = span;
        Ok(())
    }

    // ----- types -----------------------------------------------------------

    /// Looks up a possibly-qualified type constructor.
    fn lookup_tycon(&self, env: &Env, path: &ast::Path, span: Span) -> ElabResult<TyconBind> {
        let env = self.resolve_qualifiers(env, path, span)?;
        match env.tycons.get(&path.name) {
            Some(b) => Ok(b.clone()),
            None => self.err(span, format!("unbound type constructor `{path}`")),
        }
    }

    /// Resolves the structure qualifiers of a path, returning the
    /// environment in which the final name should be looked up.
    fn resolve_qualifiers<'e>(
        &self,
        env: &'e Env,
        path: &ast::Path,
        span: Span,
    ) -> ElabResult<&'e Env> {
        let mut cur = env;
        for q in &path.qualifiers {
            match cur.strs.get(q) {
                Some(entry) => cur = &entry.env,
                None => return self.err(span, format!("unbound structure `{q}` in `{path}`")),
            }
        }
        Ok(cur)
    }

    /// Elaborates a syntactic type. Type variables resolve through the
    /// current scope stack; unknown ones are created implicitly in the
    /// innermost scope.
    pub(crate) fn elab_ty(&mut self, env: &Env, ty: &ast::Ty) -> ElabResult<Ty> {
        match &ty.kind {
            TyKind::Var(name) => {
                for scope in self.tyvar_scopes.iter().rev() {
                    if let Some(t) = scope.get(name) {
                        return Ok(t.clone());
                    }
                }
                let eq = name.as_str().starts_with("''");
                let t = Ty::Var(TvRef::fresh_eq(self.level, eq));
                self.tyvar_scopes
                    .last_mut()
                    .expect("scope stack is never empty")
                    .insert(*name, t.clone());
                Ok(t)
            }
            TyKind::Con(path, args) => {
                let bind = self.lookup_tycon(env, path, ty.span)?;
                if bind.arity() != args.len() {
                    return self.err(
                        ty.span,
                        format!(
                            "type constructor `{path}` expects {} argument(s), got {}",
                            bind.arity(),
                            args.len()
                        ),
                    );
                }
                let args = args
                    .iter()
                    .map(|a| self.elab_ty(env, a))
                    .collect::<ElabResult<Vec<_>>>()?;
                Ok(bind.apply(args))
            }
            TyKind::Tuple(parts) => {
                let parts = parts
                    .iter()
                    .map(|p| self.elab_ty(env, p))
                    .collect::<ElabResult<Vec<_>>>()?;
                Ok(Ty::tuple(parts))
            }
            TyKind::Record(fields) => {
                let mut fs = Vec::new();
                for (lab, t) in fields {
                    if fs.iter().any(|(l, _)| l == lab) {
                        return self.err(ty.span, format!("duplicate record label `{lab}`"));
                    }
                    fs.push((*lab, self.elab_ty(env, t)?));
                }
                sml_types::sort_fields(&mut fs);
                Ok(Ty::Record(fs))
            }
            TyKind::Arrow(a, b) => Ok(Ty::arrow(self.elab_ty(env, a)?, self.elab_ty(env, b)?)),
        }
    }

    // ----- value lookups ----------------------------------------------------

    fn lookup_val(&self, env: &Env, path: &ast::Path, span: Span) -> ElabResult<ValBind> {
        let scope = self.resolve_qualifiers(env, path, span)?;
        match scope.vals.get(&path.name) {
            Some(b) => Ok(b.clone()),
            None => self.err(span, format!("unbound variable or constructor `{path}`")),
        }
    }

    // ----- expressions --------------------------------------------------------

    pub(crate) fn elab_exp(&mut self, env: &Env, exp: &ast::Exp) -> ElabResult<TExp> {
        let span = exp.span;
        match &exp.kind {
            ExpKind::Int(n) => Ok(TExp {
                kind: TExpKind::Int(*n),
                ty: Ty::int(),
            }),
            ExpKind::Real(x) => Ok(TExp {
                kind: TExpKind::Real(*x),
                ty: Ty::real(),
            }),
            ExpKind::Str(s) => Ok(TExp {
                kind: TExpKind::Str(s.clone()),
                ty: Ty::string(),
            }),
            ExpKind::Char(c) => Ok(TExp {
                kind: TExpKind::Char(*c),
                ty: Ty::char(),
            }),
            ExpKind::Var(path) => self.elab_var(env, path, span),
            ExpKind::Tuple(parts) => {
                let texps = parts
                    .iter()
                    .map(|p| self.elab_exp(env, p))
                    .collect::<ElabResult<Vec<_>>>()?;
                let fields: Vec<(Symbol, TExp)> = texps
                    .into_iter()
                    .enumerate()
                    .map(|(i, e)| (Symbol::numeric(i + 1), e))
                    .collect();
                let ty = Ty::Record(fields.iter().map(|(l, e)| (*l, e.ty.clone())).collect());
                Ok(TExp {
                    kind: TExpKind::Record(fields),
                    ty,
                })
            }
            ExpKind::Record(fields) => {
                let mut fs: Vec<(Symbol, TExp)> = Vec::new();
                for (lab, e) in fields {
                    if fs.iter().any(|(l, _)| l == lab) {
                        return self.err(span, format!("duplicate record label `{lab}`"));
                    }
                    fs.push((*lab, self.elab_exp(env, e)?));
                }
                fs.sort_by(|(a, _), (b, _)| sml_types::label_cmp(*a, *b));
                let ty = Ty::Record(fs.iter().map(|(l, e)| (*l, e.ty.clone())).collect());
                Ok(TExp {
                    kind: TExpKind::Record(fs),
                    ty,
                })
            }
            ExpKind::Selector(lab) => {
                // Eta-expand: fn v => #lab v, with a flexible-record
                // constraint on v's type.
                let rec_ty = self.fresh_ty();
                let out_ty = self.fresh_ty();
                self.flex
                    .push((rec_ty.clone(), vec![(*lab, out_ty.clone())], span));
                let v = self.vars.fresh(Symbol::intern("selectee"), rec_ty.clone());
                let arg = TExp {
                    kind: TExpKind::Var {
                        access: Access::Var(v),
                        scheme: Scheme::mono(rec_ty.clone()),
                        inst: Vec::new(),
                    },
                    ty: rec_ty.clone(),
                };
                let body = TExp {
                    kind: TExpKind::Select {
                        label: *lab,
                        arg: Box::new(arg),
                    },
                    ty: out_ty.clone(),
                };
                let rule = TRule {
                    pat: TPat {
                        kind: TPatKind::Var(v),
                        ty: rec_ty.clone(),
                    },
                    exp: body,
                };
                Ok(TExp {
                    kind: TExpKind::Fn {
                        rules: vec![rule],
                        arg_ty: rec_ty.clone(),
                    },
                    ty: Ty::arrow(rec_ty, out_ty),
                })
            }
            ExpKind::List(elems) => {
                let elem_ty = self.fresh_ty();
                let mut texps = Vec::new();
                for e in elems {
                    let te = self.elab_exp(env, e)?;
                    self.unify(e.span, &te.ty, &elem_ty)?;
                    texps.push(te);
                }
                Ok(self.build_list(env, texps, elem_ty, span)?)
            }
            ExpKind::App(f, a) => {
                // `#lab e` selects directly.
                if let ExpKind::Selector(lab) = &f.kind {
                    let arg = self.elab_exp(env, a)?;
                    let out_ty = self.fresh_ty();
                    self.flex
                        .push((arg.ty.clone(), vec![(*lab, out_ty.clone())], span));
                    return Ok(TExp {
                        kind: TExpKind::Select {
                            label: *lab,
                            arg: Box::new(arg),
                        },
                        ty: out_ty,
                    });
                }
                let tf = self.elab_exp(env, f)?;
                let ta = self.elab_exp(env, a)?;
                let res = self.fresh_ty();
                self.unify(span, &tf.ty, &Ty::arrow(ta.ty.clone(), res.clone()))?;
                Ok(TExp {
                    kind: TExpKind::App(Box::new(tf), Box::new(ta)),
                    ty: res,
                })
            }
            ExpKind::Fn(rules) => {
                let arg_ty = self.fresh_ty();
                let res_ty = self.fresh_ty();
                let trules = self.elab_rules(env, rules, &arg_ty, &res_ty, span)?;
                Ok(TExp {
                    kind: TExpKind::Fn {
                        rules: trules,
                        arg_ty: arg_ty.clone(),
                    },
                    ty: Ty::arrow(arg_ty, res_ty),
                })
            }
            ExpKind::Case(scrut, rules) => {
                let ts = self.elab_exp(env, scrut)?;
                let res_ty = self.fresh_ty();
                let arg_ty = ts.ty.clone();
                let trules = self.elab_rules(env, rules, &arg_ty, &res_ty, span)?;
                Ok(TExp {
                    kind: TExpKind::Case(Box::new(ts), trules),
                    ty: res_ty,
                })
            }
            ExpKind::If(c, t, e) => {
                let tc = self.elab_exp(env, c)?;
                self.unify(c.span, &tc.ty, &Ty::bool())?;
                let tt = self.elab_exp(env, t)?;
                let te = self.elab_exp(env, e)?;
                self.unify(span, &tt.ty, &te.ty)?;
                let ty = tt.ty.clone();
                Ok(TExp {
                    kind: TExpKind::If(Box::new(tc), Box::new(tt), Box::new(te)),
                    ty,
                })
            }
            ExpKind::Andalso(a, b) => {
                let ta = self.elab_exp(env, a)?;
                let tb = self.elab_exp(env, b)?;
                self.unify(a.span, &ta.ty, &Ty::bool())?;
                self.unify(b.span, &tb.ty, &Ty::bool())?;
                let false_exp = self.bool_const(env, false);
                Ok(TExp {
                    kind: TExpKind::If(Box::new(ta), Box::new(tb), Box::new(false_exp)),
                    ty: Ty::bool(),
                })
            }
            ExpKind::Orelse(a, b) => {
                let ta = self.elab_exp(env, a)?;
                let tb = self.elab_exp(env, b)?;
                self.unify(a.span, &ta.ty, &Ty::bool())?;
                self.unify(b.span, &tb.ty, &Ty::bool())?;
                let true_exp = self.bool_const(env, true);
                Ok(TExp {
                    kind: TExpKind::If(Box::new(ta), Box::new(true_exp), Box::new(tb)),
                    ty: Ty::bool(),
                })
            }
            ExpKind::While(c, b) => {
                let tc = self.elab_exp(env, c)?;
                self.unify(c.span, &tc.ty, &Ty::bool())?;
                let tb = self.elab_exp(env, b)?;
                Ok(TExp {
                    kind: TExpKind::While(Box::new(tc), Box::new(tb)),
                    ty: Ty::unit(),
                })
            }
            ExpKind::Seq(exps) => {
                let texps = exps
                    .iter()
                    .map(|e| self.elab_exp(env, e))
                    .collect::<ElabResult<Vec<_>>>()?;
                let ty = texps.last().expect("non-empty sequence").ty.clone();
                Ok(TExp {
                    kind: TExpKind::Seq(texps),
                    ty,
                })
            }
            ExpKind::Let(decs, body) => {
                let mut inner = env.clone();
                let mut tdecs = Vec::new();
                for d in decs {
                    self.elab_dec(&mut inner, d, &mut tdecs)?;
                }
                let tb = self.elab_exp(&inner, body)?;
                let ty = tb.ty.clone();
                Ok(TExp {
                    kind: TExpKind::Let(tdecs, Box::new(tb)),
                    ty,
                })
            }
            ExpKind::Raise(e) => {
                let te = self.elab_exp(env, e)?;
                self.unify(e.span, &te.ty, &Ty::exn())?;
                Ok(TExp {
                    kind: TExpKind::Raise(Box::new(te)),
                    ty: self.fresh_ty(),
                })
            }
            ExpKind::Handle(e, rules) => {
                let te = self.elab_exp(env, e)?;
                let res_ty = te.ty.clone();
                let trules = self.elab_rules(env, rules, &Ty::exn(), &res_ty, span)?;
                Ok(TExp {
                    kind: TExpKind::Handle(Box::new(te), trules),
                    ty: res_ty,
                })
            }
            ExpKind::Constraint(e, ty) => {
                let te = self.elab_exp(env, e)?;
                let want = self.elab_ty(env, ty)?;
                self.unify(span, &te.ty, &want)?;
                Ok(te)
            }
        }
    }

    fn elab_var(&mut self, env: &Env, path: &ast::Path, span: Span) -> ElabResult<TExp> {
        match self.lookup_val(env, path, span)? {
            ValBind::Var { access, scheme } => {
                let (ty, inst) = scheme.instantiate(self.level);
                Ok(TExp {
                    kind: TExpKind::Var {
                        access,
                        scheme,
                        inst,
                    },
                    ty,
                })
            }
            ValBind::Con(con) => {
                let (ty, inst) = con.scheme.instantiate(self.level);
                Ok(TExp {
                    kind: TExpKind::Con { con, inst },
                    ty,
                })
            }
            ValBind::Prim {
                prim,
                scheme,
                overload,
            } => {
                let (ty, inst) = scheme.instantiate(self.level);
                if let (Some(class), Some(first)) = (overload, inst.first()) {
                    self.overloads.push((first.clone(), class, span));
                }
                Ok(TExp {
                    kind: TExpKind::Prim { prim, inst },
                    ty,
                })
            }
        }
    }

    fn bool_const(&mut self, env: &Env, value: bool) -> TExp {
        let name = Symbol::intern(if value { "true" } else { "false" });
        match env.vals.get(&name) {
            Some(ValBind::Con(c)) => TExp {
                kind: TExpKind::Con {
                    con: c.clone(),
                    inst: Vec::new(),
                },
                ty: Ty::bool(),
            },
            _ => unreachable!("booleans are always in scope"),
        }
    }

    fn build_list(
        &mut self,
        env: &Env,
        elems: Vec<TExp>,
        elem_ty: Ty,
        span: Span,
    ) -> ElabResult<TExp> {
        let cons = match env.vals.get(&Symbol::intern("::")) {
            Some(ValBind::Con(c)) => c.clone(),
            _ => return self.err(span, "list constructor `::` is not in scope"),
        };
        let nil = match env.vals.get(&Symbol::intern("nil")) {
            Some(ValBind::Con(c)) => c.clone(),
            _ => return self.err(span, "list constructor `nil` is not in scope"),
        };
        let list_ty = Ty::list(elem_ty.clone());
        let mut acc = TExp {
            kind: TExpKind::Con {
                con: nil,
                inst: vec![elem_ty.clone()],
            },
            ty: list_ty.clone(),
        };
        for e in elems.into_iter().rev() {
            let pair_ty = Ty::pair(elem_ty.clone(), list_ty.clone());
            let pair = TExp {
                kind: TExpKind::Record(vec![(Symbol::numeric(1), e), (Symbol::numeric(2), acc)]),
                ty: pair_ty.clone(),
            };
            let conexp = TExp {
                kind: TExpKind::Con {
                    con: cons.clone(),
                    inst: vec![elem_ty.clone()],
                },
                ty: Ty::arrow(pair_ty, list_ty.clone()),
            };
            acc = TExp {
                kind: TExpKind::App(Box::new(conexp), Box::new(pair)),
                ty: list_ty.clone(),
            };
        }
        Ok(acc)
    }

    fn elab_rules(
        &mut self,
        env: &Env,
        rules: &[ast::Rule],
        arg_ty: &Ty,
        res_ty: &Ty,
        span: Span,
    ) -> ElabResult<Vec<TRule>> {
        let mut out = Vec::new();
        for rule in rules {
            let mut binds = Vec::new();
            let tpat = self.elab_pat(env, &rule.pat, &mut binds)?;
            self.unify(rule.pat.span, &tpat.ty, arg_ty)?;
            let mut inner = env.clone();
            for (name, var, ty) in &binds {
                inner.vals.insert(
                    *name,
                    ValBind::Var {
                        access: Access::Var(*var),
                        scheme: Scheme::mono(ty.clone()),
                    },
                );
            }
            let texp = self.elab_exp(&inner, &rule.exp)?;
            self.unify(span, &texp.ty, res_ty)?;
            out.push(TRule {
                pat: tpat,
                exp: texp,
            });
        }
        Ok(out)
    }

    // ----- patterns -------------------------------------------------------------

    pub(crate) fn elab_pat(
        &mut self,
        env: &Env,
        pat: &ast::Pat,
        binds: &mut Vec<(Symbol, VarId, Ty)>,
    ) -> ElabResult<TPat> {
        let span = pat.span;
        match &pat.kind {
            PatKind::Wild => {
                let ty = self.fresh_ty();
                Ok(TPat {
                    kind: TPatKind::Wild,
                    ty,
                })
            }
            PatKind::Int(n) => Ok(TPat {
                kind: TPatKind::Int(*n),
                ty: Ty::int(),
            }),
            PatKind::Str(s) => Ok(TPat {
                kind: TPatKind::Str(s.clone()),
                ty: Ty::string(),
            }),
            PatKind::Char(c) => Ok(TPat {
                kind: TPatKind::Char(*c),
                ty: Ty::char(),
            }),
            PatKind::Var(path) => {
                // A name that resolves to a constructor is a constant
                // constructor pattern; otherwise it binds a variable.
                let con = if path.is_simple() {
                    match env.vals.get(&path.name) {
                        Some(ValBind::Con(c)) => Some(c.clone()),
                        _ => None,
                    }
                } else {
                    match self.lookup_val(env, path, span)? {
                        ValBind::Con(c) => Some(c),
                        _ => {
                            return self
                                .err(span, format!("`{path}` in pattern is not a constructor"))
                        }
                    }
                };
                match con {
                    Some(c) => {
                        if c.has_payload() {
                            return self
                                .err(span, format!("constructor `{path}` expects an argument"));
                        }
                        let (ty, inst) = c.scheme.instantiate(self.level);
                        Ok(TPat {
                            kind: TPatKind::Con {
                                con: c,
                                inst,
                                arg: None,
                            },
                            ty,
                        })
                    }
                    None => {
                        if binds.iter().any(|(n, _, _)| *n == path.name) {
                            return self.err(
                                span,
                                format!("duplicate variable `{}` in pattern", path.name),
                            );
                        }
                        let ty = self.fresh_ty();
                        let var = self.vars.fresh(path.name, ty.clone());
                        binds.push((path.name, var, ty.clone()));
                        Ok(TPat {
                            kind: TPatKind::Var(var),
                            ty,
                        })
                    }
                }
            }
            PatKind::Con(path, arg) => {
                let con = match self.lookup_val(env, path, span)? {
                    ValBind::Con(c) => c,
                    _ => {
                        return self.err(span, format!("`{path}` in pattern is not a constructor"))
                    }
                };
                if !con.has_payload() {
                    return self.err(
                        span,
                        format!("constant constructor `{path}` applied in pattern"),
                    );
                }
                let (conty, inst) = con.scheme.instantiate(self.level);
                let Ty::Arrow(payload_ty, result_ty) = conty else {
                    unreachable!("has_payload checked the arrow")
                };
                let targ = self.elab_pat(env, arg, binds)?;
                self.unify(span, &targ.ty, &payload_ty)?;
                Ok(TPat {
                    kind: TPatKind::Con {
                        con,
                        inst,
                        arg: Some(Box::new(targ)),
                    },
                    ty: *result_ty,
                })
            }
            PatKind::Tuple(parts) => {
                let tparts = parts
                    .iter()
                    .map(|p| self.elab_pat(env, p, binds))
                    .collect::<ElabResult<Vec<_>>>()?;
                let fields: Vec<(Symbol, TPat)> = tparts
                    .into_iter()
                    .enumerate()
                    .map(|(i, p)| (Symbol::numeric(i + 1), p))
                    .collect();
                let ty = Ty::Record(fields.iter().map(|(l, p)| (*l, p.ty.clone())).collect());
                Ok(TPat {
                    kind: TPatKind::Record {
                        fields,
                        flexible: false,
                    },
                    ty,
                })
            }
            PatKind::Record { fields, flexible } => {
                let mut tf: Vec<(Symbol, TPat)> = Vec::new();
                for (lab, p) in fields {
                    if tf.iter().any(|(l, _)| l == lab) {
                        return self.err(span, format!("duplicate record label `{lab}`"));
                    }
                    tf.push((*lab, self.elab_pat(env, p, binds)?));
                }
                tf.sort_by(|(a, _), (b, _)| sml_types::label_cmp(*a, *b));
                if *flexible {
                    let ty = self.fresh_ty();
                    self.flex.push((
                        ty.clone(),
                        tf.iter().map(|(l, p)| (*l, p.ty.clone())).collect(),
                        span,
                    ));
                    Ok(TPat {
                        kind: TPatKind::Record {
                            fields: tf,
                            flexible: true,
                        },
                        ty,
                    })
                } else {
                    let ty = Ty::Record(tf.iter().map(|(l, p)| (*l, p.ty.clone())).collect());
                    Ok(TPat {
                        kind: TPatKind::Record {
                            fields: tf,
                            flexible: false,
                        },
                        ty,
                    })
                }
            }
            PatKind::List(parts) => {
                let elem_ty = self.fresh_ty();
                let cons = match env.vals.get(&Symbol::intern("::")) {
                    Some(ValBind::Con(c)) => c.clone(),
                    _ => return self.err(span, "`::` is not in scope"),
                };
                let nil = match env.vals.get(&Symbol::intern("nil")) {
                    Some(ValBind::Con(c)) => c.clone(),
                    _ => return self.err(span, "`nil` is not in scope"),
                };
                let list_ty = Ty::list(elem_ty.clone());
                let mut acc = TPat {
                    kind: TPatKind::Con {
                        con: nil,
                        inst: vec![elem_ty.clone()],
                        arg: None,
                    },
                    ty: list_ty.clone(),
                };
                for p in parts.iter().rev() {
                    let tp = self.elab_pat(env, p, binds)?;
                    self.unify(p.span, &tp.ty, &elem_ty)?;
                    let pair = TPat {
                        kind: TPatKind::Record {
                            fields: vec![(Symbol::numeric(1), tp), (Symbol::numeric(2), acc)],
                            flexible: false,
                        },
                        ty: Ty::pair(elem_ty.clone(), list_ty.clone()),
                    };
                    acc = TPat {
                        kind: TPatKind::Con {
                            con: cons.clone(),
                            inst: vec![elem_ty.clone()],
                            arg: Some(Box::new(pair)),
                        },
                        ty: list_ty.clone(),
                    };
                }
                Ok(acc)
            }
            PatKind::As(name, inner) => {
                if binds.iter().any(|(n, _, _)| n == name) {
                    return self.err(span, format!("duplicate variable `{name}` in pattern"));
                }
                let tp = self.elab_pat(env, inner, binds)?;
                let var = self.vars.fresh(*name, tp.ty.clone());
                binds.push((*name, var, tp.ty.clone()));
                let ty = tp.ty.clone();
                Ok(TPat {
                    kind: TPatKind::As(var, Box::new(tp)),
                    ty,
                })
            }
            PatKind::Constraint(inner, ty) => {
                let tp = self.elab_pat(env, inner, binds)?;
                let want = self.elab_ty(env, ty)?;
                self.unify(span, &tp.ty, &want)?;
                Ok(tp)
            }
        }
    }

    // ----- declarations -----------------------------------------------------------

    pub(crate) fn elab_dec(
        &mut self,
        env: &mut Env,
        dec: &ast::Dec,
        out: &mut Vec<TDec>,
    ) -> ElabResult<()> {
        let mut delta = Env::new();
        self.elab_dec_delta(env, dec, out, &mut delta)
    }

    /// Elaborates one declaration, extending both `env` and `delta` with
    /// its bindings (`delta` is used by structure elaboration to compute
    /// exports).
    pub(crate) fn elab_dec_delta(
        &mut self,
        env: &mut Env,
        dec: &ast::Dec,
        out: &mut Vec<TDec>,
        delta: &mut Env,
    ) -> ElabResult<()> {
        let span = dec.span;
        match &dec.kind {
            ast::DecKind::Val { tyvars, pat, exp } => {
                let ov_mark = self.overloads.len();
                let flex_mark = self.flex.len();
                self.push_tyvar_scope(tyvars);
                self.level += 1;
                let texp = self.elab_exp(env, exp);
                let result = texp.and_then(|texp| {
                    let mut binds = Vec::new();
                    let tpat = self.elab_pat(env, pat, &mut binds)?;
                    self.unify(span, &tpat.ty, &texp.ty)?;
                    Ok((texp, tpat, binds))
                });
                self.level -= 1;
                self.tyvar_scopes.pop();
                let (texp, tpat, binds) = result?;
                self.resolve_pending(ov_mark, flex_mark, span)?;

                let single_var = matches!(tpat.kind, TPatKind::Var(_));
                if single_var && is_nonexpansive(env, exp) {
                    let TPatKind::Var(var) = tpat.kind else {
                        unreachable!()
                    };
                    let scheme = sml_types::generalize(&texp.ty, self.level);
                    self.vars.info_mut(var).scheme = scheme.clone();
                    let (name, _, _) = binds[0];
                    let bind = ValBind::Var {
                        access: Access::Var(var),
                        scheme,
                    };
                    env.vals.insert(name, bind.clone());
                    delta.vals.insert(name, bind);
                    out.push(TDec::PolyVal { var, exp: texp });
                } else {
                    // Expansive or pattern binding: keep it monomorphic by
                    // demoting inner levels.
                    demote(&texp.ty, self.level);
                    for (name, var, ty) in &binds {
                        demote(ty, self.level);
                        let bind = ValBind::Var {
                            access: Access::Var(*var),
                            scheme: Scheme::mono(ty.clone()),
                        };
                        env.vals.insert(*name, bind.clone());
                        delta.vals.insert(*name, bind);
                    }
                    out.push(TDec::Val {
                        pat: tpat,
                        exp: texp,
                    });
                }
                Ok(())
            }
            ast::DecKind::Fun { tyvars, funs } => {
                let ov_mark = self.overloads.len();
                let flex_mark = self.flex.len();
                self.push_tyvar_scope(tyvars);
                self.level += 1;
                // Bind all the functions monomorphically for recursion.
                let mut fvars = Vec::new();
                let mut ftys = Vec::new();
                let mut inner = env.clone();
                for f in funs {
                    let ty = self.fresh_ty();
                    let var = self.vars.fresh(f.name, ty.clone());
                    inner.vals.insert(
                        f.name,
                        ValBind::Var {
                            access: Access::Var(var),
                            scheme: Scheme::mono(ty.clone()),
                        },
                    );
                    fvars.push(var);
                    ftys.push(ty);
                }
                let bodies: ElabResult<Vec<TExp>> = funs
                    .iter()
                    .zip(&ftys)
                    .map(|(f, fty)| self.elab_funbind(&inner, f, fty, span))
                    .collect();
                self.level -= 1;
                self.tyvar_scopes.pop();
                let bodies = bodies?;
                self.resolve_pending(ov_mark, flex_mark, span)?;

                let schemes = generalize_many(&ftys, self.level);
                let mut exps = bodies;
                for ((f, var), scheme) in funs.iter().zip(&fvars).zip(&schemes) {
                    self.vars.info_mut(*var).scheme = scheme.clone();
                    let bind = ValBind::Var {
                        access: Access::Var(*var),
                        scheme: scheme.clone(),
                    };
                    env.vals.insert(f.name, bind.clone());
                    delta.vals.insert(f.name, bind);
                }
                // Recursive occurrences were annotated before
                // generalization; give them the identity instantiation.
                if schemes.first().map_or(0, |s| s.arity) > 0 {
                    let identity = schemes[0].identity_instance();
                    for e in &mut exps {
                        fixup_recursive_uses(e, &fvars, &identity);
                    }
                }
                out.push(TDec::Fun { vars: fvars, exps });
                Ok(())
            }
            ast::DecKind::Type(binds) => {
                for b in binds {
                    let tyfun = self.elab_tyfun(env, &b.tyvars, &b.ty)?;
                    let bind = TyconBind::Abbrev(tyfun);
                    env.tycons.insert(b.name, bind.clone());
                    delta.tycons.insert(b.name, bind);
                }
                Ok(())
            }
            ast::DecKind::Datatype(binds) => {
                let cons = self.elab_datatypes(env, binds)?;
                for (name, bind) in cons.tycons {
                    env.tycons.insert(name, bind.clone());
                    delta.tycons.insert(name, bind);
                }
                for (name, ci) in cons.cons {
                    env.vals.insert(name, ValBind::Con(ci.clone()));
                    delta.vals.insert(name, ValBind::Con(ci));
                }
                Ok(())
            }
            ast::DecKind::Exception(binds) => {
                for b in binds {
                    let payload = match &b.ty {
                        Some(t) => Some(self.elab_ty(env, t)?),
                        None => None,
                    };
                    let var = self.vars.fresh(b.name, Ty::exn());
                    let (rep, scheme) = match &payload {
                        Some(p) => (
                            sml_types::ConRep::Exn,
                            Scheme::mono(Ty::arrow(p.clone(), Ty::exn())),
                        ),
                        None => (sml_types::ConRep::ExnConst, Scheme::mono(Ty::exn())),
                    };
                    let ci = ConInfo {
                        name: b.name,
                        dt_stamp: Tycon::exn().stamp,
                        index: 0,
                        span: usize::MAX,
                        rep,
                        scheme,
                        origin: None,
                        tag: Some(Access::Var(var)),
                    };
                    out.push(TDec::Exception { var, name: b.name });
                    env.vals.insert(b.name, ValBind::Con(ci.clone()));
                    delta.vals.insert(b.name, ValBind::Con(ci));
                }
                Ok(())
            }
            ast::DecKind::Structure(binds) => {
                for b in binds {
                    self.elab_strbind(env, b, out, delta)?;
                }
                Ok(())
            }
            ast::DecKind::Signature(binds) => {
                for b in binds {
                    let def = SigDef {
                        ast: std::rc::Rc::new(b.def.clone()),
                        env: env.clone(),
                    };
                    env.sigs.insert(b.name, def.clone());
                    delta.sigs.insert(b.name, def);
                }
                Ok(())
            }
            ast::DecKind::Functor(binds) => {
                for b in binds {
                    self.elab_fctbind(env, b, out, delta)?;
                }
                Ok(())
            }
        }
    }

    fn push_tyvar_scope(&mut self, tyvars: &[Symbol]) {
        let mut scope = HashMap::new();
        for tv in tyvars {
            let eq = tv.as_str().starts_with("''");
            scope.insert(*tv, Ty::Var(TvRef::fresh_eq(self.level + 1, eq)));
        }
        self.tyvar_scopes.push(scope);
    }

    /// Elaborates a `type` binding into a type function.
    pub(crate) fn elab_tyfun(
        &mut self,
        env: &Env,
        tyvars: &[Symbol],
        body: &ast::Ty,
    ) -> ElabResult<TyFun> {
        let mut scope = HashMap::new();
        let mut params = Vec::new();
        for tv in tyvars {
            let cell = TvRef::fresh(self.level);
            scope.insert(*tv, Ty::Var(cell.clone()));
            params.push(cell);
        }
        self.tyvar_scopes.push(scope);
        let t = self.elab_ty(env, body);
        self.tyvar_scopes.pop();
        let t = t?;
        for (i, cell) in params.iter().enumerate() {
            *cell.0.borrow_mut() = Tv::Gen(i as u32);
        }
        Ok(TyFun { params, body: t })
    }

    /// Result of elaborating a datatype batch.
    fn elab_datatypes(
        &mut self,
        env: &Env,
        binds: &[ast::DataBind],
    ) -> ElabResult<DatatypeAdditions> {
        // Phase 1: create the tycons so payloads can be recursive.
        let mut scratch = env.clone();
        let mut tycons = Vec::new();
        for b in binds {
            let tycon = Tycon::fresh_data(b.name, b.tyvars.len(), EqProp::IfArgs);
            scratch
                .tycons
                .insert(b.name, TyconBind::Tycon(tycon.clone()));
            tycons.push(tycon);
        }
        // Phase 2: elaborate payloads.
        let mut batch = Vec::new();
        let mut all_params = Vec::new();
        for (b, tycon) in binds.iter().zip(&tycons) {
            let mut scope = HashMap::new();
            let mut params = Vec::new();
            for tv in &b.tyvars {
                let cell = TvRef::fresh(self.level);
                scope.insert(*tv, Ty::Var(cell.clone()));
                params.push(cell);
            }
            self.tyvar_scopes.push(scope);
            let mut cons = Vec::new();
            for (cname, cty) in &b.cons {
                let payload = match cty {
                    Some(t) => Some(self.elab_ty(&scratch, t)?),
                    None => None,
                };
                cons.push((*cname, payload));
            }
            self.tyvar_scopes.pop();
            for (i, cell) in params.iter().enumerate() {
                *cell.0.borrow_mut() = Tv::Gen(i as u32);
            }
            all_params.push(params.clone());
            batch.push((tycon.clone(), params, cons));
        }
        self.reg.register_batch(batch);
        // Phase 3: build constructor infos.
        let mut additions = DatatypeAdditions::default();
        for (b, tycon) in binds.iter().zip(&tycons) {
            additions
                .tycons
                .push((b.name, TyconBind::Tycon(tycon.clone())));
            let def = self
                .reg
                .datatype(tycon.stamp)
                .expect("just registered")
                .clone();
            for con in &def.cons {
                let args: Vec<Ty> = def.params.iter().map(|c| Ty::Var(c.clone())).collect();
                let dt_ty = Ty::Con(tycon.clone(), args);
                let body = match &con.payload {
                    Some(p) => Ty::arrow(p.clone(), dt_ty),
                    None => dt_ty,
                };
                let scheme = Scheme {
                    arity: def.params.len(),
                    eq_flags: vec![false; def.params.len()],
                    cells: def.params.clone(),
                    body,
                };
                additions.cons.push((
                    con.name,
                    ConInfo {
                        name: con.name,
                        dt_stamp: tycon.stamp,
                        index: con.index,
                        span: def.cons.len(),
                        rep: con.rep,
                        scheme,
                        origin: None,
                        tag: None,
                    },
                ));
            }
        }
        Ok(additions)
    }

    /// Elaborates one clausal function binding into a (possibly curried)
    /// `Fn` expression and unifies its type with `fty`.
    fn elab_funbind(
        &mut self,
        env: &Env,
        f: &ast::FunBind,
        fty: &Ty,
        span: Span,
    ) -> ElabResult<TExp> {
        let n_args = f.clauses[0].pats.len();
        if f.clauses.iter().any(|c| c.pats.len() != n_args) {
            return self.err(
                span,
                format!("clauses of `{}` differ in argument count", f.name),
            );
        }
        let arg_tys: Vec<Ty> = (0..n_args).map(|_| self.fresh_ty()).collect();
        let res_ty = self.fresh_ty();
        let mut trules = Vec::new();
        for clause in &f.clauses {
            let mut binds = Vec::new();
            let mut tpats = Vec::new();
            for (p, at) in clause.pats.iter().zip(&arg_tys) {
                let tp = self.elab_pat(env, p, &mut binds)?;
                self.unify(p.span, &tp.ty, at)?;
                tpats.push(tp);
            }
            let mut inner = env.clone();
            for (name, var, ty) in &binds {
                inner.vals.insert(
                    *name,
                    ValBind::Var {
                        access: Access::Var(*var),
                        scheme: Scheme::mono(ty.clone()),
                    },
                );
            }
            let body = self.elab_exp(&inner, &clause.body)?;
            if let Some(rt) = &clause.ret_ty {
                let want = self.elab_ty(env, rt)?;
                self.unify(span, &body.ty, &want)?;
            }
            self.unify(span, &body.ty, &res_ty)?;
            // For multi-argument clauses, pack patterns into a tuple to be
            // matched against the tuple of parameters.
            let pat = if n_args == 1 {
                tpats.pop().expect("one pattern")
            } else {
                let fields: Vec<(Symbol, TPat)> = tpats
                    .into_iter()
                    .enumerate()
                    .map(|(i, p)| (Symbol::numeric(i + 1), p))
                    .collect();
                let ty = Ty::Record(fields.iter().map(|(l, p)| (*l, p.ty.clone())).collect());
                TPat {
                    kind: TPatKind::Record {
                        fields,
                        flexible: false,
                    },
                    ty,
                }
            };
            trules.push(TRule { pat, exp: body });
        }

        let exp = if n_args == 1 {
            TExp {
                kind: TExpKind::Fn {
                    rules: trules,
                    arg_ty: arg_tys[0].clone(),
                },
                ty: Ty::arrow(arg_tys[0].clone(), res_ty.clone()),
            }
        } else {
            // fun f p1 p2 ... = e  becomes
            // fn v1 => fn v2 => ... => case (v1, ..., vn) of (p1, ..., pn) => e
            let params: Vec<VarId> = arg_tys
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    self.vars
                        .fresh(Symbol::intern(&format!("arg{i}")), t.clone())
                })
                .collect();
            let tuple_ty = Ty::tuple(arg_tys.clone());
            let tuple = TExp {
                kind: TExpKind::Record(
                    params
                        .iter()
                        .zip(&arg_tys)
                        .enumerate()
                        .map(|(i, (v, t))| {
                            (
                                Symbol::numeric(i + 1),
                                TExp {
                                    kind: TExpKind::Var {
                                        access: Access::Var(*v),
                                        scheme: Scheme::mono(t.clone()),
                                        inst: Vec::new(),
                                    },
                                    ty: t.clone(),
                                },
                            )
                        })
                        .collect(),
                ),
                ty: tuple_ty.clone(),
            };
            let mut body = TExp {
                kind: TExpKind::Case(Box::new(tuple), trules),
                ty: res_ty.clone(),
            };
            let mut ty = res_ty.clone();
            for (v, at) in params.iter().zip(&arg_tys).rev() {
                ty = Ty::arrow(at.clone(), ty);
                body = TExp {
                    kind: TExpKind::Fn {
                        rules: vec![TRule {
                            pat: TPat {
                                kind: TPatKind::Var(*v),
                                ty: at.clone(),
                            },
                            exp: body,
                        }],
                        arg_ty: at.clone(),
                    },
                    ty: ty.clone(),
                };
            }
            body
        };
        self.unify(span, &exp.ty, fty)?;
        Ok(exp)
    }
}

/// Tycon and constructor additions from a datatype declaration.
#[derive(Default)]
struct DatatypeAdditions {
    tycons: Vec<(Symbol, TyconBind)>,
    cons: Vec<(Symbol, ConInfo)>,
}

fn to_elab(r: UnifyResult, span: Span) -> ElabResult<()> {
    r.map_err(|e| ElabError::new(span, e.to_string()))
}

/// Lowers every unbound variable in `ty` deeper than `level` to `level`,
/// preventing generalization (value restriction).
fn demote(ty: &Ty, level: u32) {
    match ty.head() {
        Ty::Var(v) => {
            let mut cell = v.0.borrow_mut();
            if let Tv::Unbound { level: l, .. } = &mut *cell {
                if *l > level {
                    *l = level;
                }
            }
        }
        Ty::Con(_, args) => args.iter().for_each(|a| demote(a, level)),
        Ty::Record(fs) => fs.iter().for_each(|(_, a)| demote(a, level)),
        Ty::Arrow(a, b) => {
            demote(&a, level);
            demote(&b, level);
        }
    }
}

/// SML's syntactic nonexpansiveness test (value restriction).
fn is_nonexpansive(env: &Env, exp: &ast::Exp) -> bool {
    match &exp.kind {
        ExpKind::Int(_)
        | ExpKind::Real(_)
        | ExpKind::Str(_)
        | ExpKind::Char(_)
        | ExpKind::Var(_)
        | ExpKind::Fn(_)
        | ExpKind::Selector(_) => true,
        ExpKind::Tuple(es) | ExpKind::List(es) => es.iter().all(|e| is_nonexpansive(env, e)),
        ExpKind::Record(fs) => fs.iter().all(|(_, e)| is_nonexpansive(env, e)),
        ExpKind::Constraint(e, _) => is_nonexpansive(env, e),
        ExpKind::App(f, a) => {
            // Constructor applications (other than `ref`) are values.
            match &f.kind {
                ExpKind::Var(p) => {
                    let is_con = if p.is_simple() {
                        matches!(env.vals.get(&p.name), Some(ValBind::Con(_)))
                    } else {
                        false
                    };
                    is_con && is_nonexpansive(env, a)
                }
                _ => false,
            }
        }
        _ => false,
    }
}

/// After generalization, recursive occurrences of the newly generalized
/// functions still carry empty instantiation vectors; rewrite them to the
/// identity instantiation.
pub(crate) fn fixup_recursive_uses(exp: &mut TExp, vars: &[VarId], identity: &[Ty]) {
    let fix = |e: &mut TExp| fixup_recursive_uses(e, vars, identity);
    match &mut exp.kind {
        TExpKind::Var { access, inst, .. } => {
            if inst.is_empty() && access.is_local() && vars.contains(&access.root()) {
                *inst = identity.to_vec();
            }
        }
        TExpKind::Int(_)
        | TExpKind::Real(_)
        | TExpKind::Str(_)
        | TExpKind::Char(_)
        | TExpKind::Prim { .. }
        | TExpKind::Con { .. } => {}
        TExpKind::Record(fs) => fs.iter_mut().for_each(|(_, e)| fix(e)),
        TExpKind::Select { arg, .. } => fix(arg),
        TExpKind::App(f, a) => {
            fix(f);
            fix(a);
        }
        TExpKind::Fn { rules, .. } => rules.iter_mut().for_each(|r| fix(&mut r.exp)),
        TExpKind::Case(s, rules) => {
            fix(s);
            rules.iter_mut().for_each(|r| fix(&mut r.exp));
        }
        TExpKind::If(a, b, c) => {
            fix(a);
            fix(b);
            fix(c);
        }
        TExpKind::While(a, b) => {
            fix(a);
            fix(b);
        }
        TExpKind::Seq(es) => es.iter_mut().for_each(fix),
        TExpKind::Let(decs, body) => {
            for d in decs {
                fixup_dec(d, vars, identity);
            }
            fix(body);
        }
        TExpKind::Raise(e) => fix(e),
        TExpKind::Handle(e, rules) => {
            fix(e);
            rules.iter_mut().for_each(|r| fix(&mut r.exp));
        }
    }
}

fn fixup_dec(dec: &mut TDec, vars: &[VarId], identity: &[Ty]) {
    match dec {
        TDec::Val { exp, .. } | TDec::PolyVal { exp, .. } => {
            fixup_recursive_uses(exp, vars, identity)
        }
        TDec::Fun { exps, .. } => exps
            .iter_mut()
            .for_each(|e| fixup_recursive_uses(e, vars, identity)),
        TDec::Exception { .. } => {}
        TDec::Structure { def, .. } => fixup_strexp(def, vars, identity),
        TDec::Functor { body, .. } => fixup_strexp(body, vars, identity),
    }
}

fn fixup_strexp(se: &mut TStrExp, vars: &[VarId], identity: &[Ty]) {
    match se {
        TStrExp::Struct { decs, .. } => decs.iter_mut().for_each(|d| fixup_dec(d, vars, identity)),
        TStrExp::Access(_) => {}
        TStrExp::Thin { base, .. } => fixup_strexp(base, vars, identity),
        TStrExp::FctApp { arg, .. } => fixup_strexp(arg, vars, identity),
    }
}
