//! Typed abstract syntax — the output of elaboration.
//!
//! This is the paper's "Abstract Syntax (Absyn)" (Figure 3): every
//! expression carries its type, every occurrence of a polymorphic
//! variable, primitive, or data constructor carries its **type
//! instantiation** (paper §3), and every module-level abstraction or
//! instantiation is recorded as a *thinning* with from/to schemes so the
//! lambda translator can insert coercions (paper §4).

use sml_ast::Symbol;
use sml_types::{ConRep, Scheme, Stamp, Ty};
use std::fmt;

/// A unique identifier for a term variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// How to reach a value at runtime: a local variable, possibly through a
/// chain of structure-record selections.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Access {
    /// A directly bound variable.
    Var(VarId),
    /// Field `index` of the structure record reached by the inner access.
    Select(Box<Access>, usize),
}

impl Access {
    /// The root variable of the access path.
    pub fn root(&self) -> VarId {
        match self {
            Access::Var(v) => *v,
            Access::Select(a, _) => a.root(),
        }
    }

    /// True if this is a plain local variable (MTD only applies to these).
    pub fn is_local(&self) -> bool {
        matches!(self, Access::Var(_))
    }
}

/// Side table of all term variables created during elaboration.
#[derive(Debug, Default)]
pub struct VarTable {
    pub(crate) infos: Vec<VarInfo>,
}

/// Everything known about one term variable.
#[derive(Debug, Clone)]
pub struct VarInfo {
    /// Source name (or a synthesized name).
    pub name: Symbol,
    /// The variable's type scheme. For monomorphic variables the scheme
    /// has arity 0.
    pub scheme: Scheme,
    /// True if the variable escapes through a structure export or
    /// module boundary; such variables are exempt from MTD (their
    /// recorded boundary schemes must stay valid).
    pub exported: bool,
}

impl VarTable {
    /// Creates an empty table.
    pub fn new() -> VarTable {
        VarTable::default()
    }

    /// Allocates a fresh variable with a monomorphic placeholder scheme.
    pub fn fresh(&mut self, name: Symbol, ty: Ty) -> VarId {
        let id = VarId(self.infos.len() as u32);
        self.infos.push(VarInfo {
            name,
            scheme: Scheme::mono(ty),
            exported: false,
        });
        id
    }

    /// The info record for `v`.
    pub fn info(&self, v: VarId) -> &VarInfo {
        &self.infos[v.0 as usize]
    }

    /// Mutable info record for `v`.
    pub fn info_mut(&mut self, v: VarId) -> &mut VarInfo {
        &mut self.infos[v.0 as usize]
    }

    /// The variable's scheme.
    pub fn scheme(&self, v: VarId) -> &Scheme {
        &self.infos[v.0 as usize].scheme
    }

    /// Number of variables allocated.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// True if no variables exist.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }
}

/// Compiler primitives. Overloaded source operators elaborate to the `O*`
/// pseudo-primitives carrying their overload variable in the instantiation
/// vector; the lambda translator resolves them to concrete operations by
/// inspecting the (post-MTD, zonked) instantiation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum Prim {
    // Overloaded pseudo-prims (resolved at translation).
    OAdd,
    OSub,
    OMul,
    ONeg,
    OLt,
    OLe,
    OGt,
    OGe,
    // Integer arithmetic (tagged 31-bit; Div/Mod raise `Div` on zero).
    IAdd,
    ISub,
    IMul,
    IDiv,
    IMod,
    INeg,
    ILt,
    ILe,
    IGt,
    IGe,
    IEq,
    INe,
    // Real arithmetic.
    FAdd,
    FSub,
    FMul,
    FDiv,
    FNeg,
    FLt,
    FLe,
    FGt,
    FGe,
    FEq,
    FNe,
    FSqrt,
    FSin,
    FCos,
    FAtan,
    FExp,
    FLn,
    Floor,
    IntToReal,
    // Strings (chars are tagged ints at runtime).
    StrSize,
    StrSub,
    StrCat,
    StrEq,
    StrLt,
    StrLe,
    StrGt,
    StrGe,
    Ord,
    Chr,
    IntToString,
    RealToString,
    // Polymorphic (structural) equality; specialized when monomorphic.
    PolyEq,
    PolyNe,
    // References; `Assign` becomes unboxed update when the payload type
    // is unboxed (paper §4.4).
    MakeRef,
    Deref,
    Assign,
    // Arrays.
    ArrayMake,
    ArraySub,
    ArrayUpdate,
    ArrayLength,
    // First-class continuations.
    Callcc,
    Throw,
    // Output (appends to the VM's output buffer).
    Print,
}

/// Static description of a data or exception constructor occurrence.
#[derive(Clone, Debug)]
pub struct ConInfo {
    /// Constructor name.
    pub name: Symbol,
    /// Stamp of the owning datatype (used by match compilation to group
    /// constructors; exception constructors use the `exn` tycon stamp).
    pub dt_stamp: Stamp,
    /// Declaration index within the datatype.
    pub index: usize,
    /// Total number of constructors in the datatype (`usize::MAX` for
    /// exceptions, which are never exhaustive).
    pub span: usize,
    /// Runtime representation.
    pub rep: ConRep,
    /// The constructor's type scheme as *visible* at this occurrence:
    /// `payload -> dt` for value-carrying, `dt` for constants.
    pub scheme: Scheme,
    /// The constructor's *origin* scheme when it differs from the view —
    /// i.e. when the constructor is seen through a module abstraction.
    /// The lambda translator coerces payloads between origin and view
    /// representations (paper §4.3: "recording the origin type with
    /// T.FOO").
    pub origin: Option<Scheme>,
    /// For exception constructors: where the runtime exception tag lives.
    pub tag: Option<Access>,
}

impl ConInfo {
    /// The scheme governing the runtime representation (origin if
    /// present, else the view scheme).
    pub fn rep_scheme(&self) -> &Scheme {
        self.origin.as_ref().unwrap_or(&self.scheme)
    }

    /// True if this constructor carries a payload.
    pub fn has_payload(&self) -> bool {
        matches!(self.scheme.body, Ty::Arrow(..))
    }
}

/// A typed expression.
#[derive(Clone, Debug)]
pub struct TExp {
    /// The expression form.
    pub kind: TExpKind,
    /// The expression's type (may contain unresolved links; zonk to
    /// normalize).
    pub ty: Ty,
}

/// Typed expression forms.
#[derive(Clone, Debug)]
pub enum TExpKind {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal.
    Str(String),
    /// Character literal (a tagged int at runtime).
    Char(u8),
    /// Variable occurrence with its type instantiation (one entry per
    /// generic variable of the variable's scheme).
    Var {
        /// How to reach the value.
        access: Access,
        /// The variable's scheme (shares cells with the defining
        /// declaration, so MTD re-linking is visible here too). The
        /// translator derives the storage representation from it.
        scheme: Scheme,
        /// Instantiation of the variable's scheme at this use.
        inst: Vec<Ty>,
    },
    /// Primitive occurrence.
    Prim {
        /// Which primitive.
        prim: Prim,
        /// Instantiation of the primitive's scheme.
        inst: Vec<Ty>,
    },
    /// Constructor occurrence (as a value; may be the head of an `App`).
    Con {
        /// The constructor.
        con: ConInfo,
        /// Instantiation of the constructor's scheme.
        inst: Vec<Ty>,
    },
    /// Record/tuple construction; fields in canonical label order.
    Record(Vec<(Symbol, TExp)>),
    /// Field selection; the index is resolved at translation time from
    /// the zonked record type of `arg`.
    Select {
        /// Field label.
        label: Symbol,
        /// The record expression.
        arg: Box<TExp>,
    },
    /// Application.
    App(Box<TExp>, Box<TExp>),
    /// Function with pattern-matching rules (compiled to decision trees
    /// by the lambda translator).
    Fn {
        /// The match rules.
        rules: Vec<TRule>,
        /// Argument type.
        arg_ty: Ty,
    },
    /// `case` expression.
    Case(Box<TExp>, Vec<TRule>),
    /// Two-way conditional.
    If(Box<TExp>, Box<TExp>, Box<TExp>),
    /// `while` loop (unit-valued).
    While(Box<TExp>, Box<TExp>),
    /// Sequencing; value of the last expression.
    Seq(Vec<TExp>),
    /// Local declarations.
    Let(Vec<TDec>, Box<TExp>),
    /// `raise`.
    Raise(Box<TExp>),
    /// `handle`.
    Handle(Box<TExp>, Vec<TRule>),
}

impl TExp {
    /// Builds a unit expression.
    pub fn unit() -> TExp {
        TExp {
            kind: TExpKind::Record(Vec::new()),
            ty: Ty::unit(),
        }
    }
}

/// A typed match rule.
#[derive(Clone, Debug)]
pub struct TRule {
    /// The pattern.
    pub pat: TPat,
    /// The right-hand side.
    pub exp: TExp,
}

/// A typed pattern.
#[derive(Clone, Debug)]
pub struct TPat {
    /// The pattern form.
    pub kind: TPatKind,
    /// The pattern's type.
    pub ty: Ty,
}

/// Typed pattern forms.
///
/// `Con` is much larger than the other variants; patterns are built once
/// during elaboration and traversed, never stored in bulk, so boxing it
/// would cost more indirection than the size difference saves.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
pub enum TPatKind {
    /// Wildcard.
    Wild,
    /// Variable binding.
    Var(VarId),
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Character literal.
    Char(u8),
    /// Constructor pattern, with instantiation (mirrors expression
    /// occurrences so payload coercions work in patterns too).
    Con {
        /// The constructor.
        con: ConInfo,
        /// Scheme instantiation at this occurrence.
        inst: Vec<Ty>,
        /// Payload pattern for value-carrying constructors.
        arg: Option<Box<TPat>>,
    },
    /// Record pattern; `flexible` records match any record containing the
    /// listed fields (the full field set comes from the zonked type).
    Record {
        /// Listed fields, canonically ordered.
        fields: Vec<(Symbol, TPat)>,
        /// Whether `...` was present.
        flexible: bool,
    },
    /// Layered pattern.
    As(VarId, Box<TPat>),
}

/// A typed declaration.
///
/// Module declarations carry whole signature instances inline; a program
/// holds a handful of `TDec`s, so variant size is immaterial.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
pub enum TDec {
    /// Monomorphic (possibly pattern) binding: `val pat = exp`.
    Val {
        /// The binding pattern.
        pat: TPat,
        /// The bound expression.
        exp: TExp,
    },
    /// Generalized single-variable binding; the scheme lives in the
    /// [`VarTable`].
    PolyVal {
        /// The bound variable.
        var: VarId,
        /// The bound expression.
        exp: TExp,
    },
    /// Mutually recursive function bindings (each `exps[i]` is a `Fn`).
    Fun {
        /// The bound function variables.
        vars: Vec<VarId>,
        /// Their bodies.
        exps: Vec<TExp>,
    },
    /// Exception declaration: binds `var` to a freshly allocated
    /// exception tag.
    Exception {
        /// Variable holding the runtime tag.
        var: VarId,
        /// The exception's name (stored in the tag for diagnostics).
        name: Symbol,
    },
    /// Structure binding.
    Structure {
        /// Variable holding the structure record.
        var: VarId,
        /// The structure expression.
        def: TStrExp,
    },
    /// Functor binding (a function from structure records to structure
    /// records).
    Functor {
        /// Variable holding the functor closure.
        var: VarId,
        /// The formal parameter variable.
        param: VarId,
        /// The parameter's (abstract) structure type.
        param_ty: StrTy,
        /// The (abstract) result structure type.
        result_ty: StrTy,
        /// The functor body.
        body: TStrExp,
    },
}

/// The "structure type" of a module value: the shape of its runtime
/// record. This is what the lambda translator maps to `SRECORDty`
/// (paper §4.3).
#[derive(Clone, Debug)]
pub struct StrTy(pub Vec<(Symbol, CompTy)>);

/// One component of a structure type.
#[derive(Clone, Debug)]
pub enum CompTy {
    /// A value component with its scheme.
    Val(Scheme),
    /// An exception tag component.
    Exn,
    /// A substructure.
    Str(StrTy),
}

impl StrTy {
    /// Index of the component named `name`, if present.
    pub fn slot(&self, name: Symbol) -> Option<usize> {
        self.0.iter().position(|(n, _)| *n == name)
    }
}

/// A typed structure expression.
#[derive(Clone, Debug)]
pub enum TStrExp {
    /// `struct ... end`: evaluate the declarations, build the export
    /// record.
    Struct {
        /// Declarations in order.
        decs: Vec<TDec>,
        /// Exported components, in record-slot order.
        exports: Vec<Export>,
    },
    /// Reference to an existing structure record.
    Access(Access),
    /// Signature matching / abstraction: select and coerce components of
    /// the base structure (the paper's *thinning function*, §3).
    Thin {
        /// The structure being matched.
        base: Box<TStrExp>,
        /// Per-component selections and from/to schemes.
        items: Vec<ThinItem>,
        /// The resulting structure type.
        to: StrTy,
    },
    /// Functor application: the argument has already been thinned to the
    /// parameter signature; the result is coerced from the functor's
    /// abstract result type to its instantiation (paper §4.3-4.4).
    FctApp {
        /// The functor closure.
        fct: Access,
        /// The (thinned) argument.
        arg: Box<TStrExp>,
        /// The functor's abstract result structure type.
        from: StrTy,
        /// The instantiated result structure type.
        to: StrTy,
    },
}

/// One exported component of a `struct ... end`.
#[derive(Clone, Debug)]
pub struct Export {
    /// Component name.
    pub name: Symbol,
    /// What is exported.
    pub item: ExportItem,
}

/// The payload of an [`Export`].
#[derive(Clone, Debug)]
pub enum ExportItem {
    /// A value component.
    Val {
        /// Where the value lives.
        access: Access,
        /// Its scheme.
        scheme: Scheme,
    },
    /// A substructure.
    Str {
        /// Where the substructure record lives.
        access: Access,
        /// Its structure type.
        ty: StrTy,
    },
    /// An exception tag.
    Exn {
        /// Where the tag lives.
        access: Access,
    },
}

/// One component of a thinning.
#[derive(Clone, Debug)]
pub enum ThinItem {
    /// Select value component `slot` and coerce it `from -> to`.
    Val {
        /// Slot in the source structure record.
        slot: usize,
        /// Scheme in the source structure.
        from: Scheme,
        /// Scheme in the result (signature view).
        to: Scheme,
    },
    /// Select substructure `slot` and thin it recursively.
    Str {
        /// Slot in the source structure record.
        slot: usize,
        /// Nested thinning.
        items: Vec<ThinItem>,
        /// Resulting substructure type.
        to: StrTy,
    },
    /// Select exception tag `slot` unchanged.
    Exn {
        /// Slot in the source structure record.
        slot: usize,
    },
}
