//! Identity-preserving deep copies of elaboration state.
//!
//! Elaboration state is a graph, not a tree: one unification cell
//! ([`TvRef`], an `Rc<RefCell<_>>`) is typically shared between the
//! variable table, the environment, and every typed term that mentions
//! the variable, and unification resolves all of them at once by
//! mutating the cell in place. A plain `clone()` would *preserve* that
//! sharing — with the original — so later unification (or the MTD
//! pass's in-place scheme re-linking) in the live session would bleed
//! into the snapshot.
//!
//! [`Forker`] instead rebuilds the graph: every cell, `Rc<Env>`, and
//! `Rc<SigInstance>` is copied exactly once (memoized by pointer
//! identity) and all references are redirected to the copies. The
//! result is isomorphic to the original — same shape, same sharing,
//! same `Unbound` ids and tycon stamps — but *closed*: no `Rc` in the
//! copy is reachable from outside it. That closedness is what lets the
//! incremental driver in `crates/core` stash snapshots in a
//! mutex-guarded cache shared across worker threads.
//!
//! Cyclic `Link` chains (possible transiently mid-unification; never at
//! a declaration boundary, but cheap to be safe about) terminate via
//! the insert-placeholder-then-fill pattern in [`Forker::tvref`].

use crate::absyn::CompTy;
use crate::absyn::{
    ConInfo, Export, ExportItem, StrTy, TDec, TExp, TExpKind, TPat, TPatKind, TRule, TStrExp,
    ThinItem, VarInfo, VarTable,
};
use crate::elaborate::Elaborator;
use crate::env::{Env, FctDef, SigDef, SigInstance, SigItem, StrEntry, TyFun, TyconBind, ValBind};
use crate::incremental::ElabSession;
use sml_types::{ConDef, DatatypeDef, Scheme, Tv, TvRef, Ty, TyconRegistry};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A single deep-copy traversal. One instance must be used for an
/// entire session fork so that sharing is preserved *across* the
/// registry, environment, variable table, and typed program.
#[derive(Default)]
pub(crate) struct Forker {
    /// Forked unification cells, keyed by original cell address.
    cells: HashMap<usize, TvRef>,
    /// Forked shared environments, keyed by original `Rc<Env>` address.
    envs: HashMap<usize, Rc<Env>>,
    /// Forked shared signature instances, keyed by original address.
    sigs: HashMap<usize, Rc<SigInstance>>,
}

impl Forker {
    pub(crate) fn session(mut self, s: &ElabSession) -> ElabSession {
        let elab = &s.elab;
        let forked_elab = Elaborator {
            reg: self.registry(&elab.reg),
            vars: VarTable {
                infos: elab
                    .vars
                    .infos
                    .iter()
                    .map(|i| VarInfo {
                        name: i.name,
                        scheme: self.scheme(&i.scheme),
                        exported: i.exported,
                    })
                    .collect(),
            },
            level: elab.level,
            overloads: elab
                .overloads
                .iter()
                .map(|(ty, class, span)| (self.ty(ty), *class, *span))
                .collect(),
            flex: elab
                .flex
                .iter()
                .map(|(ty, fields, span)| {
                    (
                        self.ty(ty),
                        fields.iter().map(|(n, t)| (*n, self.ty(t))).collect(),
                        *span,
                    )
                })
                .collect(),
            tyvar_scopes: elab
                .tyvar_scopes
                .iter()
                .map(|scope| scope.iter().map(|(n, t)| (*n, self.ty(t))).collect())
                .collect(),
            fct_roots: elab.fct_roots.clone(),
        };
        ElabSession {
            elab: forked_elab,
            env: self.env(&s.env),
            decs: s.decs.iter().map(|d| self.tdec(d)).collect(),
            builtins: s.builtins,
        }
    }

    // ----- types ---------------------------------------------------------

    fn tvref(&mut self, v: &TvRef) -> TvRef {
        let key = Rc::as_ptr(&v.0) as usize;
        if let Some(copy) = self.cells.get(&key) {
            return copy.clone();
        }
        // Memoize a placeholder *before* descending so that a `Link`
        // cycle back to this cell resolves to the copy instead of
        // recursing (or re-borrowing the original) forever.
        let copy = TvRef(Rc::new(RefCell::new(Tv::Gen(u32::MAX))));
        self.cells.insert(key, copy.clone());
        let forked = match &*v.0.borrow() {
            Tv::Unbound { id, level, eq } => Tv::Unbound {
                id: *id,
                level: *level,
                eq: *eq,
            },
            Tv::Link(ty) => Tv::Link(self.ty(ty)),
            Tv::Gen(i) => Tv::Gen(*i),
        };
        *copy.0.borrow_mut() = forked;
        copy
    }

    fn ty(&mut self, t: &Ty) -> Ty {
        match t {
            Ty::Var(v) => Ty::Var(self.tvref(v)),
            Ty::Con(tycon, args) => {
                Ty::Con(tycon.clone(), args.iter().map(|a| self.ty(a)).collect())
            }
            Ty::Record(fields) => {
                Ty::Record(fields.iter().map(|(n, t)| (*n, self.ty(t))).collect())
            }
            Ty::Arrow(a, b) => Ty::Arrow(Box::new(self.ty(a)), Box::new(self.ty(b))),
        }
    }

    fn opt_ty(&mut self, t: &Option<Ty>) -> Option<Ty> {
        t.as_ref().map(|t| self.ty(t))
    }

    fn tys(&mut self, ts: &[Ty]) -> Vec<Ty> {
        ts.iter().map(|t| self.ty(t)).collect()
    }

    fn scheme(&mut self, s: &Scheme) -> Scheme {
        Scheme {
            arity: s.arity,
            eq_flags: s.eq_flags.clone(),
            cells: s.cells.iter().map(|c| self.tvref(c)).collect(),
            body: self.ty(&s.body),
        }
    }

    fn registry(&mut self, reg: &TyconRegistry) -> TyconRegistry {
        let mut out = TyconRegistry::new();
        for def in reg.iter() {
            out.insert_def(DatatypeDef {
                tycon: def.tycon.clone(),
                params: def.params.iter().map(|c| self.tvref(c)).collect(),
                cons: def
                    .cons
                    .iter()
                    .map(|c| ConDef {
                        name: c.name,
                        payload: self.opt_ty(&c.payload),
                        rep: c.rep,
                        index: c.index,
                    })
                    .collect(),
                admits_eq: def.admits_eq,
            });
        }
        out
    }

    // ----- environments --------------------------------------------------

    fn con_info(&mut self, c: &ConInfo) -> ConInfo {
        ConInfo {
            name: c.name,
            dt_stamp: c.dt_stamp,
            index: c.index,
            span: c.span,
            rep: c.rep,
            scheme: self.scheme(&c.scheme),
            origin: c.origin.as_ref().map(|s| self.scheme(s)),
            tag: c.tag.clone(),
        }
    }

    fn val_bind(&mut self, b: &ValBind) -> ValBind {
        match b {
            ValBind::Var { access, scheme } => ValBind::Var {
                access: access.clone(),
                scheme: self.scheme(scheme),
            },
            ValBind::Con(info) => ValBind::Con(self.con_info(info)),
            ValBind::Prim {
                prim,
                scheme,
                overload,
            } => ValBind::Prim {
                prim: *prim,
                scheme: self.scheme(scheme),
                overload: *overload,
            },
        }
    }

    fn tyfun(&mut self, f: &TyFun) -> TyFun {
        TyFun {
            params: f.params.iter().map(|c| self.tvref(c)).collect(),
            body: self.ty(&f.body),
        }
    }

    fn tycon_bind(&mut self, b: &TyconBind) -> TyconBind {
        match b {
            TyconBind::Tycon(t) => TyconBind::Tycon(t.clone()),
            TyconBind::Abbrev(f) => TyconBind::Abbrev(self.tyfun(f)),
        }
    }

    fn str_ty(&mut self, s: &StrTy) -> StrTy {
        StrTy(s.0.iter().map(|(n, c)| (*n, self.comp_ty(c))).collect())
    }

    fn comp_ty(&mut self, c: &CompTy) -> CompTy {
        match c {
            CompTy::Val(s) => CompTy::Val(self.scheme(s)),
            CompTy::Exn => CompTy::Exn,
            CompTy::Str(s) => CompTy::Str(self.str_ty(s)),
        }
    }

    fn rc_env(&mut self, e: &Rc<Env>) -> Rc<Env> {
        let key = Rc::as_ptr(e) as usize;
        if let Some(copy) = self.envs.get(&key) {
            return copy.clone();
        }
        let copy = Rc::new(self.env(e));
        self.envs.insert(key, copy.clone());
        copy
    }

    fn sig_item(&mut self, i: &SigItem) -> SigItem {
        match i {
            SigItem::Val { name, scheme } => SigItem::Val {
                name: *name,
                scheme: self.scheme(scheme),
            },
            SigItem::Type { name, bind } => SigItem::Type {
                name: *name,
                bind: self.tycon_bind(bind),
            },
            SigItem::Datatype { name, tycon, cons } => SigItem::Datatype {
                name: *name,
                tycon: tycon.clone(),
                cons: cons.iter().map(|c| self.con_info(c)).collect(),
            },
            SigItem::Exn { name, payload } => SigItem::Exn {
                name: *name,
                payload: self.opt_ty(payload),
            },
            SigItem::Str { name, sig } => SigItem::Str {
                name: *name,
                sig: self.sig_instance(sig),
            },
        }
    }

    fn sig_instance(&mut self, s: &SigInstance) -> SigInstance {
        SigInstance {
            items: s.items.iter().map(|i| self.sig_item(i)).collect(),
            flex: s.flex.clone(),
        }
    }

    fn rc_sig_instance(&mut self, s: &Rc<SigInstance>) -> Rc<SigInstance> {
        let key = Rc::as_ptr(s) as usize;
        if let Some(copy) = self.sigs.get(&key) {
            return copy.clone();
        }
        let copy = Rc::new(self.sig_instance(s));
        self.sigs.insert(key, copy.clone());
        copy
    }

    fn env(&mut self, e: &Env) -> Env {
        Env {
            vals: e.vals.iter().map(|(n, b)| (*n, self.val_bind(b))).collect(),
            tycons: e
                .tycons
                .iter()
                .map(|(n, b)| (*n, self.tycon_bind(b)))
                .collect(),
            strs: e
                .strs
                .iter()
                .map(|(n, s)| {
                    (
                        *n,
                        StrEntry {
                            access: s.access.clone(),
                            env: self.rc_env(&s.env),
                            ty: self.str_ty(&s.ty),
                        },
                    )
                })
                .collect(),
            sigs: e
                .sigs
                .iter()
                .map(|(n, s)| {
                    (
                        *n,
                        SigDef {
                            // The syntax is immutable, but the `Rc` must
                            // not be shared with the original or the
                            // fork would not be a closed graph (and so
                            // not safe to move across threads).
                            ast: Rc::new((*s.ast).clone()),
                            env: self.env(&s.env),
                        },
                    )
                })
                .collect(),
            fcts: e
                .fcts
                .iter()
                .map(|(n, f)| {
                    (
                        *n,
                        FctDef {
                            access: f.access.clone(),
                            param_sig: self.rc_sig_instance(&f.param_sig),
                            result_env: self.rc_env(&f.result_env),
                            result_ty: self.str_ty(&f.result_ty),
                        },
                    )
                })
                .collect(),
        }
    }

    // ----- typed terms ---------------------------------------------------

    fn tdec(&mut self, d: &TDec) -> TDec {
        match d {
            TDec::Val { pat, exp } => TDec::Val {
                pat: self.tpat(pat),
                exp: self.texp(exp),
            },
            TDec::PolyVal { var, exp } => TDec::PolyVal {
                var: *var,
                exp: self.texp(exp),
            },
            TDec::Fun { vars, exps } => TDec::Fun {
                vars: vars.clone(),
                exps: exps.iter().map(|e| self.texp(e)).collect(),
            },
            TDec::Exception { var, name } => TDec::Exception {
                var: *var,
                name: *name,
            },
            TDec::Structure { var, def } => TDec::Structure {
                var: *var,
                def: self.tstr_exp(def),
            },
            TDec::Functor {
                var,
                param,
                param_ty,
                result_ty,
                body,
            } => TDec::Functor {
                var: *var,
                param: *param,
                param_ty: self.str_ty(param_ty),
                result_ty: self.str_ty(result_ty),
                body: self.tstr_exp(body),
            },
        }
    }

    fn tstr_exp(&mut self, s: &TStrExp) -> TStrExp {
        match s {
            TStrExp::Struct { decs, exports } => TStrExp::Struct {
                decs: decs.iter().map(|d| self.tdec(d)).collect(),
                exports: exports
                    .iter()
                    .map(|e| Export {
                        name: e.name,
                        item: match &e.item {
                            ExportItem::Val { access, scheme } => ExportItem::Val {
                                access: access.clone(),
                                scheme: self.scheme(scheme),
                            },
                            ExportItem::Str { access, ty } => ExportItem::Str {
                                access: access.clone(),
                                ty: self.str_ty(ty),
                            },
                            ExportItem::Exn { access } => ExportItem::Exn {
                                access: access.clone(),
                            },
                        },
                    })
                    .collect(),
            },
            TStrExp::Access(a) => TStrExp::Access(a.clone()),
            TStrExp::Thin { base, items, to } => TStrExp::Thin {
                base: Box::new(self.tstr_exp(base)),
                items: items.iter().map(|i| self.thin_item(i)).collect(),
                to: self.str_ty(to),
            },
            TStrExp::FctApp { fct, arg, from, to } => TStrExp::FctApp {
                fct: fct.clone(),
                arg: Box::new(self.tstr_exp(arg)),
                from: self.str_ty(from),
                to: self.str_ty(to),
            },
        }
    }

    fn thin_item(&mut self, i: &ThinItem) -> ThinItem {
        match i {
            ThinItem::Val { slot, from, to } => ThinItem::Val {
                slot: *slot,
                from: self.scheme(from),
                to: self.scheme(to),
            },
            ThinItem::Str { slot, items, to } => ThinItem::Str {
                slot: *slot,
                items: items.iter().map(|i| self.thin_item(i)).collect(),
                to: self.str_ty(to),
            },
            ThinItem::Exn { slot } => ThinItem::Exn { slot: *slot },
        }
    }

    fn trules(&mut self, rules: &[TRule]) -> Vec<TRule> {
        rules
            .iter()
            .map(|r| TRule {
                pat: self.tpat(&r.pat),
                exp: self.texp(&r.exp),
            })
            .collect()
    }

    fn texp(&mut self, e: &TExp) -> TExp {
        let kind = match &e.kind {
            TExpKind::Int(n) => TExpKind::Int(*n),
            TExpKind::Real(r) => TExpKind::Real(*r),
            TExpKind::Str(s) => TExpKind::Str(s.clone()),
            TExpKind::Char(c) => TExpKind::Char(*c),
            TExpKind::Var {
                access,
                scheme,
                inst,
            } => TExpKind::Var {
                access: access.clone(),
                scheme: self.scheme(scheme),
                inst: self.tys(inst),
            },
            TExpKind::Prim { prim, inst } => TExpKind::Prim {
                prim: *prim,
                inst: self.tys(inst),
            },
            TExpKind::Con { con, inst } => TExpKind::Con {
                con: self.con_info(con),
                inst: self.tys(inst),
            },
            TExpKind::Record(fields) => {
                TExpKind::Record(fields.iter().map(|(n, e)| (*n, self.texp(e))).collect())
            }
            TExpKind::Select { label, arg } => TExpKind::Select {
                label: *label,
                arg: Box::new(self.texp(arg)),
            },
            TExpKind::App(f, a) => TExpKind::App(Box::new(self.texp(f)), Box::new(self.texp(a))),
            TExpKind::Fn { rules, arg_ty } => TExpKind::Fn {
                rules: self.trules(rules),
                arg_ty: self.ty(arg_ty),
            },
            TExpKind::Case(scrut, rules) => {
                TExpKind::Case(Box::new(self.texp(scrut)), self.trules(rules))
            }
            TExpKind::If(c, t, f) => TExpKind::If(
                Box::new(self.texp(c)),
                Box::new(self.texp(t)),
                Box::new(self.texp(f)),
            ),
            TExpKind::While(c, b) => {
                TExpKind::While(Box::new(self.texp(c)), Box::new(self.texp(b)))
            }
            TExpKind::Seq(parts) => TExpKind::Seq(parts.iter().map(|e| self.texp(e)).collect()),
            TExpKind::Let(decs, body) => TExpKind::Let(
                decs.iter().map(|d| self.tdec(d)).collect(),
                Box::new(self.texp(body)),
            ),
            TExpKind::Raise(inner) => TExpKind::Raise(Box::new(self.texp(inner))),
            TExpKind::Handle(body, rules) => {
                TExpKind::Handle(Box::new(self.texp(body)), self.trules(rules))
            }
        };
        TExp {
            kind,
            ty: self.ty(&e.ty),
        }
    }

    fn tpat(&mut self, p: &TPat) -> TPat {
        let kind = match &p.kind {
            TPatKind::Wild => TPatKind::Wild,
            TPatKind::Var(v) => TPatKind::Var(*v),
            TPatKind::Int(n) => TPatKind::Int(*n),
            TPatKind::Str(s) => TPatKind::Str(s.clone()),
            TPatKind::Char(c) => TPatKind::Char(*c),
            TPatKind::Con { con, inst, arg } => TPatKind::Con {
                con: self.con_info(con),
                inst: self.tys(inst),
                arg: arg.as_ref().map(|a| Box::new(self.tpat(a))),
            },
            TPatKind::Record { fields, flexible } => TPatKind::Record {
                fields: fields.iter().map(|(n, p)| (*n, self.tpat(p))).collect(),
                flexible: *flexible,
            },
            TPatKind::As(v, inner) => TPatKind::As(*v, Box::new(self.tpat(inner))),
        };
        TPat {
            kind,
            ty: self.ty(&p.ty),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::ElabSession;
    use sml_ast::parse;

    /// Forking must preserve *sharing*: the cell behind a polymorphic
    /// variable's scheme appears in the variable table and in the
    /// environment, and the copies must again be one cell.
    #[test]
    fn fork_preserves_cell_sharing() {
        let prog = parse("fun id x = x").unwrap();
        let mut s = ElabSession::new();
        for d in &prog.decs {
            s.elab_dec(d).unwrap();
        }
        let f = s.fork();
        let id = sml_ast::Symbol::intern("id");
        let ValBind::Var { scheme: env_s, .. } = &f.env.vals[&id] else {
            panic!("id should be a plain variable");
        };
        // Find the same variable in the table by name.
        let table_s = (0..f.elab.vars.len())
            .map(|i| f.elab.vars.info(crate::absyn::VarId(i as u32)))
            .find(|i| i.name == id)
            .map(|i| &i.scheme)
            .unwrap();
        assert_eq!(env_s.arity, 1);
        assert!(
            env_s.cells[0].same(&table_s.cells[0]),
            "env and var-table must share the forked generic cell"
        );
    }

    /// The fork must not alias any cell of the original.
    #[test]
    fn fork_shares_nothing_with_original() {
        let prog = parse("fun id x = x").unwrap();
        let mut s = ElabSession::new();
        for d in &prog.decs {
            s.elab_dec(d).unwrap();
        }
        let f = s.fork();
        let id = sml_ast::Symbol::intern("id");
        let (ValBind::Var { scheme: a, .. }, ValBind::Var { scheme: b, .. }) =
            (&s.env.vals[&id], &f.env.vals[&id])
        else {
            panic!("id should be a plain variable");
        };
        assert!(
            !a.cells[0].same(&b.cells[0]),
            "fork must rebuild cells, not alias them"
        );
    }
}
