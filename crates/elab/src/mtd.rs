//! Minimum typing derivations (paper §3, after Bjørner's algorithm M).
//!
//! After elaboration, every non-exported polymorphic binding is reassigned
//! the *least* general type scheme that covers all of its actual
//! instantiations. Because type annotations share mutable cells with the
//! binding's scheme, re-linking the scheme's generic cells to the least
//! common generalization automatically constrains every annotation inside
//! the declaration body — exactly the paper's "the new type assigned to x
//! is propagated into x's declaration, constraining other variables
//! referenced by x". In particular, a polymorphic-equality instantiation
//! inside the body becomes monomorphic and is later specialized to a
//! primitive comparison by the lambda translator (the Life benchmark's
//! 10x speedup).

use crate::absyn::*;
use crate::elaborate::Elaboration;
use sml_types::{AntiUnifier, Scheme, Tv, Ty};

/// Runs minimum typing derivations over an elaborated program, in place.
///
/// Declarations are processed uses-before-defs (reverse declaration
/// order, nested `let`s after their enclosing declaration), so each
/// gathered instantiation is already in its final, minimized form.
pub fn minimum_typing(elab: &mut Elaboration) {
    let mut order: Vec<Site> = Vec::new();
    collect_sites(&elab.decs, &mut Vec::new(), &mut order);
    // `collect_sites` already records sites in uses-before-defs order.
    for site in order {
        minimize_site(elab, &site);
    }
}

/// Identifies one candidate declaration by the variables it binds.
#[derive(Debug, Clone)]
struct Site {
    vars: Vec<VarId>,
}

/// Walks declarations, recording candidate sites in uses-before-defs
/// order: for a declaration list, later declarations first; for each
/// declaration, the declaration itself before the candidates nested
/// inside its right-hand side.
fn collect_sites(decs: &[TDec], path: &mut Vec<VarId>, out: &mut Vec<Site>) {
    for dec in decs.iter().rev() {
        match dec {
            TDec::PolyVal { var, exp } => {
                out.push(Site { vars: vec![*var] });
                collect_exp_sites(exp, out);
            }
            TDec::Fun { vars, exps } => {
                out.push(Site { vars: vars.clone() });
                for e in exps {
                    collect_exp_sites(e, out);
                }
            }
            TDec::Val { exp, .. } => collect_exp_sites(exp, out),
            TDec::Exception { .. } => {}
            TDec::Structure { def, .. } | TDec::Functor { body: def, .. } => {
                collect_str_sites(def, path, out)
            }
        }
    }
}

fn collect_str_sites(se: &TStrExp, path: &mut Vec<VarId>, out: &mut Vec<Site>) {
    match se {
        TStrExp::Struct { decs, .. } => collect_sites(decs, path, out),
        TStrExp::Access(_) => {}
        TStrExp::Thin { base, .. } => collect_str_sites(base, path, out),
        TStrExp::FctApp { arg, .. } => collect_str_sites(arg, path, out),
    }
}

fn collect_exp_sites(exp: &TExp, out: &mut Vec<Site>) {
    match &exp.kind {
        TExpKind::Let(decs, body) => {
            collect_exp_sites(body, out);
            collect_sites(decs, &mut Vec::new(), out);
        }
        TExpKind::Record(fs) => fs.iter().for_each(|(_, e)| collect_exp_sites(e, out)),
        TExpKind::Select { arg, .. } => collect_exp_sites(arg, out),
        TExpKind::App(f, a) => {
            collect_exp_sites(f, out);
            collect_exp_sites(a, out);
        }
        TExpKind::Fn { rules, .. } => rules.iter().for_each(|r| collect_exp_sites(&r.exp, out)),
        TExpKind::Case(s, rules) => {
            collect_exp_sites(s, out);
            rules.iter().for_each(|r| collect_exp_sites(&r.exp, out));
        }
        TExpKind::If(a, b, c) => {
            collect_exp_sites(a, out);
            collect_exp_sites(b, out);
            collect_exp_sites(c, out);
        }
        TExpKind::While(a, b) => {
            collect_exp_sites(a, out);
            collect_exp_sites(b, out);
        }
        TExpKind::Seq(es) => es.iter().for_each(|e| collect_exp_sites(e, out)),
        TExpKind::Raise(e) => collect_exp_sites(e, out),
        TExpKind::Handle(e, rules) => {
            collect_exp_sites(e, out);
            rules.iter().for_each(|r| collect_exp_sites(&r.exp, out));
        }
        _ => {}
    }
}

/// Gathered occurrence of a candidate variable: whether it lies inside the
/// candidate's own declaration (a recursive use).
struct Use {
    internal: bool,
    inst: Vec<Ty>,
}

fn minimize_site(elab: &mut Elaboration, site: &Site) {
    let first = site.vars[0];
    let scheme = elab.vars.scheme(first).clone();
    if scheme.arity == 0 {
        return;
    }
    if site.vars.iter().any(|v| elab.vars.info(*v).exported) {
        return;
    }

    // Pass 1: gather all uses.
    let mut uses: Vec<Use> = Vec::new();
    {
        let mut g = Gather {
            targets: &site.vars,
            inside: false,
            uses: &mut uses,
            arity: scheme.arity,
        };
        for dec in &elab.decs {
            g.dec(dec);
        }
    }
    let externals: Vec<&Use> = uses.iter().filter(|u| !u.internal).collect();
    if externals.is_empty() {
        return;
    }

    // Pass 2: per-position least common generalization over external
    // uses, with a shared disagreement table.
    let mut au = AntiUnifier::new(0);
    let subst: Vec<Ty> = (0..scheme.arity)
        .map(|i| {
            let col: Vec<Ty> = externals.iter().map(|u| u.inst[i].clone()).collect();
            au.lcg(&col)
        })
        .collect();
    let n_ext = externals.len();
    drop(externals);

    // Link the old generic cells to their LCGs; shared annotations inside
    // the declaration bodies update through the cells.
    for (cell, s) in scheme.cells.iter().zip(&subst) {
        *cell.0.borrow_mut() = Tv::Link(s.clone());
    }

    // The disagreement variables become the new generic cells.
    let disagreements = au.into_disagreements();
    let new_cells: Vec<_> = disagreements.iter().map(|d| d.var.clone()).collect();
    for (k, c) in new_cells.iter().enumerate() {
        *c.0.borrow_mut() = Tv::Gen(k as u32);
    }
    let arity = new_cells.len();
    for v in &site.vars {
        let old = elab.vars.scheme(*v).clone();
        elab.vars.info_mut(*v).scheme = Scheme {
            arity,
            eq_flags: vec![false; arity],
            cells: new_cells.clone(),
            body: old.body,
        };
    }

    // Pass 3: rewrite instantiation vectors. External use j gets the
    // disagreement values at j; internal (recursive) uses get the new
    // identity.
    let identity: Vec<Ty> = new_cells.iter().map(|c| Ty::Var(c.clone())).collect();
    let mut new_insts: Vec<Vec<Ty>> = Vec::with_capacity(uses.len());
    let mut ext_idx = 0usize;
    for u in &uses {
        if u.internal {
            new_insts.push(identity.clone());
        } else {
            new_insts.push(
                disagreements
                    .iter()
                    .map(|d| d.uses[ext_idx].clone())
                    .collect(),
            );
            ext_idx += 1;
        }
    }
    debug_assert_eq!(ext_idx, n_ext);
    {
        let mut r = Rewrite {
            targets: &site.vars,
            inside: false,
            new_insts: &mut new_insts.into_iter(),
            arity: scheme.arity,
        };
        for dec in &mut elab.decs {
            r.dec(dec);
        }
    }
}

/// Immutable gathering walk. Visit order must match [`Rewrite`] exactly.
struct Gather<'a> {
    targets: &'a [VarId],
    inside: bool,
    uses: &'a mut Vec<Use>,
    arity: usize,
}

impl Gather<'_> {
    fn dec(&mut self, dec: &TDec) {
        let owns = match dec {
            TDec::PolyVal { var, .. } => self.targets.contains(var),
            TDec::Fun { vars, .. } => vars.iter().any(|v| self.targets.contains(v)),
            _ => false,
        };
        let saved = self.inside;
        if owns {
            self.inside = true;
        }
        match dec {
            TDec::Val { exp, .. } | TDec::PolyVal { exp, .. } => self.exp(exp),
            TDec::Fun { exps, .. } => exps.iter().for_each(|e| self.exp(e)),
            TDec::Exception { .. } => {}
            TDec::Structure { def, .. } | TDec::Functor { body: def, .. } => self.strexp(def),
        }
        self.inside = saved;
    }

    fn strexp(&mut self, se: &TStrExp) {
        match se {
            TStrExp::Struct { decs, .. } => decs.iter().for_each(|d| self.dec(d)),
            TStrExp::Access(_) => {}
            TStrExp::Thin { base, .. } => self.strexp(base),
            TStrExp::FctApp { arg, .. } => self.strexp(arg),
        }
    }

    fn exp(&mut self, exp: &TExp) {
        match &exp.kind {
            TExpKind::Var { access, inst, .. } => {
                if access.is_local()
                    && self.targets.contains(&access.root())
                    && inst.len() == self.arity
                {
                    self.uses.push(Use {
                        internal: self.inside,
                        inst: inst.clone(),
                    });
                }
            }
            TExpKind::Int(_)
            | TExpKind::Real(_)
            | TExpKind::Str(_)
            | TExpKind::Char(_)
            | TExpKind::Prim { .. }
            | TExpKind::Con { .. } => {}
            TExpKind::Record(fs) => fs.iter().for_each(|(_, e)| self.exp(e)),
            TExpKind::Select { arg, .. } => self.exp(arg),
            TExpKind::App(f, a) => {
                self.exp(f);
                self.exp(a);
            }
            TExpKind::Fn { rules, .. } => rules.iter().for_each(|r| self.exp(&r.exp)),
            TExpKind::Case(s, rules) => {
                self.exp(s);
                rules.iter().for_each(|r| self.exp(&r.exp));
            }
            TExpKind::If(a, b, c) => {
                self.exp(a);
                self.exp(b);
                self.exp(c);
            }
            TExpKind::While(a, b) => {
                self.exp(a);
                self.exp(b);
            }
            TExpKind::Seq(es) => es.iter().for_each(|e| self.exp(e)),
            TExpKind::Let(decs, body) => {
                decs.iter().for_each(|d| self.dec(d));
                self.exp(body);
            }
            TExpKind::Raise(e) => self.exp(e),
            TExpKind::Handle(e, rules) => {
                self.exp(e);
                rules.iter().for_each(|r| self.exp(&r.exp));
            }
        }
    }
}

/// Mutable rewriting walk; must visit uses in the same order as
/// [`Gather`].
struct Rewrite<'a> {
    targets: &'a [VarId],
    inside: bool,
    new_insts: &'a mut std::vec::IntoIter<Vec<Ty>>,
    arity: usize,
}

impl Rewrite<'_> {
    fn dec(&mut self, dec: &mut TDec) {
        let owns = match dec {
            TDec::PolyVal { var, .. } => self.targets.contains(var),
            TDec::Fun { vars, .. } => vars.iter().any(|v| self.targets.contains(v)),
            _ => false,
        };
        let saved = self.inside;
        if owns {
            self.inside = true;
        }
        match dec {
            TDec::Val { exp, .. } | TDec::PolyVal { exp, .. } => self.exp(exp),
            TDec::Fun { exps, .. } => exps.iter_mut().for_each(|e| self.exp(e)),
            TDec::Exception { .. } => {}
            TDec::Structure { def, .. } | TDec::Functor { body: def, .. } => self.strexp(def),
        }
        self.inside = saved;
    }

    fn strexp(&mut self, se: &mut TStrExp) {
        match se {
            TStrExp::Struct { decs, .. } => decs.iter_mut().for_each(|d| self.dec(d)),
            TStrExp::Access(_) => {}
            TStrExp::Thin { base, .. } => self.strexp(base),
            TStrExp::FctApp { arg, .. } => self.strexp(arg),
        }
    }

    fn exp(&mut self, exp: &mut TExp) {
        match &mut exp.kind {
            TExpKind::Var { access, inst, .. } => {
                if access.is_local()
                    && self.targets.contains(&access.root())
                    && inst.len() == self.arity
                {
                    *inst = self.new_insts.next().expect("gather/rewrite orders match");
                }
            }
            TExpKind::Int(_)
            | TExpKind::Real(_)
            | TExpKind::Str(_)
            | TExpKind::Char(_)
            | TExpKind::Prim { .. }
            | TExpKind::Con { .. } => {}
            TExpKind::Record(fs) => fs.iter_mut().for_each(|(_, e)| self.exp(e)),
            TExpKind::Select { arg, .. } => self.exp(arg),
            TExpKind::App(f, a) => {
                self.exp(f);
                self.exp(a);
            }
            TExpKind::Fn { rules, .. } => rules.iter_mut().for_each(|r| self.exp(&mut r.exp)),
            TExpKind::Case(s, rules) => {
                self.exp(s);
                rules.iter_mut().for_each(|r| self.exp(&mut r.exp));
            }
            TExpKind::If(a, b, c) => {
                self.exp(a);
                self.exp(b);
                self.exp(c);
            }
            TExpKind::While(a, b) => {
                self.exp(a);
                self.exp(b);
            }
            TExpKind::Seq(es) => es.iter_mut().for_each(|e| self.exp(e)),
            TExpKind::Let(decs, body) => {
                decs.iter_mut().for_each(|d| self.dec(d));
                self.exp(body);
            }
            TExpKind::Raise(e) => self.exp(e),
            TExpKind::Handle(e, rules) => {
                self.exp(e);
                rules.iter_mut().for_each(|r| self.exp(&mut r.exp));
            }
        }
    }
}
