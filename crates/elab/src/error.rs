//! Elaboration (type checking) errors.

use sml_ast::Span;
use std::fmt;

/// An elaboration failure.
#[derive(Clone, Debug)]
pub struct ElabError {
    /// Source location of the offending phrase.
    pub span: Span,
    /// Human-readable description.
    pub msg: String,
}

impl ElabError {
    /// Creates an error at `span`.
    pub fn new(span: Span, msg: impl Into<String>) -> ElabError {
        ElabError {
            span,
            msg: msg.into(),
        }
    }

    /// Renders the error with line/column resolved against `src`.
    pub fn render(&self, src: &str) -> String {
        let (line, col) = self.span.line_col(src);
        format!("{line}:{col}: type error: {}", self.msg)
    }
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error at {}: {}", self.span, self.msg)
    }
}

impl std::error::Error for ElabError {}

/// Result alias for elaboration.
pub type ElabResult<T> = Result<T, ElabError>;
