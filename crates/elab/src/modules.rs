//! Module-language elaboration: structures, signatures, signature
//! matching (thinning functions), `abstraction`, and functors.
//!
//! This implements the paper's §3 front-end bookkeeping: every signature
//! matching produces a *thinning* recording each visible component, its
//! type in the original structure, and its type in the instantiation;
//! every functor application records the argument thinning and the
//! instantiation of the functor's flexible types. Flexible (abstract)
//! types force standard boxed representations downstream (§4.3).

use crate::absyn::*;
use crate::elaborate::Elaborator;
use crate::env::*;
use crate::error::{ElabError, ElabResult};
use sml_ast::{self as ast, Span, Spec, Symbol};
use sml_types::{ConRep, EqProp, Scheme, Stamp, Tv, TvRef, Ty, Tycon};
use std::collections::HashMap;
use std::rc::Rc;

/// The result of elaborating a structure expression: its typed form, its
/// structure type, and a component environment rooted at `root` (when
/// `root` is `None` the accesses are absolute, e.g. for a structure
/// alias).
pub(crate) struct StrResult {
    pub texp: TStrExp,
    pub ty: StrTy,
    pub env: Env,
    pub root: Option<VarId>,
}

/// Splices `new` in place of the root variable `root` of an access path.
fn access_splice(a: &Access, root: VarId, new: &Access) -> Access {
    match a {
        Access::Var(v) if *v == root => new.clone(),
        Access::Var(v) => Access::Var(*v),
        Access::Select(inner, i) => Access::Select(Box::new(access_splice(inner, root, new)), *i),
    }
}

/// Re-roots every access in `env` whose root variable is `root`.
pub(crate) fn reroot_env(env: &Env, root: VarId, new: &Access) -> Env {
    let mut out = env.clone();
    for bind in out.vals.values_mut() {
        match bind {
            ValBind::Var { access, .. } => *access = access_splice(access, root, new),
            ValBind::Con(ci) => {
                if let Some(tag) = &ci.tag {
                    ci.tag = Some(access_splice(tag, root, new));
                }
            }
            ValBind::Prim { .. } => {}
        }
    }
    for entry in out.strs.values_mut() {
        entry.access = access_splice(&entry.access, root, new);
        entry.env = Rc::new(reroot_env(&entry.env, root, new));
    }
    for fct in out.fcts.values_mut() {
        fct.access = access_splice(&fct.access, root, new);
    }
    out
}

// ----- tycon substitution (functor instantiation) --------------------------

/// Substitutes flexible tycons by type functions throughout a type.
pub(crate) fn subst_ty(ty: &Ty, map: &HashMap<Stamp, TyFun>) -> Ty {
    match ty.head() {
        Ty::Var(v) => Ty::Var(v),
        Ty::Con(c, args) => {
            let args: Vec<Ty> = args.iter().map(|a| subst_ty(a, map)).collect();
            match map.get(&c.stamp) {
                Some(f) => f.apply(&args),
                None => Ty::Con(c, args),
            }
        }
        Ty::Record(fs) => Ty::Record(fs.iter().map(|(l, t)| (*l, subst_ty(t, map))).collect()),
        Ty::Arrow(a, b) => Ty::arrow(subst_ty(&a, map), subst_ty(&b, map)),
    }
}

fn ty_mentions(ty: &Ty, map: &HashMap<Stamp, TyFun>) -> bool {
    match ty.head() {
        Ty::Var(_) => false,
        Ty::Con(c, args) => map.contains_key(&c.stamp) || args.iter().any(|a| ty_mentions(a, map)),
        Ty::Record(fs) => fs.iter().any(|(_, t)| ty_mentions(t, map)),
        Ty::Arrow(a, b) => ty_mentions(&a, map) || ty_mentions(&b, map),
    }
}

fn subst_scheme(s: &Scheme, map: &HashMap<Stamp, TyFun>) -> Scheme {
    Scheme {
        arity: s.arity,
        eq_flags: s.eq_flags.clone(),
        cells: s.cells.clone(),
        body: subst_ty(&s.body, map),
    }
}

fn subst_strty(t: &StrTy, map: &HashMap<Stamp, TyFun>) -> StrTy {
    StrTy(
        t.0.iter()
            .map(|(n, c)| {
                let c = match c {
                    CompTy::Val(s) => CompTy::Val(subst_scheme(s, map)),
                    CompTy::Exn => CompTy::Exn,
                    CompTy::Str(s) => CompTy::Str(subst_strty(s, map)),
                };
                (*n, c)
            })
            .collect(),
    )
}

fn subst_env(env: &Env, map: &HashMap<Stamp, TyFun>) -> Env {
    let mut out = env.clone();
    for bind in out.vals.values_mut() {
        match bind {
            ValBind::Var { scheme, .. } => *scheme = subst_scheme(scheme, map),
            ValBind::Con(ci) => {
                if ty_mentions(&ci.scheme.body, map) {
                    let origin = ci.rep_scheme().clone();
                    ci.scheme = subst_scheme(&ci.scheme, map);
                    ci.origin = Some(origin);
                }
            }
            ValBind::Prim { .. } => {}
        }
    }
    for bind in out.tycons.values_mut() {
        match bind {
            TyconBind::Tycon(t) => {
                if let Some(f) = map.get(&t.stamp) {
                    *bind = TyconBind::Abbrev(f.clone());
                }
            }
            TyconBind::Abbrev(f) => {
                f.body = subst_ty(&f.body, map);
            }
        }
    }
    for entry in out.strs.values_mut() {
        entry.env = Rc::new(subst_env(&entry.env, map));
        entry.ty = subst_strty(&entry.ty, map);
    }
    out
}

/// The result of a successful signature match: thinning items, result
/// structure type, a result component environment rooted at a fresh
/// placeholder, that placeholder, and the instantiation map from the
/// signature's flexible stamps to the structure's actual type functions.
pub(crate) type SigMatch = (Vec<ThinItem>, StrTy, Env, VarId, HashMap<Stamp, TyFun>);

impl Elaborator {
    // ----- structure bindings ---------------------------------------------

    pub(crate) fn elab_strbind(
        &mut self,
        env: &mut Env,
        b: &ast::StrBind,
        out: &mut Vec<TDec>,
        delta: &mut Env,
    ) -> ElabResult<()> {
        let mut res = self.elab_strexp(env, &b.def)?;
        if let Some((sigexp, opaque)) = &b.ascription {
            res = self.ascribe(env, res, sigexp, *opaque)?;
        }
        let var = self.vars.fresh(b.name, Ty::unit());
        let new_env = match res.root {
            Some(root) => reroot_env(&res.env, root, &Access::Var(var)),
            None => res.env,
        };
        let entry = StrEntry {
            access: Access::Var(var),
            env: Rc::new(new_env),
            ty: res.ty,
        };
        env.strs.insert(b.name, entry.clone());
        delta.strs.insert(b.name, entry);
        out.push(TDec::Structure { var, def: res.texp });
        Ok(())
    }

    pub(crate) fn elab_fctbind(
        &mut self,
        env: &mut Env,
        b: &ast::FctBind,
        out: &mut Vec<TDec>,
        delta: &mut Env,
    ) -> ElabResult<()> {
        let si = Rc::new(self.elab_sigexp(env, &b.param_sig)?);
        let param_var = self.vars.fresh(b.param, Ty::unit());
        let param_env = self.sig_instance_env(&si, &Access::Var(param_var));
        let mut inner = env.clone();
        inner.strs.insert(
            b.param,
            StrEntry {
                access: Access::Var(param_var),
                env: Rc::new(param_env),
                ty: si.str_ty(),
            },
        );
        let mut res = self.elab_strexp(&inner, &b.body)?;
        if let Some((sigexp, opaque)) = &b.result_sig {
            res = self.ascribe(&inner, res, sigexp, *opaque)?;
        }
        // Ensure the result environment is rooted at a placeholder that
        // can be re-rooted at each application (a whole-body alias of the
        // parameter would otherwise leak the parameter variable).
        let result_root = match res.root {
            Some(r) => r,
            None => {
                let r = self.vars.fresh(Symbol::intern("<fctres>"), Ty::unit());
                res.env = reroot_env(&res.env, param_var, &Access::Var(r));
                r
            }
        };
        let fvar = self.vars.fresh(b.name, Ty::unit());
        let result_ty = res.ty.clone();
        let def = FctDef {
            access: Access::Var(fvar),
            param_sig: si.clone(),
            result_env: Rc::new(res.env),
            result_ty: res.ty,
        };
        // Remember the placeholder root alongside the definition.
        self.fct_roots.insert(fvar, result_root);
        env.fcts.insert(b.name, def.clone());
        delta.fcts.insert(b.name, def);
        out.push(TDec::Functor {
            var: fvar,
            param: param_var,
            param_ty: si.str_ty(),
            result_ty,
            body: res.texp,
        });
        Ok(())
    }

    // ----- structure expressions --------------------------------------------

    pub(crate) fn elab_strexp(&mut self, env: &Env, se: &ast::StrExp) -> ElabResult<StrResult> {
        match se {
            ast::StrExp::Var(path) => {
                let scope = {
                    let mut cur = env;
                    for q in &path.qualifiers {
                        match cur.strs.get(q) {
                            Some(e) => cur = &e.env,
                            None => {
                                return Err(ElabError::new(
                                    Span::dummy(),
                                    format!("unbound structure `{q}` in `{path}`"),
                                ))
                            }
                        }
                    }
                    cur
                };
                match scope.strs.get(&path.name) {
                    Some(entry) => Ok(StrResult {
                        texp: TStrExp::Access(entry.access.clone()),
                        ty: entry.ty.clone(),
                        env: (*entry.env).clone(),
                        root: None,
                    }),
                    None => Err(ElabError::new(
                        Span::dummy(),
                        format!("unbound structure `{path}`"),
                    )),
                }
            }
            ast::StrExp::Struct(decs, span) => self.elab_struct(env, decs, *span),
            ast::StrExp::App(fname, arg, span) => {
                let fct = match env.fcts.get(fname) {
                    Some(f) => f.clone(),
                    None => {
                        return Err(ElabError::new(*span, format!("unbound functor `{fname}`")))
                    }
                };
                let arg_res = self.elab_strexp(env, arg)?;
                // Functor-parameter matching is abstraction matching: the
                // argument is coerced *to* the parameter's abstract types.
                let (items, _to_ty, _renv, _rroot, instmap) =
                    self.match_sig(&arg_res.ty, &arg_res.env, &fct.param_sig, true, *span)?;
                let thinned = TStrExp::Thin {
                    base: Box::new(arg_res.texp),
                    items,
                    to: fct.param_sig.str_ty(),
                };
                let to_ty = subst_strty(&fct.result_ty, &instmap);
                let result_env = subst_env(&fct.result_env, &instmap);
                let result_root = self.fct_roots[&fct.access.root()];
                Ok(StrResult {
                    texp: TStrExp::FctApp {
                        fct: fct.access.clone(),
                        arg: Box::new(thinned),
                        from: fct.result_ty.clone(),
                        to: to_ty.clone(),
                    },
                    ty: to_ty,
                    env: result_env,
                    root: Some(result_root),
                })
            }
            ast::StrExp::Ascribe(inner, sigexp, opaque) => {
                let res = self.elab_strexp(env, inner)?;
                self.ascribe(env, res, sigexp, *opaque)
            }
        }
    }

    fn ascribe(
        &mut self,
        env: &Env,
        res: StrResult,
        sigexp: &ast::SigExp,
        opaque: bool,
    ) -> ElabResult<StrResult> {
        let si = self.elab_sigexp(env, sigexp)?;
        let (items, to_ty, renv, rroot, _instmap) =
            self.match_sig(&res.ty, &res.env, &si, opaque, Span::dummy())?;
        Ok(StrResult {
            texp: TStrExp::Thin {
                base: Box::new(res.texp),
                items,
                to: to_ty.clone(),
            },
            ty: to_ty,
            env: renv,
            root: Some(rroot),
        })
    }

    fn elab_struct(&mut self, env: &Env, decs: &[ast::Dec], span: Span) -> ElabResult<StrResult> {
        let mut inner = env.clone();
        let mut tdecs = Vec::new();
        let mut delta = Env::new();
        for d in decs {
            self.elab_dec_delta(&mut inner, d, &mut tdecs, &mut delta)?;
        }
        let _ = span;

        // Export order: bound names in declaration order, last binding of
        // each (namespace, name) wins.
        #[derive(PartialEq, Eq, Clone, Copy)]
        enum Ns {
            Val,
            Str,
        }
        let mut order: Vec<(Ns, Symbol)> = Vec::new();
        let push = |order: &mut Vec<(Ns, Symbol)>, ns: Ns, n: Symbol| {
            order.retain(|(o_ns, o_n)| !(*o_ns == ns && *o_n == n));
            order.push((ns, n));
        };
        for d in &tdecs {
            match d {
                TDec::Val { pat, .. } => {
                    let mut vs = Vec::new();
                    collect_pat_vars(pat, &mut vs);
                    for v in vs {
                        push(&mut order, Ns::Val, self.vars.info(v).name);
                    }
                }
                TDec::PolyVal { var, .. } => push(&mut order, Ns::Val, self.vars.info(*var).name),
                TDec::Fun { vars, .. } => {
                    for v in vars {
                        push(&mut order, Ns::Val, self.vars.info(*v).name);
                    }
                }
                TDec::Exception { name, .. } => push(&mut order, Ns::Val, *name),
                TDec::Structure { var, .. } => push(&mut order, Ns::Str, self.vars.info(*var).name),
                TDec::Functor { .. } => {}
            }
        }

        let mut exports = Vec::new();
        for (ns, name) in &order {
            match ns {
                Ns::Val => match delta.vals.get(name) {
                    Some(ValBind::Var { access, scheme }) => {
                        self.vars.info_mut(access.root()).exported = true;
                        exports.push(Export {
                            name: *name,
                            item: ExportItem::Val {
                                access: access.clone(),
                                scheme: scheme.clone(),
                            },
                        });
                    }
                    Some(ValBind::Con(ci)) => {
                        if let Some(tag) = &ci.tag {
                            exports.push(Export {
                                name: *name,
                                item: ExportItem::Exn {
                                    access: tag.clone(),
                                },
                            });
                        }
                        // Plain constructors are static: no slot.
                    }
                    _ => {}
                },
                Ns::Str => {
                    if let Some(entry) = delta.strs.get(name) {
                        exports.push(Export {
                            name: *name,
                            item: ExportItem::Str {
                                access: entry.access.clone(),
                                ty: entry.ty.clone(),
                            },
                        });
                    }
                }
            }
        }

        // Structure type and a component environment rooted at a fresh
        // placeholder.
        let root = self.vars.fresh(Symbol::intern("<str>"), Ty::unit());
        let mut comps = Vec::new();
        let mut visible = delta.clone();
        for (slot, ex) in exports.iter().enumerate() {
            let here = Access::Select(Box::new(Access::Var(root)), slot);
            match &ex.item {
                ExportItem::Val { scheme, .. } => {
                    comps.push((ex.name, CompTy::Val(scheme.clone())));
                    visible.vals.insert(
                        ex.name,
                        ValBind::Var {
                            access: here,
                            scheme: scheme.clone(),
                        },
                    );
                }
                ExportItem::Exn { .. } => {
                    comps.push((ex.name, CompTy::Exn));
                    if let Some(ValBind::Con(ci)) = visible.vals.get_mut(&ex.name) {
                        ci.tag = Some(here);
                    }
                }
                ExportItem::Str { access, ty } => {
                    comps.push((ex.name, CompTy::Str(ty.clone())));
                    if let Some(entry) = visible.strs.get_mut(&ex.name) {
                        let old_root = access.root();
                        entry.env = Rc::new(reroot_env(&entry.env, old_root, &here));
                        entry.access = here;
                    }
                }
            }
        }

        Ok(StrResult {
            texp: TStrExp::Struct {
                decs: tdecs,
                exports,
            },
            ty: StrTy(comps),
            env: visible,
            root: Some(root),
        })
    }

    // ----- signatures -----------------------------------------------------------

    /// Elaborates a signature expression into a fresh [`SigInstance`]
    /// (new flexible stamps each time).
    pub(crate) fn elab_sigexp(&mut self, env: &Env, se: &ast::SigExp) -> ElabResult<SigInstance> {
        match se {
            ast::SigExp::Var(name) => match env.sigs.get(name) {
                Some(def) => {
                    let def = def.clone();
                    self.elab_sigexp(&def.env, &def.ast)
                }
                None => Err(ElabError::new(
                    Span::dummy(),
                    format!("unbound signature `{name}`"),
                )),
            },
            ast::SigExp::Sig(specs, span) => {
                let mut local = env.clone();
                let mut items = Vec::new();
                let mut flex = Vec::new();
                for spec in specs {
                    self.elab_spec(&mut local, spec, &mut items, &mut flex, *span)?;
                }
                Ok(SigInstance { items, flex })
            }
        }
    }

    fn elab_spec(
        &mut self,
        local: &mut Env,
        spec: &Spec,
        items: &mut Vec<SigItem>,
        flex: &mut Vec<Stamp>,
        span: Span,
    ) -> ElabResult<()> {
        match spec {
            Spec::Val(name, ty) => {
                self.tyvar_scopes.push(HashMap::new());
                self.level += 1;
                let t = self.elab_ty(local, ty);
                self.level -= 1;
                self.tyvar_scopes.pop();
                let t = t?;
                let scheme = sml_types::generalize(&t, self.level);
                items.push(SigItem::Val {
                    name: *name,
                    scheme,
                });
                Ok(())
            }
            Spec::Type {
                tyvars,
                name,
                eq,
                def,
            } => {
                let bind = match def {
                    Some(body) => TyconBind::Abbrev(self.elab_tyfun(local, tyvars, body)?),
                    None => {
                        let t = Tycon::fresh_abstract(*name, tyvars.len(), *eq);
                        flex.push(t.stamp);
                        TyconBind::Tycon(t)
                    }
                };
                local.tycons.insert(*name, bind.clone());
                items.push(SigItem::Type { name: *name, bind });
                Ok(())
            }
            Spec::Datatype(db) => {
                // A datatype spec introduces a fresh (flexible) datatype
                // with its constructors.
                let tycon = Tycon::fresh_data(db.name, db.tyvars.len(), EqProp::IfArgs);
                let mut scratch = local.clone();
                scratch
                    .tycons
                    .insert(db.name, TyconBind::Tycon(tycon.clone()));
                let mut scope = HashMap::new();
                let mut params = Vec::new();
                for tv in &db.tyvars {
                    let cell = TvRef::fresh(self.level);
                    scope.insert(*tv, Ty::Var(cell.clone()));
                    params.push(cell);
                }
                self.tyvar_scopes.push(scope);
                let mut cons = Vec::new();
                for (cname, cty) in &db.cons {
                    let payload = match cty {
                        Some(t) => Some(self.elab_ty(&scratch, t)?),
                        None => None,
                    };
                    cons.push((*cname, payload));
                }
                self.tyvar_scopes.pop();
                for (i, cell) in params.iter().enumerate() {
                    *cell.0.borrow_mut() = Tv::Gen(i as u32);
                }
                self.reg.register_batch(vec![(tycon.clone(), params, cons)]);
                let def = self
                    .reg
                    .datatype(tycon.stamp)
                    .expect("just registered")
                    .clone();
                let mut infos = Vec::new();
                for con in &def.cons {
                    let args: Vec<Ty> = def.params.iter().map(|c| Ty::Var(c.clone())).collect();
                    let dt_ty = Ty::Con(tycon.clone(), args);
                    let body = match &con.payload {
                        Some(p) => Ty::arrow(p.clone(), dt_ty),
                        None => dt_ty,
                    };
                    let scheme = Scheme {
                        arity: def.params.len(),
                        eq_flags: vec![false; def.params.len()],
                        cells: def.params.clone(),
                        body,
                    };
                    let ci = ConInfo {
                        name: con.name,
                        dt_stamp: tycon.stamp,
                        index: con.index,
                        span: def.cons.len(),
                        rep: con.rep,
                        scheme,
                        origin: None,
                        tag: None,
                    };
                    local.vals.insert(con.name, ValBind::Con(ci.clone()));
                    infos.push(ci);
                }
                local
                    .tycons
                    .insert(db.name, TyconBind::Tycon(tycon.clone()));
                flex.push(tycon.stamp);
                items.push(SigItem::Datatype {
                    name: db.name,
                    tycon,
                    cons: infos,
                });
                Ok(())
            }
            Spec::Exception(name, ty) => {
                let payload = match ty {
                    Some(t) => Some(self.elab_ty(local, t)?),
                    None => None,
                };
                items.push(SigItem::Exn {
                    name: *name,
                    payload,
                });
                Ok(())
            }
            Spec::Structure(name, se) => {
                let sub = self.elab_sigexp(local, se)?;
                flex.extend(sub.flex.iter().copied());
                // Bind the substructure's static parts so later specs can
                // reference `S.t`.
                let dummy_root = self.vars.fresh(Symbol::intern("<sigstr>"), Ty::unit());
                let sub_env = self.sig_instance_env(&sub, &Access::Var(dummy_root));
                local.strs.insert(
                    *name,
                    StrEntry {
                        access: Access::Var(dummy_root),
                        env: Rc::new(sub_env),
                        ty: sub.str_ty(),
                    },
                );
                items.push(SigItem::Str {
                    name: *name,
                    sig: sub,
                });
                let _ = span;
                Ok(())
            }
        }
    }

    /// Builds the component environment a structure matching `si`
    /// presents, with accesses rooted at `root` (used for functor
    /// parameters).
    pub(crate) fn sig_instance_env(&mut self, si: &SigInstance, root: &Access) -> Env {
        let mut env = Env::new();
        let mut slot = 0usize;
        for item in &si.items {
            match item {
                SigItem::Val { name, scheme } => {
                    env.vals.insert(
                        *name,
                        ValBind::Var {
                            access: Access::Select(Box::new(root.clone()), slot),
                            scheme: scheme.clone(),
                        },
                    );
                    slot += 1;
                }
                SigItem::Type { name, bind } => {
                    env.tycons.insert(*name, bind.clone());
                }
                SigItem::Datatype { name, tycon, cons } => {
                    env.tycons.insert(*name, TyconBind::Tycon(tycon.clone()));
                    for ci in cons {
                        env.vals.insert(ci.name, ValBind::Con(ci.clone()));
                    }
                }
                SigItem::Exn { name, payload } => {
                    let tag = Access::Select(Box::new(root.clone()), slot);
                    let (rep, scheme) = match payload {
                        Some(p) => (ConRep::Exn, Scheme::mono(Ty::arrow(p.clone(), Ty::exn()))),
                        None => (ConRep::ExnConst, Scheme::mono(Ty::exn())),
                    };
                    env.vals.insert(
                        *name,
                        ValBind::Con(ConInfo {
                            name: *name,
                            dt_stamp: Tycon::exn().stamp,
                            index: 0,
                            span: usize::MAX,
                            rep,
                            scheme,
                            origin: None,
                            tag: Some(tag),
                        }),
                    );
                    slot += 1;
                }
                SigItem::Str { name, sig } => {
                    let here = Access::Select(Box::new(root.clone()), slot);
                    let sub_env = self.sig_instance_env(sig, &here);
                    env.strs.insert(
                        *name,
                        StrEntry {
                            access: here,
                            env: Rc::new(sub_env),
                            ty: sig.str_ty(),
                        },
                    );
                    slot += 1;
                }
            }
        }
        env
    }

    // ----- signature matching ----------------------------------------------------

    /// Matches a structure (given by its `StrTy` and component
    /// environment) against a signature instance.
    ///
    /// Returns the thinning items, the result structure type, a result
    /// component environment rooted at a fresh placeholder, that
    /// placeholder, and the instantiation map from the signature's
    /// flexible stamps to the structure's actual type functions.
    ///
    /// With `opaque` matching (abstraction / functor parameters), result
    /// types keep the signature's abstract tycons; with transparent
    /// matching they are instantiated to the structure's actuals.
    pub(crate) fn match_sig(
        &mut self,
        src_ty: &StrTy,
        src_env: &Env,
        si: &SigInstance,
        opaque: bool,
        span: Span,
    ) -> ElabResult<SigMatch> {
        let mut instmap: HashMap<Stamp, TyFun> = HashMap::new();
        let (items, ty, env, root) =
            self.match_sig_inner(src_ty, src_env, si, opaque, span, &mut instmap)?;
        Ok((items, ty, env, root, instmap))
    }

    fn match_sig_inner(
        &mut self,
        src_ty: &StrTy,
        src_env: &Env,
        si: &SigInstance,
        opaque: bool,
        span: Span,
        instmap: &mut HashMap<Stamp, TyFun>,
    ) -> ElabResult<(Vec<ThinItem>, StrTy, Env, VarId)> {
        let root = self.vars.fresh(Symbol::intern("<thin>"), Ty::unit());
        let mut items = Vec::new();
        let mut comps = Vec::new();
        let mut renv = Env::new();
        let mut slot = 0usize;

        for item in &si.items {
            match item {
                SigItem::Type { name, bind } => {
                    match bind {
                        TyconBind::Tycon(abs) if abs.kind == sml_types::TyconKind::Abstract => {
                            let src_bind = src_env.tycons.get(name).ok_or_else(|| {
                                ElabError::new(span, format!("structure lacks type `{name}`"))
                            })?;
                            if src_bind.arity() != abs.arity {
                                return Err(ElabError::new(
                                    span,
                                    format!("type `{name}` has the wrong arity"),
                                ));
                            }
                            instmap.insert(abs.stamp, src_bind.to_tyfun());
                            let vis = if opaque {
                                bind.clone()
                            } else {
                                src_bind.clone()
                            };
                            renv.tycons.insert(*name, vis);
                        }
                        _ => {
                            // Manifest: just make it visible.
                            renv.tycons.insert(*name, bind.clone());
                        }
                    }
                }
                SigItem::Datatype { name, tycon, cons } => {
                    let src_bind = src_env.tycons.get(name).ok_or_else(|| {
                        ElabError::new(span, format!("structure lacks datatype `{name}`"))
                    })?;
                    let TyconBind::Tycon(src_tycon) = src_bind else {
                        return Err(ElabError::new(
                            span,
                            format!("`{name}` must be a datatype, not an abbreviation"),
                        ));
                    };
                    if src_tycon.arity != tycon.arity {
                        return Err(ElabError::new(
                            span,
                            format!("datatype `{name}` has the wrong arity"),
                        ));
                    }
                    instmap.insert(tycon.stamp, src_bind.to_tyfun());
                    // Constructors must agree in name and order.
                    let mut vis_cons = Vec::new();
                    for spec_ci in cons {
                        let src_ci = match src_env.vals.get(&spec_ci.name) {
                            Some(ValBind::Con(c)) if c.dt_stamp == src_tycon.stamp => c.clone(),
                            _ => {
                                return Err(ElabError::new(
                                    span,
                                    format!(
                                        "structure lacks constructor `{}` of datatype `{name}`",
                                        spec_ci.name
                                    ),
                                ))
                            }
                        };
                        if src_ci.index != spec_ci.index || src_ci.span != spec_ci.span {
                            return Err(ElabError::new(
                                span,
                                format!("constructors of datatype `{name}` do not match"),
                            ));
                        }
                        let ci = if opaque {
                            ConInfo {
                                rep: src_ci.rep,
                                origin: Some(src_ci.rep_scheme().clone()),
                                ..spec_ci.clone()
                            }
                        } else {
                            src_ci
                        };
                        vis_cons.push(ci);
                    }
                    let vis_tycon = if opaque {
                        TyconBind::Tycon(tycon.clone())
                    } else {
                        src_bind.clone()
                    };
                    renv.tycons.insert(*name, vis_tycon);
                    for ci in vis_cons {
                        renv.vals.insert(ci.name, ValBind::Con(ci));
                    }
                }
                SigItem::Val { name, scheme } => {
                    let src_slot = src_ty.slot(*name).ok_or_else(|| {
                        ElabError::new(span, format!("structure lacks value `{name}`"))
                    })?;
                    let (from, to) = match src_env.vals.get(name) {
                        Some(ValBind::Var {
                            scheme: src_scheme, ..
                        }) => {
                            // Check: the (instantiated) spec type must be
                            // an instance of the structure's scheme.
                            let want = subst_scheme(scheme, instmap);
                            self.check_instance(src_scheme, &want, *name, span)?;
                            let to = if opaque {
                                scheme.clone()
                            } else {
                                subst_scheme(scheme, instmap)
                            };
                            (src_scheme.clone(), to)
                        }
                        _ => {
                            return Err(ElabError::new(
                                span,
                                format!("`{name}` in structure is not a value binding"),
                            ))
                        }
                    };
                    items.push(ThinItem::Val {
                        slot: src_slot,
                        from,
                        to: to.clone(),
                    });
                    comps.push((*name, CompTy::Val(to.clone())));
                    renv.vals.insert(
                        *name,
                        ValBind::Var {
                            access: Access::Select(Box::new(Access::Var(root)), slot),
                            scheme: to,
                        },
                    );
                    slot += 1;
                }
                SigItem::Exn { name, payload } => {
                    let src_slot = src_ty.slot(*name).ok_or_else(|| {
                        ElabError::new(span, format!("structure lacks exception `{name}`"))
                    })?;
                    let src_ci = match src_env.vals.get(name) {
                        Some(ValBind::Con(c)) if c.tag.is_some() => c.clone(),
                        _ => {
                            return Err(ElabError::new(
                                span,
                                format!("`{name}` in structure is not an exception"),
                            ))
                        }
                    };
                    items.push(ThinItem::Exn { slot: src_slot });
                    comps.push((*name, CompTy::Exn));
                    let tag = Access::Select(Box::new(Access::Var(root)), slot);
                    let payload = payload.as_ref().map(|p| {
                        if opaque {
                            p.clone()
                        } else {
                            subst_ty(p, instmap)
                        }
                    });
                    let (rep, scheme) = match &payload {
                        Some(p) => (ConRep::Exn, Scheme::mono(Ty::arrow(p.clone(), Ty::exn()))),
                        None => (ConRep::ExnConst, Scheme::mono(Ty::exn())),
                    };
                    renv.vals.insert(
                        *name,
                        ValBind::Con(ConInfo {
                            name: *name,
                            dt_stamp: Tycon::exn().stamp,
                            index: 0,
                            span: usize::MAX,
                            rep,
                            scheme,
                            origin: src_ci.origin.clone(),
                            tag: Some(tag),
                        }),
                    );
                    slot += 1;
                }
                SigItem::Str { name, sig } => {
                    let src_slot = src_ty.slot(*name).ok_or_else(|| {
                        ElabError::new(span, format!("structure lacks substructure `{name}`"))
                    })?;
                    let sub_entry = src_env.strs.get(name).ok_or_else(|| {
                        ElabError::new(span, format!("structure lacks substructure `{name}`"))
                    })?;
                    let sub_ty = sub_entry.ty.clone();
                    let sub_env = (*sub_entry.env).clone();
                    let (sub_items, sub_to, sub_renv, sub_root) =
                        self.match_sig_inner(&sub_ty, &sub_env, sig, opaque, span, instmap)?;
                    items.push(ThinItem::Str {
                        slot: src_slot,
                        items: sub_items,
                        to: sub_to.clone(),
                    });
                    comps.push((*name, CompTy::Str(sub_to.clone())));
                    let here = Access::Select(Box::new(Access::Var(root)), slot);
                    let sub_renv = reroot_env(&sub_renv, sub_root, &here);
                    renv.strs.insert(
                        *name,
                        StrEntry {
                            access: here,
                            env: Rc::new(sub_renv),
                            ty: sub_to,
                        },
                    );
                    slot += 1;
                }
            }
        }
        Ok((items, StrTy(comps), renv, root))
    }

    /// Checks that `want` (a fully-instantiated specification scheme) is
    /// an instance of the structure's `general` scheme: skolemize `want`'s
    /// generic variables and unify with a fresh instance of `general`.
    fn check_instance(
        &mut self,
        general: &Scheme,
        want: &Scheme,
        name: Symbol,
        span: Span,
    ) -> ElabResult<()> {
        let skolems: Vec<Ty> = (0..want.arity)
            .map(|i| {
                let eq = want.eq_flags.get(i).copied().unwrap_or(false);
                Ty::Con(
                    Tycon::fresh_abstract(Symbol::intern(&format!("?{name}{i}")), 0, eq),
                    Vec::new(),
                )
            })
            .collect();
        let want_body = want.body.subst_gen(&skolems);
        let (gen_inst, _) = general.instantiate(self.level + 1);
        self.unify(span, &gen_inst, &want_body).map_err(|e| {
            ElabError::new(
                span,
                format!(
                    "value `{name}` does not match its specification: {} (structure: `{}`, \
                     specification: `{}`)",
                    e.msg,
                    general.body.zonk(),
                    want.body.zonk()
                ),
            )
        })
    }
}

fn collect_pat_vars(pat: &TPat, out: &mut Vec<VarId>) {
    match &pat.kind {
        TPatKind::Var(v) => out.push(*v),
        TPatKind::Wild | TPatKind::Int(_) | TPatKind::Str(_) | TPatKind::Char(_) => {}
        TPatKind::Con { arg, .. } => {
            if let Some(a) = arg {
                collect_pat_vars(a, out);
            }
        }
        TPatKind::Record { fields, .. } => {
            fields.iter().for_each(|(_, p)| collect_pat_vars(p, out))
        }
        TPatKind::As(v, inner) => {
            out.push(*v);
            collect_pat_vars(inner, out);
        }
    }
}
