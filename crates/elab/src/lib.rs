//! The elaborator (type checker) for the `smlc` type-based compiler.
//!
//! Turns raw abstract syntax into typed abstract syntax in which every
//! polymorphic occurrence carries its type instantiation and every module
//! boundary carries a thinning (paper §3). Also provides the
//! minimum-typing-derivations pass ([`minimum_typing`]).
//!
//! # Examples
//!
//! ```
//! let prog = sml_ast::parse("val compose = fn f => fn g => fn x => f (g x)").unwrap();
//! let elab = sml_elab::elaborate(&prog).unwrap();
//! assert!(elab.vars.len() > 0);
//! ```

#![warn(missing_docs)]

pub mod absyn;
pub mod elaborate;
pub mod env;
pub mod error;
mod fork;
pub mod incremental;
pub mod modules;
pub mod mtd;

pub use absyn::{
    Access, CompTy, ConInfo, Export, ExportItem, Prim, StrTy, TDec, TExp, TExpKind, TPat, TPatKind,
    TRule, TStrExp, ThinItem, VarId, VarInfo, VarTable,
};
pub use elaborate::{elaborate, Elaboration};
pub use env::{builtin_env, BuiltinExns, Env, OvClass, TyFun, ValBind};
pub use error::{ElabError, ElabResult};
pub use incremental::ElabSession;
pub use mtd::minimum_typing;
