//! End-to-end elaboration tests: core language, modules, and MTD.

use sml_elab::{elaborate, minimum_typing, CompTy, Elaboration, TDec, TExpKind, TStrExp, ThinItem};

fn elab(src: &str) -> Elaboration {
    let prog = sml_ast::parse(src).unwrap_or_else(|e| panic!("parse: {e}"));
    elaborate(&prog).unwrap_or_else(|e| panic!("elab: {e}"))
}

fn elab_err(src: &str) -> String {
    let prog = sml_ast::parse(src).unwrap_or_else(|e| panic!("parse: {e}"));
    match elaborate(&prog) {
        Ok(_) => panic!("expected elaboration failure for: {src}"),
        Err(e) => e.msg,
    }
}

/// Number of built-in exception-tag declarations prepended to programs.
const N_BUILTIN: usize = 8;

fn user_decs(e: &Elaboration) -> &[TDec] {
    &e.decs[N_BUILTIN..]
}

#[test]
fn simple_val() {
    let e = elab("val x = 1 + 2");
    let decs = user_decs(&e);
    assert_eq!(decs.len(), 1);
    // `1 + 2` is nonexpansive? No: application -> Val (monomorphic).
    let TDec::Val { exp, .. } = &decs[0] else {
        panic!("expected Val")
    };
    assert_eq!(exp.ty.zonk().to_string(), "int");
}

#[test]
fn overload_defaults_to_int() {
    let e = elab("fun double x = x + x");
    let TDec::Fun { vars, .. } = &user_decs(&e)[0] else {
        panic!()
    };
    assert_eq!(e.vars.scheme(vars[0]).body.zonk().to_string(), "int -> int");
}

#[test]
fn overload_resolves_to_real() {
    let e = elab("fun scale x = x * 2.0");
    let TDec::Fun { vars, .. } = &user_decs(&e)[0] else {
        panic!()
    };
    assert_eq!(
        e.vars.scheme(vars[0]).body.zonk().to_string(),
        "real -> real"
    );
}

#[test]
fn polymorphic_identity() {
    let e = elab("val id = fn x => x");
    let TDec::PolyVal { var, .. } = &user_decs(&e)[0] else {
        panic!()
    };
    let s = e.vars.scheme(*var);
    assert_eq!(s.arity, 1);
    assert_eq!(s.body.zonk().to_string(), "'a -> 'a");
}

#[test]
fn map_has_standard_scheme() {
    let e = elab("fun map f nil = nil | map f (x :: r) = f x :: map f r");
    let TDec::Fun { vars, .. } = &user_decs(&e)[0] else {
        panic!()
    };
    let s = e.vars.scheme(vars[0]);
    assert_eq!(s.arity, 2);
    assert_eq!(
        s.body.zonk().to_string(),
        "('a -> 'b) -> 'a list -> 'b list"
    );
}

#[test]
fn value_restriction_blocks_generalization() {
    // `ref` application is expansive.
    let e = elab("val r = ref nil");
    assert!(matches!(user_decs(&e)[0], TDec::Val { .. }));
}

#[test]
fn instantiations_are_recorded() {
    let e = elab(
        "val id = fn x => x
         val n = id 3",
    );
    let TDec::Val { exp, .. } = &user_decs(&e)[1] else {
        panic!()
    };
    // exp = App(Var id [int], 3)
    let TExpKind::App(f, _) = &exp.kind else {
        panic!()
    };
    let TExpKind::Var { inst, .. } = &f.kind else {
        panic!()
    };
    assert_eq!(inst.len(), 1);
    assert_eq!(inst[0].zonk().to_string(), "int");
}

#[test]
fn datatype_and_case() {
    let e = elab(
        "datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree
         fun depth Leaf = 0
           | depth (Node (l, _, r)) =
               let val a = depth l val b = depth r
               in 1 + (if a < b then b else a) end",
    );
    let TDec::Fun { vars, .. } = user_decs(&e).last().unwrap() else {
        panic!()
    };
    let s = e.vars.scheme(vars[0]);
    assert_eq!(s.body.zonk().to_string(), "'a tree -> int");
}

#[test]
fn exceptions_and_handle() {
    let e = elab(
        "exception Empty
         fun hd nil = raise Empty | hd (x :: _) = x
         val z = hd [1, 2] handle Empty => 0",
    );
    assert!(user_decs(&e)
        .iter()
        .any(|d| matches!(d, TDec::Exception { .. })));
}

#[test]
fn polymorphic_equality_requires_eqtype() {
    let msg = elab_err("val bad = (fn x => x) = (fn y => y)");
    assert!(msg.contains("equality"), "got: {msg}");
}

#[test]
fn real_equality_is_allowed() {
    // SML'90 semantics (which the paper targets): real is an eqtype.
    elab("val ok = 1.5 = 2.5");
}

#[test]
fn type_errors_are_reported() {
    assert!(elab_err("val x = 1 + \"s\"").contains("unify"));
    assert!(elab_err("val y = unknown_var").contains("unbound"));
    assert!(elab_err("fun f x = f").contains("circular"));
}

#[test]
fn flexible_record_pattern_resolves() {
    let e = elab("fun get (r : {a : int, b : real}) = let val {a, ...} = r in a end");
    let TDec::Fun { vars, .. } = &user_decs(&e)[0] else {
        panic!()
    };
    assert_eq!(
        e.vars.scheme(vars[0]).body.zonk().to_string(),
        "{a : int, b : real} -> int"
    );
}

#[test]
fn unresolved_flexible_record_errors() {
    let msg = elab_err("val f = fn {a, ...} => a");
    assert!(msg.contains("flexible record"), "got: {msg}");
}

#[test]
fn selector_on_tuple() {
    let e = elab("val p = (1, 2.0) val x = #2 p");
    let TDec::Val { exp, .. } = user_decs(&e).last().unwrap() else {
        panic!()
    };
    assert_eq!(exp.ty.zonk().to_string(), "real");
}

#[test]
fn structure_and_projection() {
    let e = elab(
        "structure S = struct val x = 42 fun f y = y + x end
         val z = S.f S.x",
    );
    let decs = user_decs(&e);
    assert!(matches!(decs[0], TDec::Structure { .. }));
    let TDec::Val { exp, .. } = decs.last().unwrap() else {
        panic!()
    };
    assert_eq!(exp.ty.zonk().to_string(), "int");
}

#[test]
fn signature_matching_produces_thinning() {
    let e = elab(
        "signature SIG = sig val f : int -> int end
         structure S = struct val g = 1 fun f x = x + 1 fun h x = x end
         structure T : SIG = S
         val a = T.f 3",
    );
    let thin = user_decs(&e)
        .iter()
        .find_map(|d| match d {
            TDec::Structure {
                def: TStrExp::Thin { items, .. },
                ..
            } => Some(items),
            _ => None,
        })
        .expect("a thinning");
    // Only `f` is visible; it is at slot 1 of the source structure.
    assert_eq!(thin.len(), 1);
    let ThinItem::Val { slot, .. } = &thin[0] else {
        panic!()
    };
    assert_eq!(*slot, 1);
}

#[test]
fn signature_matching_is_transparent() {
    // Through a transparent match, `t` is still int.
    elab(
        "signature SIG = sig type t val x : t end
         structure S = struct type t = int val x = 3 end
         structure T : SIG = S
         val y = T.x + 1",
    );
}

#[test]
fn abstraction_is_opaque() {
    // Through `abstraction`, `t` is abstract: T.x + 1 must fail.
    let msg = elab_err(
        "signature SIG = sig type t val x : t end
         structure S = struct type t = int val x = 3 end
         abstraction T : SIG = S
         val y = T.x + 1",
    );
    assert!(
        msg.contains("overloaded") || msg.contains("unify"),
        "got: {msg}"
    );
}

#[test]
fn opaque_ascription_via_sml97_syntax() {
    let msg = elab_err(
        "signature SIG = sig type t val x : t end
         structure T :> SIG = struct type t = int val x = 3 end
         val y = T.x + 1",
    );
    assert!(
        msg.contains("overloaded") || msg.contains("unify"),
        "got: {msg}"
    );
}

#[test]
fn signature_mismatch_is_reported() {
    let msg = elab_err(
        "signature SIG = sig val f : int -> int end
         structure T : SIG = struct val f = 3 end",
    );
    assert!(msg.contains("specification"), "got: {msg}");
}

#[test]
fn functor_application() {
    let e = elab(
        "signature ORD = sig type t val le : t * t -> bool end
         functor Sort (X : ORD) = struct
           fun min (a, b) = if X.le (a, b) then a else b
         end
         structure IntOrd = struct type t = int fun le (a : int, b) = a <= b end
         structure IS = Sort (IntOrd)
         val m = IS.min (3, 4)",
    );
    let TDec::Val { exp, .. } = user_decs(&e).last().unwrap() else {
        panic!()
    };
    assert_eq!(exp.ty.zonk().to_string(), "int");
    assert!(user_decs(&e).iter().any(|d| matches!(
        d,
        TDec::Structure {
            def: TStrExp::FctApp { .. },
            ..
        }
    )));
}

#[test]
fn functor_with_datatype_spec() {
    // The paper's §4.3 scenario: a datatype specified in the parameter
    // signature, used in the body, instantiated at application.
    let e = elab(
        "signature SIG = sig
           type 'a t
           datatype boxed = FOO of (real * real) t
           val p : boxed
         end
         functor F (S : SIG) = struct
           val r = case S.p of S.FOO x => [x]
         end
         structure A = struct
           type 'a t = 'a * 'a
           datatype boxed = FOO of (real * real) t
           val p = FOO ((1.0, 2.0), (3.0, 4.0))
         end
         structure B = F (A)",
    );
    assert!(!user_decs(&e).is_empty());
}

#[test]
fn nested_structures() {
    let e = elab(
        "structure Outer = struct
           structure Inner = struct val v = 10 end
           val w = Inner.v + 1
         end
         val z = Outer.Inner.v + Outer.w",
    );
    let TDec::Val { exp, .. } = user_decs(&e).last().unwrap() else {
        panic!()
    };
    assert_eq!(exp.ty.zonk().to_string(), "int");
}

#[test]
fn exception_through_structure() {
    elab(
        "structure S = struct exception E of int end
         val x = (raise S.E 3) handle S.E n => n",
    );
}

// ----- minimum typing derivations ------------------------------------------

#[test]
fn mtd_specializes_single_use() {
    let mut e = elab(
        "fun id x = x
         val n = id 3",
    );
    let TDec::Fun { vars, .. } = &user_decs(&e)[0] else {
        panic!()
    };
    let id_var = vars[0];
    assert_eq!(e.vars.scheme(id_var).arity, 1);
    minimum_typing(&mut e);
    let s = e.vars.scheme(id_var);
    assert_eq!(s.arity, 0, "id used only at int collapses to monomorphic");
    assert_eq!(s.body.zonk().to_string(), "int -> int");
}

#[test]
fn mtd_keeps_needed_polymorphism() {
    let mut e = elab(
        "fun id x = x
         val a = id 3
         val b = id 4.0",
    );
    let TDec::Fun { vars, .. } = &user_decs(&e)[0] else {
        panic!()
    };
    let id_var = vars[0];
    minimum_typing(&mut e);
    assert_eq!(
        e.vars.scheme(id_var).arity,
        1,
        "used at int and real: stays polymorphic"
    );
}

#[test]
fn mtd_monomorphizes_equality() {
    // The Life benchmark scenario: a polymorphic membership function used
    // only at a concrete type; MTD must make the inner `=` monomorphic.
    let mut e = elab(
        "fun member (x, nil) = false
           | member (x, y :: r) = x = y orelse member (x, r)
         val t = member (1.5, [1.0, 1.5])",
    );
    let TDec::Fun { vars, .. } = &user_decs(&e)[0] else {
        panic!()
    };
    let mvar = vars[0];
    assert_eq!(e.vars.scheme(mvar).arity, 1);
    minimum_typing(&mut e);
    assert_eq!(e.vars.scheme(mvar).arity, 0);
    assert_eq!(
        e.vars.scheme(mvar).body.zonk().to_string(),
        "real * real list -> bool"
    );
    // And the PolyEq instantiation inside the (re-gathered) body is real.
    let TDec::Fun { exps: new_exps, .. } = &user_decs(&e)[0] else {
        panic!()
    };
    let mut found = false;
    find_polyeq_inst(&new_exps[0], &mut found);
    assert!(found, "inner `=` instantiation became real");
}

fn find_polyeq_inst(e: &sml_elab::TExp, found: &mut bool) {
    match &e.kind {
        TExpKind::Prim {
            prim: sml_elab::Prim::PolyEq,
            inst,
        } if inst.len() == 1 && inst[0].zonk().to_string() == "real" => {
            *found = true;
        }
        TExpKind::Record(fs) => fs.iter().for_each(|(_, e)| find_polyeq_inst(e, found)),
        TExpKind::Select { arg, .. } => find_polyeq_inst(arg, found),
        TExpKind::App(f, a) => {
            find_polyeq_inst(f, found);
            find_polyeq_inst(a, found);
        }
        TExpKind::Fn { rules, .. } => rules.iter().for_each(|r| find_polyeq_inst(&r.exp, found)),
        TExpKind::Case(s, rules) => {
            find_polyeq_inst(s, found);
            rules.iter().for_each(|r| find_polyeq_inst(&r.exp, found));
        }
        TExpKind::If(a, b, c) => {
            find_polyeq_inst(a, found);
            find_polyeq_inst(b, found);
            find_polyeq_inst(c, found);
        }
        TExpKind::Seq(es) => es.iter().for_each(|e| find_polyeq_inst(e, found)),
        TExpKind::Let(_, b) => find_polyeq_inst(b, found),
        TExpKind::Raise(e) => find_polyeq_inst(e, found),
        TExpKind::Handle(e, rules) => {
            find_polyeq_inst(e, found);
            rules.iter().for_each(|r| find_polyeq_inst(&r.exp, found));
        }
        _ => {}
    }
}

#[test]
fn mtd_skips_exported_vars() {
    let mut e = elab(
        "structure S = struct fun id x = x end
         val n = S.id 7",
    );
    minimum_typing(&mut e);
    // The exported `id` keeps its polymorphic scheme (its boundary type
    // was recorded in the structure's export list).
    let TDec::Structure {
        def: TStrExp::Struct { exports, .. },
        ..
    } = &user_decs(&e)[0]
    else {
        panic!()
    };
    let sml_elab::ExportItem::Val { scheme, .. } = &exports[0].item else {
        panic!()
    };
    assert_eq!(scheme.arity, 1);
}

#[test]
fn mtd_chains_through_callers() {
    // g is specialized first (uses-before-defs), which then makes f's
    // gathered instantiation concrete.
    let mut e = elab(
        "fun f x = x
         fun g y = f y
         val r = g 2.5",
    );
    minimum_typing(&mut e);
    let TDec::Fun { vars: fv, .. } = &user_decs(&e)[0] else {
        panic!()
    };
    let TDec::Fun { vars: gv, .. } = &user_decs(&e)[1] else {
        panic!()
    };
    assert_eq!(e.vars.scheme(gv[0]).body.zonk().to_string(), "real -> real");
    assert_eq!(e.vars.scheme(fv[0]).body.zonk().to_string(), "real -> real");
}

#[test]
fn str_ty_shapes() {
    let e = elab(
        "structure S = struct
           val a = 1
           exception B
           structure C = struct val d = 2.0 end
         end",
    );
    let TDec::Structure {
        def: TStrExp::Struct { exports, .. },
        ..
    } = &user_decs(&e)[0]
    else {
        panic!()
    };
    assert_eq!(exports.len(), 3);
    assert!(matches!(exports[0].item, sml_elab::ExportItem::Val { .. }));
    assert!(matches!(exports[1].item, sml_elab::ExportItem::Exn { .. }));
    assert!(matches!(exports[2].item, sml_elab::ExportItem::Str { .. }));
    let _ = CompTy::Exn;
}

#[test]
fn val_spec_polymorphic_matching() {
    // A polymorphic structure value matches a monomorphic spec (an
    // instantiation), but not vice versa.
    elab(
        "signature S = sig val f : int -> int end
         structure T : S = struct fun f x = x end",
    );
    let msg = elab_err(
        "signature S = sig val f : 'a -> 'a end
         structure T : S = struct fun f (x : int) = x end",
    );
    assert!(msg.contains("specification"), "{msg}");
}

#[test]
fn eqtype_spec_matching() {
    elab(
        "signature S = sig eqtype t val x : t end
         structure T : S = struct type t = int val x = 1 end",
    );
}

#[test]
fn while_body_can_be_any_type() {
    let e = elab("val r = ref 0 val _ = while !r < 3 do r := !r + 1");
    assert!(!user_decs(&e).is_empty());
}

#[test]
fn explicit_tyvar_binders() {
    let e = elab("fun 'a id (x : 'a) = x val n = id 3");
    let TDec::Fun { vars, .. } = &user_decs(&e)[0] else {
        panic!()
    };
    assert_eq!(e.vars.scheme(vars[0]).arity, 1);
}

#[test]
fn char_and_string_patterns_type() {
    elab(
        "fun f #\"a\" = 1 | f #\"b\" = 2 | f c = ord c
         fun g \"x\" = 1 | g s = size s
         val n = f #\"z\" + g \"hello\"",
    );
}

#[test]
fn datatype_shadowing() {
    // Rebinding a datatype name shadows the old constructors.
    elab(
        "datatype d = A | B
         val first = A
         datatype d = A of int | C
         val second = A 3
         fun pick (A n) = n | pick C = 0",
    );
}
