//! Corner cases of the module language: nested signatures, repeated
//! functor application, opaque datatype specs, exception specs, and the
//! errors signature matching must reject.

use sml_elab::{elaborate, Elaboration};

fn elab(src: &str) -> Elaboration {
    let prog = sml_ast::parse(src).unwrap_or_else(|e| panic!("parse: {e}"));
    elaborate(&prog).unwrap_or_else(|e| panic!("elab: {e}"))
}

fn elab_err(src: &str) -> String {
    let prog = sml_ast::parse(src).unwrap_or_else(|e| panic!("parse: {e}"));
    elaborate(&prog).expect_err("should fail").msg
}

#[test]
fn signature_bound_and_reused() {
    // Each use of a named signature gets fresh flexible stamps, so two
    // opaque ascriptions of the same structure produce *incompatible*
    // abstract types.
    let msg = elab_err(
        "signature S = sig type t val x : t val eq : t * t -> bool end
         structure Impl = struct type t = int val x = 1 fun eq (a : int, b) = a = b end
         abstraction A : S = Impl
         abstraction B : S = Impl
         val bad = A.eq (A.x, B.x)",
    );
    assert!(
        msg.contains("unify"),
        "distinct abstractions are incompatible: {msg}"
    );
}

#[test]
fn transparent_then_opaque() {
    // Transparent ascription keeps t = int; opaque hides it.
    elab(
        "signature S = sig type t val x : t end
         structure Impl = struct type t = int val x = 1 end
         structure T : S = Impl
         val ok = T.x + 1",
    );
    let msg = elab_err(
        "signature S = sig type t val x : t end
         structure Impl = struct type t = int val x = 1 end
         structure T :> S = Impl
         val bad = T.x + 1",
    );
    assert!(msg.contains("overloaded") || msg.contains("unify"), "{msg}");
}

#[test]
fn functor_applied_to_different_structures() {
    elab(
        "signature SHOW = sig type t val show : t -> string end
         functor Print (X : SHOW) = struct fun p v = print (X.show v) end
         structure IntShow = struct type t = int val show = itos end
         structure RealShow = struct type t = real val show = rtos end
         structure P1 = Print (IntShow)
         structure P2 = Print (RealShow)
         val _ = P1.p 3
         val _ = P2.p 2.5",
    );
    // Cross-use must fail: P1.p expects IntShow's t.
    let msg = elab_err(
        "signature SHOW = sig type t val show : t -> string end
         functor Print (X : SHOW) = struct fun p v = print (X.show v) end
         structure IntShow = struct type t = int val show = itos end
         structure P1 = Print (IntShow)
         val _ = P1.p 2.5",
    );
    assert!(msg.contains("unify"), "{msg}");
}

#[test]
fn nested_signature_spec_references() {
    // A later spec referencing an earlier substructure's type.
    elab(
        "signature OUTER = sig
           structure Sub : sig type t val mk : int -> t end
           val use : Sub.t -> int
         end
         structure Impl = struct
           structure Sub = struct type t = int fun mk (x : int) = x end
           fun use (x : int) = x
         end
         structure O : OUTER = Impl
         val r = O.use (O.Sub.mk 3)",
    );
}

#[test]
fn missing_component_errors() {
    let msg = elab_err(
        "signature S = sig val f : int -> int val g : int -> int end
         structure T : S = struct fun f x = x end",
    );
    assert!(msg.contains("lacks value `g`"), "{msg}");
    let msg = elab_err(
        "signature S = sig type t end
         structure T : S = struct val x = 1 end",
    );
    assert!(msg.contains("lacks type `t`"), "{msg}");
    let msg = elab_err(
        "signature S = sig structure Sub : sig val x : int end end
         structure T : S = struct val y = 1 end",
    );
    assert!(msg.contains("substructure"), "{msg}");
}

#[test]
fn wrong_arity_type_spec() {
    let msg = elab_err(
        "signature S = sig type 'a t end
         structure T : S = struct type t = int end",
    );
    assert!(msg.contains("arity"), "{msg}");
}

#[test]
fn datatype_spec_constructor_mismatch() {
    let msg = elab_err(
        "signature S = sig datatype d = A | B end
         structure T : S = struct datatype d = A | C end",
    );
    assert!(msg.contains("constructor"), "{msg}");
}

#[test]
fn exception_spec_matches() {
    elab(
        "signature S = sig exception E of int val trigger : int -> int end
         structure Impl = struct
           exception E of int
           fun trigger x = if x > 0 then raise E x else x
         end
         structure T : S = Impl
         val caught = T.trigger 5 handle T.E n => n",
    );
}

#[test]
fn functor_result_signature() {
    // A result ascription thins the functor body.
    let e = elab(
        "signature OUT = sig val visible : int end
         functor F (X : sig val v : int end) : OUT = struct
           val hidden = 99
           val visible = X.v + 1
         end
         structure R = F (struct val v = 41 end)
         val ok = R.visible",
    );
    assert!(!e.decs.is_empty());
    // `hidden` must be inaccessible.
    let msg = elab_err(
        "signature OUT = sig val visible : int end
         functor F (X : sig val v : int end) : OUT = struct
           val hidden = 99
           val visible = X.v + 1
         end
         structure R = F (struct val v = 41 end)
         val bad = R.hidden",
    );
    assert!(msg.contains("unbound"), "{msg}");
}

#[test]
fn structure_alias_and_rebinding() {
    elab(
        "structure A = struct val x = 1 structure In = struct val y = 2.5 end end
         structure B = A
         structure C = B.In
         val s = real B.x + C.y",
    );
}

#[test]
fn abstraction_of_functor_result() {
    // An opaque (`:>`) functor result signature hides the implementation
    // type from the application site.
    let msg = elab_err(
        "signature S = sig type t val mk : int -> t val get : t -> int end
         functor Mk (D : sig end) :> S = struct
           type t = int
           fun mk (x : int) = x
           fun get (x : int) = x
         end
         structure M = Mk (struct end)
         val bad = M.mk 1 + 1",
    );
    assert!(msg.contains("unify") || msg.contains("overloaded"), "{msg}");
    // While the abstract interface still composes.
    elab(
        "signature S = sig type t val mk : int -> t val get : t -> int end
         functor Mk (D : sig end) :> S = struct
           type t = int
           fun mk (x : int) = x
           fun get (x : int) = x
         end
         structure M = Mk (struct end)
         val ok = M.get (M.mk 41) + 1",
    );
}
