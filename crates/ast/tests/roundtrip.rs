//! Parse/print round-trip: printing a parsed program and reparsing must
//! reach a fixpoint (the printed form reparses to something that prints
//! identically). Exercised on hand-written programs, the full benchmark
//! suite, and generated expressions.

use sml_ast::{parse, print_program};

fn roundtrip(src: &str) {
    let p1 = parse(src).unwrap_or_else(|e| panic!("parse failed: {e}\n{src}"));
    let printed = print_program(&p1);
    let p2 = parse(&printed)
        .unwrap_or_else(|e| panic!("reparse failed: {}\n--- printed:\n{printed}", e.render(&printed)));
    let printed2 = print_program(&p2);
    assert_eq!(printed, printed2, "printing is not a fixpoint for:\n{src}");
}

#[test]
fn core_constructs() {
    roundtrip("val x = 1 + 2 * 3");
    roundtrip("val p = (1, 2.5, \"three\", #\"c\")");
    roundtrip("fun f 0 = 1 | f n = n * f (n - 1)");
    roundtrip("fun g x y = if x < y then x else y");
    roundtrip("val l = [1, 2, 3] @ (4 :: nil)");
    roundtrip("val r = {a = 1, b = 2.0}  val n = #a r");
    roundtrip("fun h (x :: _, {lab = y, ...}) = x + y | h (nil, _) = 0");
    roundtrip("val s = let val a = 1 val b = 2 in a + b end");
    roundtrip("val q = (1; 2; 3)");
    roundtrip("val w = while false do ()");
    roundtrip("val c = case [1] of x :: _ => x | nil => 0");
    roundtrip("val a = fn x => fn y => x y");
    roundtrip("val neg = ~5 + ~ 2");
    roundtrip("val e = (raise Fail \"boom\") handle Fail m => 0 | _ => 1");
    roundtrip("val t = (fn x => x) : int -> int");
    roundtrip("val z = a andalso b orelse c");
    roundtrip("val l2 = x as y :: rest");
}

#[test]
fn declarations() {
    roundtrip("type 'a pair = 'a * 'a");
    roundtrip("type ('a, 'b) assoc = ('a * 'b) list");
    roundtrip("datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree");
    roundtrip("datatype t = A and u = B of t");
    roundtrip("exception E and F of int * string");
    roundtrip("val rec fact = fn 0 => 1 | n => n * fact (n - 1)");
    roundtrip("fun even 0 = true | even n = odd (n - 1) and odd 0 = false | odd n = even (n - 1)");
    roundtrip("fun op @ (nil, ys) = ys | op @ (x :: xs, ys) = x :: (xs @ ys)");
}

#[test]
fn modules() {
    roundtrip("structure S = struct val x = 1 end");
    roundtrip(
        "signature SIG = sig type 'a t eqtype u val f : 'a -> 'a t exception E of int \
         structure Sub : sig val v : real end end",
    );
    roundtrip("structure T : SIG = S  structure U :> SIG = S  abstraction V : SIG = S");
    roundtrip("functor F (X : SIG) : SIG = struct val y = X.x end");
    roundtrip("structure A = F (struct val x = 2 end)");
    roundtrip("signature W = sig type t = int * int datatype d = D of t end");
}

#[test]
fn benchmarks_roundtrip() {
    // Every shipped benchmark (plus the prelude) must round-trip.
    for b in [
        include_str!("../../bench/benchmarks/prelude.sml"),
        include_str!("../../bench/benchmarks/mbrot.sml"),
        include_str!("../../bench/benchmarks/nucleic.sml"),
        include_str!("../../bench/benchmarks/simple.sml"),
        include_str!("../../bench/benchmarks/ray.sml"),
        include_str!("../../bench/benchmarks/bhut.sml"),
        include_str!("../../bench/benchmarks/sieve.sml"),
        include_str!("../../bench/benchmarks/kbc.sml"),
        include_str!("../../bench/benchmarks/boyer.sml"),
        include_str!("../../bench/benchmarks/life.sml"),
        include_str!("../../bench/benchmarks/lexgen.sml"),
        include_str!("../../bench/benchmarks/yacc.sml"),
        include_str!("../../bench/benchmarks/vliw.sml"),
    ] {
        roundtrip(b);
    }
}

mod props {
    use super::*;
    use proptest::prelude::*;

    /// Generated well-formed expressions (a subset of the grammar).
    fn arb_exp() -> impl Strategy<Value = String> {
        let leaf = prop_oneof![
            (0i64..1000).prop_map(|n| n.to_string()),
            (0i64..1000).prop_map(|n| format!("~{n}")),
            "[a-d]".prop_map(|v| v),
            Just("1.5".to_owned()),
            Just("\"s\"".to_owned()),
        ];
        leaf.prop_recursive(3, 20, 3, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}, {b})")),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| format!("(if {a} < {b} then {a} else {b})")),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} {b})")),
                inner.clone().prop_map(|a| format!("(fn x => {a})")),
                inner
                    .clone()
                    .prop_map(|a| format!("(let val y = {a} in y end)")),
                (inner.clone(), inner).prop_map(|(a, b)| format!("[{a}, {b}]")),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn generated_expressions_roundtrip(e in arb_exp()) {
            roundtrip(&format!("val it = {e}"));
        }
    }
}
