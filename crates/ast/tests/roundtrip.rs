//! Parse/print round-trip: printing a parsed program and reparsing must
//! reach a fixpoint (the printed form reparses to something that prints
//! identically). Exercised on hand-written programs, the full benchmark
//! suite, and generated expressions.

use sml_ast::{parse, print_program};

fn roundtrip(src: &str) {
    let p1 = parse(src).unwrap_or_else(|e| panic!("parse failed: {e}\n{src}"));
    let printed = print_program(&p1);
    let p2 = parse(&printed).unwrap_or_else(|e| {
        panic!(
            "reparse failed: {}\n--- printed:\n{printed}",
            e.render(&printed)
        )
    });
    let printed2 = print_program(&p2);
    assert_eq!(printed, printed2, "printing is not a fixpoint for:\n{src}");
}

#[test]
fn core_constructs() {
    roundtrip("val x = 1 + 2 * 3");
    roundtrip("val p = (1, 2.5, \"three\", #\"c\")");
    roundtrip("fun f 0 = 1 | f n = n * f (n - 1)");
    roundtrip("fun g x y = if x < y then x else y");
    roundtrip("val l = [1, 2, 3] @ (4 :: nil)");
    roundtrip("val r = {a = 1, b = 2.0}  val n = #a r");
    roundtrip("fun h (x :: _, {lab = y, ...}) = x + y | h (nil, _) = 0");
    roundtrip("val s = let val a = 1 val b = 2 in a + b end");
    roundtrip("val q = (1; 2; 3)");
    roundtrip("val w = while false do ()");
    roundtrip("val c = case [1] of x :: _ => x | nil => 0");
    roundtrip("val a = fn x => fn y => x y");
    roundtrip("val neg = ~5 + ~ 2");
    roundtrip("val e = (raise Fail \"boom\") handle Fail m => 0 | _ => 1");
    roundtrip("val t = (fn x => x) : int -> int");
    roundtrip("val z = a andalso b orelse c");
    roundtrip("val l2 = x as y :: rest");
}

#[test]
fn declarations() {
    roundtrip("type 'a pair = 'a * 'a");
    roundtrip("type ('a, 'b) assoc = ('a * 'b) list");
    roundtrip("datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree");
    roundtrip("datatype t = A and u = B of t");
    roundtrip("exception E and F of int * string");
    roundtrip("val rec fact = fn 0 => 1 | n => n * fact (n - 1)");
    roundtrip("fun even 0 = true | even n = odd (n - 1) and odd 0 = false | odd n = even (n - 1)");
    roundtrip("fun op @ (nil, ys) = ys | op @ (x :: xs, ys) = x :: (xs @ ys)");
}

#[test]
fn modules() {
    roundtrip("structure S = struct val x = 1 end");
    roundtrip(
        "signature SIG = sig type 'a t eqtype u val f : 'a -> 'a t exception E of int \
         structure Sub : sig val v : real end end",
    );
    roundtrip("structure T : SIG = S  structure U :> SIG = S  abstraction V : SIG = S");
    roundtrip("functor F (X : SIG) : SIG = struct val y = X.x end");
    roundtrip("structure A = F (struct val x = 2 end)");
    roundtrip("signature W = sig type t = int * int datatype d = D of t end");
}

#[test]
fn benchmarks_roundtrip() {
    // Every shipped benchmark (plus the prelude) must round-trip.
    for b in [
        include_str!("../../bench/benchmarks/prelude.sml"),
        include_str!("../../bench/benchmarks/mbrot.sml"),
        include_str!("../../bench/benchmarks/nucleic.sml"),
        include_str!("../../bench/benchmarks/simple.sml"),
        include_str!("../../bench/benchmarks/ray.sml"),
        include_str!("../../bench/benchmarks/bhut.sml"),
        include_str!("../../bench/benchmarks/sieve.sml"),
        include_str!("../../bench/benchmarks/kbc.sml"),
        include_str!("../../bench/benchmarks/boyer.sml"),
        include_str!("../../bench/benchmarks/life.sml"),
        include_str!("../../bench/benchmarks/lexgen.sml"),
        include_str!("../../bench/benchmarks/yacc.sml"),
        include_str!("../../bench/benchmarks/vliw.sml"),
    ] {
        roundtrip(b);
    }
}

mod props {
    use super::*;
    use sml_testkit::{run_cases, Rng};

    /// Generated well-formed expressions (a subset of the grammar).
    fn gen_exp(rng: &mut Rng, depth: usize) -> String {
        if depth == 0 || rng.range_usize(0, 10) < 3 {
            return match rng.range_usize(0, 5) {
                0 => rng.range_i64(0, 1000).to_string(),
                1 => format!("~{}", rng.range_i64(0, 1000)),
                2 => ((b'a' + rng.range_usize(0, 4) as u8) as char).to_string(),
                3 => "1.5".to_owned(),
                _ => "\"s\"".to_owned(),
            };
        }
        let d = depth - 1;
        match rng.range_usize(0, 7) {
            0 => format!("({} + {})", gen_exp(rng, d), gen_exp(rng, d)),
            1 => format!("({}, {})", gen_exp(rng, d), gen_exp(rng, d)),
            2 => {
                let (a, b) = (gen_exp(rng, d), gen_exp(rng, d));
                format!("(if {a} < {b} then {a} else {b})")
            }
            3 => format!("({} {})", gen_exp(rng, d), gen_exp(rng, d)),
            4 => format!("(fn x => {})", gen_exp(rng, d)),
            5 => format!("(let val y = {} in y end)", gen_exp(rng, d)),
            _ => format!("[{}, {}]", gen_exp(rng, d), gen_exp(rng, d)),
        }
    }

    #[test]
    fn generated_expressions_roundtrip() {
        run_cases("generated_expressions_roundtrip", 64, |rng| {
            let e = gen_exp(rng, 3);
            roundtrip(&format!("val it = {e}"));
        });
    }
}
