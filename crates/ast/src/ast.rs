//! The raw abstract syntax of the SML subset, as produced by the parser.
//!
//! This is the "Raw Abstract Syntax" box of the paper's Figure 3: no name
//! resolution (a `Pat::Var` may turn out to be a nullary constructor) and
//! no types beyond user annotations. Elaboration (crate `sml-elab`) turns
//! this into typed abstract syntax.

use crate::intern::Symbol;
use crate::span::Span;
use std::fmt;

/// A possibly-qualified long identifier, e.g. `x` or `S.T.x`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Path {
    /// Structure qualifiers, outermost first (`[S, T]` in `S.T.x`).
    pub qualifiers: Vec<Symbol>,
    /// The final identifier.
    pub name: Symbol,
}

impl Path {
    /// An unqualified path.
    pub fn simple(name: Symbol) -> Path {
        Path {
            qualifiers: Vec::new(),
            name,
        }
    }

    /// True if the path has no qualifiers.
    pub fn is_simple(&self) -> bool {
        self.qualifiers.is_empty()
    }
}

impl fmt::Debug for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for q in &self.qualifiers {
            write!(f, "{q}.")?;
        }
        write!(f, "{}", self.name)
    }
}

/// An expression with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Exp {
    /// The expression proper.
    pub kind: ExpKind,
    /// Source location.
    pub span: Span,
}

/// Expression forms.
#[derive(Clone, Debug, PartialEq)]
pub enum ExpKind {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal.
    Str(String),
    /// Character literal.
    Char(u8),
    /// Variable or nullary-constructor reference.
    Var(Path),
    /// Tuple `(e1, ..., en)`; `()` (unit) is the empty tuple.
    Tuple(Vec<Exp>),
    /// Record `{l1 = e1, ...}`.
    Record(Vec<(Symbol, Exp)>),
    /// Record selector `#lab`, a first-class function.
    Selector(Symbol),
    /// List literal `[e1, ..., en]`.
    List(Vec<Exp>),
    /// Application `f x` (infix operators are desugared to this).
    App(Box<Exp>, Box<Exp>),
    /// `fn` abstraction with one or more rules.
    Fn(Vec<Rule>),
    /// `case e of rules`.
    Case(Box<Exp>, Vec<Rule>),
    /// `if e1 then e2 else e3`.
    If(Box<Exp>, Box<Exp>, Box<Exp>),
    /// `e1 andalso e2`.
    Andalso(Box<Exp>, Box<Exp>),
    /// `e1 orelse e2`.
    Orelse(Box<Exp>, Box<Exp>),
    /// `while e1 do e2`.
    While(Box<Exp>, Box<Exp>),
    /// Sequencing `(e1; ...; en)`; value of the last expression.
    Seq(Vec<Exp>),
    /// `let decs in e end` (the body may itself be a sequence).
    Let(Vec<Dec>, Box<Exp>),
    /// `raise e`.
    Raise(Box<Exp>),
    /// `e handle rules`.
    Handle(Box<Exp>, Vec<Rule>),
    /// Type constraint `e : ty`.
    Constraint(Box<Exp>, Ty),
}

/// A `pat => exp` match rule.
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// Left-hand pattern.
    pub pat: Pat,
    /// Right-hand expression.
    pub exp: Exp,
}

/// A pattern with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Pat {
    /// The pattern proper.
    pub kind: PatKind,
    /// Source location.
    pub span: Span,
}

/// Pattern forms.
#[derive(Clone, Debug, PartialEq)]
pub enum PatKind {
    /// Wildcard `_`.
    Wild,
    /// Variable or nullary constructor (disambiguated during elaboration).
    Var(Path),
    /// Integer literal pattern.
    Int(i64),
    /// String literal pattern.
    Str(String),
    /// Character literal pattern.
    Char(u8),
    /// Constructor application `C p`.
    Con(Path, Box<Pat>),
    /// Tuple pattern; `()` is the empty tuple.
    Tuple(Vec<Pat>),
    /// Record pattern; `flexible` when `...` is present.
    Record {
        /// Listed fields.
        fields: Vec<(Symbol, Pat)>,
        /// Whether the pattern ends with `...`.
        flexible: bool,
    },
    /// List pattern `[p1, ..., pn]`.
    List(Vec<Pat>),
    /// Layered pattern `x as p`.
    As(Symbol, Box<Pat>),
    /// Constraint `p : ty`.
    Constraint(Box<Pat>, Ty),
}

/// A type expression with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Ty {
    /// The type proper.
    pub kind: TyKind,
    /// Source location.
    pub span: Span,
}

/// Type-expression forms.
#[derive(Clone, Debug, PartialEq)]
pub enum TyKind {
    /// Type variable `'a` / equality type variable `''a`.
    Var(Symbol),
    /// Type constructor application `(ty, ...) path`.
    Con(Path, Vec<Ty>),
    /// Product type `t1 * ... * tn`.
    Tuple(Vec<Ty>),
    /// Record type `{l1 : t1, ...}`.
    Record(Vec<(Symbol, Ty)>),
    /// Function type `t1 -> t2`.
    Arrow(Box<Ty>, Box<Ty>),
}

/// A declaration with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Dec {
    /// The declaration proper.
    pub kind: DecKind,
    /// Source location.
    pub span: Span,
}

/// Declaration forms (core and module language).
#[derive(Clone, Debug, PartialEq)]
pub enum DecKind {
    /// `val [tyvars] pat = exp`.
    Val {
        /// Explicitly bound type variables (may be empty).
        tyvars: Vec<Symbol>,
        /// Binding pattern.
        pat: Pat,
        /// Bound expression.
        exp: Exp,
    },
    /// `fun` declarations (and `val rec`, desugared); mutually recursive
    /// via `and`.
    Fun {
        /// Explicitly bound type variables (may be empty).
        tyvars: Vec<Symbol>,
        /// The function bindings.
        funs: Vec<FunBind>,
    },
    /// `type` abbreviations.
    Type(Vec<TypeBind>),
    /// `datatype` declarations, mutually recursive via `and`.
    Datatype(Vec<DataBind>),
    /// `exception` declarations.
    Exception(Vec<ExBind>),
    /// `structure` (and `abstraction`) declarations.
    Structure(Vec<StrBind>),
    /// `signature` declarations.
    Signature(Vec<SigBind>),
    /// `functor` declarations.
    Functor(Vec<FctBind>),
}

/// One `fun` binding: a named function with clausal definition.
#[derive(Clone, Debug, PartialEq)]
pub struct FunBind {
    /// Function name.
    pub name: Symbol,
    /// Clauses; every clause must have the same number of curried patterns.
    pub clauses: Vec<Clause>,
}

/// One clause of a clausal function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct Clause {
    /// Curried argument patterns.
    pub pats: Vec<Pat>,
    /// Optional result type annotation.
    pub ret_ty: Option<Ty>,
    /// Clause body.
    pub body: Exp,
}

/// One `type` binding.
#[derive(Clone, Debug, PartialEq)]
pub struct TypeBind {
    /// Formal type parameters.
    pub tyvars: Vec<Symbol>,
    /// Abbreviation name.
    pub name: Symbol,
    /// Definition.
    pub ty: Ty,
}

/// One `datatype` binding.
#[derive(Clone, Debug, PartialEq)]
pub struct DataBind {
    /// Formal type parameters.
    pub tyvars: Vec<Symbol>,
    /// Datatype name.
    pub name: Symbol,
    /// Constructors with optional payload types.
    pub cons: Vec<(Symbol, Option<Ty>)>,
}

/// One `exception` binding.
#[derive(Clone, Debug, PartialEq)]
pub struct ExBind {
    /// Exception constructor name.
    pub name: Symbol,
    /// Optional payload type.
    pub ty: Option<Ty>,
}

/// One `structure` or `abstraction` binding.
#[derive(Clone, Debug, PartialEq)]
pub struct StrBind {
    /// Structure name.
    pub name: Symbol,
    /// Optional ascription; `opaque` is true for `abstraction`/`:>`.
    pub ascription: Option<(SigExp, bool)>,
    /// Defining structure expression.
    pub def: StrExp,
}

/// One `signature` binding.
#[derive(Clone, Debug, PartialEq)]
pub struct SigBind {
    /// Signature name.
    pub name: Symbol,
    /// Definition.
    pub def: SigExp,
}

/// One `functor` binding.
#[derive(Clone, Debug, PartialEq)]
pub struct FctBind {
    /// Functor name.
    pub name: Symbol,
    /// Formal parameter name.
    pub param: Symbol,
    /// Parameter signature.
    pub param_sig: SigExp,
    /// Optional result ascription; `bool` is opacity.
    pub result_sig: Option<(SigExp, bool)>,
    /// Functor body.
    pub body: StrExp,
}

/// Structure expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum StrExp {
    /// Reference to a bound structure.
    Var(Path),
    /// `struct decs end`.
    Struct(Vec<Dec>, Span),
    /// Functor application `F (strexp)`.
    App(Symbol, Box<StrExp>, Span),
    /// Ascription `strexp : sig` / `strexp :> sig`.
    Ascribe(Box<StrExp>, SigExp, bool),
}

/// Signature expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum SigExp {
    /// Reference to a bound signature.
    Var(Symbol),
    /// `sig specs end`.
    Sig(Vec<Spec>, Span),
}

/// Signature specifications.
#[derive(Clone, Debug, PartialEq)]
pub enum Spec {
    /// `val x : ty`.
    Val(Symbol, Ty),
    /// `type`/`eqtype` specification, optionally manifest.
    Type {
        /// Formal type parameters.
        tyvars: Vec<Symbol>,
        /// Type constructor name.
        name: Symbol,
        /// True for `eqtype`.
        eq: bool,
        /// Manifest definition (`type t = ty`), if any.
        def: Option<Ty>,
    },
    /// `datatype` specification.
    Datatype(DataBind),
    /// `exception` specification.
    Exception(Symbol, Option<Ty>),
    /// Substructure specification `structure S : SIG`.
    Structure(Symbol, SigExp),
}

/// A whole compilation unit: a sequence of top-level declarations.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Program {
    /// Top-level declarations in order.
    pub decs: Vec<Dec>,
}
