//! Free-name extraction over top-level declarations.
//!
//! The component partitioner in `crates/core` needs to know, for every
//! top-level [`Dec`], which names it *binds* and which outside names it
//! *references*, per namespace (values/constructors, type constructors,
//! structures, signatures, functors). This module performs that purely
//! syntactic extraction. Names bound locally (by `fn`/`case` patterns,
//! `let` declarations, `struct ... end` bodies, functor parameters) are
//! tracked with a scope stack so they do not leak into the reference
//! sets.
//!
//! The extraction is deliberately *approximate* in one place: a bare
//! lowercase name in a pattern is a fresh binder unless an earlier
//! declaration bound it as a datatype/exception constructor, which the
//! extractor cannot know locally. Such names are reported separately in
//! [`DecNames::pat_vars`]; the graph builder resolves them against the
//! constructors actually in scope. Since the incremental compiler
//! invalidates by content hashes (not by this graph), an imprecise edge
//! can only perturb statistics, never correctness.

use crate::ast::*;
use crate::intern::Symbol;
use std::collections::HashSet;

/// The names a single top-level declaration binds and references,
/// grouped by namespace.
#[derive(Debug, Default, Clone)]
pub struct DecNames {
    /// Value-namespace binders (variables and constructors).
    pub binds_vals: HashSet<Symbol>,
    /// The subset of [`DecNames::binds_vals`] bound as *constructors*
    /// (datatype and exception constructors).
    pub binds_cons: HashSet<Symbol>,
    /// Type-constructor binders (`type`, `datatype`).
    pub binds_tys: HashSet<Symbol>,
    /// Structure binders.
    pub binds_strs: HashSet<Symbol>,
    /// Signature binders.
    pub binds_sigs: HashSet<Symbol>,
    /// Functor binders.
    pub binds_fcts: HashSet<Symbol>,
    /// Referenced value-namespace names (variables, constructors).
    pub refs_vals: HashSet<Symbol>,
    /// Referenced type constructors.
    pub refs_tys: HashSet<Symbol>,
    /// Referenced structures (the outermost qualifier of any `S.x`).
    pub refs_strs: HashSet<Symbol>,
    /// Referenced signatures.
    pub refs_sigs: HashSet<Symbol>,
    /// Referenced functors.
    pub refs_fcts: HashSet<Symbol>,
    /// Bare names in *pattern* position: each is a constructor reference
    /// if some earlier declaration bound it as a constructor, and a
    /// fresh binder otherwise. The graph builder disambiguates.
    pub pat_vars: HashSet<Symbol>,
}

/// Extracts the bound/referenced names of one top-level declaration.
///
/// # Examples
///
/// ```
/// let prog = sml_ast::parse("fun f x = g (x + 1)").unwrap();
/// let names = sml_ast::dec_names(&prog.decs[0]);
/// assert!(names.binds_vals.contains(&sml_ast::Symbol::intern("f")));
/// assert!(names.refs_vals.contains(&sml_ast::Symbol::intern("g")));
/// assert!(!names.refs_vals.contains(&sml_ast::Symbol::intern("x")));
/// ```
pub fn dec_names(dec: &Dec) -> DecNames {
    let mut w = Walker::default();
    w.push();
    w.dec(dec, true);
    w.out
}

/// One lexical scope of locally bound names.
#[derive(Debug, Default)]
struct Scope {
    vals: HashSet<Symbol>,
    tys: HashSet<Symbol>,
    strs: HashSet<Symbol>,
    sigs: HashSet<Symbol>,
    fcts: HashSet<Symbol>,
}

#[derive(Debug, Default)]
struct Walker {
    scopes: Vec<Scope>,
    out: DecNames,
}

macro_rules! namespace {
    ($bound:ident, $bind:ident, $reference:ident, $scope:ident, $binds:ident, $refs:ident) => {
        fn $bound(&self, name: Symbol) -> bool {
            self.scopes.iter().any(|s| s.$scope.contains(&name))
        }
        /// Records a binder: top-level binders land in the output,
        /// local ones only in the innermost scope.
        fn $bind(&mut self, name: Symbol, top: bool) {
            if top {
                self.out.$binds.insert(name);
            }
            if let Some(s) = self.scopes.last_mut() {
                s.$scope.insert(name);
            }
        }
        fn $reference(&mut self, name: Symbol) {
            if !self.$bound(name) {
                self.out.$refs.insert(name);
            }
        }
    };
}

impl Walker {
    fn push(&mut self) {
        self.scopes.push(Scope::default());
    }

    fn pop(&mut self) {
        self.scopes.pop();
    }

    namespace!(val_bound, bind_val, ref_val, vals, binds_vals, refs_vals);
    namespace!(ty_bound, bind_ty, ref_ty, tys, binds_tys, refs_tys);
    namespace!(str_bound, bind_str, ref_str, strs, binds_strs, refs_strs);
    namespace!(sig_bound, bind_sig, ref_sig, sigs, binds_sigs, refs_sigs);
    namespace!(fct_bound, bind_fct, ref_fct, fcts, binds_fcts, refs_fcts);

    /// A value-position path: qualified paths reference their outermost
    /// structure, simple ones the value name itself.
    fn ref_val_path(&mut self, p: &Path) {
        match p.qualifiers.first() {
            Some(&q) => self.ref_str(q),
            None => self.ref_val(p.name),
        }
    }

    fn ref_ty_path(&mut self, p: &Path) {
        match p.qualifiers.first() {
            Some(&q) => self.ref_str(q),
            None => self.ref_ty(p.name),
        }
    }

    fn ref_str_path(&mut self, p: &Path) {
        match p.qualifiers.first() {
            Some(&q) => self.ref_str(q),
            None => self.ref_str(p.name),
        }
    }

    fn ty(&mut self, t: &Ty) {
        match &t.kind {
            TyKind::Var(_) => {}
            TyKind::Con(path, args) => {
                self.ref_ty_path(path);
                for a in args {
                    self.ty(a);
                }
            }
            TyKind::Tuple(parts) => parts.iter().for_each(|t| self.ty(t)),
            TyKind::Record(fields) => fields.iter().for_each(|(_, t)| self.ty(t)),
            TyKind::Arrow(a, b) => {
                self.ty(a);
                self.ty(b);
            }
        }
    }

    /// Walks a pattern, recording its binders into the innermost scope
    /// (and, when `top`, into the output bind set).
    fn pat(&mut self, p: &Pat, top: bool) {
        match &p.kind {
            PatKind::Wild | PatKind::Int(_) | PatKind::Str(_) | PatKind::Char(_) => {}
            PatKind::Var(path) => {
                if path.is_simple() {
                    // Binder unless an earlier dec made it a constructor;
                    // report both readings and let the graph decide.
                    self.out.pat_vars.insert(path.name);
                    self.bind_val(path.name, top);
                } else {
                    self.ref_val_path(path);
                }
            }
            PatKind::Con(path, arg) => {
                self.ref_val_path(path);
                self.pat(arg, top);
            }
            PatKind::Tuple(parts) => parts.iter().for_each(|p| self.pat(p, top)),
            PatKind::Record { fields, .. } => fields.iter().for_each(|(_, p)| self.pat(p, top)),
            PatKind::List(parts) => parts.iter().for_each(|p| self.pat(p, top)),
            PatKind::As(name, inner) => {
                self.bind_val(*name, top);
                self.pat(inner, top);
            }
            PatKind::Constraint(inner, ty) => {
                self.pat(inner, top);
                self.ty(ty);
            }
        }
    }

    fn rules(&mut self, rules: &[Rule]) {
        for r in rules {
            self.push();
            self.pat(&r.pat, false);
            self.exp(&r.exp);
            self.pop();
        }
    }

    fn exp(&mut self, e: &Exp) {
        match &e.kind {
            ExpKind::Int(_)
            | ExpKind::Real(_)
            | ExpKind::Str(_)
            | ExpKind::Char(_)
            | ExpKind::Selector(_) => {}
            ExpKind::Var(path) => self.ref_val_path(path),
            ExpKind::Tuple(parts) | ExpKind::List(parts) | ExpKind::Seq(parts) => {
                parts.iter().for_each(|e| self.exp(e))
            }
            ExpKind::Record(fields) => fields.iter().for_each(|(_, e)| self.exp(e)),
            ExpKind::App(f, a) => {
                self.exp(f);
                self.exp(a);
            }
            ExpKind::Fn(rules) | ExpKind::Handle(_, rules) | ExpKind::Case(_, rules) => {
                if let ExpKind::Handle(scrut, _) | ExpKind::Case(scrut, _) = &e.kind {
                    self.exp(scrut);
                }
                self.rules(rules);
            }
            ExpKind::If(c, t, f) => {
                self.exp(c);
                self.exp(t);
                self.exp(f);
            }
            ExpKind::Andalso(a, b) | ExpKind::Orelse(a, b) | ExpKind::While(a, b) => {
                self.exp(a);
                self.exp(b);
            }
            ExpKind::Let(decs, body) => {
                self.push();
                for d in decs {
                    self.dec(d, false);
                }
                self.exp(body);
                self.pop();
            }
            ExpKind::Raise(inner) => self.exp(inner),
            ExpKind::Constraint(inner, ty) => {
                self.exp(inner);
                self.ty(ty);
            }
        }
    }

    fn str_exp(&mut self, s: &StrExp) {
        match s {
            StrExp::Var(path) => self.ref_str_path(path),
            StrExp::Struct(decs, _) => {
                self.push();
                for d in decs {
                    self.dec(d, false);
                }
                self.pop();
            }
            StrExp::App(fct, arg, _) => {
                self.ref_fct(*fct);
                self.str_exp(arg);
            }
            StrExp::Ascribe(base, sig, _) => {
                self.str_exp(base);
                self.sig_exp(sig);
            }
        }
    }

    fn sig_exp(&mut self, s: &SigExp) {
        match s {
            SigExp::Var(name) => self.ref_sig(*name),
            SigExp::Sig(specs, _) => {
                self.push();
                for spec in specs {
                    match spec {
                        Spec::Val(_, ty) => self.ty(ty),
                        Spec::Type { name, def, .. } => {
                            if let Some(ty) = def {
                                self.ty(ty);
                            }
                            self.bind_ty(*name, false);
                        }
                        Spec::Datatype(db) => {
                            self.bind_ty(db.name, false);
                            for (_, payload) in &db.cons {
                                if let Some(ty) = payload {
                                    self.ty(ty);
                                }
                            }
                        }
                        Spec::Exception(_, payload) => {
                            if let Some(ty) = payload {
                                self.ty(ty);
                            }
                        }
                        Spec::Structure(_, sig) => self.sig_exp(sig),
                    }
                }
                self.pop();
            }
        }
    }

    fn dec(&mut self, d: &Dec, top: bool) {
        match &d.kind {
            DecKind::Val { pat, exp, .. } => {
                // `val x = x + 1` references the *previous* x: the
                // right-hand side is walked before the pattern binds.
                self.exp(exp);
                self.pat(pat, top);
            }
            DecKind::Fun { funs, .. } => {
                // Function names are in scope in every body (recursion,
                // including mutual recursion via `and`).
                for f in funs {
                    self.bind_val(f.name, top);
                }
                for f in funs {
                    for c in &f.clauses {
                        self.push();
                        for p in &c.pats {
                            self.pat(p, false);
                        }
                        if let Some(ty) = &c.ret_ty {
                            self.ty(ty);
                        }
                        self.exp(&c.body);
                        self.pop();
                    }
                }
            }
            DecKind::Type(binds) => {
                // Abbreviations are not recursive: bodies first.
                for b in binds {
                    self.ty(&b.ty);
                }
                for b in binds {
                    self.bind_ty(b.name, top);
                }
            }
            DecKind::Datatype(binds) => {
                // The whole `and`-group is mutually recursive.
                for b in binds {
                    self.bind_ty(b.name, top);
                }
                for b in binds {
                    for (con, payload) in &b.cons {
                        self.bind_val(*con, top);
                        if top {
                            self.out.binds_cons.insert(*con);
                        }
                        if let Some(ty) = payload {
                            self.ty(ty);
                        }
                    }
                }
            }
            DecKind::Exception(binds) => {
                for b in binds {
                    if let Some(ty) = &b.ty {
                        self.ty(ty);
                    }
                    self.bind_val(b.name, top);
                    if top {
                        self.out.binds_cons.insert(b.name);
                    }
                }
            }
            DecKind::Structure(binds) => {
                for b in binds {
                    if let Some((sig, _)) = &b.ascription {
                        self.sig_exp(sig);
                    }
                    self.str_exp(&b.def);
                    self.bind_str(b.name, top);
                }
            }
            DecKind::Signature(binds) => {
                for b in binds {
                    self.sig_exp(&b.def);
                    self.bind_sig(b.name, top);
                }
            }
            DecKind::Functor(binds) => {
                for b in binds {
                    self.sig_exp(&b.param_sig);
                    if let Some((sig, _)) = &b.result_sig {
                        self.sig_exp(sig);
                    }
                    self.push();
                    self.bind_str(b.param, false);
                    self.str_exp(&b.body);
                    self.pop();
                    self.bind_fct(b.name, top);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn names(src: &str) -> DecNames {
        let prog = parse(src).unwrap();
        assert_eq!(prog.decs.len(), 1, "want exactly one dec in {src:?}");
        dec_names(&prog.decs[0])
    }

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn val_rhs_sees_previous_binding() {
        let n = names("val x = x + 1");
        assert!(n.refs_vals.contains(&sym("x")));
        assert!(n.binds_vals.contains(&sym("x")));
    }

    #[test]
    fn fun_recursion_is_not_a_reference() {
        let n = names("fun even n = if n = 0 then true else odd (n - 1) and odd n = even (n - 1)");
        assert!(!n.refs_vals.contains(&sym("even")));
        assert!(!n.refs_vals.contains(&sym("odd")));
        assert!(n.binds_vals.contains(&sym("even")));
        assert!(n.binds_vals.contains(&sym("odd")));
    }

    #[test]
    fn local_binders_do_not_leak() {
        let n = names("val y = let val inner = 3 in inner + outer end");
        assert!(!n.refs_vals.contains(&sym("inner")));
        assert!(n.refs_vals.contains(&sym("outer")));
    }

    #[test]
    fn qualified_names_reference_the_structure() {
        let n = names("val z = S.f (T.g 1)");
        assert!(n.refs_strs.contains(&sym("S")));
        assert!(n.refs_strs.contains(&sym("T")));
        assert!(!n.refs_vals.contains(&sym("f")));
    }

    #[test]
    fn datatype_binds_cons_and_refs_payload_tycons() {
        let n = names("datatype t = Leaf of elem | Node of t * t");
        assert!(n.binds_tys.contains(&sym("t")));
        assert!(n.binds_cons.contains(&sym("Leaf")));
        assert!(n.binds_vals.contains(&sym("Node")));
        assert!(n.refs_tys.contains(&sym("elem")));
        assert!(!n.refs_tys.contains(&sym("t")));
    }

    #[test]
    fn pattern_vars_are_reported_for_disambiguation() {
        let n = names("fun f nil = 0 | f x = 1");
        assert!(n.pat_vars.contains(&sym("nil")));
        assert!(n.pat_vars.contains(&sym("x")));
    }

    #[test]
    fn structure_walks_signature_and_body() {
        let n = names("structure S : SIG = struct val a = helper 1 fun b x = x end");
        assert!(n.binds_strs.contains(&sym("S")));
        assert!(n.refs_sigs.contains(&sym("SIG")));
        assert!(n.refs_vals.contains(&sym("helper")));
        assert!(!n.refs_vals.contains(&sym("a")));
    }

    #[test]
    fn functor_refs_param_sig_not_param() {
        let n = names("functor F (X : SIG) = struct val v = X.item end");
        assert!(n.binds_fcts.contains(&sym("F")));
        assert!(n.refs_sigs.contains(&sym("SIG")));
        assert!(!n.refs_strs.contains(&sym("X")));
    }
}
