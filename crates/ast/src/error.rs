//! Parse errors.

use crate::span::Span;
use std::fmt;

/// An error produced by the lexer or parser.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Where the error occurred.
    pub span: Span,
    /// Human-readable description, lowercase, no trailing punctuation.
    pub msg: String,
    /// True when the error reports a resource budget (such as the
    /// recursion-depth limit) rather than malformed syntax; the driver
    /// classifies these separately.
    pub limit: bool,
}

impl ParseError {
    /// Renders the error with 1-based line/column resolved against `src`.
    pub fn render(&self, src: &str) -> String {
        let (line, col) = self.span.line_col(src);
        format!("{line}:{col}: syntax error: {}", self.msg)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "syntax error at {}: {}", self.span, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Result alias for lexing/parsing operations.
pub type ParseResult<T> = Result<T, ParseError>;
