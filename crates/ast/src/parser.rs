//! Recursive-descent parser for the SML subset.
//!
//! Infix operators use the Definition's default fixity table (there are no
//! user `infix` declarations in the subset); applications bind tighter
//! than infixes, which bind tighter than type constraints, `andalso`,
//! `orelse`, and `handle`, in that order. `raise`, `if`, `case`, `fn`, and
//! `while` extend as far right as possible.

use crate::ast::*;
use crate::error::{ParseError, ParseResult};
use crate::intern::Symbol;
use crate::lexer::Lexer;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses a complete program (a sequence of top-level declarations).
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
///
/// # Examples
///
/// ```
/// let prog = sml_ast::parse("val x = 1 + 2").unwrap();
/// assert_eq!(prog.decs.len(), 1);
/// ```
pub fn parse(src: &str) -> ParseResult<Program> {
    let tokens = Lexer::new(src).tokenize()?;
    Parser::new(tokens).program()
}

/// Parses a single expression (used by tests and the REPL example).
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
pub fn parse_exp(src: &str) -> ParseResult<Exp> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser::new(tokens);
    let e = p.exp()?;
    p.expect(TokenKind::Eof)?;
    Ok(e)
}

/// Default fixity of an infix operator: `(precedence, right_assoc)`.
fn fixity(name: &str) -> Option<(u8, bool)> {
    match name {
        "::" | "@" => Some((5, true)),
        "*" | "/" | "div" | "mod" => Some((7, false)),
        "+" | "-" | "^" => Some((6, false)),
        "=" | "<>" | "<" | ">" | "<=" | ">=" => Some((4, false)),
        ":=" | "o" => Some((3, false)),
        _ => None,
    }
}

/// Budget on nested recursive-descent calls, keeping adversarially
/// nested input (e.g. ten thousand open parentheses) from overflowing
/// the stack. One budget level costs up to ~10 parser frames, which in
/// unoptimized builds run to several KB each, so 64 levels stays safely
/// under a default 2 MiB thread stack while comfortably exceeding the
/// nesting of real programs (the paper's benchmark suite peaks below
/// 20).
const MAX_PARSE_DEPTH: u32 = 64;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: u32,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Parser {
        Parser {
            tokens,
            pos: 0,
            depth: 0,
        }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if *self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> ParseResult<T> {
        Err(ParseError {
            span: self.span(),
            msg: msg.into(),
            limit: false,
        })
    }

    /// Enters one level of recursive parsing, failing with a
    /// budget-class [`ParseError`] once the nesting budget is exhausted.
    /// Every grammar cycle passes through one of the budgeted
    /// nonterminals (`exp`, `pat`, `ty`, `strexp`, `sigexp`), so this
    /// bounds the parser's stack depth on adversarial input.
    fn enter(&mut self) -> ParseResult<()> {
        if self.depth >= MAX_PARSE_DEPTH {
            return Err(ParseError {
                span: self.span(),
                msg: format!("expression nesting exceeds the depth budget of {MAX_PARSE_DEPTH}"),
                limit: true,
            });
        }
        self.depth += 1;
        Ok(())
    }

    fn expect(&mut self, kind: TokenKind) -> ParseResult<()> {
        if *self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{kind}`, found `{}`", self.peek()))
        }
    }

    fn ident(&mut self) -> ParseResult<Symbol> {
        match self.peek() {
            TokenKind::Ident(s) => {
                let s = *s;
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found `{other}`")),
        }
    }

    /// Any value identifier: alphanumeric or (possibly `op`-prefixed)
    /// symbolic.
    fn vid(&mut self) -> ParseResult<Symbol> {
        if self.eat(TokenKind::Op) { /* `op` is a no-op marker here */ }
        match self.peek() {
            TokenKind::Ident(s) | TokenKind::SymIdent(s) => {
                let s = *s;
                self.bump();
                Ok(s)
            }
            TokenKind::Equals => {
                self.bump();
                Ok(Symbol::intern("="))
            }
            other => self.err(format!("expected value identifier, found `{other}`")),
        }
    }

    /// A long identifier `A.B.x`.
    fn path(&mut self) -> ParseResult<Path> {
        let mut first = self.ident()?;
        let mut quals = Vec::new();
        while *self.peek() == TokenKind::Dot {
            self.bump();
            quals.push(first);
            match self.peek() {
                TokenKind::Ident(s) => {
                    first = *s;
                    self.bump();
                }
                TokenKind::SymIdent(s) => {
                    first = *s;
                    self.bump();
                }
                other => {
                    return self.err(format!("expected identifier after `.`, found `{other}`"))
                }
            }
        }
        Ok(Path {
            qualifiers: quals,
            name: first,
        })
    }

    // ----- programs and declarations -------------------------------------

    fn program(&mut self) -> ParseResult<Program> {
        let mut decs = Vec::new();
        loop {
            while self.eat(TokenKind::Semi) {}
            if *self.peek() == TokenKind::Eof {
                return Ok(Program { decs });
            }
            self.dec_seq(&mut decs)?;
        }
    }

    /// Parses one syntactic declaration, which may expand to several `Dec`s
    /// (e.g. `val x = 1 and y = 2`).
    fn dec_seq(&mut self, out: &mut Vec<Dec>) -> ParseResult<()> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Val => {
                self.bump();
                let tyvars = self.tyvarseq()?;
                if self.eat(TokenKind::Rec) {
                    // `val rec f = fn match` desugars to `fun`.
                    let mut funs = Vec::new();
                    loop {
                        let name = self.vid()?;
                        self.expect(TokenKind::Equals)?;
                        self.expect(TokenKind::Fn)?;
                        let rules = self.match_rules()?;
                        let clauses = rules
                            .into_iter()
                            .map(|r| Clause {
                                pats: vec![r.pat],
                                ret_ty: None,
                                body: r.exp,
                            })
                            .collect();
                        funs.push(FunBind { name, clauses });
                        if !self.eat(TokenKind::And) {
                            break;
                        }
                        self.eat(TokenKind::Rec);
                    }
                    out.push(Dec {
                        kind: DecKind::Fun { tyvars, funs },
                        span: start.to(self.prev_span()),
                    });
                } else {
                    loop {
                        let pat = self.pat()?;
                        self.expect(TokenKind::Equals)?;
                        let exp = self.exp()?;
                        out.push(Dec {
                            kind: DecKind::Val {
                                tyvars: tyvars.clone(),
                                pat,
                                exp,
                            },
                            span: start.to(self.prev_span()),
                        });
                        if !self.eat(TokenKind::And) {
                            break;
                        }
                    }
                }
            }
            TokenKind::Fun => {
                self.bump();
                let tyvars = self.tyvarseq()?;
                let mut funs = Vec::new();
                loop {
                    funs.push(self.funbind()?);
                    if !self.eat(TokenKind::And) {
                        break;
                    }
                }
                out.push(Dec {
                    kind: DecKind::Fun { tyvars, funs },
                    span: start.to(self.prev_span()),
                });
            }
            TokenKind::Type => {
                self.bump();
                let mut binds = Vec::new();
                loop {
                    let tyvars = self.tyvarseq()?;
                    let name = self.ident()?;
                    self.expect(TokenKind::Equals)?;
                    let ty = self.ty()?;
                    binds.push(TypeBind { tyvars, name, ty });
                    if !self.eat(TokenKind::And) {
                        break;
                    }
                }
                out.push(Dec {
                    kind: DecKind::Type(binds),
                    span: start.to(self.prev_span()),
                });
            }
            TokenKind::Datatype => {
                self.bump();
                let mut binds = Vec::new();
                loop {
                    binds.push(self.databind()?);
                    if !self.eat(TokenKind::And) {
                        break;
                    }
                }
                out.push(Dec {
                    kind: DecKind::Datatype(binds),
                    span: start.to(self.prev_span()),
                });
            }
            TokenKind::Exception => {
                self.bump();
                let mut binds = Vec::new();
                loop {
                    let name = self.vid()?;
                    let ty = if self.eat(TokenKind::Of) {
                        Some(self.ty()?)
                    } else {
                        None
                    };
                    binds.push(ExBind { name, ty });
                    if !self.eat(TokenKind::And) {
                        break;
                    }
                }
                out.push(Dec {
                    kind: DecKind::Exception(binds),
                    span: start.to(self.prev_span()),
                });
            }
            TokenKind::Structure | TokenKind::Abstraction => {
                let is_abstraction = self.bump() == TokenKind::Abstraction;
                let mut binds = Vec::new();
                loop {
                    let name = self.ident()?;
                    let ascription = if self.eat(TokenKind::Colon) {
                        Some((self.sigexp()?, is_abstraction))
                    } else if self.eat(TokenKind::ColonGt) {
                        Some((self.sigexp()?, true))
                    } else if is_abstraction {
                        return self.err("`abstraction` requires a signature ascription");
                    } else {
                        None
                    };
                    self.expect(TokenKind::Equals)?;
                    let def = self.strexp()?;
                    binds.push(StrBind {
                        name,
                        ascription,
                        def,
                    });
                    if !self.eat(TokenKind::And) {
                        break;
                    }
                }
                out.push(Dec {
                    kind: DecKind::Structure(binds),
                    span: start.to(self.prev_span()),
                });
            }
            TokenKind::Signature => {
                self.bump();
                let mut binds = Vec::new();
                loop {
                    let name = self.ident()?;
                    self.expect(TokenKind::Equals)?;
                    let def = self.sigexp()?;
                    binds.push(SigBind { name, def });
                    if !self.eat(TokenKind::And) {
                        break;
                    }
                }
                out.push(Dec {
                    kind: DecKind::Signature(binds),
                    span: start.to(self.prev_span()),
                });
            }
            TokenKind::Functor => {
                self.bump();
                let mut binds = Vec::new();
                loop {
                    let name = self.ident()?;
                    self.expect(TokenKind::LParen)?;
                    let param = self.ident()?;
                    self.expect(TokenKind::Colon)?;
                    let param_sig = self.sigexp()?;
                    self.expect(TokenKind::RParen)?;
                    let result_sig = if self.eat(TokenKind::Colon) {
                        Some((self.sigexp()?, false))
                    } else if self.eat(TokenKind::ColonGt) {
                        Some((self.sigexp()?, true))
                    } else {
                        None
                    };
                    self.expect(TokenKind::Equals)?;
                    let body = self.strexp()?;
                    binds.push(FctBind {
                        name,
                        param,
                        param_sig,
                        result_sig,
                        body,
                    });
                    if !self.eat(TokenKind::And) {
                        break;
                    }
                }
                out.push(Dec {
                    kind: DecKind::Functor(binds),
                    span: start.to(self.prev_span()),
                });
            }
            other => return self.err(format!("expected declaration, found `{other}`")),
        }
        Ok(())
    }

    fn tyvarseq(&mut self) -> ParseResult<Vec<Symbol>> {
        match self.peek() {
            TokenKind::TyVar(s) => {
                let s = *s;
                self.bump();
                Ok(vec![s])
            }
            TokenKind::LParen if matches!(self.peek2(), TokenKind::TyVar(_)) => {
                self.bump();
                let mut vars = Vec::new();
                loop {
                    match self.bump() {
                        TokenKind::TyVar(s) => vars.push(s),
                        other => {
                            return self.err(format!("expected type variable, found `{other}`"))
                        }
                    }
                    if !self.eat(TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RParen)?;
                Ok(vars)
            }
            _ => Ok(Vec::new()),
        }
    }

    fn funbind(&mut self) -> ParseResult<FunBind> {
        let mut clauses = Vec::new();
        let name = {
            let save = self.pos;
            let n = self.vid()?;
            self.pos = save;
            n
        };
        loop {
            let cname = self.vid()?;
            if cname != name {
                return self.err(format!("clauses of `{name}` may not switch to `{cname}`"));
            }
            let mut pats = vec![self.atpat()?];
            while self.at_atpat() {
                pats.push(self.atpat()?);
            }
            let ret_ty = if self.eat(TokenKind::Colon) {
                Some(self.ty()?)
            } else {
                None
            };
            self.expect(TokenKind::Equals)?;
            let body = self.exp()?;
            clauses.push(Clause { pats, ret_ty, body });
            if !self.eat(TokenKind::Bar) {
                break;
            }
        }
        Ok(FunBind { name, clauses })
    }

    fn databind(&mut self) -> ParseResult<DataBind> {
        let tyvars = self.tyvarseq()?;
        let name = self.ident()?;
        self.expect(TokenKind::Equals)?;
        let mut cons = Vec::new();
        loop {
            let cname = self.vid()?;
            let ty = if self.eat(TokenKind::Of) {
                Some(self.ty()?)
            } else {
                None
            };
            cons.push((cname, ty));
            if !self.eat(TokenKind::Bar) {
                break;
            }
        }
        Ok(DataBind { tyvars, name, cons })
    }

    // ----- module expressions ---------------------------------------------

    fn strexp(&mut self) -> ParseResult<StrExp> {
        self.enter()?;
        let r = self.strexp0();
        self.depth -= 1;
        r
    }

    fn strexp0(&mut self) -> ParseResult<StrExp> {
        let start = self.span();
        let mut s = match self.peek().clone() {
            TokenKind::Struct => {
                self.bump();
                let mut decs = Vec::new();
                loop {
                    while self.eat(TokenKind::Semi) {}
                    if self.eat(TokenKind::End) {
                        break;
                    }
                    self.dec_seq(&mut decs)?;
                }
                StrExp::Struct(decs, start.to(self.prev_span()))
            }
            TokenKind::Ident(_) => {
                let p = self.path()?;
                if p.is_simple() && *self.peek() == TokenKind::LParen {
                    self.bump();
                    let arg = self.strexp()?;
                    self.expect(TokenKind::RParen)?;
                    StrExp::App(p.name, Box::new(arg), start.to(self.prev_span()))
                } else {
                    StrExp::Var(p)
                }
            }
            other => return self.err(format!("expected structure expression, found `{other}`")),
        };
        loop {
            if self.eat(TokenKind::Colon) {
                s = StrExp::Ascribe(Box::new(s), self.sigexp()?, false);
            } else if self.eat(TokenKind::ColonGt) {
                s = StrExp::Ascribe(Box::new(s), self.sigexp()?, true);
            } else {
                return Ok(s);
            }
        }
    }

    fn sigexp(&mut self) -> ParseResult<SigExp> {
        self.enter()?;
        let r = self.sigexp0();
        self.depth -= 1;
        r
    }

    fn sigexp0(&mut self) -> ParseResult<SigExp> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::Sig => {
                self.bump();
                let mut specs = Vec::new();
                loop {
                    while self.eat(TokenKind::Semi) {}
                    if self.eat(TokenKind::End) {
                        break;
                    }
                    specs.push(self.spec()?);
                }
                Ok(SigExp::Sig(specs, start.to(self.prev_span())))
            }
            TokenKind::Ident(s) => {
                self.bump();
                Ok(SigExp::Var(s))
            }
            other => self.err(format!("expected signature expression, found `{other}`")),
        }
    }

    fn spec(&mut self) -> ParseResult<Spec> {
        match self.peek().clone() {
            TokenKind::Val => {
                self.bump();
                let name = self.vid()?;
                self.expect(TokenKind::Colon)?;
                let ty = self.ty()?;
                Ok(Spec::Val(name, ty))
            }
            TokenKind::Type | TokenKind::Eqtype => {
                let eq = self.bump() == TokenKind::Eqtype;
                let tyvars = self.tyvarseq()?;
                let name = self.ident()?;
                let def = if self.eat(TokenKind::Equals) {
                    Some(self.ty()?)
                } else {
                    None
                };
                Ok(Spec::Type {
                    tyvars,
                    name,
                    eq,
                    def,
                })
            }
            TokenKind::Datatype => {
                self.bump();
                Ok(Spec::Datatype(self.databind()?))
            }
            TokenKind::Exception => {
                self.bump();
                let name = self.vid()?;
                let ty = if self.eat(TokenKind::Of) {
                    Some(self.ty()?)
                } else {
                    None
                };
                Ok(Spec::Exception(name, ty))
            }
            TokenKind::Structure => {
                self.bump();
                let name = self.ident()?;
                self.expect(TokenKind::Colon)?;
                let sig = self.sigexp()?;
                Ok(Spec::Structure(name, sig))
            }
            other => self.err(format!("expected specification, found `{other}`")),
        }
    }

    // ----- types ------------------------------------------------------------

    fn ty(&mut self) -> ParseResult<Ty> {
        self.enter()?;
        let r = self.ty0();
        self.depth -= 1;
        r
    }

    fn ty0(&mut self) -> ParseResult<Ty> {
        let start = self.span();
        let t = self.ty_prod()?;
        if self.eat(TokenKind::Arrow) {
            let r = self.ty()?;
            Ok(Ty {
                kind: TyKind::Arrow(Box::new(t), Box::new(r)),
                span: start.to(self.prev_span()),
            })
        } else {
            Ok(t)
        }
    }

    fn ty_prod(&mut self) -> ParseResult<Ty> {
        let start = self.span();
        let first = self.ty_app()?;
        let star = Symbol::intern("*");
        if matches!(self.peek(), TokenKind::SymIdent(s) if *s == star) {
            let mut parts = vec![first];
            while matches!(self.peek(), TokenKind::SymIdent(s) if *s == star) {
                self.bump();
                parts.push(self.ty_app()?);
            }
            Ok(Ty {
                kind: TyKind::Tuple(parts),
                span: start.to(self.prev_span()),
            })
        } else {
            Ok(first)
        }
    }

    fn ty_app(&mut self) -> ParseResult<Ty> {
        let start = self.span();
        let mut args: Vec<Ty>;
        // A parenthesized sequence `(t1, t2) tycon` supplies several
        // arguments at once; otherwise parse one atom and let postfix
        // constructors apply to it.
        if *self.peek() == TokenKind::LParen {
            self.bump();
            let first = self.ty()?;
            if self.eat(TokenKind::Comma) {
                args = vec![first];
                loop {
                    args.push(self.ty()?);
                    if !self.eat(TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RParen)?;
                // Must be followed by at least one tycon.
                let p = self.path()?;
                let mut t = Ty {
                    kind: TyKind::Con(p, args),
                    span: start.to(self.prev_span()),
                };
                while matches!(self.peek(), TokenKind::Ident(_)) {
                    let p = self.path()?;
                    t = Ty {
                        kind: TyKind::Con(p, vec![t]),
                        span: start.to(self.prev_span()),
                    };
                }
                return Ok(t);
            }
            self.expect(TokenKind::RParen)?;
            args = vec![first];
        } else {
            args = vec![self.ty_atom()?];
        }
        let mut t = args.pop().expect("one atom");
        while matches!(self.peek(), TokenKind::Ident(_)) {
            let p = self.path()?;
            t = Ty {
                kind: TyKind::Con(p, vec![t]),
                span: start.to(self.prev_span()),
            };
        }
        Ok(t)
    }

    fn ty_atom(&mut self) -> ParseResult<Ty> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::TyVar(s) => {
                self.bump();
                Ok(Ty {
                    kind: TyKind::Var(s),
                    span: start,
                })
            }
            TokenKind::Ident(_) => {
                let p = self.path()?;
                Ok(Ty {
                    kind: TyKind::Con(p, Vec::new()),
                    span: start.to(self.prev_span()),
                })
            }
            TokenKind::LBrace => {
                self.bump();
                let mut fields = Vec::new();
                if !self.eat(TokenKind::RBrace) {
                    loop {
                        let lab = self.label()?;
                        self.expect(TokenKind::Colon)?;
                        fields.push((lab, self.ty()?));
                        if !self.eat(TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::RBrace)?;
                }
                Ok(Ty {
                    kind: TyKind::Record(fields),
                    span: start.to(self.prev_span()),
                })
            }
            other => self.err(format!("expected type, found `{other}`")),
        }
    }

    fn label(&mut self) -> ParseResult<Symbol> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            TokenKind::Int(n) if n > 0 => {
                self.bump();
                Ok(Symbol::numeric(n as usize))
            }
            other => self.err(format!("expected record label, found `{other}`")),
        }
    }

    // ----- patterns ---------------------------------------------------------

    fn pat(&mut self) -> ParseResult<Pat> {
        self.enter()?;
        let r = self.pat0();
        self.depth -= 1;
        r
    }

    fn pat0(&mut self) -> ParseResult<Pat> {
        let start = self.span();
        // Layered pattern: `x as pat`.
        if let TokenKind::Ident(s) = *self.peek() {
            if *self.peek2() == TokenKind::Ident(Symbol::intern("as")) {
                self.bump();
                self.bump();
                let p = self.pat()?;
                return Ok(Pat {
                    kind: PatKind::As(s, Box::new(p)),
                    span: start.to(self.prev_span()),
                });
            }
        }
        let mut p = self.pat_cons()?;
        while self.eat(TokenKind::Colon) {
            let t = self.ty()?;
            p = Pat {
                kind: PatKind::Constraint(Box::new(p), t),
                span: start.to(self.prev_span()),
            };
        }
        Ok(p)
    }

    fn pat_cons(&mut self) -> ParseResult<Pat> {
        let start = self.span();
        let left = self.pat_app()?;
        let cons = Symbol::intern("::");
        if matches!(self.peek(), TokenKind::SymIdent(s) if *s == cons) {
            self.bump();
            self.enter()?;
            let right = self.pat_cons()?;
            self.depth -= 1;
            let span = start.to(self.prev_span());
            Ok(Pat {
                kind: PatKind::Con(
                    Path::simple(cons),
                    Box::new(Pat {
                        kind: PatKind::Tuple(vec![left, right]),
                        span,
                    }),
                ),
                span,
            })
        } else {
            Ok(left)
        }
    }

    fn pat_app(&mut self) -> ParseResult<Pat> {
        let start = self.span();
        if matches!(self.peek(), TokenKind::Ident(_)) {
            let save = self.pos;
            let p = self.path()?;
            if self.at_atpat() {
                let arg = self.atpat()?;
                return Ok(Pat {
                    kind: PatKind::Con(p, Box::new(arg)),
                    span: start.to(self.prev_span()),
                });
            }
            self.pos = save;
        }
        self.atpat()
    }

    fn at_atpat(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::Underscore
                | TokenKind::Ident(_)
                | TokenKind::Int(_)
                | TokenKind::Str(_)
                | TokenKind::Char(_)
                | TokenKind::LParen
                | TokenKind::LBracket
                | TokenKind::LBrace
                | TokenKind::Op
        )
    }

    fn atpat(&mut self) -> ParseResult<Pat> {
        let start = self.span();
        let mk = |kind, span| Pat { kind, span };
        match self.peek().clone() {
            TokenKind::Underscore => {
                self.bump();
                Ok(mk(PatKind::Wild, start))
            }
            TokenKind::Int(n) => {
                self.bump();
                Ok(mk(PatKind::Int(n), start))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(mk(PatKind::Str(s), start))
            }
            TokenKind::Char(c) => {
                self.bump();
                Ok(mk(PatKind::Char(c), start))
            }
            TokenKind::Op => {
                self.bump();
                let v = self.vid()?;
                Ok(mk(
                    PatKind::Var(Path::simple(v)),
                    start.to(self.prev_span()),
                ))
            }
            TokenKind::Ident(_) => {
                let p = self.path()?;
                Ok(mk(PatKind::Var(p), start.to(self.prev_span())))
            }
            TokenKind::LParen => {
                self.bump();
                if self.eat(TokenKind::RParen) {
                    return Ok(mk(PatKind::Tuple(Vec::new()), start.to(self.prev_span())));
                }
                let first = self.pat()?;
                if self.eat(TokenKind::Comma) {
                    let mut pats = vec![first];
                    loop {
                        pats.push(self.pat()?);
                        if !self.eat(TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    Ok(mk(PatKind::Tuple(pats), start.to(self.prev_span())))
                } else {
                    self.expect(TokenKind::RParen)?;
                    Ok(first)
                }
            }
            TokenKind::LBracket => {
                self.bump();
                let mut pats = Vec::new();
                if !self.eat(TokenKind::RBracket) {
                    loop {
                        pats.push(self.pat()?);
                        if !self.eat(TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::RBracket)?;
                }
                Ok(mk(PatKind::List(pats), start.to(self.prev_span())))
            }
            TokenKind::LBrace => {
                self.bump();
                let mut fields = Vec::new();
                let mut flexible = false;
                if !self.eat(TokenKind::RBrace) {
                    loop {
                        if self.eat(TokenKind::DotDotDot) {
                            flexible = true;
                            break;
                        }
                        let lab = self.label()?;
                        if self.eat(TokenKind::Equals) {
                            fields.push((lab, self.pat()?));
                        } else {
                            // Field pun `{x, ...}` binds variable `x`.
                            fields.push((
                                lab,
                                Pat {
                                    kind: PatKind::Var(Path::simple(lab)),
                                    span: self.prev_span(),
                                },
                            ));
                        }
                        if !self.eat(TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::RBrace)?;
                }
                Ok(mk(
                    PatKind::Record { fields, flexible },
                    start.to(self.prev_span()),
                ))
            }
            other => self.err(format!("expected pattern, found `{other}`")),
        }
    }

    // ----- expressions --------------------------------------------------------

    fn match_rules(&mut self) -> ParseResult<Vec<Rule>> {
        let mut rules = Vec::new();
        loop {
            let pat = self.pat()?;
            self.expect(TokenKind::DArrow)?;
            let exp = self.exp()?;
            rules.push(Rule { pat, exp });
            if !self.eat(TokenKind::Bar) {
                return Ok(rules);
            }
        }
    }

    fn exp(&mut self) -> ParseResult<Exp> {
        self.enter()?;
        let r = self.exp0();
        self.depth -= 1;
        r
    }

    fn exp0(&mut self) -> ParseResult<Exp> {
        let start = self.span();
        let mk = |kind, span| Exp { kind, span };
        match self.peek().clone() {
            TokenKind::Raise => {
                self.bump();
                let e = self.exp()?;
                Ok(mk(ExpKind::Raise(Box::new(e)), start.to(self.prev_span())))
            }
            TokenKind::If => {
                self.bump();
                let c = self.exp()?;
                self.expect(TokenKind::Then)?;
                let t = self.exp()?;
                self.expect(TokenKind::Else)?;
                let e = self.exp()?;
                Ok(mk(
                    ExpKind::If(Box::new(c), Box::new(t), Box::new(e)),
                    start.to(self.prev_span()),
                ))
            }
            TokenKind::While => {
                self.bump();
                let c = self.exp()?;
                self.expect(TokenKind::Do)?;
                let b = self.exp()?;
                Ok(mk(
                    ExpKind::While(Box::new(c), Box::new(b)),
                    start.to(self.prev_span()),
                ))
            }
            TokenKind::Case => {
                self.bump();
                let scrut = self.exp()?;
                self.expect(TokenKind::Of)?;
                let rules = self.match_rules()?;
                Ok(mk(
                    ExpKind::Case(Box::new(scrut), rules),
                    start.to(self.prev_span()),
                ))
            }
            TokenKind::Fn => {
                self.bump();
                let rules = self.match_rules()?;
                Ok(mk(ExpKind::Fn(rules), start.to(self.prev_span())))
            }
            _ => self.exp_handle(),
        }
    }

    fn exp_handle(&mut self) -> ParseResult<Exp> {
        let start = self.span();
        let e = self.exp_orelse()?;
        if self.eat(TokenKind::Handle) {
            let rules = self.match_rules()?;
            Ok(Exp {
                kind: ExpKind::Handle(Box::new(e), rules),
                span: start.to(self.prev_span()),
            })
        } else {
            Ok(e)
        }
    }

    fn exp_orelse(&mut self) -> ParseResult<Exp> {
        let start = self.span();
        let mut e = self.exp_andalso()?;
        while self.eat(TokenKind::Orelse) {
            let r = self.exp_andalso()?;
            e = Exp {
                kind: ExpKind::Orelse(Box::new(e), Box::new(r)),
                span: start.to(self.prev_span()),
            };
        }
        Ok(e)
    }

    fn exp_andalso(&mut self) -> ParseResult<Exp> {
        let start = self.span();
        let mut e = self.exp_typed()?;
        while self.eat(TokenKind::Andalso) {
            let r = self.exp_typed()?;
            e = Exp {
                kind: ExpKind::Andalso(Box::new(e), Box::new(r)),
                span: start.to(self.prev_span()),
            };
        }
        Ok(e)
    }

    fn exp_typed(&mut self) -> ParseResult<Exp> {
        let start = self.span();
        let mut e = self.exp_infix(1)?;
        while self.eat(TokenKind::Colon) {
            let t = self.ty()?;
            e = Exp {
                kind: ExpKind::Constraint(Box::new(e), t),
                span: start.to(self.prev_span()),
            };
        }
        Ok(e)
    }

    /// The infix operator (symbol, precedence, right-assoc) at the current
    /// token, if any.
    fn peek_infix(&self) -> Option<(Symbol, u8, bool)> {
        let sym = match self.peek() {
            TokenKind::SymIdent(s) | TokenKind::Ident(s) => *s,
            TokenKind::Equals => Symbol::intern("="),
            _ => return None,
        };
        fixity(sym.as_str()).map(|(p, r)| (sym, p, r))
    }

    fn exp_infix(&mut self, min_prec: u8) -> ParseResult<Exp> {
        let start = self.span();
        let mut lhs = self.exp_app()?;
        while let Some((sym, prec, right)) = self.peek_infix() {
            if prec < min_prec {
                break;
            }
            let op_span = self.span();
            self.bump();
            let next_min = if right { prec } else { prec + 1 };
            // Right-associative chains (`a :: b :: ...`) recurse here
            // without passing through `exp`, so they count against the
            // same nesting budget.
            self.enter()?;
            let rhs = self.exp_infix(next_min)?;
            self.depth -= 1;
            let span = start.to(self.prev_span());
            let opexp = Exp {
                kind: ExpKind::Var(Path::simple(sym)),
                span: op_span,
            };
            let pair = Exp {
                kind: ExpKind::Tuple(vec![lhs, rhs]),
                span,
            };
            lhs = Exp {
                kind: ExpKind::App(Box::new(opexp), Box::new(pair)),
                span,
            };
        }
        Ok(lhs)
    }

    fn at_atexp(&self) -> bool {
        match self.peek() {
            TokenKind::Int(_)
            | TokenKind::Real(_)
            | TokenKind::Str(_)
            | TokenKind::Char(_)
            | TokenKind::LParen
            | TokenKind::LBracket
            | TokenKind::LBrace
            | TokenKind::Let
            | TokenKind::Hash
            | TokenKind::Op => true,
            TokenKind::Ident(s) => fixity(s.as_str()).is_none(),
            TokenKind::SymIdent(s) => fixity(s.as_str()).is_none(),
            _ => false,
        }
    }

    fn exp_app(&mut self) -> ParseResult<Exp> {
        let start = self.span();
        let mut e = self.atexp()?;
        while self.at_atexp() {
            let arg = self.atexp()?;
            e = Exp {
                kind: ExpKind::App(Box::new(e), Box::new(arg)),
                span: start.to(self.prev_span()),
            };
        }
        Ok(e)
    }

    fn atexp(&mut self) -> ParseResult<Exp> {
        let start = self.span();
        let mk = |kind, span| Exp { kind, span };
        match self.peek().clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(mk(ExpKind::Int(n), start))
            }
            TokenKind::Real(x) => {
                self.bump();
                Ok(mk(ExpKind::Real(x), start))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(mk(ExpKind::Str(s), start))
            }
            TokenKind::Char(c) => {
                self.bump();
                Ok(mk(ExpKind::Char(c), start))
            }
            TokenKind::Op => {
                self.bump();
                let v = self.vid()?;
                Ok(mk(
                    ExpKind::Var(Path::simple(v)),
                    start.to(self.prev_span()),
                ))
            }
            TokenKind::Ident(_) => {
                let p = self.path()?;
                Ok(mk(ExpKind::Var(p), start.to(self.prev_span())))
            }
            TokenKind::SymIdent(s) if fixity(s.as_str()).is_none() => {
                self.bump();
                Ok(mk(ExpKind::Var(Path::simple(s)), start))
            }
            TokenKind::Hash => {
                self.bump();
                let lab = self.label()?;
                Ok(mk(ExpKind::Selector(lab), start.to(self.prev_span())))
            }
            TokenKind::Let => {
                self.bump();
                let mut decs = Vec::new();
                loop {
                    while self.eat(TokenKind::Semi) {}
                    if self.eat(TokenKind::In) {
                        break;
                    }
                    self.dec_seq(&mut decs)?;
                }
                let mut body = vec![self.exp()?];
                while self.eat(TokenKind::Semi) {
                    body.push(self.exp()?);
                }
                self.expect(TokenKind::End)?;
                let span = start.to(self.prev_span());
                let body = if body.len() == 1 {
                    body.pop().expect("one body expression")
                } else {
                    Exp {
                        kind: ExpKind::Seq(body),
                        span,
                    }
                };
                Ok(mk(ExpKind::Let(decs, Box::new(body)), span))
            }
            TokenKind::LParen => {
                self.bump();
                if self.eat(TokenKind::RParen) {
                    return Ok(mk(ExpKind::Tuple(Vec::new()), start.to(self.prev_span())));
                }
                let first = self.exp()?;
                if self.eat(TokenKind::Comma) {
                    let mut exps = vec![first];
                    loop {
                        exps.push(self.exp()?);
                        if !self.eat(TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    Ok(mk(ExpKind::Tuple(exps), start.to(self.prev_span())))
                } else if self.eat(TokenKind::Semi) {
                    let mut exps = vec![first];
                    loop {
                        exps.push(self.exp()?);
                        if !self.eat(TokenKind::Semi) {
                            break;
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    Ok(mk(ExpKind::Seq(exps), start.to(self.prev_span())))
                } else {
                    self.expect(TokenKind::RParen)?;
                    Ok(first)
                }
            }
            TokenKind::LBracket => {
                self.bump();
                let mut exps = Vec::new();
                if !self.eat(TokenKind::RBracket) {
                    loop {
                        exps.push(self.exp()?);
                        if !self.eat(TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::RBracket)?;
                }
                Ok(mk(ExpKind::List(exps), start.to(self.prev_span())))
            }
            TokenKind::LBrace => {
                self.bump();
                let mut fields = Vec::new();
                if !self.eat(TokenKind::RBrace) {
                    loop {
                        let lab = self.label()?;
                        self.expect(TokenKind::Equals)?;
                        fields.push((lab, self.exp()?));
                        if !self.eat(TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::RBrace)?;
                }
                Ok(mk(ExpKind::Record(fields), start.to(self.prev_span())))
            }
            other => self.err(format!("expected expression, found `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(src: &str) -> Exp {
        parse_exp(src).unwrap()
    }

    fn var(e: &Exp) -> Option<&Path> {
        match &e.kind {
            ExpKind::Var(p) => Some(p),
            _ => None,
        }
    }

    #[test]
    fn precedence() {
        // 1 + 2 * 3 parses as 1 + (2 * 3).
        let exp = e("1 + 2 * 3");
        let ExpKind::App(f, arg) = &exp.kind else {
            panic!("expected app")
        };
        assert_eq!(var(f).unwrap().name.as_str(), "+");
        let ExpKind::Tuple(parts) = &arg.kind else {
            panic!("expected pair")
        };
        assert!(matches!(parts[0].kind, ExpKind::Int(1)));
        let ExpKind::App(g, _) = &parts[1].kind else {
            panic!("expected nested app")
        };
        assert_eq!(var(g).unwrap().name.as_str(), "*");
    }

    #[test]
    fn cons_is_right_assoc() {
        let exp = e("1 :: 2 :: nil");
        let ExpKind::App(f, arg) = &exp.kind else {
            panic!()
        };
        assert_eq!(var(f).unwrap().name.as_str(), "::");
        let ExpKind::Tuple(parts) = &arg.kind else {
            panic!()
        };
        assert!(matches!(parts[0].kind, ExpKind::Int(1)));
        assert!(matches!(parts[1].kind, ExpKind::App(..)));
    }

    #[test]
    fn application_binds_tighter_than_infix() {
        // f x + g y = (f x) + (g y)
        let exp = e("f x + g y");
        let ExpKind::App(op, arg) = &exp.kind else {
            panic!()
        };
        assert_eq!(var(op).unwrap().name.as_str(), "+");
        let ExpKind::Tuple(parts) = &arg.kind else {
            panic!()
        };
        assert!(matches!(parts[0].kind, ExpKind::App(..)));
        assert!(matches!(parts[1].kind, ExpKind::App(..)));
    }

    #[test]
    fn if_and_case_and_fn() {
        assert!(matches!(e("if a then b else c").kind, ExpKind::If(..)));
        assert!(
            matches!(e("case x of 1 => a | _ => b").kind, ExpKind::Case(_, ref r) if r.len() == 2)
        );
        assert!(matches!(e("fn x => x").kind, ExpKind::Fn(ref r) if r.len() == 1));
    }

    #[test]
    fn let_with_sequence_body() {
        let exp = e("let val x = 1 in f x; g x end");
        let ExpKind::Let(decs, body) = &exp.kind else {
            panic!()
        };
        assert_eq!(decs.len(), 1);
        assert!(matches!(body.kind, ExpKind::Seq(ref es) if es.len() == 2));
    }

    #[test]
    fn handle_and_raise() {
        let exp = e("f x handle Overflow => 0");
        assert!(matches!(exp.kind, ExpKind::Handle(..)));
        assert!(matches!(e("raise Fail \"no\"").kind, ExpKind::Raise(_)));
    }

    #[test]
    fn selectors_and_records() {
        let exp = e("#2 (1, 2.5)");
        let ExpKind::App(f, _) = &exp.kind else {
            panic!()
        };
        assert!(matches!(f.kind, ExpKind::Selector(s) if s.as_numeric() == Some(2)));
        let exp = e("{a = 1, b = 2.0}");
        assert!(matches!(exp.kind, ExpKind::Record(ref fs) if fs.len() == 2));
    }

    #[test]
    fn qualified_names() {
        let exp = e("S.T.x");
        let p = var(&exp).unwrap();
        assert_eq!(p.qualifiers.len(), 2);
        assert_eq!(p.name.as_str(), "x");
    }

    #[test]
    fn fun_clauses() {
        let prog = parse("fun fib 0 = 0 | fib 1 = 1 | fib n = fib (n-1) + fib (n-2)").unwrap();
        let DecKind::Fun { funs, .. } = &prog.decs[0].kind else {
            panic!()
        };
        assert_eq!(funs[0].clauses.len(), 3);
        assert_eq!(funs[0].name.as_str(), "fib");
    }

    #[test]
    fn curried_fun() {
        let prog = parse("fun add x y = x + y").unwrap();
        let DecKind::Fun { funs, .. } = &prog.decs[0].kind else {
            panic!()
        };
        assert_eq!(funs[0].clauses[0].pats.len(), 2);
    }

    #[test]
    fn val_rec_desugars() {
        let prog = parse("val rec f = fn 0 => 1 | n => n * f (n-1)").unwrap();
        let DecKind::Fun { funs, .. } = &prog.decs[0].kind else {
            panic!()
        };
        assert_eq!(funs[0].clauses.len(), 2);
    }

    #[test]
    fn datatype_decl() {
        let prog = parse("datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree").unwrap();
        let DecKind::Datatype(binds) = &prog.decs[0].kind else {
            panic!()
        };
        assert_eq!(binds[0].cons.len(), 2);
        assert_eq!(binds[0].tyvars.len(), 1);
    }

    #[test]
    fn structures_and_signatures() {
        let prog = parse(
            "signature SIG = sig type 'a t val f : 'a -> 'a t end
             structure S = struct datatype 'a t = T of 'a fun f x = T x end
             abstraction A : SIG = S",
        )
        .unwrap();
        assert_eq!(prog.decs.len(), 3);
        let DecKind::Structure(binds) = &prog.decs[2].kind else {
            panic!()
        };
        assert!(
            binds[0].ascription.as_ref().unwrap().1,
            "abstraction is opaque"
        );
    }

    #[test]
    fn functor_decl_and_app() {
        let prog = parse(
            "functor F (X : SIG) = struct val y = X.x end
             structure A = F (B)",
        )
        .unwrap();
        let DecKind::Functor(f) = &prog.decs[0].kind else {
            panic!()
        };
        assert_eq!(f[0].param.as_str(), "X");
        let DecKind::Structure(binds) = &prog.decs[1].kind else {
            panic!()
        };
        assert!(matches!(binds[0].def, StrExp::App(..)));
    }

    #[test]
    fn types_parse() {
        let prog = parse("val f = fn x => x : (int * real) list -> int list").unwrap();
        assert_eq!(prog.decs.len(), 1);
        let prog = parse("type 'a pair = 'a * 'a").unwrap();
        let DecKind::Type(t) = &prog.decs[0].kind else {
            panic!()
        };
        assert!(matches!(t[0].ty.kind, TyKind::Tuple(_)));
    }

    #[test]
    fn list_patterns_and_layered() {
        let prog = parse("fun f (x :: rest) = x | f [] = 0").unwrap();
        let DecKind::Fun { funs, .. } = &prog.decs[0].kind else {
            panic!()
        };
        assert!(matches!(funs[0].clauses[0].pats[0].kind, PatKind::Con(..)));
        let prog = parse("val l as (x :: _) = [1]").unwrap();
        let DecKind::Val { pat, .. } = &prog.decs[0].kind else {
            panic!()
        };
        assert!(matches!(pat.kind, PatKind::As(..)));
    }

    #[test]
    fn while_and_assign() {
        let exp = e("while !i < 10 do i := !i + 1");
        assert!(matches!(exp.kind, ExpKind::While(..)));
    }

    #[test]
    fn andalso_orelse_layering() {
        // a orelse b andalso c  =  a orelse (b andalso c)
        let exp = e("a orelse b andalso c");
        let ExpKind::Orelse(_, rhs) = &exp.kind else {
            panic!()
        };
        assert!(matches!(rhs.kind, ExpKind::Andalso(..)));
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse("val = 3").is_err());
        assert!(parse_exp("1 +").is_err());
        assert!(parse("fun f x = 1 | g x = 2").is_err());
    }

    #[test]
    fn op_prefix() {
        let exp = e("foldl (op +) 0 xs");
        assert!(matches!(exp.kind, ExpKind::App(..)));
        let prog = parse("fun op @ (xs, ys) = xs").unwrap();
        let DecKind::Fun { funs, .. } = &prog.decs[0].kind else {
            panic!()
        };
        assert_eq!(funs[0].name.as_str(), "@");
    }

    #[test]
    fn tilde_negation() {
        // `~x` applies the negation function; `~3` is a literal.
        let exp = e("~ x");
        assert!(matches!(exp.kind, ExpKind::App(..)));
        assert!(matches!(e("~3").kind, ExpKind::Int(-3)));
    }
}
