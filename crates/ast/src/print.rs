//! Pretty-printing of the raw AST back to parseable source.
//!
//! `parse(print(parse(src)))` must equal `parse(src)` — the round-trip
//! property checked by the test suite. Output is fully parenthesized, so
//! printing does not need to reason about fixity.

use crate::ast::*;
use std::fmt::Write;

/// Renders a program as parseable source text.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for d in &p.decs {
        dec_into(d, &mut out);
        out.push('\n');
    }
    out
}

/// Renders one expression (fully parenthesized).
pub fn print_exp(e: &Exp) -> String {
    let mut out = String::new();
    exp(e, &mut out);
    out
}

fn escape_str(s: &str, out: &mut String) {
    out.push('"');
    for b in s.bytes() {
        match b {
            b'\n' => out.push_str("\\n"),
            b'\t' => out.push_str("\\t"),
            b'\\' => out.push_str("\\\\"),
            b'"' => out.push_str("\\\""),
            0x20..=0x7e => out.push(b as char),
            other => {
                let _ = write!(out, "\\{other:03}");
            }
        }
    }
    out.push('"');
}

fn vid(name: crate::Symbol, out: &mut String) {
    let s = name.as_str();
    let alpha = s.chars().next().is_some_and(|c| c.is_ascii_alphabetic());
    if alpha {
        out.push_str(s);
    } else {
        let _ = write!(out, "op {s}");
    }
}

fn exp(e: &Exp, out: &mut String) {
    match &e.kind {
        ExpKind::Int(n) => {
            if *n < 0 {
                let _ = write!(out, "~{}", n.unsigned_abs());
            } else {
                let _ = write!(out, "{n}");
            }
        }
        ExpKind::Real(x) => {
            let s = format!("{x:?}");
            out.push_str(&s.replace('-', "~"));
        }
        ExpKind::Str(s) => escape_str(s, out),
        ExpKind::Char(c) => {
            out.push('#');
            escape_str(&(*c as char).to_string(), out);
        }
        ExpKind::Var(p) => {
            if p.is_simple() {
                vid(p.name, out);
            } else {
                let _ = write!(out, "{p}");
            }
        }
        ExpKind::Tuple(es) => {
            out.push('(');
            for (i, e) in es.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                exp(e, out);
            }
            out.push(')');
        }
        ExpKind::Record(fs) => {
            out.push('{');
            for (i, (l, e)) in fs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{l} = ");
                exp(e, out);
            }
            out.push('}');
        }
        ExpKind::Selector(l) => {
            let _ = write!(out, "#{l}");
        }
        ExpKind::List(es) => {
            out.push('[');
            for (i, e) in es.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                exp(e, out);
            }
            out.push(']');
        }
        ExpKind::App(f, a) => {
            out.push('(');
            exp(f, out);
            out.push(' ');
            exp(a, out);
            out.push(')');
        }
        ExpKind::Fn(rules) => {
            out.push_str("(fn ");
            print_rules(rules, out);
            out.push(')');
        }
        ExpKind::Case(s, rules) => {
            out.push_str("(case ");
            exp(s, out);
            out.push_str(" of ");
            print_rules(rules, out);
            out.push(')');
        }
        ExpKind::If(c, t, e2) => {
            out.push_str("(if ");
            exp(c, out);
            out.push_str(" then ");
            exp(t, out);
            out.push_str(" else ");
            exp(e2, out);
            out.push(')');
        }
        ExpKind::Andalso(a, b) => {
            out.push('(');
            exp(a, out);
            out.push_str(" andalso ");
            exp(b, out);
            out.push(')');
        }
        ExpKind::Orelse(a, b) => {
            out.push('(');
            exp(a, out);
            out.push_str(" orelse ");
            exp(b, out);
            out.push(')');
        }
        ExpKind::While(c, b) => {
            out.push_str("(while ");
            exp(c, out);
            out.push_str(" do ");
            exp(b, out);
            out.push(')');
        }
        ExpKind::Seq(es) => {
            out.push('(');
            for (i, e) in es.iter().enumerate() {
                if i > 0 {
                    out.push_str("; ");
                }
                exp(e, out);
            }
            out.push(')');
        }
        ExpKind::Let(decs, body) => {
            out.push_str("let ");
            for d in decs {
                dec_into(d, out);
                out.push(' ');
            }
            out.push_str("in ");
            exp(body, out);
            out.push_str(" end");
        }
        ExpKind::Raise(e2) => {
            out.push_str("(raise ");
            exp(e2, out);
            out.push(')');
        }
        ExpKind::Handle(e2, rules) => {
            out.push('(');
            exp(e2, out);
            out.push_str(" handle ");
            print_rules(rules, out);
            out.push(')');
        }
        ExpKind::Constraint(e2, t) => {
            out.push('(');
            exp(e2, out);
            out.push_str(" : ");
            ty(t, out);
            out.push(')');
        }
    }
}

fn print_rules(rules: &[Rule], out: &mut String) {
    for (i, r) in rules.iter().enumerate() {
        if i > 0 {
            out.push_str(" | ");
        }
        pat(&r.pat, out);
        out.push_str(" => ");
        exp(&r.exp, out);
    }
}

fn pat(p: &Pat, out: &mut String) {
    match &p.kind {
        PatKind::Wild => out.push('_'),
        PatKind::Var(pth) => {
            if pth.is_simple() {
                vid(pth.name, out);
            } else {
                let _ = write!(out, "{pth}");
            }
        }
        PatKind::Int(n) => {
            if *n < 0 {
                let _ = write!(out, "~{}", n.unsigned_abs());
            } else {
                let _ = write!(out, "{n}");
            }
        }
        PatKind::Str(s) => escape_str(s, out),
        PatKind::Char(c) => {
            out.push('#');
            escape_str(&(*c as char).to_string(), out);
        }
        PatKind::Con(pth, arg) => {
            // `::` must print infix (the pattern grammar has no nonfix
            // symbolic constructor application).
            if pth.is_simple() && pth.name.as_str() == "::" {
                if let PatKind::Tuple(parts) = &arg.kind {
                    if parts.len() == 2 {
                        out.push('(');
                        pat(&parts[0], out);
                        out.push_str(" :: ");
                        pat(&parts[1], out);
                        out.push(')');
                        return;
                    }
                }
            }
            out.push('(');
            let _ = write!(out, "{pth} ");
            pat(arg, out);
            out.push(')');
        }
        PatKind::Tuple(ps) => {
            out.push('(');
            for (i, p) in ps.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                pat(p, out);
            }
            out.push(')');
        }
        PatKind::Record { fields, flexible } => {
            out.push('{');
            for (i, (l, p)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{l} = ");
                pat(p, out);
            }
            if *flexible {
                if !fields.is_empty() {
                    out.push_str(", ");
                }
                out.push_str("...");
            }
            out.push('}');
        }
        PatKind::List(ps) => {
            out.push('[');
            for (i, p) in ps.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                pat(p, out);
            }
            out.push(']');
        }
        PatKind::As(n, inner) => {
            let _ = write!(out, "{n} as ");
            pat(inner, out);
        }
        PatKind::Constraint(inner, t) => {
            out.push('(');
            pat(inner, out);
            out.push_str(" : ");
            ty(t, out);
            out.push(')');
        }
    }
}

fn ty(t: &Ty, out: &mut String) {
    match &t.kind {
        TyKind::Var(v) => out.push_str(v.as_str()),
        TyKind::Con(p, args) => {
            if !args.is_empty() {
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    ty(a, out);
                }
                out.push_str(") ");
            }
            let _ = write!(out, "{p}");
        }
        TyKind::Tuple(parts) => {
            out.push('(');
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(" * ");
                }
                ty(p, out);
            }
            out.push(')');
        }
        TyKind::Record(fs) => {
            out.push('{');
            for (i, (l, t2)) in fs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{l} : ");
                ty(t2, out);
            }
            out.push('}');
        }
        TyKind::Arrow(a, b) => {
            out.push('(');
            ty(a, out);
            out.push_str(" -> ");
            ty(b, out);
            out.push(')');
        }
    }
}

fn tyvarseq(tvs: &[crate::Symbol], out: &mut String) {
    match tvs.len() {
        0 => {}
        1 => {
            let _ = write!(out, "{} ", tvs[0]);
        }
        _ => {
            out.push('(');
            for (i, tv) in tvs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(tv.as_str());
            }
            out.push_str(") ");
        }
    }
}

/// Renders one declaration as parseable source text (no trailing
/// newline). Used by the component partitioner to content-hash each
/// top-level declaration independently of surrounding whitespace.
pub fn print_dec(d: &Dec) -> String {
    let mut out = String::new();
    dec_into(d, &mut out);
    out
}

fn dec_into(d: &Dec, out: &mut String) {
    match &d.kind {
        DecKind::Val {
            tyvars,
            pat: p,
            exp: e,
        } => {
            out.push_str("val ");
            tyvarseq(tyvars, out);
            pat(p, out);
            out.push_str(" = ");
            exp(e, out);
        }
        DecKind::Fun { tyvars, funs } => {
            out.push_str("fun ");
            tyvarseq(tyvars, out);
            for (i, f) in funs.iter().enumerate() {
                if i > 0 {
                    out.push_str(" and ");
                }
                for (j, c) in f.clauses.iter().enumerate() {
                    if j > 0 {
                        out.push_str(" | ");
                    }
                    vid(f.name, out);
                    for p in &c.pats {
                        out.push(' ');
                        pat(p, out);
                    }
                    if let Some(rt) = &c.ret_ty {
                        out.push_str(" : ");
                        ty(rt, out);
                    }
                    out.push_str(" = ");
                    exp(&c.body, out);
                }
            }
        }
        DecKind::Type(binds) => {
            out.push_str("type ");
            for (i, b) in binds.iter().enumerate() {
                if i > 0 {
                    out.push_str(" and ");
                }
                tyvarseq(&b.tyvars, out);
                let _ = write!(out, "{} = ", b.name);
                ty(&b.ty, out);
            }
        }
        DecKind::Datatype(binds) => {
            out.push_str("datatype ");
            for (i, b) in binds.iter().enumerate() {
                if i > 0 {
                    out.push_str(" and ");
                }
                databind(b, out);
            }
        }
        DecKind::Exception(binds) => {
            out.push_str("exception ");
            for (i, b) in binds.iter().enumerate() {
                if i > 0 {
                    out.push_str(" and ");
                }
                vid(b.name, out);
                if let Some(t) = &b.ty {
                    out.push_str(" of ");
                    ty(t, out);
                }
            }
        }
        DecKind::Structure(binds) => {
            out.push_str("structure ");
            for (i, b) in binds.iter().enumerate() {
                if i > 0 {
                    out.push_str(" and ");
                }
                out.push_str(b.name.as_str());
                if let Some((se, opaque)) = &b.ascription {
                    out.push_str(if *opaque { " :> " } else { " : " });
                    sigexp(se, out);
                }
                out.push_str(" = ");
                strexp(&b.def, out);
            }
        }
        DecKind::Signature(binds) => {
            out.push_str("signature ");
            for (i, b) in binds.iter().enumerate() {
                if i > 0 {
                    out.push_str(" and ");
                }
                let _ = write!(out, "{} = ", b.name);
                sigexp(&b.def, out);
            }
        }
        DecKind::Functor(binds) => {
            out.push_str("functor ");
            for (i, b) in binds.iter().enumerate() {
                if i > 0 {
                    out.push_str(" and ");
                }
                let _ = write!(out, "{} ({} : ", b.name, b.param);
                sigexp(&b.param_sig, out);
                out.push(')');
                if let Some((se, opaque)) = &b.result_sig {
                    out.push_str(if *opaque { " :> " } else { " : " });
                    sigexp(se, out);
                }
                out.push_str(" = ");
                strexp(&b.body, out);
            }
        }
    }
}

fn databind(b: &DataBind, out: &mut String) {
    tyvarseq(&b.tyvars, out);
    let _ = write!(out, "{} = ", b.name);
    for (i, (c, t)) in b.cons.iter().enumerate() {
        if i > 0 {
            out.push_str(" | ");
        }
        vid(*c, out);
        if let Some(t) = t {
            out.push_str(" of ");
            ty(t, out);
        }
    }
}

fn strexp(s: &StrExp, out: &mut String) {
    match s {
        StrExp::Var(p) => {
            let _ = write!(out, "{p}");
        }
        StrExp::Struct(decs, _) => {
            out.push_str("struct ");
            for d in decs {
                dec_into(d, out);
                out.push(' ');
            }
            out.push_str("end");
        }
        StrExp::App(f, a, _) => {
            let _ = write!(out, "{f} (");
            strexp(a, out);
            out.push(')');
        }
        StrExp::Ascribe(inner, se, opaque) => {
            strexp(inner, out);
            out.push_str(if *opaque { " :> " } else { " : " });
            sigexp(se, out);
        }
    }
}

fn sigexp(s: &SigExp, out: &mut String) {
    match s {
        SigExp::Var(n) => out.push_str(n.as_str()),
        SigExp::Sig(specs, _) => {
            out.push_str("sig ");
            for sp in specs {
                spec(sp, out);
                out.push(' ');
            }
            out.push_str("end");
        }
    }
}

fn spec(sp: &Spec, out: &mut String) {
    match sp {
        Spec::Val(n, t) => {
            out.push_str("val ");
            vid(*n, out);
            out.push_str(" : ");
            ty(t, out);
        }
        Spec::Type {
            tyvars,
            name,
            eq,
            def,
        } => {
            out.push_str(if *eq { "eqtype " } else { "type " });
            tyvarseq(tyvars, out);
            out.push_str(name.as_str());
            if let Some(t) = def {
                out.push_str(" = ");
                ty(t, out);
            }
        }
        Spec::Datatype(b) => {
            out.push_str("datatype ");
            databind(b, out);
        }
        Spec::Exception(n, t) => {
            out.push_str("exception ");
            vid(*n, out);
            if let Some(t) = t {
                out.push_str(" of ");
                ty(t, out);
            }
        }
        Spec::Structure(n, se) => {
            let _ = write!(out, "structure {n} : ");
            sigexp(se, out);
        }
    }
}
