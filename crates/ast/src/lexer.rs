//! The lexer for the SML subset.
//!
//! Follows the lexical conventions of the Definition of Standard ML:
//! nested `(* ... *)` comments, `~` for numeric negation, alphanumeric and
//! symbolic identifier classes, `'a` type variables, string escapes, and
//! `#"c"` character literals.

use crate::error::{ParseError, ParseResult};
use crate::intern::Symbol;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Characters permitted in symbolic identifiers (Definition, §2.4).
fn is_sym_char(c: char) -> bool {
    matches!(
        c,
        '!' | '%'
            | '&'
            | '$'
            | '#'
            | '+'
            | '-'
            | '/'
            | ':'
            | '<'
            | '='
            | '>'
            | '?'
            | '@'
            | '\\'
            | '~'
            | '`'
            | '^'
            | '|'
            | '*'
    )
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic()
}

fn is_ident_cont(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '\''
}

/// Streaming lexer over a source string.
pub struct Lexer<'src> {
    src: &'src str,
    pos: usize,
}

impl<'src> Lexer<'src> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'src str) -> Lexer<'src> {
        Lexer { src, pos: 0 }
    }

    /// Lexes the entire input into a token vector ending with `Eof`.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed literals, unterminated
    /// comments or strings, or characters outside the language.
    pub fn tokenize(mut self) -> ParseResult<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let done = tok.kind == TokenKind::Eof;
            out.push(tok);
            if done {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn err(&self, at: usize, msg: impl Into<String>) -> ParseError {
        ParseError {
            span: Span::new(at as u32, self.pos as u32),
            msg: msg.into(),
            limit: false,
        }
    }

    fn skip_trivia(&mut self) -> ParseResult<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('(') if self.peek2() == Some('*') => {
                    let start = self.pos;
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    while depth > 0 {
                        match self.bump() {
                            Some('(') if self.peek() == Some('*') => {
                                self.bump();
                                depth += 1;
                            }
                            Some('*') if self.peek() == Some(')') => {
                                self.bump();
                                depth -= 1;
                            }
                            Some(_) => {}
                            None => return Err(self.err(start, "unterminated comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> ParseResult<Token> {
        self.skip_trivia()?;
        let start = self.pos;
        let mk = |kind, start: usize, end: usize| Token {
            kind,
            span: Span::new(start as u32, end as u32),
        };
        let c = match self.peek() {
            None => return Ok(mk(TokenKind::Eof, start, start)),
            Some(c) => c,
        };

        // Numeric literals, including `~`-negated ones.
        if c.is_ascii_digit() || (c == '~' && self.peek2().is_some_and(|d| d.is_ascii_digit())) {
            return self.lex_number(start);
        }

        if c == '"' {
            return self.lex_string(start).map(|k| mk(k, start, self.pos));
        }

        // `#"c"` char literal; bare `#` is the record selector.
        if c == '#' && self.peek2() == Some('"') {
            self.bump();
            let TokenKind::Str(s) = self.lex_string(start)? else {
                unreachable!()
            };
            if s.len() != 1 {
                return Err(self.err(start, "character literal must have length 1"));
            }
            return Ok(mk(TokenKind::Char(s.as_bytes()[0]), start, self.pos));
        }

        if c == '\'' {
            self.bump();
            let mut name = String::from("'");
            while let Some(d) = self.peek() {
                if is_ident_cont(d) {
                    name.push(d);
                    self.bump();
                } else {
                    break;
                }
            }
            if name.len() == 1 {
                return Err(self.err(start, "empty type variable"));
            }
            return Ok(mk(TokenKind::TyVar(Symbol::intern(&name)), start, self.pos));
        }

        if is_ident_start(c) {
            self.bump();
            while self.peek().is_some_and(is_ident_cont) {
                self.bump();
            }
            let text = &self.src[start..self.pos];
            return Ok(mk(keyword_or_ident(text), start, self.pos));
        }

        if is_sym_char(c) {
            self.bump();
            while self.peek().is_some_and(is_sym_char) {
                self.bump();
            }
            let text = &self.src[start..self.pos];
            let kind = match text {
                ":" => TokenKind::Colon,
                ":>" => TokenKind::ColonGt,
                "|" => TokenKind::Bar,
                "=" => TokenKind::Equals,
                "=>" => TokenKind::DArrow,
                "->" => TokenKind::Arrow,
                "#" => TokenKind::Hash,
                _ => TokenKind::SymIdent(Symbol::intern(text)),
            };
            return Ok(mk(kind, start, self.pos));
        }

        self.bump();
        let kind = match c {
            '(' => TokenKind::LParen,
            ')' => TokenKind::RParen,
            '[' => TokenKind::LBracket,
            ']' => TokenKind::RBracket,
            '{' => TokenKind::LBrace,
            '}' => TokenKind::RBrace,
            ',' => TokenKind::Comma,
            ';' => TokenKind::Semi,
            '_' => TokenKind::Underscore,
            '.' => {
                if self.peek() == Some('.') && self.peek2() == Some('.') {
                    self.bump();
                    self.bump();
                    TokenKind::DotDotDot
                } else {
                    TokenKind::Dot
                }
            }
            other => return Err(self.err(start, format!("unexpected character {other:?}"))),
        };
        Ok(mk(kind, start, self.pos))
    }

    fn lex_number(&mut self, start: usize) -> ParseResult<Token> {
        let neg = self.peek() == Some('~');
        if neg {
            self.bump();
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_real = false;
        if self.peek() == Some('.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            is_real = true;
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            // Exponents require at least one digit (possibly `~`-negated).
            let save = self.pos;
            self.bump();
            let mut saw_neg = false;
            if self.peek() == Some('~') {
                saw_neg = true;
                self.bump();
            }
            if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                is_real = true;
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                }
            } else {
                let _ = saw_neg;
                self.pos = save;
            }
        }
        let text: String = self.src[start..self.pos].replace('~', "-");
        let span = Span::new(start as u32, self.pos as u32);
        if is_real {
            let x: f64 = text
                .parse()
                .map_err(|_| self.err(start, format!("bad real literal {text}")))?;
            Ok(Token {
                kind: TokenKind::Real(x),
                span,
            })
        } else {
            let n: i64 = text
                .parse()
                .map_err(|_| self.err(start, format!("bad int literal {text}")))?;
            Ok(Token {
                kind: TokenKind::Int(n),
                span,
            })
        }
    }

    fn lex_string(&mut self, start: usize) -> ParseResult<TokenKind> {
        debug_assert_eq!(self.peek(), Some('"'));
        self.bump();
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err(start, "unterminated string literal")),
                Some('"') => return Ok(TokenKind::Str(out)),
                Some('\\') => match self.bump() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('\\') => out.push('\\'),
                    Some('"') => out.push('"'),
                    Some(d) if d.is_ascii_digit() => {
                        let mut code = d.to_digit(10).unwrap();
                        for _ in 0..2 {
                            match self.bump() {
                                Some(e) if e.is_ascii_digit() => {
                                    code = code * 10 + e.to_digit(10).unwrap();
                                }
                                _ => return Err(self.err(start, "bad \\ddd escape")),
                            }
                        }
                        if code > 255 {
                            return Err(self.err(start, "\\ddd escape out of range"));
                        }
                        out.push(code as u8 as char);
                    }
                    Some(c) if c.is_whitespace() => {
                        // `\ ... \` gap.
                        while self.peek().is_some_and(|c| c.is_whitespace()) {
                            self.bump();
                        }
                        if self.bump() != Some('\\') {
                            return Err(self.err(start, "bad string gap"));
                        }
                    }
                    other => return Err(self.err(start, format!("bad string escape {other:?}"))),
                },
                Some(c) => out.push(c),
            }
        }
    }
}

fn keyword_or_ident(text: &str) -> TokenKind {
    match text {
        "abstraction" => TokenKind::Abstraction,
        "and" => TokenKind::And,
        "andalso" => TokenKind::Andalso,
        "case" => TokenKind::Case,
        "datatype" => TokenKind::Datatype,
        "do" => TokenKind::Do,
        "else" => TokenKind::Else,
        "end" => TokenKind::End,
        "eqtype" => TokenKind::Eqtype,
        "exception" => TokenKind::Exception,
        "fn" => TokenKind::Fn,
        "fun" => TokenKind::Fun,
        "functor" => TokenKind::Functor,
        "handle" => TokenKind::Handle,
        "if" => TokenKind::If,
        "in" => TokenKind::In,
        "let" => TokenKind::Let,
        "of" => TokenKind::Of,
        "op" => TokenKind::Op,
        "orelse" => TokenKind::Orelse,
        "raise" => TokenKind::Raise,
        "rec" => TokenKind::Rec,
        "sig" => TokenKind::Sig,
        "signature" => TokenKind::Signature,
        "struct" => TokenKind::Struct,
        "structure" => TokenKind::Structure,
        "then" => TokenKind::Then,
        "type" => TokenKind::Type,
        "val" => TokenKind::Val,
        "while" => TokenKind::While,
        _ => TokenKind::Ident(Symbol::intern(text)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn idents_and_keywords() {
        use TokenKind::*;
        assert_eq!(
            kinds("val x = fn y => y"),
            vec![
                Val,
                Ident(Symbol::intern("x")),
                Equals,
                Fn,
                Ident(Symbol::intern("y")),
                DArrow,
                Ident(Symbol::intern("y")),
                Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        use TokenKind::*;
        assert_eq!(kinds("42"), vec![Int(42), Eof]);
        assert_eq!(kinds("~7"), vec![Int(-7), Eof]);
        assert_eq!(kinds("3.25"), vec![Real(3.25), Eof]);
        assert_eq!(kinds("1e3"), vec![Real(1000.0), Eof]);
        assert_eq!(kinds("2.5E~2"), vec![Real(0.025), Eof]);
        assert_eq!(kinds("~1.5"), vec![Real(-1.5), Eof]);
    }

    #[test]
    fn tilde_alone_is_symbolic() {
        use TokenKind::*;
        assert_eq!(
            kinds("~ x"),
            vec![
                SymIdent(Symbol::intern("~")),
                Ident(Symbol::intern("x")),
                Eof
            ]
        );
    }

    #[test]
    fn strings_and_chars() {
        use TokenKind::*;
        assert_eq!(kinds(r#""hi\n""#), vec![Str("hi\n".into()), Eof]);
        assert_eq!(kinds(r#"#"a""#), vec![Char(b'a'), Eof]);
        assert_eq!(kinds(r#""\065""#), vec![Str("A".into()), Eof]);
    }

    #[test]
    fn symbolic_idents() {
        use TokenKind::*;
        assert_eq!(
            kinds("a :: b <> c"),
            vec![
                Ident(Symbol::intern("a")),
                SymIdent(Symbol::intern("::")),
                Ident(Symbol::intern("b")),
                SymIdent(Symbol::intern("<>")),
                Ident(Symbol::intern("c")),
                Eof
            ]
        );
        assert_eq!(kinds("=>"), vec![DArrow, Eof]);
        assert_eq!(kinds(":>"), vec![ColonGt, Eof]);
    }

    #[test]
    fn nested_comments() {
        assert_eq!(
            kinds("(* a (* b *) c *) 1"),
            vec![TokenKind::Int(1), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(Lexer::new("(* oops").tokenize().is_err());
    }

    #[test]
    fn dots_and_punct() {
        use TokenKind::*;
        assert_eq!(
            kinds("S.x"),
            vec![
                Ident(Symbol::intern("S")),
                Dot,
                Ident(Symbol::intern("x")),
                Eof
            ]
        );
        assert_eq!(
            kinds("{a=1, ...}"),
            vec![
                LBrace,
                Ident(Symbol::intern("a")),
                Equals,
                Int(1),
                Comma,
                DotDotDot,
                RBrace,
                Eof
            ]
        );
    }

    #[test]
    fn tyvars() {
        use TokenKind::*;
        assert_eq!(
            kinds("'a ''b"),
            vec![
                TyVar(Symbol::intern("'a")),
                TyVar(Symbol::intern("''b")),
                Eof
            ]
        );
    }

    #[test]
    fn string_gap() {
        assert_eq!(
            kinds("\"ab\\   \\cd\""),
            vec![TokenKind::Str("abcd".into()), TokenKind::Eof]
        );
    }
}
