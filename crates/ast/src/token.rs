//! Tokens of the SML subset.

use crate::intern::Symbol;
use crate::span::Span;
use std::fmt;

/// A lexical token paired with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Token payload.
    pub kind: TokenKind,
    /// Where the token occurred.
    pub span: Span,
}

/// The kinds of token produced by the [lexer](crate::lexer::Lexer).
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Alphanumeric identifier (also covers keywords before classification).
    Ident(Symbol),
    /// Symbolic identifier such as `+`, `::`, `>=`.
    SymIdent(Symbol),
    /// Type variable, e.g. `'a`; the symbol includes the quotes.
    TyVar(Symbol),
    /// Integer literal (tagged 31-bit at runtime, but lexed as i64).
    Int(i64),
    /// Word literal is not supported; reals are IEEE doubles.
    Real(f64),
    /// String literal with escapes resolved.
    Str(String),
    /// Character literal `#"c"`.
    Char(u8),

    // Reserved words. The variants below are the language's reserved
    // words and fixed punctuation; their spelling is their meaning.
    #[allow(missing_docs)]
    Abstraction,
    #[allow(missing_docs)]
    And,
    #[allow(missing_docs)]
    Andalso,
    #[allow(missing_docs)]
    Case,
    #[allow(missing_docs)]
    Datatype,
    #[allow(missing_docs)]
    Do,
    #[allow(missing_docs)]
    Else,
    #[allow(missing_docs)]
    End,
    #[allow(missing_docs)]
    Eqtype,
    #[allow(missing_docs)]
    Exception,
    #[allow(missing_docs)]
    Fn,
    #[allow(missing_docs)]
    Fun,
    #[allow(missing_docs)]
    Functor,
    #[allow(missing_docs)]
    Handle,
    #[allow(missing_docs)]
    If,
    #[allow(missing_docs)]
    In,
    #[allow(missing_docs)]
    Let,
    #[allow(missing_docs)]
    Of,
    #[allow(missing_docs)]
    Op,
    #[allow(missing_docs)]
    Orelse,
    #[allow(missing_docs)]
    Raise,
    #[allow(missing_docs)]
    Rec,
    #[allow(missing_docs)]
    Sig,
    #[allow(missing_docs)]
    Signature,
    #[allow(missing_docs)]
    Struct,
    #[allow(missing_docs)]
    Structure,
    #[allow(missing_docs)]
    Then,
    #[allow(missing_docs)]
    Type,
    #[allow(missing_docs)]
    Val,
    #[allow(missing_docs)]
    While,

    // Punctuation.
    #[allow(missing_docs)]
    LParen,
    #[allow(missing_docs)]
    RParen,
    #[allow(missing_docs)]
    LBracket,
    #[allow(missing_docs)]
    RBracket,
    #[allow(missing_docs)]
    LBrace,
    #[allow(missing_docs)]
    RBrace,
    #[allow(missing_docs)]
    Comma,
    #[allow(missing_docs)]
    Colon,
    #[allow(missing_docs)]
    ColonGt,
    #[allow(missing_docs)]
    Semi,
    #[allow(missing_docs)]
    DotDotDot,
    #[allow(missing_docs)]
    Underscore,
    #[allow(missing_docs)]
    Bar,
    #[allow(missing_docs)]
    Equals,
    #[allow(missing_docs)]
    DArrow,
    #[allow(missing_docs)]
    Arrow,
    #[allow(missing_docs)]
    Hash,
    #[allow(missing_docs)]
    Dot,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// The identifier payload if this is an (alphanumeric or symbolic)
    /// identifier token.
    pub fn ident(&self) -> Option<Symbol> {
        match self {
            TokenKind::Ident(s) | TokenKind::SymIdent(s) => Some(*s),
            _ => None,
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            Ident(s) | SymIdent(s) | TyVar(s) => write!(f, "{s}"),
            Int(n) => write!(f, "{n}"),
            Real(x) => write!(f, "{x}"),
            Str(s) => write!(f, "{s:?}"),
            Char(c) => write!(f, "#\"{}\"", *c as char),
            Abstraction => f.write_str("abstraction"),
            And => f.write_str("and"),
            Andalso => f.write_str("andalso"),
            Case => f.write_str("case"),
            Datatype => f.write_str("datatype"),
            Do => f.write_str("do"),
            Else => f.write_str("else"),
            End => f.write_str("end"),
            Eqtype => f.write_str("eqtype"),
            Exception => f.write_str("exception"),
            Fn => f.write_str("fn"),
            Fun => f.write_str("fun"),
            Functor => f.write_str("functor"),
            Handle => f.write_str("handle"),
            If => f.write_str("if"),
            In => f.write_str("in"),
            Let => f.write_str("let"),
            Of => f.write_str("of"),
            Op => f.write_str("op"),
            Orelse => f.write_str("orelse"),
            Raise => f.write_str("raise"),
            Rec => f.write_str("rec"),
            Sig => f.write_str("sig"),
            Signature => f.write_str("signature"),
            Struct => f.write_str("struct"),
            Structure => f.write_str("structure"),
            Then => f.write_str("then"),
            Type => f.write_str("type"),
            Val => f.write_str("val"),
            While => f.write_str("while"),
            LParen => f.write_str("("),
            RParen => f.write_str(")"),
            LBracket => f.write_str("["),
            RBracket => f.write_str("]"),
            LBrace => f.write_str("{"),
            RBrace => f.write_str("}"),
            Comma => f.write_str(","),
            Colon => f.write_str(":"),
            ColonGt => f.write_str(":>"),
            Semi => f.write_str(";"),
            DotDotDot => f.write_str("..."),
            Underscore => f.write_str("_"),
            Bar => f.write_str("|"),
            Equals => f.write_str("="),
            DArrow => f.write_str("=>"),
            Arrow => f.write_str("->"),
            Hash => f.write_str("#"),
            Dot => f.write_str("."),
            Eof => f.write_str("<eof>"),
        }
    }
}
