//! Global symbol interning.
//!
//! Identifiers occur everywhere in the compiler (AST, elaboration
//! environments, lambda-language structure fields), so we intern them once
//! into a process-global table and pass around copyable [`Symbol`] handles.
//! Interning is global (rather than per-compilation) because symbols carry
//! no compilation-unit state; this mirrors SML/NJ's global `Symbol` module.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned identifier.
///
/// Two `Symbol`s are equal iff they were interned from equal strings, so
/// equality and hashing are O(1).
///
/// # Examples
///
/// ```
/// use sml_ast::Symbol;
/// let a = Symbol::intern("map");
/// let b = Symbol::intern("map");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "map");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `s`, returning its canonical handle.
    pub fn intern(s: &str) -> Symbol {
        let mut g = interner().lock().expect("symbol interner poisoned");
        if let Some(&id) = g.map.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = g.strings.len() as u32;
        g.strings.push(leaked);
        g.map.insert(leaked, id);
        Symbol(id)
    }

    /// Returns the interned string.
    pub fn as_str(self) -> &'static str {
        let g = interner().lock().expect("symbol interner poisoned");
        g.strings[self.0 as usize]
    }

    /// A numeric label symbol (`1`, `2`, ...) used for tuple fields.
    pub fn numeric(n: usize) -> Symbol {
        Symbol::intern(&n.to_string())
    }

    /// If this symbol is a numeric label, its value.
    pub fn as_numeric(self) -> Option<usize> {
        self.as_str().parse().ok()
    }

    /// The raw interner index (stable within a process run).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}`", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_identity() {
        let a = Symbol::intern("foo");
        let b = Symbol::intern("foo");
        let c = Symbol::intern("bar");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "foo");
        assert_eq!(c.as_str(), "bar");
    }

    #[test]
    fn numeric_labels() {
        let one = Symbol::numeric(1);
        assert_eq!(one.as_str(), "1");
        assert_eq!(one.as_numeric(), Some(1));
        assert_eq!(Symbol::intern("x").as_numeric(), None);
    }

    #[test]
    fn display_and_debug() {
        let s = Symbol::intern("quux");
        assert_eq!(format!("{s}"), "quux");
        assert_eq!(format!("{s:?}"), "`quux`");
    }

    #[test]
    fn ordering_is_stable() {
        let a = Symbol::intern("stable-a");
        let b = Symbol::intern("stable-a");
        assert!(a.cmp(&b).is_eq());
    }
}
