//! Source locations.

use std::fmt;

/// A half-open byte range into the source text.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// A span covering `start..end`.
    pub fn new(start: u32, end: u32) -> Span {
        Span { start, end }
    }

    /// The empty span at offset 0, used for synthesized nodes.
    pub fn dummy() -> Span {
        Span { start: 0, end: 0 }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Computes the 1-based (line, column) of this span's start in `src`.
    pub fn line_col(self, src: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, c) in src.char_indices() {
            if i as u32 >= self.start {
                break;
            }
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_spans() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(b.to(a), Span::new(3, 12));
    }

    #[test]
    fn line_col() {
        let src = "ab\ncd\nef";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(4, 5).line_col(src), (2, 2));
        assert_eq!(Span::new(6, 7).line_col(src), (3, 1));
    }
}
