//! Lexer, parser, and raw abstract syntax for the SML subset compiled by
//! the `smlc` type-based compiler.
//!
//! This crate is the front half of the paper's Figure 3 pipeline: it turns
//! source text into raw abstract syntax. Elaboration, typed translation,
//! and the CPS back end live in the sibling crates `sml-elab`,
//! `sml-lambda`, and `sml-cps`.
//!
//! # Examples
//!
//! ```
//! let prog = sml_ast::parse("fun double x = x + x").unwrap();
//! assert_eq!(prog.decs.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod deps;
pub mod error;
pub mod intern;
pub mod lexer;
pub mod parser;
pub mod print;
pub mod span;
pub mod token;

pub use ast::{
    Clause, DataBind, Dec, DecKind, ExBind, Exp, ExpKind, FctBind, FunBind, Pat, PatKind, Path,
    Program, Rule, SigBind, SigExp, Spec, StrBind, StrExp, Ty, TyKind, TypeBind,
};
pub use deps::{dec_names, DecNames};
pub use error::{ParseError, ParseResult};
pub use intern::Symbol;
pub use parser::{parse, parse_exp};
pub use print::{print_dec, print_exp, print_program};
pub use span::Span;
