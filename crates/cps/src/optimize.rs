//! The CPS optimizer (paper §5.2, after Appel ch. 6-7).
//!
//! Rounds of *contraction* — dead-variable elimination, constant folding,
//! beta-contraction of once-called functions, eta-reduction,
//! select-from-known-record folding — plus the paper's two new
//! type-enabled optimizations: **wrap/unwrap pair cancellation** and
//! **record-copy elimination** (a record rebuilt from selections of a
//! same-length record is replaced by the original). Inline expansion of
//! small functions runs between contraction fixpoints.

use crate::cps::*;
use std::collections::HashMap;

/// Optimizer knobs.
#[derive(Clone, Copy, Debug)]
pub struct OptConfig {
    /// Maximum contraction rounds per fixpoint.
    pub max_rounds: usize,
    /// Inline-expansion body-size threshold (CPS operators).
    pub inline_size: usize,
    /// Number of inline passes.
    pub inline_passes: usize,
}

impl Default for OptConfig {
    fn default() -> OptConfig {
        OptConfig {
            max_rounds: 12,
            inline_size: 30,
            inline_passes: 2,
        }
    }
}

/// Statistics of an optimization run.
#[derive(Clone, Copy, Debug, Default)]
pub struct OptStats {
    /// Contraction rounds executed.
    pub rounds: usize,
    /// Wrap/unwrap pairs cancelled.
    pub wrap_cancelled: u64,
    /// Record copies eliminated.
    pub record_copies: u64,
    /// Functions beta-contracted (inlined at their single call site).
    pub beta: u64,
    /// Small functions inline-expanded.
    pub inlined: u64,
    /// Dead bindings removed.
    pub dead: u64,
}

impl OptStats {
    /// Rewrite counts keyed by rule name, in declaration order (plus the
    /// round counter). The single source of truth for metric emitters.
    pub fn rules(&self) -> [(&'static str, u64); 6] {
        [
            ("rounds", self.rounds as u64),
            ("wrap_cancelled", self.wrap_cancelled),
            ("record_copies", self.record_copies),
            ("beta", self.beta),
            ("inlined", self.inlined),
            ("dead", self.dead),
        ]
    }
}

/// Optimizes a CPS program in place; returns statistics.
pub fn optimize(prog: &mut crate::convert::CpsProgram, cfg: &OptConfig) -> OptStats {
    match optimize_instrumented(prog, cfg, |_, _| Ok::<(), std::convert::Infallible>(())) {
        Ok(stats) => stats,
        Err(never) => match never {},
    }
}

/// [`optimize`] with a per-pass observation hook, used by the pipeline's
/// IR verifier.
///
/// `check` runs after every optimizer pass (one contraction fixpoint
/// plus the inline expansion that follows it, if any) with the pass
/// index and the program as rewritten so far; returning an error stops
/// optimization immediately and propagates the error. The hook is
/// observational — it receives `&CpsProgram` and cannot mutate it — so
/// a run whose hook never fails rewrites exactly as [`optimize`] does.
pub fn optimize_instrumented<E>(
    prog: &mut crate::convert::CpsProgram,
    cfg: &OptConfig,
    mut check: impl FnMut(usize, &crate::convert::CpsProgram) -> Result<(), E>,
) -> Result<OptStats, E> {
    let mut stats = OptStats::default();
    for pass in 0..=cfg.inline_passes {
        // Contraction fixpoint.
        for _ in 0..cfg.max_rounds {
            let mut ctx = Contract::new(&mut stats, prog.next_var);
            let body = std::mem::replace(&mut prog.body, Cexp::Halt { v: Value::Int(0) });
            ctx.census(&body);
            let new = ctx.go(body);
            prog.next_var = ctx.next;
            let changed = ctx.changed;
            prog.body = new;
            stats.rounds += 1;
            if !changed {
                break;
            }
        }
        if pass < cfg.inline_passes {
            let mut inliner = Inline {
                next: prog.next_var,
                size_limit: cfg.inline_size,
                bodies: HashMap::new(),
                stats: &mut stats,
                budget: 4000,
            };
            let body = std::mem::replace(&mut prog.body, Cexp::Halt { v: Value::Int(0) });
            prog.body = inliner.go(body);
            prog.next_var = inliner.next;
        }
        check(pass, prog)?;
    }
    Ok(stats)
}

/// What a variable is known to be bound to.
#[derive(Clone, Debug)]
enum Def {
    Record(Vec<(Value, Cty)>, usize),
    Select(Value, usize),
    Pure(PureOp, Vec<Value>),
}

struct Contract<'s> {
    stats: &'s mut OptStats,
    next: u32,
    uses: HashMap<CVar, u32>,
    calls: HashMap<CVar, u32>,
    defs: HashMap<CVar, Def>,
    subst: HashMap<CVar, Value>,
    /// Bodies of functions to inline at their unique call site.
    pending_inline: HashMap<CVar, FunDef>,
    changed: bool,
}

impl<'s> Contract<'s> {
    fn new(stats: &'s mut OptStats, next: u32) -> Contract<'s> {
        Contract {
            stats,
            next,
            uses: HashMap::new(),
            calls: HashMap::new(),
            defs: HashMap::new(),
            subst: HashMap::new(),
            pending_inline: HashMap::new(),
            changed: false,
        }
    }

    // ----- census ---------------------------------------------------------

    fn use_val(&mut self, v: &Value) {
        if let Value::Var(x) | Value::Label(x) = v {
            *self.uses.entry(*x).or_insert(0) += 1;
        }
    }

    fn census(&mut self, e: &Cexp) {
        match e {
            Cexp::Record { fields, rest, .. } => {
                fields.iter().for_each(|(v, _)| self.use_val(v));
                self.census(rest);
            }
            Cexp::Select { rec, rest, .. } => {
                self.use_val(rec);
                self.census(rest);
            }
            Cexp::Pure { args, rest, .. }
            | Cexp::Alloc { args, rest, .. }
            | Cexp::Look { args, rest, .. }
            | Cexp::Set { args, rest, .. } => {
                args.iter().for_each(|v| self.use_val(v));
                self.census(rest);
            }
            Cexp::Switch {
                v, arms, default, ..
            } => {
                self.use_val(v);
                arms.iter().for_each(|a| self.census(a));
                self.census(default);
            }
            Cexp::Branch { args, tru, fls, .. } => {
                args.iter().for_each(|v| self.use_val(v));
                self.census(tru);
                self.census(fls);
            }
            Cexp::Fix { funs, rest } => {
                funs.iter().for_each(|f| self.census(&f.body));
                self.census(rest);
            }
            Cexp::App { f, args } => {
                if let Value::Var(x) | Value::Label(x) = f {
                    *self.calls.entry(*x).or_insert(0) += 1;
                }
                self.use_val(f);
                args.iter().for_each(|v| self.use_val(v));
            }
            Cexp::Halt { v } => self.use_val(v),
        }
    }

    fn n_uses(&self, v: CVar) -> u32 {
        self.uses.get(&v).copied().unwrap_or(0)
    }

    // ----- rewriting ---------------------------------------------------------

    fn val(&self, v: Value) -> Value {
        match v {
            Value::Var(x) => match self.subst.get(&x) {
                Some(v2) => self.val(v2.clone()),
                None => Value::Var(x),
            },
            other => other,
        }
    }

    fn vals(&self, vs: Vec<Value>) -> Vec<Value> {
        vs.into_iter().map(|v| self.val(v)).collect()
    }

    fn go(&mut self, e: Cexp) -> Cexp {
        match e {
            Cexp::Record {
                fields,
                nflt,
                dst,
                rest,
            } => {
                let fields: Vec<(Value, Cty)> =
                    fields.into_iter().map(|(v, c)| (self.val(v), c)).collect();
                if self.n_uses(dst) == 0 {
                    self.changed = true;
                    self.stats.dead += 1;
                    return self.go(*rest);
                }
                // Record-copy elimination: all fields selected in order
                // from one same-length record.
                if let Some(orig) = self.record_copy_of(&fields, nflt) {
                    self.changed = true;
                    self.stats.record_copies += 1;
                    self.subst.insert(dst, orig);
                    return self.go(*rest);
                }
                self.defs.insert(dst, Def::Record(fields.clone(), nflt));
                let rest = self.go(*rest);
                Cexp::Record {
                    fields,
                    nflt,
                    dst,
                    rest: Box::new(rest),
                }
            }
            Cexp::Select {
                rec,
                word_off,
                flt,
                dst,
                cty,
                rest,
            } => {
                let rec = self.val(rec);
                if self.n_uses(dst) == 0 {
                    self.changed = true;
                    self.stats.dead += 1;
                    return self.go(*rest);
                }
                // Select from a known record.
                if let Value::Var(r) = &rec {
                    if let Some(Def::Record(fields, nflt)) = self.defs.get(r) {
                        let idx = physical_index(fields, *nflt, word_off, flt);
                        if let Some((v, _)) = idx.and_then(|i| fields.get(i)) {
                            let v = v.clone();
                            self.changed = true;
                            self.subst.insert(dst, self.val(v));
                            return self.go(*rest);
                        }
                    }
                }
                self.defs.insert(dst, Def::Select(rec.clone(), word_off));
                let rest = self.go(*rest);
                Cexp::Select {
                    rec,
                    word_off,
                    flt,
                    dst,
                    cty,
                    rest: Box::new(rest),
                }
            }
            Cexp::Pure {
                op,
                args,
                dst,
                cty,
                rest,
            } => {
                let args = self.vals(args);
                if self.n_uses(dst) == 0 {
                    self.changed = true;
                    self.stats.dead += 1;
                    return self.go(*rest);
                }
                // Constant folding.
                if let Some(v) = fold_pure(op, &args) {
                    self.changed = true;
                    self.subst.insert(dst, v);
                    return self.go(*rest);
                }
                // Wrap/unwrap pair cancellation (paper §5.2).
                if let Some(v) = self.cancel_wrap(op, &args) {
                    self.changed = true;
                    self.stats.wrap_cancelled += 1;
                    self.subst.insert(dst, v);
                    return self.go(*rest);
                }
                // Pointer casts of a known record are free.
                if matches!(op, PureOp::PWrap | PureOp::PUnwrap) {
                    if let Some(Value::Var(a)) = args.first().map(|v| self.val(v.clone())) {
                        if matches!(self.defs.get(&a), Some(Def::Record(..))) {
                            self.changed = true;
                            self.stats.wrap_cancelled += 1;
                            self.subst.insert(dst, Value::Var(a));
                            return self.go(*rest);
                        }
                    }
                }
                self.defs.insert(dst, Def::Pure(op, args.clone()));
                let rest = self.go(*rest);
                Cexp::Pure {
                    op,
                    args,
                    dst,
                    cty,
                    rest: Box::new(rest),
                }
            }
            Cexp::Alloc {
                op,
                args,
                dst,
                rest,
            } => {
                let args = self.vals(args);
                if self.n_uses(dst) == 0 {
                    self.changed = true;
                    self.stats.dead += 1;
                    return self.go(*rest);
                }
                let rest = self.go(*rest);
                Cexp::Alloc {
                    op,
                    args,
                    dst,
                    rest: Box::new(rest),
                }
            }
            Cexp::Look {
                op,
                args,
                dst,
                cty,
                rest,
            } => {
                let args = self.vals(args);
                if self.n_uses(dst) == 0 {
                    self.changed = true;
                    self.stats.dead += 1;
                    return self.go(*rest);
                }
                let rest = self.go(*rest);
                Cexp::Look {
                    op,
                    args,
                    dst,
                    cty,
                    rest: Box::new(rest),
                }
            }
            Cexp::Set { op, args, rest } => {
                let args = self.vals(args);
                let rest = self.go(*rest);
                Cexp::Set {
                    op,
                    args,
                    rest: Box::new(rest),
                }
            }
            Cexp::Switch {
                v,
                lo,
                arms,
                default,
            } => {
                let v = self.val(v);
                if let Value::Int(n) = v {
                    self.changed = true;
                    let idx = n - lo;
                    if idx >= 0 && (idx as usize) < arms.len() {
                        let arm = arms.into_iter().nth(idx as usize).expect("in range");
                        return self.go(arm);
                    }
                    return self.go(*default);
                }
                let arms = arms.into_iter().map(|a| self.go(a)).collect();
                let default = self.go(*default);
                Cexp::Switch {
                    v,
                    lo,
                    arms,
                    default: Box::new(default),
                }
            }
            Cexp::Branch { op, args, tru, fls } => {
                let args = self.vals(args);
                if let Some(cond) = fold_branch(op, &args) {
                    self.changed = true;
                    return self.go(if cond { *tru } else { *fls });
                }
                let tru = self.go(*tru);
                let fls = self.go(*fls);
                Cexp::Branch {
                    op,
                    args,
                    tru: Box::new(tru),
                    fls: Box::new(fls),
                }
            }
            Cexp::Fix { funs, rest } => {
                let mut kept = Vec::new();
                for f in funs {
                    let uses = self.n_uses(f.name);
                    if uses == 0 {
                        self.changed = true;
                        self.stats.dead += 1;
                        continue;
                    }
                    let calls = self.calls.get(&f.name).copied().unwrap_or(0);
                    // Beta-contraction: exactly one occurrence, and it is
                    // a call.
                    if uses == 1 && calls == 1 {
                        self.changed = true;
                        self.stats.beta += 1;
                        self.pending_inline.insert(f.name, f);
                        continue;
                    }
                    // Eta: fn f(x...) = g(x...)  =>  f := g.
                    if let Cexp::App { f: g, args } = &*f.body {
                        let params_match = args.len() == f.params.len()
                            && args
                                .iter()
                                .zip(&f.params)
                                .all(|(a, (p, _))| matches!(a, Value::Var(x) if x == p));
                        let self_free = !matches!(g, Value::Var(x) if *x == f.name);
                        if params_match && self_free {
                            self.changed = true;
                            self.subst.insert(f.name, g.clone());
                            continue;
                        }
                    }
                    kept.push(f);
                }
                let mut out = Vec::new();
                for mut f in kept {
                    let body = std::mem::replace(&mut *f.body, Cexp::Halt { v: Value::Int(0) });
                    *f.body = self.go(body);
                    out.push(f);
                }
                let rest = self.go(*rest);
                if out.is_empty() {
                    rest
                } else {
                    Cexp::Fix {
                        funs: out,
                        rest: Box::new(rest),
                    }
                }
            }
            Cexp::App { f, args } => {
                let f = self.val(f);
                let args = self.vals(args);
                if let Value::Var(x) | Value::Label(x) = &f {
                    if let Some(def) = self.pending_inline.remove(x) {
                        // Inline the once-called function: bind params to
                        // args.
                        let mut body = *def.body;
                        for ((p, _), a) in def.params.iter().zip(&args) {
                            self.subst.insert(*p, a.clone());
                        }
                        body = self.go(body);
                        return body;
                    }
                }
                Cexp::App { f, args }
            }
            Cexp::Halt { v } => Cexp::Halt { v: self.val(v) },
        }
    }

    fn record_copy_of(&self, fields: &[(Value, Cty)], _nflt: usize) -> Option<Value> {
        let first = fields.first()?;
        let Value::Var(v0) = &first.0 else {
            return None;
        };
        let Def::Select(orig, 0) = self.defs.get(v0)? else {
            return None;
        };
        let orig = orig.clone();
        // The original record must have exactly this many fields.
        if let Value::Var(r) = &orig {
            match self.defs.get(r) {
                Some(Def::Record(ofields, _)) if ofields.len() == fields.len() => {}
                _ => return None,
            }
        } else {
            return None;
        }
        // All subsequent fields must be successive selects from it; only
        // handle the all-word case (offsets equal indices).
        for (i, (v, c)) in fields.iter().enumerate() {
            if *c == Cty::Flt {
                return None;
            }
            let Value::Var(x) = v else { return None };
            match self.defs.get(x) {
                Some(Def::Select(r, off)) if *r == orig && *off == i => {}
                _ => return None,
            }
        }
        Some(orig)
    }

    fn cancel_wrap(&self, op: PureOp, args: &[Value]) -> Option<Value> {
        let inverse = match op {
            PureOp::FUnwrap => PureOp::FWrap,
            PureOp::FWrap => PureOp::FUnwrap,
            PureOp::IUnwrap => PureOp::IWrap,
            PureOp::IWrap => PureOp::IUnwrap,
            PureOp::PUnwrap => PureOp::PWrap,
            PureOp::PWrap => PureOp::PUnwrap,
            _ => return None,
        };
        // Unwrap(Wrap(x)) = x always; Wrap(Unwrap(y)) = y because the
        // unwrapped value originated from a box of the same type.
        let Value::Var(a) = args.first()? else {
            return None;
        };
        match self.defs.get(a)? {
            Def::Pure(op2, args2) if *op2 == inverse => args2.first().cloned(),
            _ => None,
        }
    }
}

/// Physical field list is words-first, floats (2 words each) after.
fn physical_index(
    fields: &[(Value, Cty)],
    nflt: usize,
    word_off: usize,
    flt: bool,
) -> Option<usize> {
    let nwords = fields.len() - nflt;
    if flt {
        let idx = word_off.checked_sub(nwords)? / 2;
        if idx < nflt {
            Some(nwords + idx)
        } else {
            None
        }
    } else if word_off < nwords {
        Some(word_off)
    } else {
        None
    }
}

/// SML floor division (`div`): the quotient rounded toward negative
/// infinity, so `7 div ~2 = ~4` and `~7 div 2 = ~4`. This is **not**
/// Rust's `/` (truncation) nor `i64::div_euclid` (which rounds *up* for
/// negative divisors). Wrapping at the boundary: `i64::MIN div ~1`
/// wraps to `i64::MIN`, matching the VM's ALU. The divisor must be
/// nonzero — zero divisors are a runtime trap, never folded.
pub fn floor_div(a: i64, b: i64) -> i64 {
    let q = a.wrapping_div(b);
    let r = a.wrapping_rem(b);
    if r != 0 && (r < 0) != (b < 0) {
        q.wrapping_sub(1)
    } else {
        q
    }
}

/// SML floor modulus (`mod`): the remainder paired with [`floor_div`],
/// taking the *divisor's* sign, so the quotient–remainder law
/// `a = b * (a div b) + (a mod b)` holds for every sign combination
/// (e.g. `7 mod ~2 = ~1`). The divisor must be nonzero.
pub fn floor_mod(a: i64, b: i64) -> i64 {
    let r = a.wrapping_rem(b);
    if r != 0 && (r < 0) != (b < 0) {
        r.wrapping_add(b)
    } else {
        r
    }
}

fn fold_pure(op: PureOp, args: &[Value]) -> Option<Value> {
    use PureOp::*;
    match (op, args) {
        (IAdd, [Value::Int(a), Value::Int(b)]) => Some(Value::Int(a.wrapping_add(*b))),
        (ISub, [Value::Int(a), Value::Int(b)]) => Some(Value::Int(a.wrapping_sub(*b))),
        (IMul, [Value::Int(a), Value::Int(b)]) => Some(Value::Int(a.wrapping_mul(*b))),
        // Floor semantics matching the VM ALU; a zero divisor refuses to
        // fold so the runtime zero test (and its `Div` raise / Fault)
        // survives optimization.
        (IDiv, [Value::Int(a), Value::Int(b)]) if *b != 0 => Some(Value::Int(floor_div(*a, *b))),
        (IMod, [Value::Int(a), Value::Int(b)]) if *b != 0 => Some(Value::Int(floor_mod(*a, *b))),
        (INeg, [Value::Int(a)]) => Some(Value::Int(a.wrapping_neg())),
        (FAdd, [Value::Real(a), Value::Real(b)]) => Some(Value::Real(a + b)),
        (FSub, [Value::Real(a), Value::Real(b)]) => Some(Value::Real(a - b)),
        (FMul, [Value::Real(a), Value::Real(b)]) => Some(Value::Real(a * b)),
        (FNeg, [Value::Real(a)]) => Some(Value::Real(-a)),
        (IntToReal, [Value::Int(a)]) => Some(Value::Real(*a as f64)),
        (Floor, [Value::Real(a)]) => Some(Value::Int(a.floor() as i64)),
        (StrSize, [Value::Str(s)]) => Some(Value::Int(s.len() as i64)),
        _ => None,
    }
}

fn fold_branch(op: BranchOp, args: &[Value]) -> Option<bool> {
    use BranchOp::*;
    match (op, args) {
        (ILt, [Value::Int(a), Value::Int(b)]) => Some(a < b),
        (ILe, [Value::Int(a), Value::Int(b)]) => Some(a <= b),
        (IGt, [Value::Int(a), Value::Int(b)]) => Some(a > b),
        (IGe, [Value::Int(a), Value::Int(b)]) => Some(a >= b),
        (IEq, [Value::Int(a), Value::Int(b)]) => Some(a == b),
        (INe, [Value::Int(a), Value::Int(b)]) => Some(a != b),
        (FLt, [Value::Real(a), Value::Real(b)]) => Some(a < b),
        (FLe, [Value::Real(a), Value::Real(b)]) => Some(a <= b),
        (FGt, [Value::Real(a), Value::Real(b)]) => Some(a > b),
        (FGe, [Value::Real(a), Value::Real(b)]) => Some(a >= b),
        (FEq, [Value::Real(a), Value::Real(b)]) => Some(a == b),
        (FNe, [Value::Real(a), Value::Real(b)]) => Some(a != b),
        (StrEq, [Value::Str(a), Value::Str(b)]) => Some(a == b),
        (StrNe, [Value::Str(a), Value::Str(b)]) => Some(a != b),
        (IsBoxed, [Value::Int(_)]) => Some(false),
        (IsBoxed, [Value::Str(_)]) => Some(true),
        _ => None,
    }
}

// ----- inline expansion ----------------------------------------------------

struct Inline<'s> {
    next: u32,
    size_limit: usize,
    bodies: HashMap<CVar, FunDef>,
    stats: &'s mut OptStats,
    budget: i64,
}

impl Inline<'_> {
    fn go(&mut self, e: Cexp) -> Cexp {
        match e {
            Cexp::Fix { funs, rest } => {
                for f in &funs {
                    if f.body.size() <= self.size_limit && !calls_self(f) {
                        self.bodies.insert(f.name, f.clone());
                    }
                }
                let funs = funs
                    .into_iter()
                    .map(|mut f| {
                        let body = std::mem::replace(&mut *f.body, Cexp::Halt { v: Value::Int(0) });
                        *f.body = self.go(body);
                        f
                    })
                    .collect();
                let rest = self.go(*rest);
                Cexp::Fix {
                    funs,
                    rest: Box::new(rest),
                }
            }
            Cexp::App { f, args } => {
                if self.budget > 0 {
                    if let Value::Var(x) | Value::Label(x) = &f {
                        if let Some(def) = self.bodies.get(x).cloned() {
                            if def.params.len() == args.len() {
                                self.stats.inlined += 1;
                                self.budget -= def.body.size() as i64;
                                let mut map: HashMap<CVar, Value> = HashMap::new();
                                for ((p, _), a) in def.params.iter().zip(&args) {
                                    map.insert(*p, a.clone());
                                }
                                let body = rename(&def.body, &mut map, &mut self.next);
                                // Do not recursively inline into the
                                // freshly inlined body this pass.
                                return body;
                            }
                        }
                    }
                }
                Cexp::App { f, args }
            }
            Cexp::Record {
                fields,
                nflt,
                dst,
                rest,
            } => Cexp::Record {
                fields,
                nflt,
                dst,
                rest: Box::new(self.go(*rest)),
            },
            Cexp::Select {
                rec,
                word_off,
                flt,
                dst,
                cty,
                rest,
            } => Cexp::Select {
                rec,
                word_off,
                flt,
                dst,
                cty,
                rest: Box::new(self.go(*rest)),
            },
            Cexp::Pure {
                op,
                args,
                dst,
                cty,
                rest,
            } => Cexp::Pure {
                op,
                args,
                dst,
                cty,
                rest: Box::new(self.go(*rest)),
            },
            Cexp::Alloc {
                op,
                args,
                dst,
                rest,
            } => Cexp::Alloc {
                op,
                args,
                dst,
                rest: Box::new(self.go(*rest)),
            },
            Cexp::Look {
                op,
                args,
                dst,
                cty,
                rest,
            } => Cexp::Look {
                op,
                args,
                dst,
                cty,
                rest: Box::new(self.go(*rest)),
            },
            Cexp::Set { op, args, rest } => Cexp::Set {
                op,
                args,
                rest: Box::new(self.go(*rest)),
            },
            Cexp::Switch {
                v,
                lo,
                arms,
                default,
            } => Cexp::Switch {
                v,
                lo,
                arms: arms.into_iter().map(|a| self.go(a)).collect(),
                default: Box::new(self.go(*default)),
            },
            Cexp::Branch { op, args, tru, fls } => Cexp::Branch {
                op,
                args,
                tru: Box::new(self.go(*tru)),
                fls: Box::new(self.go(*fls)),
            },
            other => other,
        }
    }
}

fn calls_self(f: &FunDef) -> bool {
    fn uses(e: &Cexp, name: CVar) -> bool {
        let val = |v: &Value| matches!(v, Value::Var(x) | Value::Label(x) if *x == name);
        match e {
            Cexp::Record { fields, rest, .. } => {
                fields.iter().any(|(v, _)| val(v)) || uses(rest, name)
            }
            Cexp::Select { rec, rest, .. } => val(rec) || uses(rest, name),
            Cexp::Pure { args, rest, .. }
            | Cexp::Alloc { args, rest, .. }
            | Cexp::Look { args, rest, .. }
            | Cexp::Set { args, rest, .. } => args.iter().any(val) || uses(rest, name),
            Cexp::Switch {
                v, arms, default, ..
            } => val(v) || arms.iter().any(|a| uses(a, name)) || uses(default, name),
            Cexp::Branch { args, tru, fls, .. } => {
                args.iter().any(val) || uses(tru, name) || uses(fls, name)
            }
            Cexp::Fix { funs, rest } => {
                funs.iter().any(|g| uses(&g.body, name)) || uses(rest, name)
            }
            Cexp::App { f, args } => val(f) || args.iter().any(val),
            Cexp::Halt { v } => val(v),
        }
    }
    uses(&f.body, f.name)
}

/// Alpha-renames an expression, substituting via `map` and freshening
/// every binder.
pub fn rename(e: &Cexp, map: &mut HashMap<CVar, Value>, next: &mut u32) -> Cexp {
    let fresh = |next: &mut u32| {
        let v = *next;
        *next += 1;
        v
    };
    let rv = |v: &Value, map: &HashMap<CVar, Value>| match v {
        Value::Var(x) => map.get(x).cloned().unwrap_or(Value::Var(*x)),
        Value::Label(x) => match map.get(x) {
            Some(Value::Var(y)) => Value::Label(*y),
            _ => Value::Label(*x),
        },
        other => other.clone(),
    };
    match e {
        Cexp::Record {
            fields,
            nflt,
            dst,
            rest,
        } => {
            let fields = fields.iter().map(|(v, c)| (rv(v, map), *c)).collect();
            let nd = fresh(next);
            map.insert(*dst, Value::Var(nd));
            Cexp::Record {
                fields,
                nflt: *nflt,
                dst: nd,
                rest: Box::new(rename(rest, map, next)),
            }
        }
        Cexp::Select {
            rec,
            word_off,
            flt,
            dst,
            cty,
            rest,
        } => {
            let rec = rv(rec, map);
            let nd = fresh(next);
            map.insert(*dst, Value::Var(nd));
            Cexp::Select {
                rec,
                word_off: *word_off,
                flt: *flt,
                dst: nd,
                cty: *cty,
                rest: Box::new(rename(rest, map, next)),
            }
        }
        Cexp::Pure {
            op,
            args,
            dst,
            cty,
            rest,
        } => {
            let args = args.iter().map(|v| rv(v, map)).collect();
            let nd = fresh(next);
            map.insert(*dst, Value::Var(nd));
            Cexp::Pure {
                op: *op,
                args,
                dst: nd,
                cty: *cty,
                rest: Box::new(rename(rest, map, next)),
            }
        }
        Cexp::Alloc {
            op,
            args,
            dst,
            rest,
        } => {
            let args = args.iter().map(|v| rv(v, map)).collect();
            let nd = fresh(next);
            map.insert(*dst, Value::Var(nd));
            Cexp::Alloc {
                op: *op,
                args,
                dst: nd,
                rest: Box::new(rename(rest, map, next)),
            }
        }
        Cexp::Look {
            op,
            args,
            dst,
            cty,
            rest,
        } => {
            let args = args.iter().map(|v| rv(v, map)).collect();
            let nd = fresh(next);
            map.insert(*dst, Value::Var(nd));
            Cexp::Look {
                op: *op,
                args,
                dst: nd,
                cty: *cty,
                rest: Box::new(rename(rest, map, next)),
            }
        }
        Cexp::Set { op, args, rest } => Cexp::Set {
            op: *op,
            args: args.iter().map(|v| rv(v, map)).collect(),
            rest: Box::new(rename(rest, map, next)),
        },
        Cexp::Switch {
            v,
            lo,
            arms,
            default,
        } => Cexp::Switch {
            v: rv(v, map),
            lo: *lo,
            arms: arms.iter().map(|a| rename(a, map, next)).collect(),
            default: Box::new(rename(default, map, next)),
        },
        Cexp::Branch { op, args, tru, fls } => Cexp::Branch {
            op: *op,
            args: args.iter().map(|v| rv(v, map)).collect(),
            tru: Box::new(rename(tru, map, next)),
            fls: Box::new(rename(fls, map, next)),
        },
        Cexp::Fix { funs, rest } => {
            for f in funs {
                let nf = fresh(next);
                map.insert(f.name, Value::Var(nf));
            }
            let funs = funs
                .iter()
                .map(|f| {
                    let name = match map.get(&f.name) {
                        Some(Value::Var(x)) => *x,
                        _ => f.name,
                    };
                    let params: Vec<(CVar, Cty)> = f
                        .params
                        .iter()
                        .map(|(p, c)| {
                            let np = fresh(next);
                            map.insert(*p, Value::Var(np));
                            (np, *c)
                        })
                        .collect();
                    FunDef {
                        kind: f.kind,
                        name,
                        params,
                        body: Box::new(rename(&f.body, map, next)),
                    }
                })
                .collect();
            Cexp::Fix {
                funs,
                rest: Box::new(rename(rest, map, next)),
            }
        }
        Cexp::App { f, args } => Cexp::App {
            f: rv(f, map),
            args: args.iter().map(|v| rv(v, map)).collect(),
        },
        Cexp::Halt { v } => Cexp::Halt { v: rv(v, map) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The SML definition: `a div b` floors, `a mod b` takes the
    /// divisor's sign, and the quotient–remainder law ties them.
    #[test]
    fn floor_div_mod_all_sign_combinations() {
        let cases = [
            (7i64, 2i64, 3i64, 1i64),
            (-7, 2, -4, 1),
            (7, -2, -4, -1),
            (-7, -2, 3, -1),
            (6, 3, 2, 0),
            (-6, 3, -2, 0),
            (6, -3, -2, 0),
            (-6, -3, 2, 0),
            (0, 5, 0, 0),
            (0, -5, 0, 0),
        ];
        for (a, b, q, r) in cases {
            assert_eq!(floor_div(a, b), q, "{a} div {b}");
            assert_eq!(floor_mod(a, b), r, "{a} mod {b}");
            assert_eq!(
                b.wrapping_mul(floor_div(a, b))
                    .wrapping_add(floor_mod(a, b)),
                a
            );
        }
    }

    #[test]
    fn floor_div_wraps_at_i64_min() {
        assert_eq!(floor_div(i64::MIN, -1), i64::MIN);
        assert_eq!(floor_mod(i64::MIN, -1), 0);
        assert_eq!(floor_div(i64::MIN, 1), i64::MIN);
        assert_eq!(floor_mod(i64::MIN, 1), 0);
        assert_eq!(floor_div(i64::MIN, -2), i64::MIN / -2);
        assert_eq!(floor_mod(i64::MIN, -2), 0);
    }

    #[test]
    fn fold_pure_matches_floor_semantics() {
        use PureOp::*;
        let int = |v: Option<Value>| match v {
            Some(Value::Int(n)) => n,
            other => panic!("expected an int fold, got {other:?}"),
        };
        for (a, b) in [(7i64, 2i64), (-7, 2), (7, -2), (-7, -2)] {
            let args = [Value::Int(a), Value::Int(b)];
            assert_eq!(int(fold_pure(IDiv, &args)), floor_div(a, b));
            assert_eq!(int(fold_pure(IMod, &args)), floor_mod(a, b));
        }
    }

    /// Boundary folds must wrap (like the VM ALU), not panic.
    #[test]
    fn fold_pure_survives_i64_min() {
        use PureOp::*;
        let args = [Value::Int(i64::MIN), Value::Int(-1)];
        assert_eq!(fold_pure(IDiv, &args), Some(Value::Int(i64::MIN)));
        assert_eq!(fold_pure(IMod, &args), Some(Value::Int(0)));
        assert_eq!(
            fold_pure(INeg, &[Value::Int(i64::MIN)]),
            Some(Value::Int(i64::MIN))
        );
    }

    /// A zero divisor must never fold: the runtime zero test that
    /// raises `Div` (or the VM Fault) has to survive optimization.
    #[test]
    fn fold_pure_refuses_zero_divisors() {
        use PureOp::*;
        let args = [Value::Int(5), Value::Int(0)];
        assert_eq!(fold_pure(IDiv, &args), None);
        assert_eq!(fold_pure(IMod, &args), None);
    }
}
