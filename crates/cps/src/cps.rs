//! The continuation-passing-style intermediate representation with CTY
//! annotations (paper §5).
//!
//! Every variable is annotated at its binding occurrence with a [`Cty`]:
//! a tagged integer, a float (living in float registers), a pointer (with
//! known record length when available), a function, or a continuation.
//! The CTYs are "very easy and cheap for the back end to maintain"
//! (paper §5) and drive record layout, GC safety, and the float register
//! file.

use sml_lambda::Lty;
use std::fmt;

/// A CPS variable.
pub type CVar = u32;

/// CPS types (paper §5): `INTt`, `FLTt`, `PTRt`, `FUNt`, `CNTt`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Cty {
    /// Tagged integer.
    Int,
    /// Unboxed float (float register).
    Flt,
    /// Pointer (or tagged word) with optionally known record length.
    Ptr(Option<u32>),
    /// Function (code or closure).
    Fun,
    /// Continuation.
    Cnt,
}

impl Cty {
    /// True for one-word, GC-scannable values.
    pub fn is_word(self) -> bool {
        !matches!(self, Cty::Flt)
    }
}

/// An atomic CPS value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Variable reference.
    Var(CVar),
    /// Code label (after closure conversion).
    Label(CVar),
    /// Integer constant.
    Int(i64),
    /// Float constant.
    Real(f64),
    /// String constant.
    Str(String),
}

impl Value {
    /// The variable, if this is one.
    pub fn as_var(&self) -> Option<CVar> {
        match self {
            Value::Var(v) => Some(*v),
            _ => None,
        }
    }
}

/// Pure value operators (no observable effect, one result).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum PureOp {
    IAdd,
    ISub,
    IMul,
    IDiv,
    IMod,
    INeg,
    FAdd,
    FSub,
    FMul,
    FDiv,
    FNeg,
    FSqrt,
    FSin,
    FCos,
    FAtan,
    FExp,
    FLn,
    Floor,
    IntToReal,
    /// Box a float (heap-allocates: 1 descriptor + 2 data words).
    FWrap,
    /// Unbox a float (two single-word loads, paper footnote 7).
    FUnwrap,
    /// Tag an integer (free with 31-bit tagged ints, kept for
    /// cancellation accounting).
    IWrap,
    /// Untag an integer.
    IUnwrap,
    /// Pointer wrap (no-op cast).
    PWrap,
    /// Pointer unwrap (no-op cast).
    PUnwrap,
    StrSize,
    StrSub,
    StrCat,
    IntToString,
    RealToString,
    ArrayLength,
}

impl PureOp {
    /// Result CTY.
    pub fn result_cty(self) -> Cty {
        use PureOp::*;
        match self {
            IAdd | ISub | IMul | IDiv | IMod | INeg | Floor | IUnwrap | StrSize | StrSub
            | ArrayLength => Cty::Int,
            FAdd | FSub | FMul | FDiv | FNeg | FSqrt | FSin | FCos | FAtan | FExp | FLn
            | IntToReal | FUnwrap => Cty::Flt,
            FWrap | IWrap | PWrap | PUnwrap | StrCat | IntToString | RealToString => Cty::Ptr(None),
        }
    }
}

/// Allocating operators for mutable objects.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum AllocOp {
    MakeRef,
    ArrayMake,
}

/// State readers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum LookOp {
    Deref,
    ArraySub,
    GetHandler,
}

/// State writers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum SetOp {
    Assign,
    /// Write-barrier-free assignment of a non-pointer (paper §4.4).
    UnboxedAssign,
    ArrayUpdate,
    UnboxedArrayUpdate,
    Print,
    SetHandler,
}

/// Two-way branching comparisons.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum BranchOp {
    ILt,
    ILe,
    IGt,
    IGe,
    IEq,
    INe,
    FLt,
    FLe,
    FGt,
    FGe,
    FEq,
    FNe,
    StrEq,
    StrNe,
    StrLt,
    StrLe,
    StrGt,
    StrGe,
    /// Structural equality (runtime call).
    PolyEq,
    PtrEq,
    /// Boxity test: true when the word is a pointer.
    IsBoxed,
}

/// A CPS expression (a tree of operations ending in applications).
#[derive(Clone, Debug, PartialEq)]
pub enum Cexp {
    /// Allocate a record. Fields are in **physical** order: raw float
    /// fields first (`nflt` of them, two words each), then one-word
    /// fields. The object descriptor records both lengths (paper
    /// Figure 1c).
    Record {
        /// Field values with their CTYs, floats first.
        fields: Vec<(Value, Cty)>,
        /// Number of leading raw-float fields.
        nflt: usize,
        /// Destination variable (CTY `Ptr(len)`).
        dst: CVar,
        /// Continuation.
        rest: Box<Cexp>,
    },
    /// Load a field. `word_off` is the physical word offset (floats
    /// occupy two words).
    Select {
        /// The record.
        rec: Value,
        /// Physical word offset.
        word_off: usize,
        /// Whether a raw float is loaded (two single-word loads).
        flt: bool,
        /// Destination.
        dst: CVar,
        /// Destination CTY.
        cty: Cty,
        /// Continuation.
        rest: Box<Cexp>,
    },
    /// Pure operator.
    Pure {
        /// Operator.
        op: PureOp,
        /// Arguments.
        args: Vec<Value>,
        /// Destination.
        dst: CVar,
        /// Destination CTY.
        cty: Cty,
        /// Continuation.
        rest: Box<Cexp>,
    },
    /// Mutable allocation.
    Alloc {
        /// Operator.
        op: AllocOp,
        /// Arguments.
        args: Vec<Value>,
        /// Destination.
        dst: CVar,
        /// Continuation.
        rest: Box<Cexp>,
    },
    /// State read.
    Look {
        /// Operator.
        op: LookOp,
        /// Arguments.
        args: Vec<Value>,
        /// Destination.
        dst: CVar,
        /// Destination CTY.
        cty: Cty,
        /// Continuation.
        rest: Box<Cexp>,
    },
    /// State write.
    Set {
        /// Operator.
        op: SetOp,
        /// Arguments.
        args: Vec<Value>,
        /// Continuation.
        rest: Box<Cexp>,
    },
    /// Dense integer dispatch (a jump table at the machine level).
    Switch {
        /// The scrutinee (a tagged integer or constant-constructor word).
        v: Value,
        /// The smallest case value; case `i` of the table is `lo + i`.
        lo: i64,
        /// One arm per table slot.
        arms: Vec<Cexp>,
        /// Taken when the value is outside `lo .. lo + arms.len()`, or
        /// when a slot has no user arm.
        default: Box<Cexp>,
    },
    /// Conditional.
    Branch {
        /// Comparison.
        op: BranchOp,
        /// Arguments.
        args: Vec<Value>,
        /// True continuation.
        tru: Box<Cexp>,
        /// False continuation.
        fls: Box<Cexp>,
    },
    /// Function/continuation definitions.
    Fix {
        /// The functions.
        funs: Vec<FunDef>,
        /// Scope of the definitions.
        rest: Box<Cexp>,
    },
    /// Tail application (the only transfer of control).
    App {
        /// Callee.
        f: Value,
        /// Arguments.
        args: Vec<Value>,
    },
    /// Program exit with a result value.
    Halt {
        /// Final value.
        v: Value,
    },
}

/// Classification of a CPS function.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FunKind {
    /// May escape (stored in records, passed as value): gets a closure.
    Escape,
    /// All call sites known: free variables become parameters.
    Known,
    /// Continuation introduced by CPS conversion.
    Cont,
}

/// One CPS function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct FunDef {
    /// Classification.
    pub kind: FunKind,
    /// Name.
    pub name: CVar,
    /// Parameters with CTYs.
    pub params: Vec<(CVar, Cty)>,
    /// Body.
    pub body: Box<Cexp>,
}

impl Cexp {
    /// Number of CPS operators (the middle-end code-size metric).
    pub fn size(&self) -> usize {
        match self {
            Cexp::Record { rest, .. }
            | Cexp::Select { rest, .. }
            | Cexp::Pure { rest, .. }
            | Cexp::Alloc { rest, .. }
            | Cexp::Look { rest, .. }
            | Cexp::Set { rest, .. } => 1 + rest.size(),
            Cexp::Branch { tru, fls, .. } => 1 + tru.size() + fls.size(),
            Cexp::Switch { arms, default, .. } => {
                1 + default.size() + arms.iter().map(Cexp::size).sum::<usize>()
            }
            Cexp::Fix { funs, rest } => {
                1 + rest.size() + funs.iter().map(|f| f.body.size()).sum::<usize>()
            }
            Cexp::App { .. } | Cexp::Halt { .. } => 1,
        }
    }
}

/// Maps an LTY to the CTY of values with that representation (paper §5's
/// "translation from LTY to CTY is straight-forward").
pub fn cty_of_lty(i: &sml_lambda::LtyInterner, t: Lty) -> Cty {
    use sml_lambda::LtyKind;
    match i.kind(t) {
        LtyKind::Int => Cty::Int,
        LtyKind::Real => Cty::Flt,
        LtyKind::Record(fs) => Cty::Ptr(Some(fs.len() as u32)),
        LtyKind::SRecord(fs) => Cty::Ptr(Some(fs.len() as u32)),
        LtyKind::PRecord(_) => Cty::Ptr(None),
        LtyKind::Arrow(..) => Cty::Fun,
        LtyKind::Boxed | LtyKind::RBoxed => Cty::Ptr(None),
        LtyKind::Bottom => Cty::Ptr(None),
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Var(v) => write!(f, "v{v}"),
            Value::Label(l) => write!(f, "L{l}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Real(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cty_mapping() {
        let mut i = sml_lambda::LtyInterner::new(sml_lambda::InternMode::HashCons);
        assert_eq!(cty_of_lty(&i, i.int()), Cty::Int);
        assert_eq!(cty_of_lty(&i, i.real()), Cty::Flt);
        assert_eq!(cty_of_lty(&i, i.boxed()), Cty::Ptr(None));
        let r = i.record(vec![i.int(), i.real()]);
        assert_eq!(cty_of_lty(&i, r), Cty::Ptr(Some(2)));
        let a = i.arrow(i.int(), i.int());
        assert_eq!(cty_of_lty(&i, a), Cty::Fun);
    }

    #[test]
    fn size_counts_operators() {
        let e = Cexp::Pure {
            op: PureOp::IAdd,
            args: vec![Value::Int(1), Value::Int(2)],
            dst: 0,
            cty: Cty::Int,
            rest: Box::new(Cexp::Halt { v: Value::Var(0) }),
        };
        assert_eq!(e.size(), 2);
    }

    #[test]
    fn word_ctys() {
        assert!(Cty::Int.is_word());
        assert!(Cty::Ptr(None).is_word());
        assert!(!Cty::Flt.is_word());
    }
}
