//! CPS conversion (paper §5.1).
//!
//! Converts LEXP into CPS, making all control flow explicit. This phase
//! decides record layouts (raw floats segregated before word fields,
//! paper Figure 1c) and argument-passing conventions: under the
//! type-based configurations, a function whose argument LTY is a record
//! of at most ten fields takes its components in registers (multi-
//! argument CPS functions), and float components travel in float
//! registers; under `sml.fag`, only *known* functions (all call sites
//! visible) are flattened; under `sml.nrp` every function takes one boxed
//! argument.

use crate::cps::*;
use sml_lambda::{LVar, Lexp, Lty, LtyInterner, LtyKind, Primop};
use std::collections::{HashMap, HashSet};

/// Argument/result flattening policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpreadMode {
    /// One boxed argument, one boxed result (`sml.nrp`).
    None,
    /// Flatten arguments of known functions only (`sml.fag`, after
    /// Kranz).
    KnownOnly,
    /// Flatten by type for all functions, including escaping ones
    /// (`sml.rep` and up).
    ByType,
}

/// CPS back-end configuration.
#[derive(Clone, Copy, Debug)]
pub struct CpsConfig {
    /// Flattening policy.
    pub spread: SpreadMode,
    /// Maximum number of spread arguments (the paper uses 10 on
    /// 32-register machines).
    pub max_spread: usize,
    /// Three floating-point callee-save registers (`sml.fp3`); affects
    /// closure conversion and the cost model.
    pub fp_callee_save: bool,
}

impl Default for CpsConfig {
    fn default() -> CpsConfig {
        CpsConfig {
            spread: SpreadMode::ByType,
            max_spread: 10,
            fp_callee_save: false,
        }
    }
}

/// A CPS program before closure conversion.
#[derive(Debug)]
pub struct CpsProgram {
    /// The body (contains nested `Fix`s).
    pub body: Cexp,
    /// First CPS variable id not in use.
    pub next_var: u32,
}

/// Converts a translated program into CPS.
pub fn convert(
    lexp: &Lexp,
    interner: &mut LtyInterner,
    first_var: u32,
    cfg: &CpsConfig,
) -> CpsProgram {
    let mut known = HashSet::new();
    collect_known(lexp, &mut known);
    let mut known_arity = HashMap::new();
    if cfg.spread == SpreadMode::KnownOnly {
        collect_known_arity(lexp, &known, cfg.max_spread, &mut known_arity);
    }
    let mut conv = Conv {
        i: interner,
        cfg: *cfg,
        next: first_var,
        env: HashMap::new(),
        subst: HashMap::new(),
        known,
        known_arity,
    };
    let body = conv.cexp(lexp, K::Done);
    CpsProgram {
        body,
        next_var: conv.next,
    }
}

/// Finds LEXP `Fix`-bound functions whose every occurrence is a direct
/// call head (known functions, eligible for `sml.fag` flattening).
fn collect_known(e: &Lexp, known: &mut HashSet<LVar>) {
    fn bound(e: &Lexp, out: &mut HashSet<LVar>) {
        match e {
            Lexp::Fix(fs, b) => {
                for (v, _, f) in fs {
                    out.insert(*v);
                    bound(f, out);
                }
                bound(b, out);
            }
            Lexp::Fn(_, _, _, b) => bound(b, out),
            Lexp::App(f, a) => {
                bound(f, out);
                bound(a, out);
            }
            Lexp::Let(_, a, b) => {
                bound(a, out);
                bound(b, out);
            }
            Lexp::Record(es) | Lexp::SRecord(es) | Lexp::PrimApp(_, es) => {
                es.iter().for_each(|e| bound(e, out))
            }
            Lexp::Select(_, e) | Lexp::Wrap(_, e) | Lexp::Unwrap(_, e) | Lexp::Raise(e, _) => {
                bound(e, out)
            }
            Lexp::If(c, t, f) => {
                bound(c, out);
                bound(t, out);
                bound(f, out);
            }
            Lexp::SwitchInt(s, arms, d) => {
                bound(s, out);
                arms.iter().for_each(|(_, e)| bound(e, out));
                if let Some(d) = d {
                    bound(d, out);
                }
            }
            Lexp::Handle(e, h) => {
                bound(e, out);
                bound(h, out);
            }
            _ => {}
        }
    }
    fn escapes(e: &Lexp, known: &mut HashSet<LVar>) {
        match e {
            Lexp::Var(v) => {
                known.remove(v);
            }
            Lexp::App(f, a) => {
                // The head survives as known; everything inside the
                // argument escapes.
                if !matches!(**f, Lexp::Var(_)) {
                    escapes(f, known);
                }
                escapes(a, known);
            }
            Lexp::Fix(fs, b) => {
                fs.iter().for_each(|(_, _, f)| escapes(f, known));
                escapes(b, known);
            }
            Lexp::Fn(_, _, _, b) => escapes(b, known),
            Lexp::Let(_, a, b) => {
                escapes(a, known);
                escapes(b, known);
            }
            Lexp::Record(es) | Lexp::SRecord(es) | Lexp::PrimApp(_, es) => {
                es.iter().for_each(|e| escapes(e, known))
            }
            Lexp::Select(_, e) | Lexp::Wrap(_, e) | Lexp::Unwrap(_, e) | Lexp::Raise(e, _) => {
                escapes(e, known)
            }
            Lexp::If(c, t, f) => {
                escapes(c, known);
                escapes(t, known);
                escapes(f, known);
            }
            Lexp::SwitchInt(s, arms, d) => {
                escapes(s, known);
                arms.iter().for_each(|(_, e)| escapes(e, known));
                if let Some(d) = d {
                    escapes(d, known);
                }
            }
            Lexp::Handle(e, h) => {
                escapes(e, known);
                escapes(h, known);
            }
            _ => {}
        }
    }
    bound(e, known);
    escapes(e, known);
}

/// For `sml.fag` (Kranz): a known function is flattenable when every
/// call site passes a literal record of one consistent arity — a purely
/// syntactic analysis requiring no type information.
fn collect_known_arity(
    e: &Lexp,
    known: &HashSet<LVar>,
    max: usize,
    out: &mut HashMap<LVar, Option<usize>>,
) {
    fn walk(e: &Lexp, known: &HashSet<LVar>, max: usize, out: &mut HashMap<LVar, Option<usize>>) {
        if let Lexp::App(f, a) = e {
            if let Lexp::Var(v) = &**f {
                if known.contains(v) {
                    let arity = match &**a {
                        Lexp::Record(es) if !es.is_empty() && es.len() <= max => Some(es.len()),
                        _ => None,
                    };
                    match out.get(v) {
                        None => {
                            out.insert(*v, arity);
                        }
                        Some(prev) if *prev != arity => {
                            out.insert(*v, None);
                        }
                        _ => {}
                    }
                }
            }
        }
        match e {
            Lexp::Fn(_, _, _, b) => walk(b, known, max, out),
            Lexp::Fix(fs, b) => {
                fs.iter().for_each(|(_, _, f)| walk(f, known, max, out));
                walk(b, known, max, out);
            }
            Lexp::App(f, a) => {
                walk(f, known, max, out);
                walk(a, known, max, out);
            }
            Lexp::Let(_, a, b) => {
                walk(a, known, max, out);
                walk(b, known, max, out);
            }
            Lexp::Record(es) | Lexp::SRecord(es) | Lexp::PrimApp(_, es) => {
                es.iter().for_each(|e| walk(e, known, max, out))
            }
            Lexp::Select(_, e) | Lexp::Wrap(_, e) | Lexp::Unwrap(_, e) | Lexp::Raise(e, _) => {
                walk(e, known, max, out)
            }
            Lexp::If(c, t, f) => {
                walk(c, known, max, out);
                walk(t, known, max, out);
                walk(f, known, max, out);
            }
            Lexp::SwitchInt(s, arms, d) => {
                walk(s, known, max, out);
                arms.iter().for_each(|(_, e)| walk(e, known, max, out));
                if let Some(d) = d {
                    walk(d, known, max, out);
                }
            }
            Lexp::Handle(e, h) => {
                walk(e, known, max, out);
                walk(h, known, max, out);
            }
            _ => {}
        }
    }
    let mut tmp: HashMap<LVar, Option<usize>> = HashMap::new();
    walk(e, known, max, &mut tmp);
    let _ = out;
    *out = tmp;
}

/// A boxed consumer of one converted value.
type Consumer<'a> = Box<dyn FnOnce(&mut Conv<'_>, Value) -> Cexp + 'a>;
/// A boxed consumer of several converted values.
type MultiConsumer<'a> = Box<dyn FnOnce(&mut Conv<'_>, Vec<Value>) -> Cexp + 'a>;

/// The meta-continuation of conversion.
enum K<'a> {
    /// Apply this consumer to the produced value.
    Fn(Consumer<'a>),
    /// Return to a continuation variable expecting results laid out per
    /// the given LTY.
    Ret(CVar, Lty),
    /// Program exit.
    Done,
}

struct Conv<'i> {
    i: &'i mut LtyInterner,
    cfg: CpsConfig,
    next: u32,
    /// LTY environment for LEXP/CPS variables.
    env: HashMap<LVar, Lty>,
    /// Values substituted for let-bound variables.
    subst: HashMap<LVar, Value>,
    known: HashSet<LVar>,
    /// Kranz-style syntactic flattening (`sml.fag`): known functions
    /// whose every call site passes a literal record of one consistent
    /// arity (`None` when inconsistent).
    known_arity: HashMap<LVar, Option<usize>>,
}

impl Conv<'_> {
    fn fresh(&mut self) -> CVar {
        let v = self.next;
        self.next += 1;
        v
    }

    fn value_of(&self, v: LVar) -> Value {
        self.subst.get(&v).cloned().unwrap_or(Value::Var(v))
    }

    fn cty(&self, t: Lty) -> Cty {
        cty_of_lty(self.i, t)
    }

    // ----- LTY reconstruction ------------------------------------------------

    fn lty_of(&mut self, e: &Lexp) -> Lty {
        match e {
            Lexp::Var(v) => self.env.get(v).copied().unwrap_or_else(|| self.i.boxed()),
            Lexp::Int(_) => self.i.int(),
            Lexp::Real(_) => self.i.real(),
            Lexp::Str(_) => self.i.boxed(),
            Lexp::Fn(v, t, r, _) => {
                let _ = v;
                self.i.arrow(*t, *r)
            }
            Lexp::App(f, _) => {
                let ft = self.lty_of(f);
                match *self.i.kind(ft) {
                    LtyKind::Arrow(_, r) => r,
                    _ => self.i.rboxed(),
                }
            }
            Lexp::Fix(fs, b) => {
                for (v, t, _) in fs {
                    self.env.insert(*v, *t);
                }
                self.lty_of(b)
            }
            Lexp::Let(v, a, b) => {
                let at = self.lty_of(a);
                self.env.insert(*v, at);
                self.lty_of(b)
            }
            Lexp::Record(es) => {
                let ts: Vec<Lty> = es.iter().map(|e| self.lty_of(e)).collect();
                self.i.record(ts)
            }
            Lexp::SRecord(es) => {
                let ts: Vec<Lty> = es.iter().map(|e| self.lty_of(e)).collect();
                self.i.srecord(ts)
            }
            Lexp::Select(idx, e) => {
                let t = self.lty_of(e);
                match self.i.kind(t).clone() {
                    LtyKind::Record(fs) | LtyKind::SRecord(fs) => {
                        fs.get(*idx).copied().unwrap_or_else(|| self.i.rboxed())
                    }
                    LtyKind::PRecord(fs) => fs
                        .iter()
                        .find(|(s, _)| s == idx)
                        .map(|(_, t)| *t)
                        .unwrap_or_else(|| self.i.rboxed()),
                    _ => self.i.rboxed(),
                }
            }
            Lexp::PrimApp(op, args) => match op {
                Primop::Callcc => self.i.boxed(),
                Primop::Throw => self.i.rboxed(),
                _ => {
                    let _ = args;
                    let (_, r) = op.sig(self.i);
                    r
                }
            },
            Lexp::If(_, t, f) => {
                let tt = self.lty_of(t);
                if matches!(self.i.kind(tt), LtyKind::Bottom) {
                    self.lty_of(f)
                } else {
                    tt
                }
            }
            Lexp::SwitchInt(_, arms, d) => {
                for (_, a) in arms {
                    let t = self.lty_of(a);
                    if !matches!(self.i.kind(t), LtyKind::Bottom) {
                        return t;
                    }
                }
                match d {
                    Some(d) => self.lty_of(d),
                    None => self.i.bottom(),
                }
            }
            Lexp::Wrap(..) => self.i.boxed(),
            Lexp::Unwrap(t, _) => *t,
            Lexp::Raise(_, t) => *t,
            Lexp::Handle(e, _) => self.lty_of(e),
        }
    }

    // ----- layouts --------------------------------------------------------------

    /// The flattened components of an argument (or result) LTY, if the
    /// configuration spreads it. `fnvar` is the function being defined or
    /// called, for the syntactic `sml.fag` analysis.
    fn spread_of(&mut self, t: Lty, fnvar: Option<LVar>) -> Option<Vec<Lty>> {
        match self.cfg.spread {
            SpreadMode::None => None,
            SpreadMode::KnownOnly => {
                // Kranz: purely syntactic; every component is a standard
                // one-word value.
                let v = fnvar?;
                match self.known_arity.get(&v) {
                    Some(Some(n)) => Some(vec![self.i.rboxed(); *n]),
                    _ => None,
                }
            }
            SpreadMode::ByType => match self.i.kind(t).clone() {
                LtyKind::Record(fs) if !fs.is_empty() && fs.len() <= self.cfg.max_spread => {
                    Some(fs)
                }
                _ => None,
            },
        }
    }

    /// Result-value spreading: only under fully type-based conventions
    /// (escaping callers must agree by type).
    fn ret_spread_of(&mut self, t: Lty) -> Option<Vec<Lty>> {
        if self.cfg.spread != SpreadMode::ByType {
            return None;
        }
        match self.i.kind(t).clone() {
            LtyKind::Record(fs) if !fs.is_empty() && fs.len() <= self.cfg.max_spread => Some(fs),
            _ => None,
        }
    }

    /// Physical record layout: scanned one-word fields first, raw float
    /// fields (two words each) after; the object descriptor records both
    /// lengths (the information content of paper Figure 1c, with the
    /// scanned part leading so code pointers of closures sit at offset
    /// 0).
    fn layout_fields(&mut self, vals: &[Value], ltys: &[Lty]) -> (Vec<(Value, Cty)>, usize) {
        let mut floats = Vec::new();
        let mut words = Vec::new();
        for (v, t) in vals.iter().zip(ltys) {
            let c = self.cty(*t);
            if c == Cty::Flt {
                floats.push((v.clone(), c));
            } else {
                words.push((v.clone(), c));
            }
        }
        let nflt = floats.len();
        words.extend(floats);
        (words, nflt)
    }

    /// Physical offset of logical field `idx` within a record of the
    /// given field LTYs: `(word_offset, is_float, cty)`.
    fn field_offset(&mut self, fields: &[Lty], idx: usize) -> (usize, bool, Cty) {
        let ctys: Vec<Cty> = fields.iter().map(|t| self.cty(*t)).collect();
        let nwords = ctys.iter().filter(|c| **c != Cty::Flt).count();
        if ctys[idx] == Cty::Flt {
            let pos = ctys[..idx].iter().filter(|c| **c == Cty::Flt).count();
            (nwords + 2 * pos, true, Cty::Flt)
        } else {
            let pos = ctys[..idx].iter().filter(|c| **c != Cty::Flt).count();
            (pos, false, ctys[idx])
        }
    }

    // ----- conversion -------------------------------------------------------------

    fn apply_k(&mut self, k: K<'_>, v: Value, _res_lty: Lty) -> Cexp {
        match k {
            K::Fn(f) => f(self, v),
            K::Ret(kvar, want_lty) => self.ret_to(kvar, want_lty, v),
            K::Done => Cexp::Halt { v },
        }
    }

    /// Returns `v` to continuation `kvar`, spreading per `res_lty`.
    fn ret_to(&mut self, kvar: CVar, res_lty: Lty, v: Value) -> Cexp {
        match self.ret_spread_of(res_lty) {
            None => Cexp::App {
                f: Value::Var(kvar),
                args: vec![v],
            },
            Some(fields) => {
                // Select each component and pass them spread.
                let mut args = Vec::with_capacity(fields.len());
                let mut selects = Vec::new();
                for idx in 0..fields.len() {
                    let (off, flt, cty) = self.field_offset(&fields, idx);
                    let dst = self.fresh();
                    selects.push((off, flt, dst, cty));
                    args.push(Value::Var(dst));
                }
                let mut body = Cexp::App {
                    f: Value::Var(kvar),
                    args,
                };
                for (off, flt, dst, cty) in selects.into_iter().rev() {
                    body = Cexp::Select {
                        rec: v.clone(),
                        word_off: off,
                        flt,
                        dst,
                        cty,
                        rest: Box::new(body),
                    };
                }
                body
            }
        }
    }

    /// Builds the join continuation for a call with result type `rlty`;
    /// returns (cont var, Fix wrapper builder).
    fn make_join(&mut self, rlty: Lty, k: K<'_>) -> (CVar, Vec<FunDef>) {
        let kvar = self.fresh();
        let fun = match self.ret_spread_of(rlty) {
            None => {
                let x = self.fresh();
                let cty = self.cty(rlty);
                self.env.insert(x, rlty);
                let body = self.apply_k(k, Value::Var(x), rlty);
                FunDef {
                    kind: FunKind::Cont,
                    name: kvar,
                    params: vec![(x, cty)],
                    body: Box::new(body),
                }
            }
            Some(fields) => {
                // Receive components, rebuild the logical record (the
                // optimizer removes it when only selections follow).
                let params: Vec<(CVar, Cty)> = fields
                    .iter()
                    .map(|t| {
                        let x = self.fresh();
                        (x, self.cty(*t))
                    })
                    .collect();
                let vals: Vec<Value> = params.iter().map(|(x, _)| Value::Var(*x)).collect();
                let (phys, nflt) = self.layout_fields(&vals, &fields);
                let rv = self.fresh();
                self.env.insert(rv, rlty);
                let body = self.apply_k(k, Value::Var(rv), rlty);
                FunDef {
                    kind: FunKind::Cont,
                    name: kvar,
                    params,
                    body: Box::new(Cexp::Record {
                        fields: phys,
                        nflt,
                        dst: rv,
                        rest: Box::new(body),
                    }),
                }
            }
        };
        (kvar, vec![fun])
    }

    /// Converts `e`, delivering its value to `k`.
    fn cexp(&mut self, e: &Lexp, k: K<'_>) -> Cexp {
        match e {
            Lexp::Var(v) => {
                let t = self.env.get(v).copied().unwrap_or_else(|| self.i.boxed());
                let val = self.value_of(*v);
                self.apply_k(k, val, t)
            }
            Lexp::Int(n) => {
                let int = self.i.int();
                self.apply_k(k, Value::Int(*n), int)
            }
            Lexp::Real(x) => {
                let real = self.i.real();
                self.apply_k(k, Value::Real(*x), real)
            }
            Lexp::Str(s) => {
                let b = self.i.boxed();
                self.apply_k(k, Value::Str(s.clone()), b)
            }
            Lexp::Fn(v, t, r, body) => {
                let name = self.fresh();
                let arrow = self.i.arrow(*t, *r);
                let def = self.convert_fn(name, FunKind::Escape, *v, *t, *r, body, None);
                self.env.insert(name, arrow);
                let rest = self.apply_k(k, Value::Var(name), arrow);
                Cexp::Fix {
                    funs: vec![def],
                    rest: Box::new(rest),
                }
            }
            Lexp::Fix(funs, body) => {
                let mut defs = Vec::new();
                for (v, t, _) in funs {
                    self.env.insert(*v, *t);
                }
                for (v, t, f) in funs {
                    let Lexp::Fn(p, pt, pr, fb) = f else {
                        panic!("fix binding is not a function")
                    };
                    let known = self.known.contains(v);
                    let kind = if known {
                        FunKind::Known
                    } else {
                        FunKind::Escape
                    };
                    let fnvar = if known { Some(*v) } else { None };
                    let def = self.convert_fn(*v, kind, *p, *pt, *pr, fb, fnvar);
                    let _ = t;
                    defs.push(def);
                }
                let rest = self.cexp(body, k);
                Cexp::Fix {
                    funs: defs,
                    rest: Box::new(rest),
                }
            }
            Lexp::Let(v, a, b) => {
                // No CPS code for the binding itself: convert `a`, alias
                // `v` to the produced value.
                let vcopy = *v;
                let at = self.lty_of(a);
                self.cexp(
                    a,
                    K::Fn(Box::new(move |me: &mut Conv<'_>, va: Value| {
                        me.env.insert(vcopy, at);
                        me.subst.insert(vcopy, va);
                        me.cexp(b, k)
                    })),
                )
            }
            Lexp::Record(es) | Lexp::SRecord(es) => {
                let is_module = matches!(e, Lexp::SRecord(_));
                let ltys: Vec<Lty> = es.iter().map(|e| self.lty_of(e)).collect();
                let rec_lty = if is_module {
                    self.i.srecord(ltys.clone())
                } else {
                    self.i.record(ltys.clone())
                };
                self.cexps(
                    es,
                    Box::new(move |me: &mut Conv<'_>, vals: Vec<Value>| {
                        let (phys, nflt) = me.layout_fields(&vals, &ltys);
                        let dst = me.fresh();
                        me.env.insert(dst, rec_lty);
                        let rest = me.apply_k(k, Value::Var(dst), rec_lty);
                        Cexp::Record {
                            fields: phys,
                            nflt,
                            dst,
                            rest: Box::new(rest),
                        }
                    }),
                )
            }
            Lexp::Select(idx, rec) => {
                let rec_lty = self.lty_of(rec);
                let idx = *idx;
                self.cexp(
                    rec,
                    K::Fn(Box::new(move |me: &mut Conv<'_>, rv: Value| {
                        let (off, flt, cty, out_lty) = match me.i.kind(rec_lty).clone() {
                            LtyKind::Record(fs) | LtyKind::SRecord(fs) => {
                                let (o, f, c) = me.field_offset(&fs, idx);
                                (o, f, c, fs[idx])
                            }
                            LtyKind::PRecord(fs) => {
                                let t = fs
                                    .iter()
                                    .find(|(s, _)| *s == idx)
                                    .map(|(_, t)| *t)
                                    .unwrap_or_else(|| me.i.rboxed());
                                (idx, false, me.cty(t), t)
                            }
                            // Standard layout: all one-word fields.
                            _ => {
                                let rb = me.i.rboxed();
                                (idx, false, Cty::Ptr(None), rb)
                            }
                        };
                        let dst = me.fresh();
                        me.env.insert(dst, out_lty);
                        let rest = me.apply_k(k, Value::Var(dst), out_lty);
                        Cexp::Select {
                            rec: rv,
                            word_off: off,
                            flt,
                            dst,
                            cty,
                            rest: Box::new(rest),
                        }
                    })),
                )
            }
            Lexp::App(f, a) => self.convert_app(f, a, k),
            Lexp::PrimApp(op, args) => self.convert_prim(*op, args, k),
            Lexp::If(c, t, e) => self.convert_if(c, t, e, k),
            Lexp::SwitchInt(s, arms, d) => self.convert_switch(s, arms, d.as_deref(), k),
            Lexp::Wrap(t, inner) => {
                let op = match self.i.kind(*t) {
                    LtyKind::Real => PureOp::FWrap,
                    LtyKind::Int => PureOp::IWrap,
                    _ => PureOp::PWrap,
                };
                let boxed = self.i.boxed();
                self.cexp(
                    inner,
                    K::Fn(Box::new(move |me: &mut Conv<'_>, v: Value| {
                        let dst = me.fresh();
                        me.env.insert(dst, boxed);
                        let rest = me.apply_k(k, Value::Var(dst), boxed);
                        Cexp::Pure {
                            op,
                            args: vec![v],
                            dst,
                            cty: Cty::Ptr(None),
                            rest: Box::new(rest),
                        }
                    })),
                )
            }
            Lexp::Unwrap(t, inner) => {
                let (op, cty) = match self.i.kind(*t) {
                    LtyKind::Real => (PureOp::FUnwrap, Cty::Flt),
                    LtyKind::Int => (PureOp::IUnwrap, Cty::Int),
                    _ => (PureOp::PUnwrap, self.cty(*t)),
                };
                let t = *t;
                self.cexp(
                    inner,
                    K::Fn(Box::new(move |me: &mut Conv<'_>, v: Value| {
                        let dst = me.fresh();
                        me.env.insert(dst, t);
                        let rest = me.apply_k(k, Value::Var(dst), t);
                        Cexp::Pure {
                            op,
                            args: vec![v],
                            dst,
                            cty,
                            rest: Box::new(rest),
                        }
                    })),
                )
            }
            Lexp::Raise(e, _) => self.cexp(
                e,
                K::Fn(Box::new(move |me: &mut Conv<'_>, packet: Value| {
                    let h = me.fresh();
                    Cexp::Look {
                        op: LookOp::GetHandler,
                        args: Vec::new(),
                        dst: h,
                        cty: Cty::Fun,
                        rest: Box::new(Cexp::App {
                            f: Value::Var(h),
                            args: vec![packet],
                        }),
                    }
                })),
            ),
            Lexp::Handle(body, handler) => self.convert_handle(body, handler, k),
        }
    }

    /// Converts a list of expressions left to right.
    fn cexps(&mut self, es: &[Lexp], k: MultiConsumer<'_>) -> Cexp {
        fn go<'a>(
            me: &mut Conv<'_>,
            es: &'a [Lexp],
            mut acc: Vec<Value>,
            k: MultiConsumer<'a>,
        ) -> Cexp {
            match es.split_first() {
                None => k(me, acc),
                Some((e, rest)) => me.cexp(
                    e,
                    K::Fn(Box::new(move |me: &mut Conv<'_>, v: Value| {
                        acc.push(v);
                        go(me, rest, acc, k)
                    })),
                ),
            }
        }
        go(self, es, Vec::new(), k)
    }

    /// Converts a function definition. `res_lty` is the function's
    /// declared result representation; callers derive their expectations
    /// from the same annotation, so result-spreading conventions agree.
    #[allow(clippy::too_many_arguments)]
    fn convert_fn(
        &mut self,
        name: CVar,
        kind: FunKind,
        param: LVar,
        param_lty: Lty,
        res_lty: Lty,
        body: &Lexp,
        fnvar: Option<LVar>,
    ) -> FunDef {
        self.env.insert(param, param_lty);
        let body_lty = res_lty;
        let kvar = self.fresh();
        match self.spread_of(param_lty, fnvar) {
            None => {
                let pcty = self.cty(param_lty);
                let cbody = self.cexp(body, K::Ret(kvar, body_lty));
                FunDef {
                    kind,
                    name,
                    params: vec![(param, pcty), (kvar, Cty::Cnt)],
                    body: Box::new(cbody),
                }
            }
            Some(fields) => {
                // Components in registers; rebuild the record at entry
                // (dead-code-eliminated when only selections follow).
                let params: Vec<(CVar, Cty)> = fields
                    .iter()
                    .map(|t| {
                        let x = self.fresh();
                        (x, self.cty(*t))
                    })
                    .collect();
                let vals: Vec<Value> = params.iter().map(|(x, _)| Value::Var(*x)).collect();
                let (phys, nflt) = self.layout_fields(&vals, &fields);
                let cbody = self.cexp(body, K::Ret(kvar, body_lty));
                let mut all_params = params;
                all_params.push((kvar, Cty::Cnt));
                FunDef {
                    kind,
                    name,
                    params: all_params,
                    body: Box::new(Cexp::Record {
                        fields: phys,
                        nflt,
                        dst: param,
                        rest: Box::new(cbody),
                    }),
                }
            }
        }
    }

    fn convert_app(&mut self, f: &Lexp, a: &Lexp, k: K<'_>) -> Cexp {
        let flty = self.lty_of(f);
        let (arg_lty, res_lty) = match *self.i.kind(flty) {
            LtyKind::Arrow(p, r) => (p, r),
            _ => {
                // Applying an unknown-representation value: the standard
                // one-boxed-argument convention.
                let rb = self.i.rboxed();
                (rb, rb)
            }
        };
        let fnvar = match f {
            Lexp::Var(v) if self.known.contains(v) => Some(*v),
            _ => None,
        };
        let spread = self.spread_of(arg_lty, fnvar);

        let f = f.clone();
        let a = a.clone();
        self.cexp(
            &f,
            K::Fn(Box::new(move |me: &mut Conv<'_>, fv: Value| {
                // Build the continuation argument.
                let (kvar, mut kdefs) = match k {
                    K::Ret(kv, want) => {
                        // Tail call: reuse our continuation directly when
                        // the layouts agree.
                        let same_layout = {
                            let a = me.ret_spread_of(res_lty);
                            let b = me.ret_spread_of(want);
                            match (&a, &b) {
                                (None, None) => true,
                                (Some(x), Some(y)) => {
                                    x.len() == y.len()
                                        && x.iter().zip(y).all(|(p, q)| me.cty(*p) == me.cty(*q))
                                }
                                _ => false,
                            }
                        };
                        if same_layout {
                            (kv, Vec::new())
                        } else {
                            me.make_join(res_lty, K::Ret(kv, want))
                        }
                    }
                    other => me.make_join(res_lty, other),
                };

                let finish = move |_me: &mut Conv<'_>, mut args: Vec<Value>| -> Cexp {
                    args.push(Value::Var(kvar));
                    let app = Cexp::App { f: fv, args };
                    if kdefs.is_empty() {
                        app
                    } else {
                        Cexp::Fix {
                            funs: std::mem::take(&mut kdefs),
                            rest: Box::new(app),
                        }
                    }
                };

                match spread {
                    None => me.cexp(
                        &a,
                        K::Fn(Box::new(move |me: &mut Conv<'_>, av: Value| {
                            finish(me, vec![av])
                        })),
                    ),
                    Some(fields) => {
                        // Pass components directly; if the argument is a
                        // literal record, never build it.
                        if let Lexp::Record(es) = &a {
                            let es = es.clone();
                            me.cexps(
                                &es,
                                Box::new(move |me: &mut Conv<'_>, vals: Vec<Value>| {
                                    finish(me, vals)
                                }),
                            )
                        } else {
                            me.cexp(
                                &a,
                                K::Fn(Box::new(move |me: &mut Conv<'_>, av: Value| {
                                    let mut args = Vec::new();
                                    let mut sels = Vec::new();
                                    for idx in 0..fields.len() {
                                        let (off, flt, cty) = me.field_offset(&fields, idx);
                                        let dst = me.fresh();
                                        sels.push((off, flt, dst, cty));
                                        args.push(Value::Var(dst));
                                    }
                                    let mut body = finish(me, args);
                                    for (off, flt, dst, cty) in sels.into_iter().rev() {
                                        body = Cexp::Select {
                                            rec: av.clone(),
                                            word_off: off,
                                            flt,
                                            dst,
                                            cty,
                                            rest: Box::new(body),
                                        };
                                    }
                                    body
                                })),
                            )
                        }
                    }
                }
            })),
        )
    }

    fn convert_switch<'a>(
        &mut self,
        scrut: &'a Lexp,
        arms: &'a [(i64, Lexp)],
        default: Option<&'a Lexp>,
        k: K<'a>,
    ) -> Cexp {
        let mut res_lty = self.i.int();
        for (_, e) in arms {
            let t = self.lty_of(e);
            if !matches!(self.i.kind(t), LtyKind::Bottom) {
                res_lty = t;
                break;
            }
        }
        // Share the continuation through a join point unless it is
        // trivially duplicable.
        let (kv, want, defs) = match k {
            K::Ret(kv, want) => (Some(kv), want, Vec::new()),
            K::Done => (None, res_lty, Vec::new()),
            K::Fn(f) => {
                let (kvar, defs) = self.make_join(res_lty, K::Fn(f));
                (Some(kvar), res_lty, defs)
            }
        };
        let mk_k = |kv: Option<CVar>| match kv {
            Some(kv) => K::Ret(kv, want),
            None => K::Done,
        };
        let lo = arms.iter().map(|(n, _)| *n).min().unwrap_or(0);
        let hi = arms.iter().map(|(n, _)| *n).max().unwrap_or(0);
        let scrut = scrut.clone();
        let arms_v: Vec<(i64, Lexp)> = arms.to_vec();
        let default = default.cloned().unwrap_or(Lexp::Int(0));
        let body = self.cexp(
            &scrut,
            K::Fn(Box::new(move |me: &mut Conv<'_>, sv: Value| {
                // Build the default once as a tiny known continuation so
                // table holes can share it.
                let dvar = me.fresh();
                let dparam = me.fresh();
                let dbody = me.cexp(&default, mk_k(kv));
                let ddef = FunDef {
                    kind: FunKind::Cont,
                    name: dvar,
                    params: vec![(dparam, Cty::Int)],
                    body: Box::new(dbody),
                };
                let mut table = Vec::new();
                for slot in lo..=hi {
                    match arms_v.iter().find(|(n, _)| *n == slot) {
                        Some((_, e)) => table.push(me.cexp(e, mk_k(kv))),
                        None => table.push(Cexp::App {
                            f: Value::Var(dvar),
                            args: vec![Value::Int(0)],
                        }),
                    }
                }
                Cexp::Fix {
                    funs: vec![ddef],
                    rest: Box::new(Cexp::Switch {
                        v: sv,
                        lo,
                        arms: table,
                        default: Box::new(Cexp::App {
                            f: Value::Var(dvar),
                            args: vec![Value::Int(0)],
                        }),
                    }),
                }
            })),
        );
        if defs.is_empty() {
            body
        } else {
            Cexp::Fix {
                funs: defs,
                rest: Box::new(body),
            }
        }
    }

    fn convert_if(&mut self, c: &Lexp, t: &Lexp, e: &Lexp, k: K<'_>) -> Cexp {
        // Determine the result type for the join continuation.
        let res_lty = {
            let tt = self.lty_of(t);
            if matches!(self.i.kind(tt), LtyKind::Bottom) {
                self.lty_of(e)
            } else {
                tt
            }
        };
        // Share the continuation through a join point unless we are in
        // tail position (K::Ret/K::Done are cheap to duplicate).
        let (ka, kb, defs) = match k {
            K::Ret(kv, want) => (K::Ret(kv, want), K::Ret(kv, want), Vec::new()),
            K::Done => (K::Done, K::Done, Vec::new()),
            K::Fn(f) => {
                let (kvar, defs) = self.make_join(res_lty, K::Fn(f));
                (K::Ret(kvar, res_lty), K::Ret(kvar, res_lty), defs)
            }
        };
        let body = self.convert_branch(c, t, e, ka, kb);
        if defs.is_empty() {
            body
        } else {
            Cexp::Fix {
                funs: defs,
                rest: Box::new(body),
            }
        }
    }

    fn convert_branch(&mut self, c: &Lexp, t: &Lexp, e: &Lexp, ka: K<'_>, kb: K<'_>) -> Cexp {
        // Fuse a comparison primitive with the branch.
        if let Lexp::PrimApp(op, args) = c {
            if let Some(bop) = branch_op(*op) {
                let t = t.clone();
                let e = e.clone();
                return self.cexps(
                    args,
                    Box::new(move |me: &mut Conv<'_>, vals: Vec<Value>| {
                        let tru = me.cexp(&t, ka);
                        let fls = me.cexp(&e, kb);
                        Cexp::Branch {
                            op: bop,
                            args: vals,
                            tru: Box::new(tru),
                            fls: Box::new(fls),
                        }
                    }),
                );
            }
        }
        let t = t.clone();
        let e = e.clone();
        self.cexp(
            c,
            K::Fn(Box::new(move |me: &mut Conv<'_>, cv: Value| {
                let tru = me.cexp(&t, ka);
                let fls = me.cexp(&e, kb);
                Cexp::Branch {
                    op: BranchOp::INe,
                    args: vec![cv, Value::Int(0)],
                    tru: Box::new(tru),
                    fls: Box::new(fls),
                }
            })),
        )
    }

    fn convert_prim(&mut self, op: Primop, args: &[Lexp], k: K<'_>) -> Cexp {
        // Comparisons used as values: branch and materialize a boolean.
        if let Some(bop) = branch_op(op) {
            let int = self.i.int();
            let (kvar, defs) = self.make_join(int, k);
            let body = self.cexps(
                args,
                Box::new(move |_me: &mut Conv<'_>, vals: Vec<Value>| Cexp::Branch {
                    op: bop,
                    args: vals,
                    tru: Box::new(Cexp::App {
                        f: Value::Var(kvar),
                        args: vec![Value::Int(1)],
                    }),
                    fls: Box::new(Cexp::App {
                        f: Value::Var(kvar),
                        args: vec![Value::Int(0)],
                    }),
                }),
            );
            return Cexp::Fix {
                funs: defs,
                rest: Box::new(body),
            };
        }
        if op == Primop::Callcc {
            return self.convert_callcc(&args[0], k);
        }
        if op == Primop::Throw {
            let boxed = self.i.boxed();
            let _ = boxed;
            return self.cexps(
                args,
                Box::new(move |me: &mut Conv<'_>, vals: Vec<Value>| {
                    let kc = me.fresh();
                    let h = me.fresh();
                    // Continuation value is [cont closure, saved handler].
                    Cexp::Select {
                        rec: vals[0].clone(),
                        word_off: 0,
                        flt: false,
                        dst: kc,
                        cty: Cty::Cnt,
                        rest: Box::new(Cexp::Select {
                            rec: vals[0].clone(),
                            word_off: 1,
                            flt: false,
                            dst: h,
                            cty: Cty::Fun,
                            rest: Box::new(Cexp::Set {
                                op: SetOp::SetHandler,
                                args: vec![Value::Var(h)],
                                rest: Box::new(Cexp::App {
                                    f: Value::Var(kc),
                                    args: vec![vals[1].clone()],
                                }),
                            }),
                        }),
                    }
                }),
            );
        }

        let kind = prim_kind(op);
        let ltys: Vec<Lty> = args.iter().map(|a| self.lty_of(a)).collect();
        let _ = ltys;
        self.cexps(
            args,
            Box::new(move |me: &mut Conv<'_>, vals: Vec<Value>| match kind {
                PrimKind::Pure(p) => {
                    let cty = p.result_cty();
                    let dst = me.fresh();
                    let res_lty = match cty {
                        Cty::Int => me.i.int(),
                        Cty::Flt => me.i.real(),
                        _ => me.i.boxed(),
                    };
                    me.env.insert(dst, res_lty);
                    let rest = me.apply_k(k, Value::Var(dst), res_lty);
                    Cexp::Pure {
                        op: p,
                        args: vals,
                        dst,
                        cty,
                        rest: Box::new(rest),
                    }
                }
                PrimKind::Alloc(a) => {
                    let dst = me.fresh();
                    let b = me.i.boxed();
                    me.env.insert(dst, b);
                    let rest = me.apply_k(k, Value::Var(dst), b);
                    Cexp::Alloc {
                        op: a,
                        args: vals,
                        dst,
                        rest: Box::new(rest),
                    }
                }
                PrimKind::Look(l) => {
                    let dst = me.fresh();
                    let rb = me.i.rboxed();
                    me.env.insert(dst, rb);
                    let rest = me.apply_k(k, Value::Var(dst), rb);
                    Cexp::Look {
                        op: l,
                        args: vals,
                        dst,
                        cty: Cty::Ptr(None),
                        rest: Box::new(rest),
                    }
                }
                PrimKind::Set(s) => {
                    let int = me.i.int();
                    let rest = me.apply_k(k, Value::Int(0), int);
                    Cexp::Set {
                        op: s,
                        args: vals,
                        rest: Box::new(rest),
                    }
                }
            }),
        )
    }

    fn convert_callcc(&mut self, f: &Lexp, k: K<'_>) -> Cexp {
        let boxed = self.i.boxed();
        // Join continuation receives the (boxed) result, both on normal
        // return and on throw.
        let (kvar, defs) = match k {
            K::Ret(kv, want) if self.ret_spread_of(want).is_none() => (kv, Vec::new()),
            other => self.make_join(boxed, other),
        };
        let f = f.clone();
        let body = self.cexp(
            &f,
            K::Fn(Box::new(move |me: &mut Conv<'_>, fv: Value| {
                let h = me.fresh();
                let cv = me.fresh();
                let b = me.i.boxed();
                me.env.insert(cv, b);
                Cexp::Look {
                    op: LookOp::GetHandler,
                    args: Vec::new(),
                    dst: h,
                    cty: Cty::Fun,
                    rest: Box::new(Cexp::Record {
                        fields: vec![(Value::Var(kvar), Cty::Cnt), (Value::Var(h), Cty::Fun)],
                        nflt: 0,
                        dst: cv,
                        rest: Box::new(Cexp::App {
                            f: fv,
                            args: vec![Value::Var(cv), Value::Var(kvar)],
                        }),
                    }),
                }
            })),
        );
        if defs.is_empty() {
            body
        } else {
            Cexp::Fix {
                funs: defs,
                rest: Box::new(body),
            }
        }
    }

    fn convert_handle(&mut self, body: &Lexp, handler: &Lexp, k: K<'_>) -> Cexp {
        let res_lty = self.lty_of(body);
        let old = self.fresh();
        // Join continuation: restore the handler, then continue.
        let kvar = self.fresh();
        let (params, inner_k): (Vec<(CVar, Cty)>, Box<Cexp>) = {
            match self.ret_spread_of(res_lty) {
                None => {
                    let x = self.fresh();
                    let cty = self.cty(res_lty);
                    self.env.insert(x, res_lty);
                    let cont = self.apply_k(k, Value::Var(x), res_lty);
                    (vec![(x, cty)], Box::new(cont))
                }
                Some(fields) => {
                    let params: Vec<(CVar, Cty)> = fields
                        .iter()
                        .map(|t| {
                            let x = self.fresh();
                            (x, self.cty(*t))
                        })
                        .collect();
                    let vals: Vec<Value> = params.iter().map(|(x, _)| Value::Var(*x)).collect();
                    let (phys, nflt) = self.layout_fields(&vals, &fields);
                    let rv = self.fresh();
                    self.env.insert(rv, res_lty);
                    let cont = self.apply_k(k, Value::Var(rv), res_lty);
                    (
                        params,
                        Box::new(Cexp::Record {
                            fields: phys,
                            nflt,
                            dst: rv,
                            rest: Box::new(cont),
                        }),
                    )
                }
            }
        };
        let kjoin = FunDef {
            kind: FunKind::Cont,
            name: kvar,
            params,
            body: Box::new(Cexp::Set {
                op: SetOp::SetHandler,
                args: vec![Value::Var(old)],
                rest: inner_k,
            }),
        };

        // The handler closure: restore the old handler, then run the
        // user handler function with the join continuation.
        let handler = handler.clone();
        let body = body.clone();
        let hname = self.fresh();
        let hv_code = self.cexp(
            &handler,
            K::Fn(Box::new(move |me: &mut Conv<'_>, hv: Value| {
                let pkt = me.fresh();
                let hdef = FunDef {
                    kind: FunKind::Escape,
                    name: hname,
                    params: vec![(pkt, Cty::Ptr(None))],
                    body: Box::new(Cexp::Set {
                        op: SetOp::SetHandler,
                        args: vec![Value::Var(old)],
                        rest: Box::new(Cexp::App {
                            f: hv,
                            args: vec![Value::Var(pkt), Value::Var(kvar)],
                        }),
                    }),
                };
                let inner = me.cexp(&body, K::Ret(kvar, res_lty));
                Cexp::Fix {
                    funs: vec![hdef],
                    rest: Box::new(Cexp::Set {
                        op: SetOp::SetHandler,
                        args: vec![Value::Var(hname)],
                        rest: Box::new(inner),
                    }),
                }
            })),
        );
        Cexp::Look {
            op: LookOp::GetHandler,
            args: Vec::new(),
            dst: old,
            cty: Cty::Fun,
            rest: Box::new(Cexp::Fix {
                funs: vec![kjoin],
                rest: Box::new(hv_code),
            }),
        }
    }
}

enum PrimKind {
    Pure(PureOp),
    Alloc(AllocOp),
    Look(LookOp),
    Set(SetOp),
}

fn prim_kind(op: Primop) -> PrimKind {
    use Primop as P;
    match op {
        P::IAdd => PrimKind::Pure(PureOp::IAdd),
        P::ISub => PrimKind::Pure(PureOp::ISub),
        P::IMul => PrimKind::Pure(PureOp::IMul),
        P::IDiv => PrimKind::Pure(PureOp::IDiv),
        P::IMod => PrimKind::Pure(PureOp::IMod),
        P::INeg => PrimKind::Pure(PureOp::INeg),
        P::FAdd => PrimKind::Pure(PureOp::FAdd),
        P::FSub => PrimKind::Pure(PureOp::FSub),
        P::FMul => PrimKind::Pure(PureOp::FMul),
        P::FDiv => PrimKind::Pure(PureOp::FDiv),
        P::FNeg => PrimKind::Pure(PureOp::FNeg),
        P::FSqrt => PrimKind::Pure(PureOp::FSqrt),
        P::FSin => PrimKind::Pure(PureOp::FSin),
        P::FCos => PrimKind::Pure(PureOp::FCos),
        P::FAtan => PrimKind::Pure(PureOp::FAtan),
        P::FExp => PrimKind::Pure(PureOp::FExp),
        P::FLn => PrimKind::Pure(PureOp::FLn),
        P::Floor => PrimKind::Pure(PureOp::Floor),
        P::IntToReal => PrimKind::Pure(PureOp::IntToReal),
        P::StrSize => PrimKind::Pure(PureOp::StrSize),
        P::StrSub => PrimKind::Pure(PureOp::StrSub),
        P::StrCat => PrimKind::Pure(PureOp::StrCat),
        P::IntToString => PrimKind::Pure(PureOp::IntToString),
        P::RealToString => PrimKind::Pure(PureOp::RealToString),
        P::ArrayLength => PrimKind::Pure(PureOp::ArrayLength),
        P::MakeRef => PrimKind::Alloc(AllocOp::MakeRef),
        P::ArrayMake => PrimKind::Alloc(AllocOp::ArrayMake),
        P::Deref => PrimKind::Look(LookOp::Deref),
        P::ArraySub => PrimKind::Look(LookOp::ArraySub),
        P::Assign => PrimKind::Set(SetOp::Assign),
        P::UnboxedAssign => PrimKind::Set(SetOp::UnboxedAssign),
        P::ArrayUpdate => PrimKind::Set(SetOp::ArrayUpdate),
        P::UnboxedArrayUpdate => PrimKind::Set(SetOp::UnboxedArrayUpdate),
        P::Print => PrimKind::Set(SetOp::Print),
        P::ILt
        | P::ILe
        | P::IGt
        | P::IGe
        | P::IEq
        | P::INe
        | P::FLt
        | P::FLe
        | P::FGt
        | P::FGe
        | P::FEq
        | P::FNe
        | P::StrEq
        | P::StrNe
        | P::StrLt
        | P::StrLe
        | P::StrGt
        | P::StrGe
        | P::PolyEq
        | P::PtrEq
        | P::IsBoxed => {
            unreachable!("comparisons are handled via branch_op")
        }
        P::Callcc | P::Throw => unreachable!("handled specially"),
    }
}

fn branch_op(op: Primop) -> Option<BranchOp> {
    use Primop as P;
    Some(match op {
        P::ILt => BranchOp::ILt,
        P::ILe => BranchOp::ILe,
        P::IGt => BranchOp::IGt,
        P::IGe => BranchOp::IGe,
        P::IEq => BranchOp::IEq,
        P::INe => BranchOp::INe,
        P::FLt => BranchOp::FLt,
        P::FLe => BranchOp::FLe,
        P::FGt => BranchOp::FGt,
        P::FGe => BranchOp::FGe,
        P::FEq => BranchOp::FEq,
        P::FNe => BranchOp::FNe,
        P::StrEq => BranchOp::StrEq,
        P::StrNe => BranchOp::StrNe,
        P::StrLt => BranchOp::StrLt,
        P::StrLe => BranchOp::StrLe,
        P::StrGt => BranchOp::StrGt,
        P::StrGe => BranchOp::StrGe,
        P::PolyEq => BranchOp::PolyEq,
        P::PtrEq => BranchOp::PtrEq,
        P::IsBoxed => BranchOp::IsBoxed,
        _ => return None,
    })
}
