//! CPS invariant checker.
//!
//! Validates the structural invariants the back end relies on, at three
//! points in the pipeline: right after CPS conversion, after each
//! optimizer pass, and (in first-order form) after closure conversion.
//! Violations carry a stable `rule` tag (schema in `docs/VERIFY_IR.md`).
//!
//! Checked invariants:
//!
//! * **Lexical scoping** — every `Var` occurrence is bound (by a `dst`,
//!   a parameter, or an enclosing `Fix`); no variable is rebound along
//!   a single control path; every bound id is below the program's
//!   `next_var` watermark (the optimizer's fresh-variable supply).
//! * **Application arity** — a call to a `Fix`-bound function (or, after
//!   closure conversion, to a label) passes exactly as many arguments as
//!   the callee declares; codegen's calling convention maps arguments to
//!   registers positionally, so an arity mismatch is a guaranteed
//!   miscompile.
//! * **Operator arity** — `Pure`/`Alloc`/`Look`/`Set`/`Branch` nodes
//!   carry exactly the operand count their operator consumes, and a
//!   `Pure` destination's CTY agrees with the operator's result on the
//!   word/float split (the register-file assignment).
//! * **Well-founded `Fix`** — distinct function names per `Fix`,
//!   distinct parameters per function; after closure conversion no
//!   `Fix` survives at all, every function is closed (free variables
//!   are gone), and `Label`s resolve to lifted functions. Before
//!   closure conversion no `Label` may exist yet.

use crate::closure::ClosedProgram;
use crate::convert::CpsProgram;
use crate::cps::*;
use std::collections::{HashMap, HashSet};

/// A structured invariant violation found by [`verify_cps`] or
/// [`verify_closed_program`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CpsViolation {
    /// Stable rule tag, e.g. `"app-arity"`.
    pub rule: &'static str,
    /// What went wrong, naming the offending variable/operator.
    pub detail: String,
}

impl std::fmt::Display for CpsViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.rule, self.detail)
    }
}

/// Work counters reported by a successful verification run.
#[derive(Clone, Copy, Debug, Default)]
pub struct CpsVerifySummary {
    /// CPS operators visited.
    pub ops: u64,
    /// Function definitions visited.
    pub funs: u64,
}

fn violation(rule: &'static str, detail: String) -> CpsViolation {
    CpsViolation { rule, detail }
}

fn pure_arity(op: PureOp) -> usize {
    use PureOp::*;
    match op {
        INeg | FNeg | FSqrt | FSin | FCos | FAtan | FExp | FLn | Floor | IntToReal | FWrap
        | FUnwrap | IWrap | IUnwrap | PWrap | PUnwrap | StrSize | IntToString | RealToString
        | ArrayLength => 1,
        IAdd | ISub | IMul | IDiv | IMod | FAdd | FSub | FMul | FDiv | StrSub | StrCat => 2,
    }
}

fn alloc_arity(op: AllocOp) -> usize {
    match op {
        AllocOp::MakeRef => 1,
        AllocOp::ArrayMake => 2,
    }
}

fn look_arity(op: LookOp) -> usize {
    match op {
        LookOp::GetHandler => 0,
        LookOp::Deref => 1,
        LookOp::ArraySub => 2,
    }
}

fn set_arity(op: SetOp) -> usize {
    match op {
        SetOp::Print | SetOp::SetHandler => 1,
        SetOp::Assign | SetOp::UnboxedAssign => 2,
        SetOp::ArrayUpdate | SetOp::UnboxedArrayUpdate => 3,
    }
}

fn branch_arity(op: BranchOp) -> usize {
    match op {
        BranchOp::IsBoxed => 1,
        _ => 2,
    }
}

struct Vfy {
    next_var: u32,
    /// After closure conversion: lifted function name → arity.
    labels: HashMap<CVar, usize>,
    /// Before closure conversion: in-scope `Fix`-bound name → arity.
    fn_arity: HashMap<CVar, usize>,
    closed: bool,
    sum: CpsVerifySummary,
}

impl Vfy {
    fn chk_val(&self, v: &Value, scope: &HashSet<CVar>) -> Result<(), CpsViolation> {
        match v {
            // Variables and labels are distinct namespaces after
            // closure conversion (codegen resolves a `Var` through its
            // register map and a `Label` through the block table), so a
            // `Var` is checked against lexical scope in both forms.
            Value::Var(x) => {
                if scope.contains(x) {
                    Ok(())
                } else {
                    Err(violation("unbound-var", format!("free variable v{x}")))
                }
            }
            Value::Label(x) => {
                if !self.closed {
                    Err(violation(
                        "label-before-closure",
                        format!("label L{x} before closure conversion"),
                    ))
                } else if self.labels.contains_key(x) {
                    Ok(())
                } else {
                    Err(violation("unknown-label", format!("unknown label L{x}")))
                }
            }
            _ => Ok(()),
        }
    }

    fn bind(&self, v: CVar, scope: &mut HashSet<CVar>) -> Result<(), CpsViolation> {
        if v >= self.next_var {
            return Err(violation(
                "var-range",
                format!("bound variable v{v} >= next_var {}", self.next_var),
            ));
        }
        if !scope.insert(v) {
            return Err(violation(
                "rebinding",
                format!("variable v{v} bound twice on one path"),
            ));
        }
        Ok(())
    }

    fn walk(&mut self, e: &Cexp, scope: &mut HashSet<CVar>) -> Result<(), CpsViolation> {
        self.sum.ops += 1;
        match e {
            Cexp::Record {
                fields, dst, rest, ..
            } => {
                for (v, _) in fields {
                    self.chk_val(v, scope)?;
                }
                self.bind(*dst, scope)?;
                self.walk(rest, scope)?;
                scope.remove(dst);
                Ok(())
            }
            Cexp::Select { rec, dst, rest, .. } => {
                self.chk_val(rec, scope)?;
                self.bind(*dst, scope)?;
                self.walk(rest, scope)?;
                scope.remove(dst);
                Ok(())
            }
            Cexp::Pure {
                op,
                args,
                dst,
                cty,
                rest,
            } => {
                if args.len() != pure_arity(*op) {
                    return Err(violation(
                        "prim-arity",
                        format!("{op:?} applied to {} operands", args.len()),
                    ));
                }
                if cty.is_word() != op.result_cty().is_word() {
                    return Err(violation(
                        "pure-cty",
                        format!("{op:?} destination v{dst} annotated {cty:?}"),
                    ));
                }
                for v in args {
                    self.chk_val(v, scope)?;
                }
                self.bind(*dst, scope)?;
                self.walk(rest, scope)?;
                scope.remove(dst);
                Ok(())
            }
            Cexp::Alloc {
                op,
                args,
                dst,
                rest,
            } => {
                if args.len() != alloc_arity(*op) {
                    return Err(violation(
                        "prim-arity",
                        format!("{op:?} applied to {} operands", args.len()),
                    ));
                }
                for v in args {
                    self.chk_val(v, scope)?;
                }
                self.bind(*dst, scope)?;
                self.walk(rest, scope)?;
                scope.remove(dst);
                Ok(())
            }
            Cexp::Look {
                op,
                args,
                dst,
                rest,
                ..
            } => {
                if args.len() != look_arity(*op) {
                    return Err(violation(
                        "prim-arity",
                        format!("{op:?} applied to {} operands", args.len()),
                    ));
                }
                for v in args {
                    self.chk_val(v, scope)?;
                }
                self.bind(*dst, scope)?;
                self.walk(rest, scope)?;
                scope.remove(dst);
                Ok(())
            }
            Cexp::Set { op, args, rest } => {
                if args.len() != set_arity(*op) {
                    return Err(violation(
                        "prim-arity",
                        format!("{op:?} applied to {} operands", args.len()),
                    ));
                }
                for v in args {
                    self.chk_val(v, scope)?;
                }
                self.walk(rest, scope)
            }
            Cexp::Switch {
                v, arms, default, ..
            } => {
                self.chk_val(v, scope)?;
                for arm in arms {
                    self.walk(arm, scope)?;
                }
                self.walk(default, scope)
            }
            Cexp::Branch { op, args, tru, fls } => {
                if args.len() != branch_arity(*op) {
                    return Err(violation(
                        "prim-arity",
                        format!("{op:?} applied to {} operands", args.len()),
                    ));
                }
                for v in args {
                    self.chk_val(v, scope)?;
                }
                self.walk(tru, scope)?;
                self.walk(fls, scope)
            }
            Cexp::Fix { funs, rest } => {
                if self.closed {
                    return Err(violation(
                        "nested-fix",
                        "nested Fix survived closure conversion".into(),
                    ));
                }
                for f in funs {
                    self.bind(f.name, scope)?;
                    self.fn_arity.insert(f.name, f.params.len());
                }
                for f in funs {
                    self.walk_fun(f, scope)?;
                }
                self.walk(rest, scope)?;
                for f in funs {
                    scope.remove(&f.name);
                    self.fn_arity.remove(&f.name);
                }
                Ok(())
            }
            Cexp::App { f, args } => {
                self.chk_val(f, scope)?;
                for v in args {
                    self.chk_val(v, scope)?;
                }
                // A closed-form `Var` call is an indirect jump through a
                // closure pointer; its target is not statically known, so
                // only direct (`Label` / `Fix`-bound) calls are checked.
                let declared = match f {
                    Value::Label(x) => self.labels.get(x),
                    Value::Var(x) if !self.closed => self.fn_arity.get(x),
                    _ => None,
                };
                if let Some(&n) = declared {
                    if n != args.len() {
                        return Err(violation(
                            "app-arity",
                            format!("call of {f} passes {} arguments, expects {n}", args.len()),
                        ));
                    }
                }
                Ok(())
            }
            Cexp::Halt { v } => self.chk_val(v, scope),
        }
    }

    fn walk_fun(&mut self, f: &FunDef, scope: &mut HashSet<CVar>) -> Result<(), CpsViolation> {
        self.sum.funs += 1;
        for (p, _) in &f.params {
            self.bind(*p, scope).map_err(|v| {
                violation(
                    if v.rule == "rebinding" {
                        "param-dup"
                    } else {
                        v.rule
                    },
                    format!("function {}: {}", f.name, v.detail),
                )
            })?;
        }
        self.walk(&f.body, scope)
            .map_err(|v| violation(v.rule, format!("function {}: {}", f.name, v.detail)))?;
        for (p, _) in &f.params {
            scope.remove(p);
        }
        Ok(())
    }
}

/// Verifies a higher-order CPS program (after conversion, and after
/// each optimizer pass).
///
/// Returns work counters on success and the first [`CpsViolation`]
/// otherwise. Never mutates the program.
pub fn verify_cps(prog: &CpsProgram) -> Result<CpsVerifySummary, CpsViolation> {
    let mut v = Vfy {
        next_var: prog.next_var,
        labels: HashMap::new(),
        fn_arity: HashMap::new(),
        closed: false,
        sum: CpsVerifySummary::default(),
    };
    v.walk(&prog.body, &mut HashSet::new())?;
    Ok(v.sum)
}

/// Verifies a first-order (closure-converted) CPS program: everything
/// [`verify_cps`] checks, plus closedness, label resolution, label-call
/// arity, and the absence of surviving `Fix` nodes.
///
/// This is the structured counterpart of
/// [`crate::closure::verify_closed`]; the pipeline verifier uses this
/// form so failures carry a machine-readable rule tag.
pub fn verify_closed_program(prog: &ClosedProgram) -> Result<CpsVerifySummary, CpsViolation> {
    let mut dup = HashSet::new();
    for f in &prog.funs {
        if !dup.insert(f.name) {
            return Err(violation(
                "fix-dup",
                format!("two lifted functions named L{}", f.name),
            ));
        }
    }
    let mut v = Vfy {
        next_var: prog.next_var,
        labels: prog.funs.iter().map(|f| (f.name, f.params.len())).collect(),
        fn_arity: HashMap::new(),
        closed: true,
        sum: CpsVerifySummary::default(),
    };
    for f in &prog.funs {
        v.walk_fun(f, &mut HashSet::new())?;
    }
    v.walk(&prog.entry, &mut HashSet::new())
        .map_err(|e| violation(e.rule, format!("entry: {}", e.detail)))?;
    Ok(v.sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn halt(v: CVar) -> Box<Cexp> {
        Box::new(Cexp::Halt { v: Value::Var(v) })
    }

    #[test]
    fn accepts_straightline_program() {
        let prog = CpsProgram {
            body: Cexp::Pure {
                op: PureOp::IAdd,
                args: vec![Value::Int(1), Value::Int(2)],
                dst: 0,
                cty: Cty::Int,
                rest: halt(0),
            },
            next_var: 1,
        };
        let sum = verify_cps(&prog).expect("well-formed");
        assert_eq!(sum.ops, 2);
    }

    #[test]
    fn rejects_unbound_variable() {
        let prog = CpsProgram {
            body: Cexp::Halt { v: Value::Var(7) },
            next_var: 8,
        };
        assert_eq!(verify_cps(&prog).unwrap_err().rule, "unbound-var");
    }

    #[test]
    fn rejects_var_above_watermark() {
        let prog = CpsProgram {
            body: Cexp::Pure {
                op: PureOp::INeg,
                args: vec![Value::Int(1)],
                dst: 9,
                cty: Cty::Int,
                rest: halt(9),
            },
            next_var: 3,
        };
        assert_eq!(verify_cps(&prog).unwrap_err().rule, "var-range");
    }

    #[test]
    fn rejects_operator_arity_mismatch() {
        let prog = CpsProgram {
            body: Cexp::Pure {
                op: PureOp::IAdd,
                args: vec![Value::Int(1)],
                dst: 0,
                cty: Cty::Int,
                rest: halt(0),
            },
            next_var: 1,
        };
        assert_eq!(verify_cps(&prog).unwrap_err().rule, "prim-arity");
    }

    #[test]
    fn rejects_known_call_arity_mismatch() {
        let f = FunDef {
            kind: FunKind::Known,
            name: 0,
            params: vec![(1, Cty::Int)],
            body: halt(1),
        };
        let prog = CpsProgram {
            body: Cexp::Fix {
                funs: vec![f],
                rest: Box::new(Cexp::App {
                    f: Value::Var(0),
                    args: vec![Value::Int(1), Value::Int(2)],
                }),
            },
            next_var: 2,
        };
        assert_eq!(verify_cps(&prog).unwrap_err().rule, "app-arity");
    }

    #[test]
    fn closed_form_rejects_nested_fix_and_free_vars() {
        let f = FunDef {
            kind: FunKind::Escape,
            name: 0,
            params: vec![(1, Cty::Int)],
            body: Box::new(Cexp::Halt { v: Value::Var(2) }),
        };
        let prog = ClosedProgram {
            funs: vec![f],
            entry: Cexp::Halt { v: Value::Int(0) },
            next_var: 3,
        };
        assert_eq!(
            verify_closed_program(&prog).unwrap_err().rule,
            "unbound-var"
        );
    }
}
