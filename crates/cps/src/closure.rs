//! Closure conversion (paper §5.2, after Shao-Appel "space-efficient
//! closure representations").
//!
//! Produces a first-order program: every function is closed and lifted to
//! the top level.
//!
//! * **Known** functions (every occurrence is a call head) are
//!   lambda-lifted: their free variables become extra parameters.
//! * **Escaping** functions (and continuations that escape, e.g. through
//!   `callcc`) get flat closure records `[code, fv1, ..., fvn]`; raw
//!   float free variables are stored unboxed in the closure (the `ffb`
//!   benefit). Mutually recursive escaping siblings share one free-
//!   variable layout so each can rebuild the others' closures without
//!   cyclic records; self-references use the closure parameter itself.
//! * Unknown calls load the code pointer from offset 0 and pass the
//!   closure as the first argument.

use crate::convert::CpsProgram;
use crate::cps::*;
use std::collections::{BTreeSet, HashMap, HashSet};

/// A first-order CPS program: closed functions plus an entry expression.
#[derive(Debug)]
pub struct ClosedProgram {
    /// All functions, closed, in lifting order.
    pub funs: Vec<FunDef>,
    /// The program entry.
    pub entry: Cexp,
    /// First unused variable id.
    pub next_var: u32,
}

/// Converts a CPS program to first-order form.
pub fn close(prog: CpsProgram) -> ClosedProgram {
    let mut var_cty = HashMap::new();
    collect_ctys(&prog.body, &mut var_cty);
    let mut fnnames = HashSet::new();
    collect_fn_names(&prog.body, &mut fnnames);
    let mut escaping = HashSet::new();
    collect_escaping(&prog.body, &fnnames, &mut escaping);

    // Free variables per function (raw: vars minus params, including
    // function names).
    let mut raw_fvs: HashMap<CVar, BTreeSet<CVar>> = HashMap::new();
    let mut siblings: HashMap<CVar, Vec<CVar>> = HashMap::new();
    collect_fvs(&prog.body, &mut raw_fvs, &mut siblings);

    // Fixpoint: a reference to a known function adds that function's
    // free variables; a reference to an escaping non-sibling function
    // adds its closure variable (the function name itself stands for the
    // closure value after rewriting, so keep the name). Sibling
    // references stay (handled via the shared layout).
    loop {
        let mut changed = false;
        let names: Vec<CVar> = raw_fvs.keys().copied().collect();
        for f in names {
            let fv: Vec<CVar> = raw_fvs[&f].iter().copied().collect();
            let mut add = BTreeSet::new();
            for v in fv {
                if fnnames.contains(&v) && !escaping.contains(&v) {
                    // Known callee: its (current) free vars are needed at
                    // the call site. Escaping function names count too —
                    // they stand for closure values the caller must have
                    // in hand.
                    if let Some(gfv) = raw_fvs.get(&v) {
                        for w in gfv {
                            let needed = !fnnames.contains(w) || escaping.contains(w);
                            if needed && !raw_fvs[&f].contains(w) {
                                add.insert(*w);
                            }
                        }
                    }
                }
            }
            if !add.is_empty() {
                raw_fvs.get_mut(&f).expect("function present").extend(add);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Per-function closure environment: ordered fv list excluding all
    // function names (those are rebuilt or passed as extra args).
    // Escaping groups share the union of their members' lists.
    let mut env_of: HashMap<CVar, Vec<CVar>> = HashMap::new();
    for (f, fv) in &raw_fvs {
        let mut list: Vec<CVar> = fv
            .iter()
            .copied()
            .filter(|v| !fnnames.contains(v))
            .collect();
        // Escaping callees contribute their closure values, which after
        // rewriting are ordinary variables bound where their Fix was:
        // keep them in the env under the function's name. Exception:
        // an *escaping* function never carries a same-group escaping
        // sibling (it rebuilds the sibling's closure from the shared
        // layout instead, avoiding cyclic records).
        for v in fv {
            if escaping.contains(v) {
                let same_group =
                    escaping.contains(f) && siblings.get(f).is_some_and(|s| s.contains(v));
                if !same_group {
                    list.push(*v);
                }
            }
        }
        list.sort();
        list.dedup();
        env_of.insert(*f, list);
    }
    // Union environments for escaping sibling groups.
    let group_keys: Vec<CVar> = escaping.iter().copied().collect();
    for f in &group_keys {
        if let Some(sibs) = siblings.get(f) {
            let esc_sibs: Vec<CVar> = sibs
                .iter()
                .copied()
                .filter(|s| escaping.contains(s))
                .collect();
            if esc_sibs.len() > 1 {
                let mut union = BTreeSet::new();
                for s in &esc_sibs {
                    union.extend(env_of.get(s).into_iter().flatten().copied());
                }
                let u: Vec<CVar> = union.into_iter().collect();
                for s in &esc_sibs {
                    env_of.insert(*s, u.clone());
                }
            }
        }
    }

    let mut cl = Closer {
        next: prog.next_var,
        var_cty,
        fnnames,
        escaping,
        env_of,
        out: Vec::new(),
    };
    let entry = cl.go(prog.body, &HashMap::new());
    ClosedProgram {
        funs: cl.out,
        entry,
        next_var: cl.next,
    }
}

fn collect_ctys(e: &Cexp, out: &mut HashMap<CVar, Cty>) {
    match e {
        Cexp::Record {
            dst,
            rest,
            nflt,
            fields,
        } => {
            out.insert(*dst, Cty::Ptr(Some((fields.len() + *nflt) as u32)));
            collect_ctys(rest, out);
        }
        Cexp::Select { dst, cty, rest, .. } => {
            out.insert(*dst, *cty);
            collect_ctys(rest, out);
        }
        Cexp::Pure { dst, cty, rest, .. } => {
            out.insert(*dst, *cty);
            collect_ctys(rest, out);
        }
        Cexp::Alloc { dst, rest, .. } => {
            out.insert(*dst, Cty::Ptr(None));
            collect_ctys(rest, out);
        }
        Cexp::Look { dst, cty, rest, .. } => {
            out.insert(*dst, *cty);
            collect_ctys(rest, out);
        }
        Cexp::Set { rest, .. } => collect_ctys(rest, out),
        Cexp::Switch { arms, default, .. } => {
            arms.iter().for_each(|a| collect_ctys(a, out));
            collect_ctys(default, out);
        }
        Cexp::Branch { tru, fls, .. } => {
            collect_ctys(tru, out);
            collect_ctys(fls, out);
        }
        Cexp::Fix { funs, rest } => {
            for f in funs {
                out.insert(f.name, Cty::Fun);
                for (p, c) in &f.params {
                    out.insert(*p, *c);
                }
                collect_ctys(&f.body, out);
            }
            collect_ctys(rest, out);
        }
        Cexp::App { .. } | Cexp::Halt { .. } => {}
    }
}

fn collect_fn_names(e: &Cexp, out: &mut HashSet<CVar>) {
    match e {
        Cexp::Fix { funs, rest } => {
            for f in funs {
                out.insert(f.name);
                collect_fn_names(&f.body, out);
            }
            collect_fn_names(rest, out);
        }
        Cexp::Record { rest, .. }
        | Cexp::Select { rest, .. }
        | Cexp::Pure { rest, .. }
        | Cexp::Alloc { rest, .. }
        | Cexp::Look { rest, .. }
        | Cexp::Set { rest, .. } => collect_fn_names(rest, out),
        Cexp::Switch { arms, default, .. } => {
            arms.iter().for_each(|a| collect_fn_names(a, out));
            collect_fn_names(default, out);
        }
        Cexp::Branch { tru, fls, .. } => {
            collect_fn_names(tru, out);
            collect_fn_names(fls, out);
        }
        Cexp::App { .. } | Cexp::Halt { .. } => {}
    }
}

/// A function escapes if its name appears anywhere but an App head.
fn collect_escaping(e: &Cexp, fnnames: &HashSet<CVar>, out: &mut HashSet<CVar>) {
    let mark = |v: &Value, out: &mut HashSet<CVar>| {
        if let Value::Var(x) | Value::Label(x) = v {
            if fnnames.contains(x) {
                out.insert(*x);
            }
        }
    };
    match e {
        Cexp::Record { fields, rest, .. } => {
            fields.iter().for_each(|(v, _)| mark(v, out));
            collect_escaping(rest, fnnames, out);
        }
        Cexp::Select { rec, rest, .. } => {
            mark(rec, out);
            collect_escaping(rest, fnnames, out);
        }
        Cexp::Pure { args, rest, .. }
        | Cexp::Alloc { args, rest, .. }
        | Cexp::Look { args, rest, .. }
        | Cexp::Set { args, rest, .. } => {
            args.iter().for_each(|v| mark(v, out));
            collect_escaping(rest, fnnames, out);
        }
        Cexp::Switch {
            v, arms, default, ..
        } => {
            mark(v, out);
            arms.iter().for_each(|a| collect_escaping(a, fnnames, out));
            collect_escaping(default, fnnames, out);
        }
        Cexp::Branch { args, tru, fls, .. } => {
            args.iter().for_each(|v| mark(v, out));
            collect_escaping(tru, fnnames, out);
            collect_escaping(fls, fnnames, out);
        }
        Cexp::Fix { funs, rest } => {
            funs.iter()
                .for_each(|f| collect_escaping(&f.body, fnnames, out));
            collect_escaping(rest, fnnames, out);
        }
        Cexp::App { f, args } => {
            // The head does not escape; arguments do.
            let _ = f;
            args.iter().for_each(|v| mark(v, out));
        }
        Cexp::Halt { v } => mark(v, out),
    }
}

/// Raw free variables of each function, and sibling groups.
fn collect_fvs(
    e: &Cexp,
    out: &mut HashMap<CVar, BTreeSet<CVar>>,
    siblings: &mut HashMap<CVar, Vec<CVar>>,
) {
    fn vars(e: &Cexp, bound: &mut HashSet<CVar>, free: &mut BTreeSet<CVar>) {
        let val = |v: &Value, bound: &HashSet<CVar>, free: &mut BTreeSet<CVar>| {
            if let Value::Var(x) | Value::Label(x) = v {
                if !bound.contains(x) {
                    free.insert(*x);
                }
            }
        };
        match e {
            Cexp::Record {
                fields, dst, rest, ..
            } => {
                fields.iter().for_each(|(v, _)| val(v, bound, free));
                bound.insert(*dst);
                vars(rest, bound, free);
            }
            Cexp::Select { rec, dst, rest, .. } => {
                val(rec, bound, free);
                bound.insert(*dst);
                vars(rest, bound, free);
            }
            Cexp::Pure {
                args, dst, rest, ..
            }
            | Cexp::Look {
                args, dst, rest, ..
            }
            | Cexp::Alloc {
                args, dst, rest, ..
            } => {
                args.iter().for_each(|v| val(v, bound, free));
                bound.insert(*dst);
                vars(rest, bound, free);
            }
            Cexp::Set { args, rest, .. } => {
                args.iter().for_each(|v| val(v, bound, free));
                vars(rest, bound, free);
            }
            Cexp::Switch {
                v, arms, default, ..
            } => {
                val(v, bound, free);
                arms.iter().for_each(|a| vars(a, bound, free));
                vars(default, bound, free);
            }
            Cexp::Branch { args, tru, fls, .. } => {
                args.iter().for_each(|v| val(v, bound, free));
                vars(tru, bound, free);
                vars(fls, bound, free);
            }
            Cexp::Fix { funs, rest } => {
                for f in funs {
                    bound.insert(f.name);
                }
                for f in funs {
                    let mut b2 = bound.clone();
                    for (p, _) in &f.params {
                        b2.insert(*p);
                    }
                    vars(&f.body, &mut b2, free);
                }
                vars(rest, bound, free);
            }
            Cexp::App { f, args } => {
                val(f, bound, free);
                args.iter().for_each(|v| val(v, bound, free));
            }
            Cexp::Halt { v } => val(v, bound, free),
        }
    }
    match e {
        Cexp::Fix { funs, rest } => {
            let names: Vec<CVar> = funs.iter().map(|f| f.name).collect();
            for f in funs {
                let mut bound: HashSet<CVar> = HashSet::new();
                bound.insert(f.name);
                for (p, _) in &f.params {
                    bound.insert(*p);
                }
                let mut free = BTreeSet::new();
                vars(&f.body, &mut bound.clone(), &mut free);
                out.insert(f.name, free);
                siblings.insert(f.name, names.clone());
                collect_fvs(&f.body, out, siblings);
            }
            collect_fvs(rest, out, siblings);
        }
        Cexp::Record { rest, .. }
        | Cexp::Select { rest, .. }
        | Cexp::Pure { rest, .. }
        | Cexp::Alloc { rest, .. }
        | Cexp::Look { rest, .. }
        | Cexp::Set { rest, .. } => collect_fvs(rest, out, siblings),
        Cexp::Switch { arms, default, .. } => {
            arms.iter().for_each(|a| collect_fvs(a, out, siblings));
            collect_fvs(default, out, siblings);
        }
        Cexp::Branch { tru, fls, .. } => {
            collect_fvs(tru, out, siblings);
            collect_fvs(fls, out, siblings);
        }
        Cexp::App { .. } | Cexp::Halt { .. } => {}
    }
}

struct Closer {
    next: u32,
    var_cty: HashMap<CVar, Cty>,
    fnnames: HashSet<CVar>,
    escaping: HashSet<CVar>,
    env_of: HashMap<CVar, Vec<CVar>>,
    out: Vec<FunDef>,
}

impl Closer {
    fn fresh(&mut self) -> CVar {
        let v = self.next;
        self.next += 1;
        v
    }

    fn cty(&self, v: CVar) -> Cty {
        self.var_cty.get(&v).copied().unwrap_or(Cty::Ptr(None))
    }

    fn rv(&self, v: &Value, sub: &HashMap<CVar, Value>) -> Value {
        match v {
            Value::Var(x) => sub.get(x).cloned().unwrap_or(Value::Var(*x)),
            other => other.clone(),
        }
    }

    /// Rewrites an expression; `sub` maps original variables to local
    /// values (closure selects, closure params, rebuilt siblings).
    fn go(&mut self, e: Cexp, sub: &HashMap<CVar, Value>) -> Cexp {
        match e {
            Cexp::Fix { funs, rest } => self.close_fix(funs, *rest, sub),
            Cexp::Record {
                fields,
                nflt,
                dst,
                rest,
            } => {
                let fields = fields
                    .into_iter()
                    .map(|(v, c)| (self.rv(&v, sub), c))
                    .collect();
                let rest = self.go(*rest, sub);
                Cexp::Record {
                    fields,
                    nflt,
                    dst,
                    rest: Box::new(rest),
                }
            }
            Cexp::Select {
                rec,
                word_off,
                flt,
                dst,
                cty,
                rest,
            } => {
                let rec = self.rv(&rec, sub);
                let rest = self.go(*rest, sub);
                Cexp::Select {
                    rec,
                    word_off,
                    flt,
                    dst,
                    cty,
                    rest: Box::new(rest),
                }
            }
            Cexp::Pure {
                op,
                args,
                dst,
                cty,
                rest,
            } => {
                let args = args.iter().map(|v| self.rv(v, sub)).collect();
                let rest = self.go(*rest, sub);
                Cexp::Pure {
                    op,
                    args,
                    dst,
                    cty,
                    rest: Box::new(rest),
                }
            }
            Cexp::Alloc {
                op,
                args,
                dst,
                rest,
            } => {
                let args = args.iter().map(|v| self.rv(v, sub)).collect();
                let rest = self.go(*rest, sub);
                Cexp::Alloc {
                    op,
                    args,
                    dst,
                    rest: Box::new(rest),
                }
            }
            Cexp::Look {
                op,
                args,
                dst,
                cty,
                rest,
            } => {
                let args = args.iter().map(|v| self.rv(v, sub)).collect();
                let rest = self.go(*rest, sub);
                Cexp::Look {
                    op,
                    args,
                    dst,
                    cty,
                    rest: Box::new(rest),
                }
            }
            Cexp::Set { op, args, rest } => {
                let args = args.iter().map(|v| self.rv(v, sub)).collect();
                let rest = self.go(*rest, sub);
                Cexp::Set {
                    op,
                    args,
                    rest: Box::new(rest),
                }
            }
            Cexp::Switch {
                v,
                lo,
                arms,
                default,
            } => {
                let v = self.rv(&v, sub);
                let arms = arms.into_iter().map(|a| self.go(a, sub)).collect();
                let default = self.go(*default, sub);
                Cexp::Switch {
                    v,
                    lo,
                    arms,
                    default: Box::new(default),
                }
            }
            Cexp::Branch { op, args, tru, fls } => {
                let args = args.iter().map(|v| self.rv(v, sub)).collect();
                let tru = self.go(*tru, sub);
                let fls = self.go(*fls, sub);
                Cexp::Branch {
                    op,
                    args,
                    tru: Box::new(tru),
                    fls: Box::new(fls),
                }
            }
            Cexp::App { f, args } => self.close_app(f, args, sub),
            Cexp::Halt { v } => Cexp::Halt {
                v: self.rv(&v, sub),
            },
        }
    }

    fn close_app(&mut self, f: Value, args: Vec<Value>, sub: &HashMap<CVar, Value>) -> Cexp {
        let args: Vec<Value> = args.iter().map(|v| self.rv(v, sub)).collect();
        match &f {
            Value::Var(x) | Value::Label(x) if self.fnnames.contains(x) => {
                if self.escaping.contains(x) {
                    // Direct call to an escaping function: pass its
                    // closure (which `sub` maps its name to) plus args.
                    let clos = sub.get(x).cloned().unwrap_or(Value::Var(*x));
                    let mut all = vec![clos];
                    all.extend(args);
                    Cexp::App {
                        f: Value::Label(*x),
                        args: all,
                    }
                } else {
                    // Known function: append its environment.
                    let env = self.env_of.get(x).cloned().unwrap_or_default();
                    let mut all = args;
                    for v in env {
                        all.push(sub.get(&v).cloned().unwrap_or(Value::Var(v)));
                    }
                    Cexp::App {
                        f: Value::Label(*x),
                        args: all,
                    }
                }
            }
            _ => {
                // Unknown call: load the code pointer from slot 0.
                let fval = self.rv(&f, sub);
                let code = self.fresh();
                let mut all = vec![fval.clone()];
                all.extend(args);
                Cexp::Select {
                    rec: fval,
                    word_off: 0,
                    flt: false,
                    dst: code,
                    cty: Cty::Fun,
                    rest: Box::new(Cexp::App {
                        f: Value::Var(code),
                        args: all,
                    }),
                }
            }
        }
    }

    fn close_fix(&mut self, funs: Vec<FunDef>, rest: Cexp, sub: &HashMap<CVar, Value>) -> Cexp {
        let esc_members: Vec<CVar> = funs
            .iter()
            .filter(|f| self.escaping.contains(&f.name))
            .map(|f| f.name)
            .collect();

        for f in funs {
            let name = f.name;
            let env = self.env_of.get(&name).cloned().unwrap_or_default();
            if self.escaping.contains(&name) {
                // Closure layout: [code, word fvs..., float fvs...].
                let cparam = self.fresh();
                let mut fsub: HashMap<CVar, Value> = HashMap::new();
                fsub.insert(name, Value::Var(cparam));
                // Compute physical offsets within the closure.
                let words: Vec<CVar> = env
                    .iter()
                    .copied()
                    .filter(|v| self.cty(*v).is_word())
                    .collect();
                let floats: Vec<CVar> = env
                    .iter()
                    .copied()
                    .filter(|v| !self.cty(*v).is_word())
                    .collect();
                let mut selects: Vec<(CVar, usize, bool, Cty)> = Vec::new();
                for (i, v) in words.iter().enumerate() {
                    let nv = self.fresh();
                    fsub.insert(*v, Value::Var(nv));
                    selects.push((nv, 1 + i, false, self.cty(*v)));
                }
                for (j, v) in floats.iter().enumerate() {
                    let nv = self.fresh();
                    fsub.insert(*v, Value::Var(nv));
                    selects.push((nv, 1 + words.len() + 2 * j, true, Cty::Flt));
                }
                // Sibling escaping functions: rebuild their closures from
                // our (shared-layout) environment.
                let mut sibling_builds: Vec<(CVar, CVar)> = Vec::new();
                for s in &esc_members {
                    if *s != name {
                        let nv = self.fresh();
                        fsub.insert(*s, Value::Var(nv));
                        sibling_builds.push((nv, *s));
                    }
                }
                let mut body = self.go(*f.body, &fsub);
                // Emit sibling closure rebuilds (reverse order so the
                // first build is outermost).
                for (nv, s) in sibling_builds.into_iter().rev() {
                    let senv = self.env_of.get(&s).cloned().unwrap_or_default();
                    let mut fields = vec![(Value::Label(s), Cty::Fun)];
                    let mut nflt = 0;
                    for v in senv.iter().filter(|v| self.cty(**v).is_word()) {
                        fields.push((fsub[v].clone(), self.cty(*v)));
                    }
                    for v in senv.iter().filter(|v| !self.cty(**v).is_word()) {
                        fields.push((fsub[v].clone(), Cty::Flt));
                        nflt += 1;
                    }
                    body = Cexp::Record {
                        fields,
                        nflt,
                        dst: nv,
                        rest: Box::new(body),
                    };
                }
                // Emit the free-variable selects.
                for (nv, off, flt, cty) in selects.into_iter().rev() {
                    body = Cexp::Select {
                        rec: Value::Var(cparam),
                        word_off: off,
                        flt,
                        dst: nv,
                        cty,
                        rest: Box::new(body),
                    };
                }
                let mut params = vec![(cparam, Cty::Ptr(None))];
                params.extend(f.params.iter().copied());
                self.out.push(FunDef {
                    kind: f.kind,
                    name,
                    params,
                    body: Box::new(body),
                });
            } else {
                // Known function: free variables become parameters under
                // their original names.
                let mut fsub: HashMap<CVar, Value> = HashMap::new();
                // References to escaping siblings inside a known function
                // are resolved through the caller-passed closure values
                // (they are part of `env` when used).
                let body = {
                    for s in &esc_members {
                        if env.contains(s) {
                            // Closure value passed as a parameter.
                            fsub.insert(*s, Value::Var(*s));
                        }
                    }
                    self.go(*f.body, &fsub)
                };
                let mut params = f.params.clone();
                for v in &env {
                    params.push((*v, self.cty(*v)));
                }
                self.out.push(FunDef {
                    kind: f.kind,
                    name,
                    params,
                    body: Box::new(body),
                });
            }
        }

        // In the continuation of the Fix, build closures for the
        // escaping members.
        let mut rest = self.go(rest, sub);
        for name in esc_members.into_iter().rev() {
            let env = self.env_of.get(&name).cloned().unwrap_or_default();
            let mut fields = vec![(Value::Label(name), Cty::Fun)];
            let mut nflt = 0;
            for v in env.iter().filter(|v| self.cty(**v).is_word()) {
                fields.push((sub.get(v).cloned().unwrap_or(Value::Var(*v)), self.cty(*v)));
            }
            for v in env.iter().filter(|v| !self.cty(**v).is_word()) {
                fields.push((sub.get(v).cloned().unwrap_or(Value::Var(*v)), Cty::Flt));
                nflt += 1;
            }
            rest = Cexp::Record {
                fields,
                nflt,
                dst: name,
                rest: Box::new(rest),
            };
        }
        rest
    }
}

/// Verifies that a closed program is truly first-order and closed: no
/// nested `Fix` remains, and every function body references only its own
/// parameters, labels of lifted functions, and constants.
///
/// Returns a description of the first violation, if any. Used as an
/// invariant check by the test suite.
pub fn verify_closed(prog: &ClosedProgram) -> Result<(), String> {
    let labels: HashSet<CVar> = prog.funs.iter().map(|f| f.name).collect();
    fn walk(e: &Cexp, scope: &mut HashSet<CVar>, labels: &HashSet<CVar>) -> Result<(), String> {
        let chk = |v: &Value, scope: &HashSet<CVar>| -> Result<(), String> {
            match v {
                Value::Var(x) => {
                    if scope.contains(x) || labels.contains(x) {
                        Ok(())
                    } else {
                        Err(format!("free variable v{x}"))
                    }
                }
                Value::Label(x) => {
                    if labels.contains(x) {
                        Ok(())
                    } else {
                        Err(format!("unknown label L{x}"))
                    }
                }
                _ => Ok(()),
            }
        };
        match e {
            Cexp::Record {
                fields, dst, rest, ..
            } => {
                for (v, _) in fields {
                    chk(v, scope)?;
                }
                scope.insert(*dst);
                walk(rest, scope, labels)
            }
            Cexp::Select { rec, dst, rest, .. } => {
                chk(rec, scope)?;
                scope.insert(*dst);
                walk(rest, scope, labels)
            }
            Cexp::Pure {
                args, dst, rest, ..
            }
            | Cexp::Alloc {
                args, dst, rest, ..
            }
            | Cexp::Look {
                args, dst, rest, ..
            } => {
                for v in args {
                    chk(v, scope)?;
                }
                scope.insert(*dst);
                walk(rest, scope, labels)
            }
            Cexp::Set { args, rest, .. } => {
                for v in args {
                    chk(v, scope)?;
                }
                walk(rest, scope, labels)
            }
            Cexp::Switch {
                v, arms, default, ..
            } => {
                chk(v, scope)?;
                for a in arms {
                    walk(a, scope, labels)?;
                }
                walk(default, scope, labels)
            }
            Cexp::Branch { args, tru, fls, .. } => {
                for v in args {
                    chk(v, scope)?;
                }
                walk(tru, scope, labels)?;
                walk(fls, scope, labels)
            }
            Cexp::Fix { .. } => Err("nested Fix survived closure conversion".into()),
            Cexp::App { f, args } => {
                chk(f, scope)?;
                for v in args {
                    chk(v, scope)?;
                }
                Ok(())
            }
            Cexp::Halt { v } => chk(v, scope),
        }
    }
    for f in &prog.funs {
        let mut scope: HashSet<CVar> = f.params.iter().map(|(p, _)| *p).collect();
        walk(&f.body, &mut scope, &labels).map_err(|e| format!("function L{}: {e}", f.name))?;
    }
    let mut scope = HashSet::new();
    walk(&prog.entry, &mut scope, &labels).map_err(|e| format!("entry: {e}"))
}
