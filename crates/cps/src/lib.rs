//! The typed CPS back end of the `smlc` compiler (paper §5).
//!
//! LEXP programs are converted to continuation-passing style with
//! per-variable CTY annotations, optimized (contraction, wrap/unwrap
//! cancellation, record-copy elimination, inline expansion), and closure-
//! converted into first-order form ready for code generation.
//!
//! # Examples
//!
//! ```
//! use sml_lambda::{translate, LambdaConfig};
//! use sml_cps::{convert, optimize, close, CpsConfig, OptConfig};
//! let prog = sml_ast::parse("val x = 1 + 2").unwrap();
//! let elab = sml_elab::elaborate(&prog).unwrap();
//! let mut tr = translate(&elab, &LambdaConfig::default());
//! let mut cps = convert(&tr.lexp, &mut tr.interner, tr.n_vars, &CpsConfig::default());
//! optimize(&mut cps, &OptConfig::default());
//! let closed = close(cps);
//! assert!(closed.entry.size() > 0);
//! ```

#![warn(missing_docs)]

pub mod closure;
pub mod convert;
pub mod cps;
pub mod optimize;
pub mod verify;

pub use closure::{close, ClosedProgram};
pub use convert::{convert, CpsConfig, CpsProgram, SpreadMode};
pub use cps::{
    cty_of_lty, AllocOp, BranchOp, CVar, Cexp, Cty, FunDef, FunKind, LookOp, PureOp, SetOp, Value,
};
pub use optimize::{floor_div, floor_mod, optimize, optimize_instrumented, OptConfig, OptStats};
pub use verify::{verify_closed_program, verify_cps, CpsVerifySummary, CpsViolation};
