//! Pipeline tests: source → LEXP → CPS → optimized CPS → closed
//! first-order program, with invariant checks under every configuration.

use sml_cps::{close, closure::verify_closed, convert, optimize, CpsConfig, OptConfig, SpreadMode};
use sml_lambda::{translate, InternMode, LambdaConfig};

struct Variant {
    name: &'static str,
    lam: LambdaConfig,
    cps: CpsConfig,
}

fn variants() -> Vec<Variant> {
    let hc = InternMode::HashCons;
    vec![
        Variant {
            name: "nrp",
            lam: LambdaConfig {
                type_based: false,
                unboxed_floats: false,
                memo_coercions: true,
                intern_mode: hc,
            },
            cps: CpsConfig {
                spread: SpreadMode::None,
                max_spread: 10,
                fp_callee_save: false,
            },
        },
        Variant {
            name: "fag",
            lam: LambdaConfig {
                type_based: false,
                unboxed_floats: false,
                memo_coercions: true,
                intern_mode: hc,
            },
            cps: CpsConfig {
                spread: SpreadMode::KnownOnly,
                max_spread: 10,
                fp_callee_save: false,
            },
        },
        Variant {
            name: "rep",
            lam: LambdaConfig {
                type_based: true,
                unboxed_floats: false,
                memo_coercions: true,
                intern_mode: hc,
            },
            cps: CpsConfig {
                spread: SpreadMode::ByType,
                max_spread: 10,
                fp_callee_save: false,
            },
        },
        Variant {
            name: "ffb",
            lam: LambdaConfig {
                type_based: true,
                unboxed_floats: true,
                memo_coercions: true,
                intern_mode: hc,
            },
            cps: CpsConfig {
                spread: SpreadMode::ByType,
                max_spread: 10,
                fp_callee_save: false,
            },
        },
    ]
}

fn pipeline(src: &str, v: &Variant) -> sml_cps::ClosedProgram {
    let prog = sml_ast::parse(src).unwrap_or_else(|e| panic!("parse: {e}"));
    let elab = sml_elab::elaborate(&prog).unwrap_or_else(|e| panic!("elab: {e}"));
    let mut tr = translate(&elab, &v.lam);
    let mut cps = convert(&tr.lexp, &mut tr.interner, tr.n_vars, &v.cps);
    optimize(&mut cps, &OptConfig::default());
    close(cps)
}

fn check_all(src: &str) {
    for v in variants() {
        let closed = pipeline(src, &v);
        if let Err(e) = verify_closed(&closed) {
            panic!("[{}] not closed for:\n{src}\n{e}", v.name);
        }
    }
}

#[test]
fn arithmetic_pipeline() {
    check_all("val x = 1 + 2 * 3 val y = (1.5 + 2.5) * 0.5 val z = x + floor y");
}

#[test]
fn function_pipeline() {
    check_all(
        "fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)
         val r = fib 10",
    );
}

#[test]
fn higher_order_pipeline() {
    check_all(
        "fun map f nil = nil | map f (x :: r) = f x :: map f r
         fun foldl f a nil = a | foldl f a (x :: r) = foldl f (f (x, a)) r
         val s = foldl (fn (x, a) => x + a) 0 (map (fn x => x * 2) [1, 2, 3])",
    );
}

#[test]
fn float_pipeline() {
    check_all(
        "fun quad f x = f (f (f (f x)))
         fun h (x : real) = x * x + 1.0
         val r = quad h 1.05 + h 2.0",
    );
}

#[test]
fn datatype_pipeline() {
    check_all(
        "datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree
         fun size Leaf = 0 | size (Node (l, _, r)) = 1 + size l + size r
         val t = Node (Node (Leaf, 1, Leaf), 2, Leaf)
         val n = size t",
    );
}

#[test]
fn exception_pipeline() {
    check_all(
        "exception E of int
         fun f 0 = raise E 42 | f n = n
         val a = (f 0 handle E n => n) + f 1",
    );
}

#[test]
fn callcc_pipeline() {
    check_all("val x = callcc (fn k => 1 + throw k 41)");
}

#[test]
fn ref_loop_pipeline() {
    check_all(
        "val i = ref 0
         val s = ref 0.0
         val _ = while !i < 100 do (s := !s + real (!i); i := !i + 1)",
    );
}

#[test]
fn module_pipeline() {
    check_all(
        "signature ORD = sig type t val le : t * t -> bool end
         functor Max (X : ORD) = struct fun max (a, b) = if X.le (a, b) then b else a end
         structure RO = struct type t = real fun le (a : real, b) = a <= b end
         structure M = Max (RO)
         val m = M.max (1.5, 2.5)",
    );
}

#[test]
fn spread_reduces_allocation_sites() {
    // Under ByType spreading, calling a known function with a tuple
    // argument should not allocate the tuple; count Record operators.
    let src = "fun add (a : int, b : int) = a + b
               val r = add (1, 2) + add (3, 4)";
    let vs = variants();
    let nrp = pipeline(src, &vs[0]);
    let ffb = pipeline(src, &vs[3]);
    let count_records = |p: &sml_cps::ClosedProgram| {
        fn c(e: &sml_cps::Cexp) -> usize {
            match e {
                sml_cps::Cexp::Record { rest, .. } => 1 + c(rest),
                sml_cps::Cexp::Select { rest, .. }
                | sml_cps::Cexp::Pure { rest, .. }
                | sml_cps::Cexp::Alloc { rest, .. }
                | sml_cps::Cexp::Look { rest, .. }
                | sml_cps::Cexp::Set { rest, .. } => c(rest),
                sml_cps::Cexp::Branch { tru, fls, .. } => c(tru) + c(fls),
                sml_cps::Cexp::Fix { funs, rest } => {
                    c(rest) + funs.iter().map(|f| c(&f.body)).sum::<usize>()
                }
                _ => 0,
            }
        }
        c(&p.entry) + p.funs.iter().map(|f| c(&f.body)).sum::<usize>()
    };
    assert!(
        count_records(&ffb) <= count_records(&nrp),
        "ffb should allocate no more records than nrp ({} vs {})",
        count_records(&ffb),
        count_records(&nrp)
    );
}

#[test]
fn optimizer_cancels_wrap_pairs() {
    // `id 2.5` wraps the float; the inlined identity then unwraps it:
    // the optimizer should cancel at least one pair.
    let src = "fun id x = x
               val a = id 2.5
               val b = a + 1.0";
    let v = &variants()[3];
    let prog = sml_ast::parse(src).unwrap();
    let elab = sml_elab::elaborate(&prog).unwrap();
    let mut tr = translate(&elab, &v.lam);
    let mut cps = convert(&tr.lexp, &mut tr.interner, tr.n_vars, &v.cps);
    let stats = optimize(&mut cps, &OptConfig::default());
    assert!(
        stats.wrap_cancelled > 0 || stats.dead > 0,
        "expected wrap/unwrap cancellation or cleanup, got {stats:?}"
    );
}

#[test]
fn optimizer_is_idempotent_at_fixpoint() {
    let src = "fun f x = x + 1 val y = f (f 2)";
    let v = &variants()[3];
    let prog = sml_ast::parse(src).unwrap();
    let elab = sml_elab::elaborate(&prog).unwrap();
    let mut tr = translate(&elab, &v.lam);
    let mut cps = convert(&tr.lexp, &mut tr.interner, tr.n_vars, &v.cps);
    optimize(&mut cps, &OptConfig::default());
    let size1 = cps.body.size();
    optimize(
        &mut cps,
        &OptConfig {
            inline_passes: 0,
            ..OptConfig::default()
        },
    );
    let size2 = cps.body.size();
    assert!(size2 <= size1);
}

#[test]
fn constant_folding_folds_program() {
    // A fully constant program should optimize to (nearly) nothing.
    let src = "val x = 1 + 2 val y = x * 3";
    let v = &variants()[3];
    let prog = sml_ast::parse(src).unwrap();
    let elab = sml_elab::elaborate(&prog).unwrap();
    let mut tr = translate(&elab, &v.lam);
    let mut cps = convert(&tr.lexp, &mut tr.interner, tr.n_vars, &v.cps);
    optimize(&mut cps, &OptConfig::default());
    // Only the built-in exception-tag allocations and the halt remain.
    assert!(cps.body.size() < 30, "residual size {}", cps.body.size());
}

#[test]
fn deep_module_pipeline() {
    check_all(
        "structure A = struct
           structure B = struct val f = fn (x : real) => x * 2.0 end
           val g = B.f
         end
         val z = A.g (A.B.f 1.0)",
    );
}

#[test]
fn string_pipeline() {
    check_all(
        "fun greet name = \"hello \" ^ name
         val msg = greet \"world\"
         val n = size msg
         val _ = print msg",
    );
}

#[test]
fn fag_flattens_only_literal_tuple_calls() {
    // Under KnownOnly, a known function whose call sites all pass literal
    // tuples gets multi-argument parameters; one with a forwarded tuple
    // does not.
    let src = "fun add (a, b) = a + b
               fun use1 () = add (1, 2) + add (3, 4)
               fun fwd p = add p
               val x = use1 () + fwd (5, 6)";
    let prog = sml_ast::parse(src).unwrap();
    let elab = sml_elab::elaborate(&prog).unwrap();
    let lam = LambdaConfig {
        type_based: false,
        unboxed_floats: false,
        memo_coercions: true,
        intern_mode: InternMode::HashCons,
    };
    let mut tr = translate(&elab, &lam);
    let cfg = CpsConfig {
        spread: SpreadMode::KnownOnly,
        max_spread: 10,
        fp_callee_save: false,
    };
    let mut cps = convert(&tr.lexp, &mut tr.interner, tr.n_vars, &cfg);
    optimize(&mut cps, &OptConfig::default());
    let closed = close(cps);
    verify_closed(&closed).unwrap();
    // `add` has a non-literal call site (through fwd), so it keeps the
    // one-argument convention: no escaping/known function may take two
    // spread Ptr(None) args where add's tuple would have been.
    for f in &closed.funs {
        let words = f
            .params
            .iter()
            .filter(|(_, c)| matches!(c, sml_cps::Cty::Ptr(None)))
            .count();
        assert!(
            words <= 3,
            "no function should show flattened-add params: {:?}",
            f.params
        );
    }
}

#[test]
fn bytype_spreads_escaping_functions() {
    // The paper's key point (5.1): with types, even escaping functions
    // use register arguments, because caller and callee agree by type.
    let src = "fun apply f = f (1, 2)
               fun add (a : int, b : int) = a + b
               fun mul (a : int, b : int) = a * b
               val r = apply add + apply mul";
    let prog = sml_ast::parse(src).unwrap();
    let elab = sml_elab::elaborate(&prog).unwrap();
    let mut tr = translate(&elab, &LambdaConfig::default());
    let mut cps = convert(&tr.lexp, &mut tr.interner, tr.n_vars, &CpsConfig::default());
    // Contraction only: full inlining would evaluate this tiny program
    // away entirely.
    optimize(
        &mut cps,
        &OptConfig {
            inline_passes: 0,
            max_rounds: 2,
            ..OptConfig::default()
        },
    );
    let closed = close(cps);
    verify_closed(&closed).unwrap();
    // add/mul escape (passed to apply); under ByType their definitions
    // still take 2 spread args + closure + continuation = 4+ params.
    let spreads = closed
        .funs
        .iter()
        .filter(|f| {
            matches!(f.kind, sml_cps::FunKind::Escape)
                && f.params
                    .iter()
                    .filter(|(_, c)| *c == sml_cps::Cty::Int)
                    .count()
                    >= 2
        })
        .count();
    assert!(
        spreads >= 2,
        "escaping add/mul must spread their tuple args"
    );
}

#[test]
fn float_args_travel_in_float_registers() {
    let src = "fun hypot (x : real, y : real) = sqrt (x * x + y * y)
               fun use_it f = f (3.0, 4.0)
               val r = use_it hypot
               val s = hypot (5.0, 12.0)";
    let prog = sml_ast::parse(src).unwrap();
    let elab = sml_elab::elaborate(&prog).unwrap();
    let mut tr = translate(&elab, &LambdaConfig::default());
    let mut cps = convert(&tr.lexp, &mut tr.interner, tr.n_vars, &CpsConfig::default());
    optimize(
        &mut cps,
        &OptConfig {
            inline_passes: 0,
            max_rounds: 2,
            ..OptConfig::default()
        },
    );
    let closed = close(cps);
    let has_float_params = closed.funs.iter().any(|f| {
        f.params
            .iter()
            .filter(|(_, c)| *c == sml_cps::Cty::Flt)
            .count()
            == 2
    });
    assert!(has_float_params, "hypot takes two FLTt parameters");
}

#[test]
fn switch_constant_folds() {
    // A switch on a known constant collapses to its arm.
    let src = "datatype d = A | B | C | D
               fun code A = 1 | code B = 2 | code C = 3 | code D = 4
               val x = code C";
    let v = &variants()[3];
    let prog = sml_ast::parse(src).unwrap();
    let elab = sml_elab::elaborate(&prog).unwrap();
    let mut tr = translate(&elab, &v.lam);
    let mut cps = convert(&tr.lexp, &mut tr.interner, tr.n_vars, &v.cps);
    optimize(&mut cps, &OptConfig::default());
    fn has_switch(e: &sml_cps::Cexp) -> bool {
        match e {
            sml_cps::Cexp::Switch { .. } => true,
            sml_cps::Cexp::Record { rest, .. }
            | sml_cps::Cexp::Select { rest, .. }
            | sml_cps::Cexp::Pure { rest, .. }
            | sml_cps::Cexp::Alloc { rest, .. }
            | sml_cps::Cexp::Look { rest, .. }
            | sml_cps::Cexp::Set { rest, .. } => has_switch(rest),
            sml_cps::Cexp::Branch { tru, fls, .. } => has_switch(tru) || has_switch(fls),
            sml_cps::Cexp::Fix { funs, rest } => {
                funs.iter().any(|f| has_switch(&f.body)) || has_switch(rest)
            }
            _ => false,
        }
    }
    assert!(!has_switch(&cps.body), "constant switch must fold away");
}

#[test]
fn dead_allocation_removed() {
    let src = "val unused = (1, 2, 3) val keep = 7";
    let v = &variants()[3];
    let prog = sml_ast::parse(src).unwrap();
    let elab = sml_elab::elaborate(&prog).unwrap();
    let mut tr = translate(&elab, &v.lam);
    let mut cps = convert(&tr.lexp, &mut tr.interner, tr.n_vars, &v.cps);
    let stats = optimize(&mut cps, &OptConfig::default());
    assert!(
        stats.dead > 0,
        "the unused tuple must be removed: {stats:?}"
    );
    // Even the built-in exception-tag records are dead here (no exceptions
    // used), so no Record nodes survive at all.
    fn count_records(e: &sml_cps::Cexp) -> usize {
        match e {
            sml_cps::Cexp::Record { rest, .. } => 1 + count_records(rest),
            sml_cps::Cexp::Select { rest, .. }
            | sml_cps::Cexp::Pure { rest, .. }
            | sml_cps::Cexp::Alloc { rest, .. }
            | sml_cps::Cexp::Look { rest, .. }
            | sml_cps::Cexp::Set { rest, .. } => count_records(rest),
            sml_cps::Cexp::Branch { tru, fls, .. } => count_records(tru) + count_records(fls),
            sml_cps::Cexp::Switch { arms, default, .. } => {
                arms.iter().map(count_records).sum::<usize>() + count_records(default)
            }
            sml_cps::Cexp::Fix { funs, rest } => {
                funs.iter().map(|f| count_records(&f.body)).sum::<usize>() + count_records(rest)
            }
            _ => 0,
        }
    }
    assert_eq!(count_records(&cps.body), 0, "no record allocations survive");
}
