//! Criterion benches over the paper's evaluation: per-benchmark
//! execution under each compiler variant (Figure 7's raw data) and the
//! compilation pipeline itself (Figure 8's compile-time row).
//!
//! The interesting output — ratio tables shaped like the paper's figures
//! — is printed by `cargo run -p smlc-bench --bin figure7` / `figure8`;
//! these benches provide wall-clock confidence intervals on the same
//! workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use smlc::{compile, Variant};
use smlc_bench::benchmarks;

fn bench_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("execute");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for b in benchmarks() {
        let src = b.source();
        // Only the extreme variants in the timed benches; the full 6x12
        // matrix is the figure binaries' job.
        for v in [Variant::Nrp, Variant::Ffb] {
            let compiled = compile(&src, v).expect("benchmarks compile");
            group.bench_function(format!("{}/{}", b.name, v.name()), |bench| {
                bench.iter(|| {
                    let o = compiled.run();
                    assert!(o.stats.cycles > 0);
                    o.stats.cycles
                })
            });
        }
    }
    group.finish();
}

fn bench_compilation(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for b in benchmarks().into_iter().take(4) {
        let src = b.source();
        for v in [Variant::Nrp, Variant::Ffb] {
            group.bench_function(format!("{}/{}", b.name, v.name()), |bench| {
                bench.iter(|| compile(&src, v).expect("compiles").stats.code_size)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_execution, bench_compilation);
criterion_main!(benches);
