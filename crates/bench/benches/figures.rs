//! Wall-clock micro-benches over the paper's evaluation: per-benchmark
//! execution under the extreme compiler variants (Figure 7's raw data)
//! and the compilation pipeline itself (Figure 8's compile-time row).
//!
//! Originally a criterion bench; this environment builds without
//! network access to crates.io, so it is now a plain `harness = false`
//! binary using `std::time::Instant` — run with
//! `cargo bench -p smlc-bench`. The interesting output — ratio tables
//! shaped like the paper's figures — is printed by
//! `cargo run -p smlc-bench --bin figure7` / `figure8`; this bench
//! provides wall-clock medians on the same workloads.

use smlc::{Session, Variant};
use smlc_bench::benchmarks;
use std::time::Instant;

/// Median wall-clock seconds of `iters` runs of `f`.
fn median_secs(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    // Cache and warm-table reuse are off: the compile column must time
    // a genuine cold compile every iteration, not a cache lookup.
    let session = Session::builder()
        .cache(false)
        .reuse_types(false)
        .build()
        .expect("bench session configuration is valid");
    println!(
        "{:24} {:>12} {:>12}",
        "workload", "execute (s)", "compile (s)"
    );
    for b in benchmarks() {
        let src = b.source();
        // Only the extreme variants in the timed benches; the full 6x12
        // matrix is the figure binaries' job.
        for v in [Variant::Nrp, Variant::Ffb] {
            let compiled = session
                .compile_variant(&src, v)
                .expect("benchmarks compile");
            let exec = median_secs(5, || {
                let o = session.run(&compiled);
                assert!(o.stats.cycles > 0);
            });
            let comp = median_secs(5, || {
                let c = session.compile_variant(&src, v).expect("compiles");
                assert!(c.stats.code_size > 0 && !c.from_cache);
            });
            println!(
                "{:24} {exec:>12.4} {comp:>12.4}",
                format!("{}/{}", b.name, v.name())
            );
        }
    }
}
