(* KB-Comp: Knuth-Bendix-completion style term rewriting — first-order
   terms, unification-lite matching with exceptions, higher-order rule
   application. *)

datatype term =
    Var of int
  | App of int * term list     (* function symbol, arguments *)

exception NoMatch

(* Substitutions as association lists. *)
fun find (v, nil) = NONE
  | find (v, (w, t) :: rest) = if v = w then SOME t else find (v, rest)

fun subst (s, Var v) = (case find (v, s) of SOME t => t | NONE => Var v)
  | subst (s, App (f, args)) = App (f, map (fn t => subst (s, t)) args)

(* Match a pattern against a term, extending the substitution. *)
fun match (Var v, t, s) =
      (case find (v, s) of
         NONE => (v, t) :: s
       | SOME b => if term_eq (b, t) then s else raise NoMatch)
  | match (App (f, fargs), App (g, gargs), s) =
      if f = g then match_all (fargs, gargs, s) else raise NoMatch
  | match (p, t, s) = raise NoMatch

and match_all (nil, nil, s) = s
  | match_all (p :: ps, t :: ts, s) = match_all (ps, ts, match (p, t, s))
  | match_all (ps, ts, s) = raise NoMatch

and term_eq (Var a, Var b) = a = b
  | term_eq (App (f, fs), App (g, gs)) =
      f = g andalso list_eq (fs, gs)
  | term_eq (a, b) = false

and list_eq (nil, nil) = true
  | list_eq (x :: xs, y :: ys) = term_eq (x, y) andalso list_eq (xs, ys)
  | list_eq (a, b) = false

(* Group-theory style rules:
     1:  f(e, x)      -> x                (identity: symbol 0 = e, 1 = f)
     2:  f(i(x), x)   -> e                (inverse: symbol 2 = i)
     3:  f(f(x,y),z)  -> f(x, f(y, z))    (associativity) *)
val rules =
  [(App (1, [App (0, nil), Var 100]), Var 100),
   (App (1, [App (2, [Var 100]), Var 100]), App (0, nil)),
   (App (1, [App (1, [Var 100, Var 101]), Var 102]),
    App (1, [Var 100, App (1, [Var 101, Var 102])]))]

(* One top-level rewrite attempt. *)
fun rewrite_top t =
  let
    fun try nil = raise NoMatch
      | try ((lhs, rhs) :: rest) =
          (subst (match (lhs, t, nil), rhs) handle NoMatch => try rest)
  in
    try rules
  end

(* Innermost normalization with a fuel bound. *)
fun normalize (t, fuel) =
  if fuel = 0 then (t, 0)
  else
    case t of
      Var v => (Var v, fuel)
    | App (f, args) =>
        let
          val (args2, fuel2) = norm_list (args, fuel)
          val t2 = App (f, args2)
        in
          (let val t3 = rewrite_top t2
           in normalize (t3, fuel2 - 1) end)
          handle NoMatch => (t2, fuel2)
        end

and norm_list (nil, fuel) = (nil, fuel)
  | norm_list (t :: ts, fuel) =
      let
        val (t2, f2) = normalize (t, fuel)
        val (ts2, f3) = norm_list (ts, f2)
      in
        (t2 :: ts2, f3)
      end

(* Build towers of group expressions and normalize them. *)
fun build (0, acc) = acc
  | build (n, acc) =
      let
        val v = Var (n mod 3)
        val inv = App (2, [acc])
      in
        build (n - 1, App (1, [App (1, [inv, acc]), App (1, [App (0, nil), v])]))
      end

fun size (Var v) = 1
  | size (App (f, args)) = 1 + foldl (fn (t, a) => a + size t) 0 args

fun work (0, acc) = acc
  | work (k, acc) =
      let
        val t = build (8, Var 0)
        val (nf, remaining) = normalize (t, 2000)
      in
        work (k - 1, acc + size nf + remaining mod 7)
      end

val result = work (60, 0)
val _ = print ("kbc " ^ itos result ^ "\n")
