(* Sieve: prime generation driven by first-class continuations and
   exceptions — a callcc-based backtracking generator plus an
   exception-heavy trial-division loop. *)

exception Composite

(* Trial division using exceptions for early exit. *)
fun is_prime n =
  let
    fun try d =
      if d * d > n then ()
      else if n mod d = 0 then raise Composite
      else try (d + 1)
  in
    (try 2; true) handle Composite => false
  end

fun count_primes (i, limit, acc) =
  if i > limit then acc
  else count_primes (i + 1, limit, if is_prime i then acc + 1 else acc)

(* A callcc-based "generator": walks the integers, escaping to the
   consumer each time a prime is found. *)
fun nth_prime k =
  callcc (fn done =>
    let
      fun loop (i, remaining) =
        if remaining = 0 then throw done i
        else
          let
            val r = if is_prime i then remaining - 1 else remaining
          in
            loop (i + 1, r)
          end
    in
      loop (2, k + 1)
    end)

(* Exception-based nondeterministic search: find a pair of primes that
   sums to a target (Goldbach-style), backtracking via handlers. *)
exception Fail2

fun find_pair target =
  let
    fun try a =
      if a > target div 2 then raise Fail2
      else if is_prime a andalso is_prime (target - a) then a
      else try (a + 1)
  in
    try 2
  end

fun goldbach (n, limit, acc) =
  if n > limit then acc
  else
    let
      val a = (find_pair n handle Fail2 => 0)
    in
      goldbach (n + 2, limit, acc + a)
    end

val c = count_primes (2, 4000, 0)
val p = nth_prime 200
val g = goldbach (4, 600, 0)
val _ = print ("sieve " ^ itos c ^ " " ^ itos p ^ " " ^ itos g ^ "\n")
