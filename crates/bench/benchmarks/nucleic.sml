(* Nucleic: 3D molecular-geometry style computation — rigid-body
   transforms (3x3 rotation + translation) applied to atom positions,
   distance checks between conformations. Heavy use of real tuples. *)

type vec = real * real * real
type mat = (real * real * real) * (real * real * real) * (real * real * real)

fun vadd ((x1, y1, z1) : vec, (x2, y2, z2) : vec) : vec =
  (x1 + x2, y1 + y2, z1 + z2)

fun vsub ((x1, y1, z1) : vec, (x2, y2, z2) : vec) : vec =
  (x1 - x2, y1 - y2, z1 - z2)

fun dot ((x1, y1, z1) : vec, (x2, y2, z2) : vec) =
  x1 * x2 + y1 * y2 + z1 * z2

fun norm2 (v : vec) = dot (v, v)

fun apply (((a, b, c), (d, e, f), (g, h, i)) : mat, (x, y, z) : vec) : vec =
  (a * x + b * y + c * z,
   d * x + e * y + f * z,
   g * x + h * y + i * z)

fun rotz t : mat =
  ((cos t, 0.0 - sin t, 0.0),
   (sin t, cos t, 0.0),
   (0.0, 0.0, 1.0))

fun rotx t : mat =
  ((1.0, 0.0, 0.0),
   (0.0, cos t, 0.0 - sin t),
   (0.0, sin t, cos t))

(* A synthetic "residue": a handful of pseudo-atoms. *)
val atoms : vec list =
  [(1.0, 0.2, 0.1), (0.5, 1.3, 0.4), (0.2, 0.4, 1.7),
   (1.1, 1.2, 0.3), (0.7, 0.1, 0.9), (1.4, 0.8, 0.2)]

(* Transform one atom through the conformation's two rotations and the
   translation — all in registers under unboxed-float compilers. *)
fun transform (m : mat, m2 : mat, t : vec, a : vec) : vec =
  apply (m2, vadd (apply (m, a), t))

(* Clash score between two conformations, fusing placement into the pair
   loop so no intermediate placed lists are built. *)
fun clashes (m, m2, t, rm, rm2, rt) =
  let
    fun inner (a : vec, nil, acc) = acc
      | inner (a, b :: rest, acc) =
          let
            val tb = transform (rm, rm2, rt, b)
          in
            inner (a, rest, if norm2 (vsub (a, tb)) < 0.8 then acc + 1 else acc)
          end
    fun outer (nil, acc) = acc
      | outer (a :: rest, acc) =
          let
            val ta = transform (m, m2, t, a)
          in
            outer (rest, inner (ta, atoms, acc))
          end
  in
    outer (atoms, 0)
  end

fun params k =
  let
    val ang = real k * 0.1
  in
    (rotz ang, rotx (ang * 0.5), (real k * 0.05, 0.3, 0.2))
  end

fun search (k, best, bestk) =
  if k >= 120 then bestk
  else
    let
      val (m, m2, t) = params k
      val (rm, rm2, rt) = params 0
      val score = clashes (m, m2, t, rm, rm2, rt)
    in
      if score < best then search (k + 1, score, k)
      else search (k + 1, best, bestk)
    end

fun repeat (0, r) = r | repeat (n, r) = repeat (n - 1, search (1, 999999, 0))

val answer = repeat (12, 0)
val _ = print ("nucleic " ^ itos answer ^ "\n")
