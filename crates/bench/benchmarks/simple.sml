(* Simple: a hydrodynamics-like relaxation kernel — arrays of reals
   updated by sweeps, with flux terms computed through float tuples. *)

val n = 200

val u = array (n, 0.0)
val v = array (n, 0.0)

fun init i =
  if i >= n then ()
  else (aupdate (u, i, real i * 0.01); init (i + 1))

(* One relaxation sweep: v[i] = laplacian-ish combination of u. *)
fun flux (a : real, b, c) = (b - a, c - b, a + b + c)

fun sweep i =
  if i >= n - 1 then ()
  else
    let
      val (dl, dr, s) = flux (asub (u, i - 1), asub (u, i), asub (u, i + 1))
      val nu = asub (u, i) + 0.17 * (dr - dl) + s * 0.001
    in
      aupdate (v, i, nu);
      sweep (i + 1)
    end

fun copy i =
  if i >= n - 1 then ()
  else (aupdate (u, i, asub (v, i)); copy (i + 1))

fun iterate k =
  if k = 0 then ()
  else (sweep 1; copy 1; iterate (k - 1))

fun checksum (i, acc) =
  if i >= n then acc
  else checksum (i + 1, acc + asub (u, i))

val _ = init 0
val _ = iterate 150
val total = checksum (0, 0.0)
val _ = print ("simple " ^ itos (floor (total * 100.0)) ^ "\n")
