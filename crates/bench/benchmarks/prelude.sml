(* Standard prelude compiled with every benchmark (the subset has no
   separate basis library). *)

fun not true = false | not false = true

fun op @ (nil, ys) = ys
  | op @ (x :: xs, ys) = x :: (xs @ ys)

fun rev l =
  let fun go (nil, acc) = acc
        | go (x :: r, acc) = go (r, x :: acc)
  in go (l, nil) end

fun map f nil = nil
  | map f (x :: r) = f x :: map f r

fun app f nil = ()
  | app f (x :: r) = (f x; app f r)

fun foldl f a nil = a
  | foldl f a (x :: r) = foldl f (f (x, a)) r

fun foldr f a nil = a
  | foldr f a (x :: r) = f (x, foldr f a r)

fun length l =
  let fun go (nil, n) = n
        | go (x :: r, n) = go (r, n + 1)
  in go (l, 0) end

fun exists p nil = false
  | exists p (x :: r) = p x orelse exists p r

fun filter p nil = nil
  | filter p (x :: r) = if p x then x :: filter p r else filter p r

fun tabulate (n, f) =
  let fun go i = if i >= n then nil else f i :: go (i + 1)
  in go 0 end

fun nth (x :: r, n) = if n = 0 then x else nth (r, n - 1)

fun hd (x :: r) = x
fun tl (x :: r) = r
fun null nil = true | null l = false

fun abs (x : int) = if x < 0 then 0 - x else x
fun imin (a : int, b) = if a < b then a else b
fun imax (a : int, b) = if a > b then a else b
fun fabs (x : real) = if x < 0.0 then 0.0 - x else x
fun fmin (a : real, b) = if a < b then a else b
fun fmax (a : real, b) = if a > b then a else b

fun op o (f, g) = fn x => f (g x)
