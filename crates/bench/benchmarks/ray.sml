(* Ray: a miniature ray tracer — spheres, vector math on real triples,
   recursive reflection. *)

type vec = real * real * real

fun vadd ((a, b, c) : vec, (x, y, z) : vec) : vec = (a + x, b + y, c + z)
fun vsub ((a, b, c) : vec, (x, y, z) : vec) : vec = (a - x, b - y, c - z)
fun scale (k, (x, y, z) : vec) : vec = (k * x, k * y, k * z)
fun dot ((a, b, c) : vec, (x, y, z) : vec) = a * x + b * y + c * z
fun normalize (v : vec) =
  let val len = sqrt (dot (v, v))
  in scale (1.0 / len, v) end

(* A sphere: center, radius, shade. *)
datatype sphere = Sphere of vec * real * real

val scene =
  [Sphere ((0.0, 0.0, 5.0), 1.0, 0.9),
   Sphere ((1.5, 0.5, 4.0), 0.5, 0.6),
   Sphere ((~1.2, ~0.4, 6.0), 1.2, 0.4),
   Sphere ((0.3, 1.2, 3.5), 0.4, 0.8)]

exception NoHit

(* Smallest positive intersection of a ray with a sphere. *)
fun hit (orig : vec, dir : vec, Sphere (center, r, s)) =
  let
    val oc = vsub (orig, center)
    val b = 2.0 * dot (oc, dir)
    val c = dot (oc, oc) - r * r
    val disc = b * b - 4.0 * c
  in
    if disc < 0.0 then raise NoHit
    else
      let
        val t = (0.0 - b - sqrt disc) * 0.5
      in
        if t > 0.001 then (t, s) else raise NoHit
      end
  end

fun closest (orig, dir) =
  foldl
    (fn (sph, best) =>
       (let val (t, s) = hit (orig, dir, sph)
        in
          case best of
            NONE => SOME (t, s)
          | SOME (bt, bs) => if t < bt then SOME (t, s) else best
        end)
       handle NoHit => best)
    NONE scene

fun trace (orig : vec, dir : vec, depth) =
  if depth = 0 then 0.0
  else
    case closest (orig, dir) of
      NONE => 0.1
    | SOME (t, s) =>
        let
          val p = vadd (orig, scale (t, dir))
          val lightdir = normalize (vsub ((5.0, 5.0, 0.0), p))
          val shade = fmax (0.0, dot (dir, lightdir))
        in
          s * shade + 0.3 * trace (p, lightdir, depth - 1)
        end

fun render (px, py, acc) =
  if py >= 40 then acc
  else if px >= 40 then render (0, py + 1, acc)
  else
    let
      val dir = normalize ((real px * 0.05 - 1.0, real py * 0.05 - 1.0, 1.0))
      val v = trace ((0.0, 0.0, 0.0), dir, 4)
    in
      render (px + 1, py, acc + v)
    end

fun repeat (0, acc) = acc | repeat (k, acc) = repeat (k - 1, render (0, 0, 0.0))

val total = repeat (3, 0.0)
val _ = print ("ray " ^ itos (floor (total * 10.0)) ^ "\n")
