(* Yacc: parser-generator style workload — a table-driven shift/reduce
   parser for arithmetic expressions over a token stream, with parse
   stacks as lists and action tables as arrays. *)

(* Tokens: 0 = '+', 1 = '*', 2 = '(', 3 = ')', 4 = number, 5 = eof. *)
datatype tok = Plus | Times | LP | RP | Num of int | Eof

datatype ast =
    Lit of int
  | Add of ast * ast
  | Mul of ast * ast

exception ParseError

(* Recursive-descent core driven by a precedence table held in an array
   (standing in for the generated parser's tables). *)
val prec = array (6, 0)
val _ = aupdate (prec, 0, 1)   (* + *)
val _ = aupdate (prec, 1, 2)   (* * *)

fun parse toks =
  let
    (* primary ::= num | ( expr ) *)
    fun primary (Num n :: rest) = (Lit n, rest)
      | primary (LP :: rest) =
          let
            val (e, rest2) = expr (rest, 0)
          in
            case rest2 of
              RP :: rest3 => (e, rest3)
            | other => raise ParseError
          end
      | primary other = raise ParseError

    (* Precedence climbing using the table. *)
    and expr (toks, minp) =
      let
        val (lhs, rest) = primary toks
        fun loop (acc, rest) =
          case rest of
            Plus :: rest2 =>
              if asub (prec, 0) >= minp then
                let val (rhs, rest3) = expr (rest2, asub (prec, 0) + 1)
                in loop (Add (acc, rhs), rest3) end
              else (acc, rest)
          | Times :: rest2 =>
              if asub (prec, 1) >= minp then
                let val (rhs, rest3) = expr (rest2, asub (prec, 1) + 1)
                in loop (Mul (acc, rhs), rest3) end
              else (acc, rest)
          | other => (acc, rest)
      in
        loop (lhs, rest)
      end

    val (e, rest) = expr (toks, 0)
  in
    case rest of
      Eof :: nil => e
    | other => raise ParseError
  end

fun eval (Lit n) = n
  | eval (Add (a, b)) = eval a + eval b
  | eval (Mul (a, b)) = eval a * eval b

(* Generate a deterministic token stream: ((1+2*3)+(4*5+6))*... *)
fun gen_expr (0, acc) = Num 7 :: acc
  | gen_expr (n, acc) =
      if n mod 3 = 0 then
        LP :: gen_expr (n - 1, RP :: Times :: Num (n mod 9 + 1) :: acc)
      else if n mod 3 = 1 then
        Num (n mod 5 + 1) :: Plus :: gen_expr (n - 1, acc)
      else
        Num (n mod 7 + 1) :: Times :: gen_expr (n - 1, acc)

fun work (0, acc) = acc
  | work (k, acc) =
      let
        val toks = gen_expr (24, [Eof])
        val tree = parse toks
      in
        work (k - 1, (acc + eval tree) mod 1000000)
      end

val result = work (150, 0)
val _ = print ("yacc " ^ itos result ^ "\n")
