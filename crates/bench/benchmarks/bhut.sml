(* BHut: Barnes-Hut style N-body gravity in 2D — a quadtree datatype with
   float centers of mass, built and traversed per step. *)

datatype tree =
    Empty
  | Body of real * real * real                      (* x, y, mass *)
  | Cell of real * real * real * tree * tree * tree * tree
      (* center-of-mass x, y, total mass, four quadrants *)

fun mass Empty = 0.0
  | mass (Body (x, y, m)) = m
  | mass (Cell (x, y, m, a, b, c, d)) = m

fun com Empty = (0.0, 0.0)
  | com (Body (x, y, m)) = (x, y)
  | com (Cell (x, y, m, a, b, c, d)) = (x, y)

(* Insert a body into a quadrant tree covering [cx-s, cx+s] x [cy-s, cy+s]. *)
fun insert (t, bx, by, bm, cx, cy, s) =
  case t of
    Empty => Body (bx, by, bm)
  | Body (x, y, m) =>
      if s < 0.001 then Body (x, y, m + bm)
      else
        let
          val t1 = insert (Empty, x, y, m, cx, cy, s)
          val split = insert (quad (t1, cx, cy, s), bx, by, bm, cx, cy, s)
        in
          split
        end
  | Cell (x, y, m, ne, nw, se, sw) =>
      let
        val h = s * 0.5
        val nm = m + bm
        val nx = (x * m + bx * bm) / nm
        val ny = (y * m + by * bm) / nm
      in
        if bx >= cx then
          if by >= cy then Cell (nx, ny, nm, insert (ne, bx, by, bm, cx + h, cy + h, h), nw, se, sw)
          else Cell (nx, ny, nm, ne, nw, insert (se, bx, by, bm, cx + h, cy - h, h), sw)
        else
          if by >= cy then Cell (nx, ny, nm, ne, insert (nw, bx, by, bm, cx - h, cy + h, h), se, sw)
          else Cell (nx, ny, nm, ne, nw, se, insert (sw, bx, by, bm, cx - h, cy - h, h))
      end

(* Wrap a single body into a one-cell tree so it can be split. *)
and quad (t, cx, cy, s) =
  case t of
    Body (x, y, m) =>
      let
        val h = s * 0.5
        val base = Cell (x, y, m, Empty, Empty, Empty, Empty)
      in
        case base of
          Cell (bx2, by2, bm2, ne, nw, se, sw) =>
            if x >= cx then
              if y >= cy then Cell (x, y, m, Body (x, y, m), Empty, Empty, Empty)
              else Cell (x, y, m, Empty, Empty, Body (x, y, m), Empty)
            else
              if y >= cy then Cell (x, y, m, Empty, Body (x, y, m), Empty, Empty)
              else Cell (x, y, m, Empty, Empty, Empty, Body (x, y, m))
        | other => other
      end
  | other => other

fun build (bodies, cx, cy, s) =
  foldl (fn ((bx, by, bm), t) => insert (t, bx, by, bm, cx, cy, s)) Empty bodies

(* Approximate force on (px, py) from the tree. *)
fun force (t, px, py, s) =
  case t of
    Empty => (0.0, 0.0)
  | Body (x, y, m) =>
      let
        val dx = x - px
        val dy = y - py
        val d2 = dx * dx + dy * dy + 0.01
        val f = m / (d2 * sqrt d2)
      in
        (f * dx, f * dy)
      end
  | Cell (x, y, m, ne, nw, se, sw) =>
      let
        val dx = x - px
        val dy = y - py
        val d2 = dx * dx + dy * dy + 0.01
      in
        if s * s < d2 * 0.25 then
          let
            val f = m / (d2 * sqrt d2)
          in
            (f * dx, f * dy)
          end
        else
          let
            val h = s * 0.5
            val (fx1, fy1) = force (ne, px, py, h)
            val (fx2, fy2) = force (nw, px, py, h)
            val (fx3, fy3) = force (se, px, py, h)
            val (fx4, fy4) = force (sw, px, py, h)
          in
            (fx1 + fx2 + fx3 + fx4, fy1 + fy2 + fy3 + fy4)
          end
      end

(* Deterministic pseudo-random bodies. *)
fun gen (0, acc) = acc
  | gen (k, acc) =
      let
        val x = real ((k * 37) mod 100) * 0.02 - 1.0
        val y = real ((k * 73) mod 100) * 0.02 - 1.0
      in
        gen (k - 1, (x, y, 1.0 + real (k mod 3)) :: acc)
      end

fun step bodies =
  let
    val t = build (bodies, 0.0, 0.0, 1.0)
  in
    map
      (fn (x, y, m) =>
         let val (fx, fy) = force (t, x, y, 1.0)
         in (x + fx * 0.001, y + fy * 0.001, m) end)
      bodies
  end

fun steps (0, bodies) = bodies
  | steps (n, bodies) = steps (n - 1, step bodies)

val final = steps (12, gen (60, nil))
val check = foldl (fn ((x, y, m), a) => a + x + y) 0.0 final
val _ = print ("bhut " ^ itos (floor (check * 1000.0)) ^ "\n")
