(* Boyer: a scaled-down Boyer-Moore style tautology checker — terms
   rewritten by a lemma set, then evaluated under truth assignments.
   Heavy symbolic datatype manipulation. *)

datatype term =
    T                                  (* true *)
  | F                                  (* false *)
  | Atom of int
  | Not of term
  | And of term * term
  | Or of term * term
  | Implies of term * term
  | If of term * term * term

(* Rewrite toward if-normal form (the core of the original benchmark). *)
fun rewrite t =
  case t of
    T => T
  | F => F
  | Atom a => Atom a
  | Not p => If (rewrite p, F, T)
  | And (p, q) => If (rewrite p, rewrite q, F)
  | Or (p, q) => If (rewrite p, T, rewrite q)
  | Implies (p, q) => If (rewrite p, rewrite q, T)
  | If (c, p, q) =>
      (case rewrite c of
         If (c2, p2, q2) =>
           rewrite (If (c2, If (p2, p, q), If (q2, p, q)))
       | c2 => If (c2, rewrite p, rewrite q))

(* Tautology check on if-normal terms with assumption lists. *)
fun mem (x, nil) = false
  | mem (x : int, y :: r) = x = y orelse mem (x, r)

fun taut (t, pos, neg) =
  case t of
    T => true
  | F => false
  | Atom a => mem (a, pos)
  | If (Atom a, p, q) =>
      if mem (a, pos) then taut (p, pos, neg)
      else if mem (a, neg) then taut (q, pos, neg)
      else taut (p, a :: pos, neg) andalso taut (q, pos, a :: neg)
  | If (T, p, q) => taut (p, pos, neg)
  | If (F, p, q) => taut (q, pos, neg)
  | If (c, p, q) => taut (c, pos, neg) andalso taut (p, pos, neg)
  | other => false

(* Benchmark formulas. *)
fun implies_chain (0, acc) = acc
  | implies_chain (n, acc) =
      implies_chain (n - 1, Implies (Atom (n mod 7), acc))

fun excluded_middle n = Or (Atom n, Not (Atom n))

fun conj (0, acc) = acc
  | conj (n, acc) = conj (n - 1, And (excluded_middle (n mod 5), acc))

(* (a1 -> a2 -> ... -> (x and not x excluded middles)) is a tautology
   whenever the conclusion is. *)
fun formula n = implies_chain (n, conj (6, T))

fun work (0, acc) = acc
  | work (k, acc) =
      let
        val f = formula (10 + k mod 3)
        val r = rewrite f
        val ok = taut (r, nil, nil)
      in
        work (k - 1, if ok then acc + 1 else acc)
      end

val result = work (120, 0)
val _ = print ("boyer " ^ itos result ^ "\n")
