(* VLIW: instruction-scheduler style workload making heavy use of
   higher-order functions — pipelines of closures build, filter, and
   schedule pseudo-instructions into issue slots. *)

(* A pseudo-instruction: (id, latency, unit, deps). *)
type instr = int * int * int * int list

fun make_instr i : instr =
  (i,
   1 + (i * 7) mod 3,
   (i * 13) mod 4,
   if i = 0 then nil
   else if i mod 4 = 0 then [i - 1]
   else if i mod 4 = 1 then [i - 1, imax (0, i - 3)]
   else [imax (0, i - 2)])

fun id ((i, l, u, d) : instr) = i
fun latency ((i, l, u, d) : instr) = l
fun unit ((i, l, u, d) : instr) = u
fun deps ((i, l, u, d) : instr) = d

(* Higher-order combinator soup, as a scheduler's analysis passes are. *)
fun compose f g = fn x => f (g x)

fun count p = foldl (fn (x, n) => if p x then n + 1 else n) 0

fun all p nil = true
  | all p (x :: r) = p x andalso all p r

(* Ready set: instructions whose deps are all retired. *)
fun ready retired =
  filter (fn ins => all (fn d => exists (fn r => r = d) retired) (deps ins))

(* Pick at most `slots` instructions on distinct units. *)
fun pick (nil, used, acc, slots) = rev acc
  | pick (ins :: rest, used, acc, slots) =
      if slots = 0 then rev acc
      else if exists (fn u => u = unit ins) used then
        pick (rest, used, acc, slots)
      else
        pick (rest, unit ins :: used, ins :: acc, slots - 1)

fun remove_ids ids =
  filter (fn ins => not (exists (fn i => i = id ins) ids))

(* Schedule: repeatedly issue bundles until all instructions retire. *)
fun schedule (pending, retired, cycles, issued) =
  if null pending then (cycles, issued)
  else
    let
      val r = ready retired pending
      val bundle = pick (r, nil, nil, 3)
      val ids = map id bundle
    in
      if null bundle then
        (* stall: retire nothing, burn a cycle by faking a retire *)
        schedule (pending, map (fn x => x) retired, cycles + 1, issued)
      else
        schedule
          (remove_ids ids pending,
           ids @ retired,
           cycles + foldl (fn (b, m) => imax (latency b, m)) 1 bundle,
           issued + length bundle)
    end

fun program n = tabulate (n, make_instr)

fun work (0, acc) = acc
  | work (k, acc) =
      let
        val (cycles, issued) = schedule (program 48, [~1], 0, 0)
        (* Compose some analyses for extra higher-order traffic. *)
        val busy = count (compose (fn u => u = 0) unit) (program 48)
      in
        work (k - 1, acc + cycles + issued + busy)
      end

val result = work (40, 0)
val _ = print ("vliw " ^ itos result ^ "\n")
