(* Lexgen: lexer-generator style workload — drives a hand-built DFA over
   a synthesized source text, classifying tokens. String and character
   intensive. *)

(* Build the input by repeated doubling. *)
fun build (0, s) = s
  | build (n, s) = build (n - 1, s ^ "let val x1 = 42 in x1 + foo_bar * 3 end; ")

val input = build (5, "")

(* Character classes. *)
fun is_alpha c =
  let val n = ord c
  in (n >= 97 andalso n <= 122) orelse (n >= 65 andalso n <= 90) orelse n = 95 end

fun is_digit c =
  let val n = ord c in n >= 48 andalso n <= 57 end

fun is_space c =
  let val n = ord c in n = 32 orelse n = 10 orelse n = 9 end

(* Token kinds: 1 = identifier, 2 = number, 3 = operator, 4 = keyword. *)
fun keyword (s, i, j) =
  (* Compare input[i..j) against the keyword table by length and chars. *)
  let
    fun eq (kw, k, p) =
      if p >= j then k >= size kw
      else if k >= size kw then false
      else ord (strsub (kw, k)) = ord (strsub (s, p)) andalso eq (kw, k + 1, p + 1)
    fun any nil = false
      | any (kw :: rest) = (j - i = size kw andalso eq (kw, 0, i)) orelse any rest
  in
    any ["let", "val", "in", "end", "fun", "if", "then", "else"]
  end

(* The DFA: scan one token starting at i; return (kind, next index). *)
fun token (s, i) =
  if i >= size s then (0, i)
  else
    let
      val c = strsub (s, i)
    in
      if is_space c then token (s, i + 1)
      else if is_alpha c then
        let
          fun go j = if j < size s andalso (is_alpha (strsub (s, j)) orelse is_digit (strsub (s, j)))
                     then go (j + 1) else j
          val j = go (i + 1)
        in
          (if keyword (s, i, j) then 4 else 1, j)
        end
      else if is_digit c then
        let
          fun go j = if j < size s andalso is_digit (strsub (s, j)) then go (j + 1) else j
        in
          (2, go (i + 1))
        end
      else (3, i + 1)
    end

fun scan (s, i, idents, nums, ops, kws) =
  let
    val (kind, j) = token (s, i)
  in
    if kind = 0 then (idents, nums, ops, kws)
    else if kind = 1 then scan (s, j, idents + 1, nums, ops, kws)
    else if kind = 2 then scan (s, j, idents, nums + 1, ops, kws)
    else if kind = 3 then scan (s, j, idents, nums, ops + 1, kws)
    else scan (s, j, idents, nums, ops, kws + 1)
  end

fun repeat (0, r) = r
  | repeat (k, r) = repeat (k - 1, scan (input, 0, 0, 0, 0, 0))

val (ids, nums, ops, kws) = repeat (40, (0, 0, 0, 0))
val _ = print ("lexgen " ^ itos ids ^ " " ^ itos nums ^ " " ^ itos ops ^ " " ^ itos kws ^ "\n")
