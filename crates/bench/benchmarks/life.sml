(* Life: Conway's game of life on a sparse set of live cells. The set is
   abstracted by a functor over an equality-based membership structure, so
   the inner loop tests membership with polymorphic equality — the
   paper's minimum-typing-derivations showcase (10x on sml.mtd). Cells
   are encoded as single integers so the monomorphized equality becomes a
   primitive comparison. *)

signature EQSET = sig
  val member : int * int list -> bool
  val insert : int * int list -> int list
end

structure ListSet = struct
  fun member (x, nil) = false
    | member (x, y :: r) = x = y orelse member (x, r)
  fun insert (x, s) = if member (x, s) then s else x :: s
end

functor LifeFn (S : EQSET) = struct
  val width = 64

  fun encode (x, y) = x * width + y
  fun xof c = c div width
  fun yof c = c mod width

  fun neighbors c =
    let
      val x = xof c
      val y = yof c
    in
      [encode (x - 1, y - 1), encode (x - 1, y), encode (x - 1, y + 1),
       encode (x, y - 1), encode (x, y + 1),
       encode (x + 1, y - 1), encode (x + 1, y), encode (x + 1, y + 1)]
    end

  (* The hot membership test is a *local* function, so minimum typing
     derivations can monomorphize its polymorphic equality to a primitive
     integer comparison (paper §6, the 10x Life speedup). *)
  fun count_live (cells, c) =
    let
      fun member (x, nil) = false
        | member (x, y :: r) = x = y orelse member (x, r)
    in
      foldl (fn (n, acc) => if member (n, cells) then acc + 1 else acc)
            0 (neighbors c)
    end

  (* Survivors: live cells with 2 or 3 live neighbors. *)
  fun survivors cells =
    filter (fn c => let val n = count_live (cells, c) in n = 2 orelse n = 3 end)
           cells

  (* Births: dead neighbors of live cells with exactly 3 live neighbors. *)
  fun births cells =
    foldl
      (fn (c, acc) =>
         foldl
           (fn (n, acc2) =>
              if S.member (n, cells) then acc2
              else if S.member (n, acc2) then acc2
              else if count_live (cells, n) = 3 then n :: acc2
              else acc2)
           acc (neighbors c))
      nil cells

  fun step cells = survivors cells @ births cells

  fun run (0, cells) = cells
    | run (n, cells) = run (n - 1, step cells)
end

structure Life = LifeFn (ListSet)

(* An r-pentomino-ish seed plus a glider. *)
val seed =
  map Life.encode
    [(20, 20), (20, 21), (21, 19), (21, 20), (22, 20),
     (5, 5), (6, 6), (7, 4), (7, 5), (7, 6)]

val final = Life.run (16, seed)
val checksum = foldl (fn (c, a) => a + c) 0 final
val _ = print ("life " ^ itos (length final) ^ " " ^ itos checksum ^ "\n")
