(* MBrot: Mandelbrot-set escape iteration over a grid. Intensive
   floating-point arithmetic with float pairs flowing through function
   calls. *)

fun escape (cr, ci) =
  let
    fun go (zr, zi, n) =
      if n >= 64 then n
      else
        let
          val zr2 = zr * zr
          val zi2 = zi * zi
        in
          if zr2 + zi2 > 4.0 then n
          else go (zr2 - zi2 + cr, 2.0 * zr * zi + ci, n + 1)
        end
  in
    go (0.0, 0.0, 0)
  end

fun pixel (ix, iy) =
  let
    val cr = ~2.2 + real ix * 0.044
    val ci = ~1.5 + real iy * 0.05
  in
    escape (cr, ci)
  end

fun row (iy, ix, acc) =
  if ix >= 70 then acc
  else row (iy, ix + 1, acc + pixel (ix, iy))

fun grid (iy, acc) =
  if iy >= 60 then acc
  else grid (iy + 1, row (iy, 0, acc))

fun repeat (0, acc) = acc
  | repeat (k, acc) = repeat (k - 1, grid (0, 0))

val total = repeat (4, 0) + grid (0, 0)
val _ = print ("mbrot " ^ itos total ^ "\n")
