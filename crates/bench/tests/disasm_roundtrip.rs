//! Disassembler round-trip over the full figure-benchmark suite: every
//! instruction of every compiled benchmark must survive
//! `Display -> parse_instr -> Display` unchanged. This pins the textual
//! ISA as a faithful, re-parseable encoding of the bytecode — the same
//! property the `smlc --disasm` output relies on.

use sml_vm::parse_instr;
use smlc::{Session, Variant};
use smlc_bench::benchmarks;

/// The representation extremes: fully boxed and fully unboxed with
/// callee-save float registers. Every instruction form the code
/// generator can emit appears under one of the two.
const VARIANTS: &[Variant] = &[Variant::Nrp, Variant::Fp3];

#[test]
fn every_benchmark_instruction_round_trips() {
    for &v in VARIANTS {
        let session = Session::with_variant(v);
        for b in benchmarks() {
            let c = session
                .compile(&b.source())
                .unwrap_or_else(|e| panic!("{} failed under {}: {e}", b.name, v.name()));
            let mut checked = 0usize;
            for block in &c.machine.blocks {
                for ins in &block.instrs {
                    let text = ins.to_string();
                    let reparsed = parse_instr(&text)
                        .unwrap_or_else(|e| panic!("{} [{}] `{text}`: {e}", b.name, v.name()));
                    assert_eq!(
                        reparsed.to_string(),
                        text,
                        "{} [{}]: reparse changed the instruction",
                        b.name,
                        v.name()
                    );
                    checked += 1;
                }
            }
            assert!(checked > 0, "{} compiled to no instructions", b.name);
        }
    }
}
