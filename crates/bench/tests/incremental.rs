//! Figure-benchmark differential for SCC-incremental elaboration: the
//! suffix-replay path must produce byte-identical machine code to
//! whole-program elaboration on every Figure 7 benchmark, cold and
//! after a single-declaration edit (the warm path). Variants rotate
//! through all six across the twelve benchmarks so the sweep covers
//! each variant twice without compiling the full 12x6 matrix in debug.

use smlc::{Session, Variant};
use smlc_bench::benchmarks;

fn pair(v: Variant) -> (Session, Session) {
    let incr = Session::builder().variant(v).build().unwrap();
    let whole = Session::builder()
        .variant(v)
        .incremental(false)
        .build()
        .unwrap();
    (incr, whole)
}

#[test]
fn figure_benchmarks_byte_identical_cold_and_edited() {
    for (i, b) in benchmarks().iter().enumerate() {
        let v = Variant::ALL[i % Variant::ALL.len()];
        let (incr, whole) = pair(v);
        let src = b.source();

        let a = incr.compile(&src).unwrap();
        let c = whole.compile(&src).unwrap();
        assert!(a.stats.components.enabled);
        assert!(a.stats.components.scc_count > 1, "{}: one big SCC?", b.name);
        assert_eq!(
            format!("{}", a.machine),
            format!("{}", c.machine),
            "{} ({v}): cold incremental output diverged",
            b.name
        );

        // Single-declaration edit: append one val dec. The prefix (the
        // entire original program) must replay from checkpoints.
        let edited = format!("{src}\nval edited_probe = 42");
        let a2 = incr.compile(&edited).unwrap();
        let c2 = whole.compile(&edited).unwrap();
        let cs = &a2.stats.components;
        assert_eq!(
            cs.recompiled, 1,
            "{} ({v}): edit dirtied {} of {} components",
            b.name, cs.recompiled, cs.scc_count
        );
        assert_eq!(cs.cache_hits, cs.scc_count - 1);
        assert_eq!(
            format!("{}", a2.machine),
            format!("{}", c2.machine),
            "{} ({v}): warm incremental output diverged",
            b.name
        );
    }
}
