//! Ablation for paper §4.5: compile-time effect of LTY hash-consing on
//! functor-heavy code. Compiles a program with many functor applications
//! against large signatures, with and without hash-consing.

use sml_cps::{convert, optimize, CpsConfig, OptConfig};
use sml_lambda::{translate, InternMode, LambdaConfig};
use std::time::Instant;

fn functor_heavy_source(n_apps: usize) -> String {
    // A deeply nested signature (big SRECORD types) and a matching
    // structure; every application performs abstraction matching, whose
    // coercions repeatedly compare large module types — the case the
    // paper says took "tens of minutes" without hash-consing.
    fn sig_level(depth: usize) -> String {
        let mut vals = String::new();
        for i in 0..6 {
            vals.push_str(&format!(
                "  val f{i} : (real * real) * (real -> real * real) -> real * real\n"
            ));
        }
        if depth == 0 {
            format!("sig\n{vals} end")
        } else {
            format!("sig\n{vals}  structure Sub : {}\nend", sig_level(depth - 1))
        }
    }
    fn str_level(depth: usize) -> String {
        let mut vals = String::new();
        for i in 0..6 {
            vals.push_str(&format!(
                "  fun f{i} (((a, b), g) : (real * real) * (real -> real * real)) = g (a + b)\n"
            ));
        }
        if depth == 0 {
            format!("struct\n{vals} end")
        } else {
            format!(
                "struct\n{vals}  structure Sub = {}\nend",
                str_level(depth - 1)
            )
        }
    }
    let mut out = format!(
        "signature BIG = {}\nstructure Impl = {}\n\
         functor F (X : BIG) = struct structure Y = X val g = X.f0 end\n",
        sig_level(5),
        str_level(5)
    );
    for i in 0..n_apps {
        out.push_str(&format!("structure A{i} = F (Impl)\n"));
        out.push_str(&format!("abstraction Z{i} : BIG = Impl\n"));
    }
    out
}

fn compile_time(src: &str, mode: InternMode) -> (f64, usize, u64) {
    let t = Instant::now();
    let prog = sml_ast::parse(src).expect("parse");
    let elab = sml_elab::elaborate(&prog).expect("elaborate");
    let cfg = LambdaConfig {
        intern_mode: mode,
        ..LambdaConfig::default()
    };
    let mut tr = translate(&elab, &cfg);
    let mut cps = convert(&tr.lexp, &mut tr.interner, tr.n_vars, &CpsConfig::default());
    optimize(&mut cps, &OptConfig::default());
    (
        t.elapsed().as_secs_f64(),
        tr.interner.len(),
        tr.interner.deep_compares,
    )
}

fn main() {
    println!("Ablation (paper 4.5): LTY hash-consing vs structural types");
    println!("(the paper: without hash-consing, one functor application could take");
    println!(" tens of minutes and tens of megabytes; with it, sharing keeps the");
    println!(" static representation constant-size and equality constant-time)\n");
    println!("functor apps | type nodes (hash-consed) | type nodes (structural) | blowup | deep compares | time hc | time st");
    for n in [1usize, 4, 16, 64] {
        let src = functor_heavy_source(n);
        let (t_hc, ltys_hc, _) = compile_time(&src, InternMode::HashCons);
        let (t_st, ltys_st, cmps) = compile_time(&src, InternMode::Structural);
        println!(
            "{n:12} | {ltys_hc:>24} | {ltys_st:>23} | {:>5.0}x | {cmps:>13} | {t_hc:>6.3}s | {t_st:>6.3}s",
            ltys_st as f64 / ltys_hc as f64
        );
    }
    println!("\nWith hash-consing the number of distinct lambda types is constant in");
    println!("the number of functor applications; without it, type nodes (and the");
    println!("work to compare them) grow linearly — the paper's compile-time blowup.");
}
