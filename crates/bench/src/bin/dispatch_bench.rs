//! Dispatch-engine gate: proves the pre-decoded threaded engine
//! observationally identical to the decode loop over the figure
//! benchmarks and a seeded generated corpus, measures its wall-time
//! win, and writes the `BENCH_pr9.json` trajectory document.
//!
//! ```sh
//! cargo run --release -p smlc-bench --bin dispatch_bench            # writes BENCH_pr9.json
//! cargo run --release -p smlc-bench --bin dispatch_bench -- --json=out.json --seeds=50 --reps=5
//! ```
//!
//! Two gating stages, each of which exits nonzero on regression:
//!
//! 1. **Figure benchmarks.** Every benchmark × every variant is
//!    compiled once and run under both engines. Result, output, and the
//!    complete `RunStats` (cycles, instruction counts, GC counters, the
//!    by-class breakdowns) must be byte-identical — the threaded engine
//!    is a pure performance axis, not a semantic one. Each engine is
//!    also timed (best of `--reps` runs) and the document records the
//!    per-cell and geomean decode/threaded wall-time ratios alongside
//!    the superinstruction and stream-length counts.
//! 2. **Progen differential.** The same identity check over a seeded
//!    generated corpus (default 200 seeds) under all six variants —
//!    closure-heavy, exception-raising, GC-provoking programs the
//!    hand-picked figure set does not cover.
//!
//! Wall-time is the one quantity allowed to differ, so the speedup is
//! recorded but not gated: a slow machine must not fail the build.

use sml_testkit::progen::{gen_program, GenConfig};
use sml_testkit::Rng;
use smlc::{Compiled, Dispatch, Json, Outcome, Session, Variant, VmConfig, METRICS_SCHEMA_VERSION};
use smlc_bench::{benchmarks, geomean};
use std::time::Instant;

/// Seed salt: disjoint from the unit tests' corpus and the other bench
/// binaries'.
const SALT: u64 = 0x5eed_f00d_cafe_0009;

/// Runs one compiled program under `dispatch`, timing the best of
/// `reps` repetitions; returns the last outcome and the best time in
/// milliseconds.
fn run_timed(c: &Compiled, base: &VmConfig, dispatch: Dispatch, reps: u32) -> (Outcome, f64) {
    let cfg = VmConfig { dispatch, ..*base };
    let mut best = f64::INFINITY;
    let mut outcome = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let o = c.run_with(&cfg);
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        outcome = Some(o);
    }
    (outcome.expect("reps >= 1"), best)
}

/// Pushes a failure message for every observable divergence between the
/// two engines' outcomes; returns whether the pair was identical.
fn check_identical(what: &str, dec: &Outcome, thr: &Outcome, failures: &mut Vec<String>) -> bool {
    let before = failures.len();
    if thr.result != dec.result {
        failures.push(format!(
            "{what}: results diverge (decode {:?}, threaded {:?})",
            dec.result, thr.result
        ));
    }
    if thr.output != dec.output {
        failures.push(format!("{what}: output diverges between engines"));
    }
    if thr.stats != dec.stats {
        failures.push(format!(
            "{what}: RunStats diverge (decode cycles {}, threaded cycles {})",
            dec.stats.cycles, thr.stats.cycles
        ));
    }
    failures.len() == before
}

fn usage() -> ! {
    eprintln!("usage: dispatch_bench [--json=PATH] [--seeds=N] [--reps=N]");
    std::process::exit(2);
}

fn main() {
    let mut path = "BENCH_pr9.json".to_owned();
    let mut n_seeds: u64 = 200;
    let mut reps: u32 = 3;
    for a in std::env::args().skip(1) {
        if let Some(p) = a.strip_prefix("--json=") {
            path = p.to_owned();
        } else if let Some(n) = a.strip_prefix("--seeds=") {
            n_seeds = n.parse().unwrap_or_else(|_| usage());
        } else if let Some(n) = a.strip_prefix("--reps=") {
            reps = n.parse().unwrap_or_else(|_| usage());
        } else {
            usage();
        }
    }

    let mut failures: Vec<String> = Vec::new();

    // Stage 1: figure benchmarks × all six variants, identity + timing.
    let mut rows: Vec<Json> = Vec::new();
    let mut speedups: Vec<f64> = Vec::new();
    let mut identity_checks = 0u64;
    for b in benchmarks() {
        let mut cells: Vec<Json> = Vec::new();
        for &v in &Variant::ALL {
            let session = Session::with_variant(v);
            let compiled = session
                .compile(&b.source())
                .unwrap_or_else(|e| panic!("{} failed to compile under {v}: {e}", b.name));
            let base = v.vm_config();
            let (dec, dec_ms) = run_timed(&compiled, &base, Dispatch::Decode, reps);
            let (thr, thr_ms) = run_timed(&compiled, &base, Dispatch::Threaded, reps);
            identity_checks += 1;
            check_identical(
                &format!("{}/{}", b.name, v.name()),
                &dec,
                &thr,
                &mut failures,
            );
            let speedup = dec_ms / thr_ms;
            speedups.push(speedup);
            cells.push(
                Json::obj()
                    .field("variant", v.name())
                    .field("cycles", dec.stats.cycles)
                    .field("instrs", dec.stats.instrs)
                    .field("code", compiled.stats.code_size)
                    .field("stream_len", thr.dispatch.stream_len)
                    .field("superinstructions", thr.dispatch.superinstructions)
                    .field("decode_ms", dec_ms)
                    .field("threaded_ms", thr_ms)
                    .field("speedup", speedup),
            );
            if v == Variant::Ffb {
                println!(
                    "{:10} {:8}  instrs {:>9}  fused {:>6}  stream {:>6}  \
                     {:>8.3}ms -> {:>8.3}ms  ({:.2}x)",
                    b.name,
                    v.name(),
                    dec.stats.instrs,
                    thr.dispatch.superinstructions,
                    thr.dispatch.stream_len,
                    dec_ms,
                    thr_ms,
                    speedup,
                );
            }
        }
        rows.push(
            Json::obj()
                .field("name", b.name)
                .field("variants", Json::Arr(cells)),
        );
    }
    let overall = geomean(&speedups);

    // Stage 2: progen differential, all six variants per seed.
    let gen_cfg = GenConfig::default();
    let mut fuzz_failures = 0usize;
    for seed in 0..n_seeds {
        let src = gen_program(&mut Rng::new(seed ^ SALT), &gen_cfg);
        for &v in &Variant::ALL {
            let compiled = match Session::with_variant(v).compile(&src) {
                Ok(c) => c,
                Err(e) => {
                    failures.push(format!("seed {seed} [{}]: compile failed: {e}", v.name()));
                    fuzz_failures += 1;
                    continue;
                }
            };
            let base = v.vm_config();
            let dec = compiled.run_with(&base);
            let thr = compiled.run_with(&VmConfig {
                dispatch: Dispatch::Threaded,
                ..base
            });
            identity_checks += 1;
            if !check_identical(
                &format!("seed {seed} [{}]", v.name()),
                &dec,
                &thr,
                &mut failures,
            ) {
                fuzz_failures += 1;
            }
        }
    }
    println!(
        "dispatch_bench: progen differential over {n_seeds} seeds x {} variants, \
         {fuzz_failures} failure(s)",
        Variant::ALL.len()
    );

    let doc = Json::obj()
        .field("schema_version", METRICS_SCHEMA_VERSION)
        .field("generator", "dispatch_bench")
        .field(
            "config",
            Json::obj()
                .field("reps", u64::from(reps))
                .field("fuzz_seeds", n_seeds),
        )
        .field("benchmarks", Json::Arr(rows))
        .field(
            "summary",
            Json::obj()
                .field("geomean_speedup", overall)
                .field("identity_checks", identity_checks)
                .field("fuzz_failures", fuzz_failures)
                .field("failures", failures.len()),
        );
    let mut text = doc.to_string_pretty();
    text.push('\n');
    std::fs::write(&path, text).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "dispatch_bench: {identity_checks} identity checks byte-identical; \
         threaded geomean speedup {overall:.3}x over the decode loop"
    );
}
