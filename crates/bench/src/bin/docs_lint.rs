//! First-party documentation link checker: verifies every relative
//! Markdown link in `README.md` and `docs/*.md` resolves to a real
//! file, without taking any dependency on an external link checker.
//!
//! ```sh
//! cargo run --release -p smlc-bench --bin docs_lint            # checks the repo root
//! cargo run --release -p smlc-bench --bin docs_lint -- <root>  # or an explicit root
//! ```
//!
//! Checked: inline links `[text](target)` whose target is a relative
//! path, resolved against the directory of the file containing the
//! link; a `#fragment` suffix is stripped first. Skipped: absolute
//! URLs (`http://`, `https://`, `mailto:`), pure in-page anchors
//! (`#...`), and fenced code blocks (link-shaped text inside ``` ... ```
//! is code, not a link). Exit status 1 lists every broken link.

use std::path::{Path, PathBuf};

/// Extracts `(line_number, target)` for every inline Markdown link in
/// `text`, ignoring fenced code blocks and inline code spans.
fn links(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for (ln, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") || trimmed.starts_with("~~~") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        // Strip inline code spans so `[not](a-link)` in backticks is
        // not reported.
        let mut stripped = String::with_capacity(line.len());
        let mut in_code = false;
        for c in line.chars() {
            if c == '`' {
                in_code = !in_code;
            } else if !in_code {
                stripped.push(c);
            }
        }
        // Scan `](target)` occurrences; markdown images `![...](...)`
        // resolve identically.
        let mut i = 0;
        while let Some(k) = stripped[i..].find("](") {
            let start = i + k + 2;
            let Some(rel_end) = stripped[start..].find(')') else {
                break;
            };
            let target = &stripped[start..start + rel_end];
            // Inside `(...)` a link may carry a quoted title: `(a.md "t")`.
            let target = target.split_whitespace().next().unwrap_or("");
            out.push((ln + 1, target.to_owned()));
            i = start + rel_end + 1;
        }
    }
    out
}

/// Whether a link target is a relative file path this linter verifies.
fn is_relative_file(target: &str) -> bool {
    !(target.is_empty()
        || target.starts_with('#')
        || target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('/'))
}

/// Checks one Markdown file; appends `file:line: target` for every
/// broken relative link.
fn check_file(path: &Path, broken: &mut Vec<String>) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            broken.push(format!("{}: unreadable: {e}", path.display()));
            return;
        }
    };
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    for (line, target) in links(&text) {
        if !is_relative_file(&target) {
            continue;
        }
        let file_part = target.split('#').next().unwrap_or("");
        if file_part.is_empty() {
            continue;
        }
        let resolved = dir.join(file_part);
        if !resolved.exists() {
            broken.push(format!(
                "{}:{line}: broken relative link `{target}` (resolved {})",
                path.display(),
                resolved.display()
            ));
        }
    }
}

fn main() {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));

    let mut files: Vec<PathBuf> = vec![root.join("README.md")];
    let docs = root.join("docs");
    if let Ok(entries) = std::fs::read_dir(&docs) {
        let mut md: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "md"))
            .collect();
        md.sort();
        files.extend(md);
    }

    let mut broken = Vec::new();
    let mut n_checked = 0usize;
    for f in &files {
        if f.exists() {
            check_file(f, &mut broken);
            n_checked += 1;
        }
    }

    if broken.is_empty() {
        println!("docs_lint: {n_checked} files, all relative links resolve");
    } else {
        eprintln!("docs_lint: {} broken link(s):", broken.len());
        for b in &broken {
            eprintln!("  {b}");
        }
        std::process::exit(1);
    }
}
