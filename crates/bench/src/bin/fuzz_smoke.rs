//! Differential fuzz smoke: generates seeded, well-typed SML programs
//! and runs each under all six compiler variants, demanding (a) no
//! panic escapes the pipeline, (b) every variant halts with a `Value`,
//! and (c) all variants agree on the result and printed output.
//!
//! ```sh
//! cargo run --release -p smlc-bench --bin fuzz_smoke                # 200 seeds
//! cargo run --release -p smlc-bench --bin fuzz_smoke -- --seeds=40
//! cargo run --release -p smlc-bench --bin fuzz_smoke -- --seeds=40 --items=3
//! cargo run --release -p smlc-bench --bin fuzz_smoke -- --variants=nrp,ffb
//! ```
//!
//! The whole seed×variant grid is compiled by one
//! [`Session::compile_batch`] call and the compiled programs are run
//! under the same parallel driver; failures are keyed by seed, so the
//! report is identical to a serial sweep. The session's artifact cache
//! is disabled — every generated program is distinct, so caching would
//! only buy allocation churn.
//!
//! Seeds are fixed (0..N with a constant salt), so a failure report's
//! seed reproduces the exact program on any machine. Failures are
//! collected, not fatal: the sweep always completes, prints every
//! divergence with its source, and exits 1 if anything failed — the
//! same containment discipline as the benchmark matrix (see
//! `docs/ROBUSTNESS.md`).

use sml_testkit::progen::{gen_program, GenConfig};
use sml_testkit::Rng;
use smlc::{par_map, Job, Session, Variant, VmResult};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Mixed into every seed so the corpus is disjoint from the unit tests'
/// `run_cases`-derived seeds.
const SALT: u64 = 0x5eed_f00d_cafe_0001;

fn usage() -> ! {
    eprintln!("usage: fuzz_smoke [--seeds=N] [--items=N] [--variants=v1,v2,...]");
    std::process::exit(2);
}

fn main() {
    let mut n_seeds: u64 = 200;
    let mut items: usize = 5;
    let mut variants: Vec<Variant> = Variant::ALL.to_vec();
    for a in std::env::args().skip(1) {
        if let Some(n) = a.strip_prefix("--seeds=") {
            n_seeds = n.parse().unwrap_or_else(|_| usage());
        } else if let Some(n) = a.strip_prefix("--items=") {
            items = n.parse().unwrap_or_else(|_| usage());
        } else if let Some(list) = a.strip_prefix("--variants=") {
            variants = list
                .split(',')
                .map(|s| {
                    s.parse().unwrap_or_else(|e| {
                        eprintln!("{e}");
                        usage()
                    })
                })
                .collect();
            if variants.is_empty() {
                usage()
            }
        } else {
            usage();
        }
    }
    let cfg = GenConfig {
        items,
        ..GenConfig::default()
    };

    let sources: Vec<String> = (0..n_seeds)
        .map(|seed| gen_program(&mut Rng::new(seed ^ SALT), &cfg))
        .collect();
    let jobs: Vec<Job> = sources
        .iter()
        .flat_map(|src| variants.iter().map(|&v| Job::with_variant(src.clone(), v)))
        .collect();

    // The default hook prints a backtrace banner per contained panic;
    // we report failures ourselves, with the seed and source attached.
    std::panic::set_hook(Box::new(|_| {}));

    let session = Session::builder()
        .cache(false)
        .build()
        .expect("fuzz session configuration is valid");
    let compiled = session.compile_batch(&jobs);
    // Run phase: fault-contained, order-preserving, same worker pool
    // sizing as the compile batch.
    let runs: Vec<Result<(VmResult, String), String>> =
        par_map(&compiled, session.batch_workers(), |_, result| {
            let c = match result {
                Err(e) => return Err(format!("compile failed: {e}")),
                Ok(c) => c,
            };
            match catch_unwind(AssertUnwindSafe(|| session.run(c))) {
                Ok(o) => Ok((o.result, o.output)),
                Err(_) => Err("PANIC escaped the pipeline".to_owned()),
            }
        });
    let _ = std::panic::take_hook();

    let mut failures: Vec<String> = Vec::new();
    for (seed, (src, row)) in sources.iter().zip(runs.chunks(variants.len())).enumerate() {
        let mut reference: Option<(&VmResult, &String, &'static str)> = None;
        for (v, outcome) in variants.iter().zip(row) {
            match outcome {
                Err(why) => {
                    failures.push(format!("seed {seed} [{}]: {why}\n{src}", v.name()));
                }
                Ok((result, output)) => {
                    if !matches!(result, VmResult::Value(_)) {
                        failures.push(format!(
                            "seed {seed} [{}]: abnormal result {result:?}\n{src}",
                            v.name()
                        ));
                        continue;
                    }
                    match &reference {
                        None => reference = Some((result, output, v.name())),
                        Some((r_res, r_out, r_name)) => {
                            if &result != r_res || &output != r_out {
                                failures.push(format!(
                                    "seed {seed} [{}]: diverges from {r_name} \
                                     ({result:?} {output:?} vs {r_res:?} {r_out:?})\n{src}",
                                    v.name()
                                ));
                            }
                        }
                    }
                }
            }
        }
    }

    let n_variants = variants.len() as u64;
    if failures.is_empty() {
        println!(
            "fuzz smoke: {n_seeds} seeds x {n_variants} variants, \
             no panics, no traps, no divergence"
        );
    } else {
        for f in &failures {
            eprintln!("FAIL {f}\n");
        }
        eprintln!(
            "fuzz smoke: {} failure(s) over {n_seeds} seeds x {n_variants} variants",
            failures.len()
        );
        std::process::exit(1);
    }
}
