//! Scheduler gate: drives the policy-driven multi-tenant scheduler at
//! thousand-tenant scale and writes the `BENCH_pr10.json` trajectory
//! document.
//!
//! ```sh
//! cargo run --release -p smlc-bench --bin sched_bench            # writes BENCH_pr10.json
//! cargo run --release -p smlc-bench --bin sched_bench -- --json=out.json --tenants=200
//! ```
//!
//! Four stages; every gate is on deterministic quantities (cycle
//! counts, outcomes, byte-identity) — wall-clock is recorded but never
//! gated, so a slow machine cannot fail the build:
//!
//! 1. **Thousand-tenant storm, per policy.** `--tenants` tenants (every
//!    97th hostile: it retains everything it allocates on a starved
//!    quota) run under each `SchedPolicy`. Under every policy each
//!    hostile tenant must trap `HeapExhausted` alone and every good
//!    tenant must finish with result, output, and `RunStats`
//!    byte-identical to its solo run — neighbor isolation is
//!    policy-independent. The round-robin row doubles as the
//!    no-regression baseline `scripts/verify.sh` gates on.
//! 2. **Deadline-miss curves under load.** A fixed set of
//!    deadline-tagged tenants is co-scheduled with growing background
//!    load under each policy. EDF must meet every deadline at every
//!    load level (the workload is feasible by construction: the
//!    deadline cohort alone fits well inside its deadlines, and EDF
//!    runs it ahead of the deadline-less background). Round-robin must
//!    miss at the heaviest load — proving the curve actually bends and
//!    `DeadlineMissed` is exercised.
//! 3. **Ready-queue scaling.** The same workload at 10/100/1000
//!    tenants, recording wall-time per slice. The binary-heap ready
//!    queue costs O(log n) per slice where the old linear scan cost
//!    O(n); the recorded ratios are the trajectory evidence.
//! 4. **Admission control.** A capacity sized for three tenants is
//!    offered five; exactly two must be rejected with the typed heap
//!    oversubscription error and the three admitted tenants must still
//!    run to their solo results.

use smlc::{
    AdmissionError, Compiled, Json, Outcome, SchedPolicy, SchedStats, SchedulerBuilder, Session,
    TenantOutcome, TenantReport, TenantSpec, Variant, VmConfig, VmScheduler,
    METRICS_SCHEMA_VERSION,
};
use std::sync::Arc;
use std::time::Instant;

/// Bounded-churn tenant: allocates freely, retains only a 20-cell list.
const GOOD_SRC: &str = "
    fun build n = if n = 0 then [] else n :: build (n - 1)
    fun sum [] = 0 | sum (x :: r) = x + sum r
    fun churn 0 acc = acc
      | churn n acc = churn (n - 1) (acc + sum (build 20))
    val _ = print (itos (churn 60 0))
";

/// Hostile tenant: unbounded live-list growth, must exhaust any quota.
const HOSTILE_SRC: &str = "
    fun grow l = grow (1 :: l)
    val _ = grow []
";

/// Nursery halves for the per-tenant storm geometry (words).
const NURSERY: usize = 256;
/// Tenured space for well-behaved tenants — holds the 20-cell live set.
const TENURED: usize = 2048;
/// Starved quota for hostile tenants.
const HOSTILE_TENURED: usize = 4096;
/// Every `HOSTILE_STRIDE`-th storm slot is hostile.
const HOSTILE_STRIDE: usize = 97;
/// Scheduler quantum for the storm and curve stages, in cycles.
const QUANTUM: u64 = 2_000;
/// Deadline-tagged tenants in the curve stage.
const DEADLINE_COHORT: usize = 20;
/// Background tenant counts swept by the curve stage.
const LOADS: [usize; 4] = [0, 25, 100, 200];

fn small(base: &VmConfig, tenured: usize) -> VmConfig {
    VmConfig {
        nursery_words: NURSERY,
        tenured_words: tenured,
        promote_after: 1,
        ..*base
    }
}

fn build_sched(policy: SchedPolicy, quantum: u64) -> VmScheduler {
    SchedulerBuilder::new()
        .quantum(quantum)
        .policy(policy)
        .build()
        .expect("nonzero knobs always validate")
}

/// Checks one tenant report against its solo run; pushes any observable
/// divergence into `failures` keyed by `what`.
fn check_solo_identical(what: &str, r: &TenantReport, solo: &Outcome, failures: &mut Vec<String>) {
    if r.outcome != TenantOutcome::Done {
        failures.push(format!("{what}: ended {:?}, expected Done", r.outcome));
        return;
    }
    if r.result != solo.result || r.output != solo.output {
        failures.push(format!("{what}: result/output diverge from the solo run"));
    }
    if r.stats != solo.stats {
        failures.push(format!(
            "{what}: RunStats diverge from solo ({} vs {} cycles)",
            r.stats.cycles, solo.stats.cycles
        ));
    }
}

fn sched_stats_json(s: &SchedStats) -> Json {
    Json::obj()
        .field("policy", s.policy.name())
        .field("tenants", s.tenants)
        .field("rejected", s.rejected)
        .field("rounds", s.rounds)
        .field("slices", s.slices)
        .field("preemptions", s.preemptions)
        .field("max_overshoot", s.max_overshoot)
        .field("ready_peak", s.ready_peak)
        .field("done", s.done)
        .field("heap_exhausted", s.heap_exhausted)
        .field("deadline_missed", s.deadline_missed)
}

fn usage() -> ! {
    eprintln!("usage: sched_bench [--json=PATH] [--tenants=N]");
    std::process::exit(2);
}

fn main() {
    let mut path = "BENCH_pr10.json".to_owned();
    let mut n_tenants: usize = 1000;
    for a in std::env::args().skip(1) {
        if let Some(p) = a.strip_prefix("--json=") {
            path = p.to_owned();
        } else if let Some(n) = a.strip_prefix("--tenants=") {
            n_tenants = n.parse().unwrap_or_else(|_| usage());
        } else {
            usage();
        }
    }

    let variant = Variant::Ffb;
    let base = variant.vm_config();
    let session = Session::with_variant(variant);
    let mut failures: Vec<String> = Vec::new();

    let compile = |what: &str, src: &str| -> Compiled {
        session
            .compile(src)
            .unwrap_or_else(|e| panic!("{what} failed to compile under {variant}: {e}"))
    };
    let good = compile("storm tenant", GOOD_SRC);
    let hostile = compile("hostile tenant", HOSTILE_SRC);
    let good_cfg = small(&base, TENURED);
    let hostile_cfg = small(&base, HOSTILE_TENURED);
    let solo = good.run_with(&good_cfg);
    let good_prog = Arc::new(good.machine.clone());
    let hostile_prog = Arc::new(hostile.machine.clone());

    // Stage 1: the storm, once per policy. Priorities are varied under
    // every policy (they are inert outside `Priority`) so the same spec
    // set exercises each ready-queue key.
    let policies = [
        SchedPolicy::RoundRobin,
        SchedPolicy::Priority,
        SchedPolicy::Deadline,
    ];
    let mut storm_rows: Vec<Json> = Vec::new();
    for &policy in &policies {
        let mut sched = build_sched(policy, QUANTUM);
        let mut hostiles = 0u64;
        for slot in 0..n_tenants {
            let spec = if slot % HOSTILE_STRIDE == 0 {
                hostiles += 1;
                TenantSpec::new(hostile_prog.clone(), &hostile_cfg)
            } else {
                TenantSpec::new(good_prog.clone(), &good_cfg)
            };
            sched
                .admit(spec.priority((slot % 8) as u32))
                .expect("uncapped storm admits all tenants");
        }
        let t0 = Instant::now();
        let (reports, stats) = sched.run_all();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        for (slot, r) in reports.iter().enumerate() {
            if slot % HOSTILE_STRIDE == 0 {
                if r.outcome != TenantOutcome::HeapExhausted {
                    failures.push(format!(
                        "storm[{}]: hostile tenant {slot} ended {:?}, expected HeapExhausted",
                        policy.name(),
                        r.outcome
                    ));
                }
            } else {
                check_solo_identical(
                    &format!("storm[{}] tenant {slot}", policy.name()),
                    r,
                    &solo,
                    &mut failures,
                );
            }
        }
        if stats.done != (n_tenants as u64 - hostiles) || stats.heap_exhausted != hostiles {
            failures.push(format!(
                "storm[{}]: outcome tally {} done / {} heap-exhausted, expected {} / {}",
                policy.name(),
                stats.done,
                stats.heap_exhausted,
                n_tenants as u64 - hostiles,
                hostiles
            ));
        }
        if stats.deadline_missed != 0 || stats.rejected != 0 {
            failures.push(format!(
                "storm[{}]: spurious rejections ({}) or deadline misses ({})",
                policy.name(),
                stats.rejected,
                stats.deadline_missed
            ));
        }
        println!(
            "storm {:11}  {} tenants  {} done / {} heap-exhausted  \
             {:>8} slices  ready peak {:>5}  {:>9.1}ms",
            policy.name(),
            stats.tenants,
            stats.done,
            stats.heap_exhausted,
            stats.slices,
            stats.ready_peak,
            ms,
        );
        storm_rows.push(sched_stats_json(&stats).field("wall_ms", ms));
    }

    // Stage 2: deadline-miss curves. A cohort of deadline-tagged
    // tenants is feasible on its own (EDF runs it first and it finishes
    // well inside its deadline) but drowns under round-robin once
    // enough deadline-less background tenants share the machine.
    let cohort_cycles = solo.stats.cycles * DEADLINE_COHORT as u64;
    let deadline = cohort_cycles * 3;
    let mut curve_rows: Vec<Json> = Vec::new();
    for &load in &LOADS {
        for &policy in &policies {
            let mut sched = build_sched(policy, QUANTUM);
            for _ in 0..DEADLINE_COHORT {
                sched
                    .admit(
                        TenantSpec::new(good_prog.clone(), &good_cfg)
                            .priority(9)
                            .deadline_cycles(deadline),
                    )
                    .expect("uncapped curve admits the deadline cohort");
            }
            for _ in 0..load {
                sched
                    .admit(TenantSpec::new(good_prog.clone(), &good_cfg))
                    .expect("uncapped curve admits the background load");
            }
            let (_, stats) = sched.run_all();
            if policy == SchedPolicy::Deadline && stats.deadline_missed != 0 {
                failures.push(format!(
                    "curve: EDF missed {} deadline(s) at load {load} on a feasible workload",
                    stats.deadline_missed
                ));
            }
            if policy == SchedPolicy::RoundRobin
                && load == LOADS[LOADS.len() - 1]
                && stats.deadline_missed == 0
            {
                failures.push(format!(
                    "curve: round-robin met every deadline at load {load}; \
                     the workload is too loose to exercise DeadlineMissed"
                ));
            }
            println!(
                "curve  load {:>4}  {:11}  {:>3} missed of {DEADLINE_COHORT}",
                load,
                policy.name(),
                stats.deadline_missed,
            );
            curve_rows.push(
                Json::obj()
                    .field("background_tenants", load as u64)
                    .field("policy", policy.name())
                    .field("deadline_cycles", deadline)
                    .field("deadline_missed", stats.deadline_missed),
            );
        }
    }

    // Stage 3: ready-queue scaling. Wall-time per slice at growing
    // tenant counts; recorded, never gated.
    let mut scaling_rows: Vec<Json> = Vec::new();
    let mut ns_per_slice_at: Vec<(usize, f64)> = Vec::new();
    for &n in &[10usize, 100, 1000] {
        let mut sched = build_sched(SchedPolicy::RoundRobin, QUANTUM);
        for _ in 0..n {
            sched
                .admit(TenantSpec::new(good_prog.clone(), &good_cfg))
                .expect("uncapped scaling run admits all tenants");
        }
        let t0 = Instant::now();
        let (_, stats) = sched.run_all();
        let ns = t0.elapsed().as_secs_f64() * 1e9;
        let per_slice = ns / stats.slices.max(1) as f64;
        ns_per_slice_at.push((n, per_slice));
        println!(
            "scale  {:>5} tenants  {:>8} slices  {:>8.0} ns/slice",
            n, stats.slices, per_slice
        );
        scaling_rows.push(
            Json::obj()
                .field("tenants", n as u64)
                .field("slices", stats.slices)
                .field("ready_peak", stats.ready_peak)
                .field("wall_ns_per_slice", per_slice),
        );
    }
    // 100x the tenants should cost far less than 100x per slice; with
    // the binary-heap queue the growth is logarithmic. Recorded only.
    let scaling_ratio = ns_per_slice_at[2].1 / ns_per_slice_at[0].1;

    // Stage 4: admission control. Capacity for three good heaps,
    // offered five tenants: exactly two typed rejections, and the
    // admitted three still reach their solo results.
    let mut sched = SchedulerBuilder::new()
        .quantum(QUANTUM)
        .heap_capacity_words((good_cfg.tenured_words as u64) * 3)
        .build()
        .expect("nonzero knobs always validate");
    let mut rejected = 0u64;
    for slot in 0..5 {
        match sched.admit(TenantSpec::new(good_prog.clone(), &good_cfg)) {
            Ok(_) => {}
            Err(e @ AdmissionError::HeapOversubscribed { .. }) => {
                rejected += 1;
                if slot < 3 {
                    failures.push(format!("admission: tenant {slot} rejected early: {e}"));
                }
            }
            Err(e) => failures.push(format!("admission: tenant {slot}: wrong error kind: {e}")),
        }
    }
    let (reports, stats) = sched.run_all();
    if rejected != 2 || stats.rejected != 2 || reports.len() != 3 {
        failures.push(format!(
            "admission: {rejected} rejections ({} counted), {} admitted; expected 2 and 3",
            stats.rejected,
            reports.len()
        ));
    }
    for (slot, r) in reports.iter().enumerate() {
        check_solo_identical(&format!("admission tenant {slot}"), r, &solo, &mut failures);
    }
    println!(
        "admission  {} admitted / {} rejected against a {}-word quota",
        reports.len(),
        stats.rejected,
        good_cfg.tenured_words * 3
    );

    let doc = Json::obj()
        .field("schema_version", METRICS_SCHEMA_VERSION)
        .field("generator", "sched_bench")
        .field("variant", variant.name())
        .field(
            "config",
            Json::obj()
                .field("tenants", n_tenants as u64)
                .field("quantum", QUANTUM)
                .field("nursery_words", NURSERY)
                .field("tenured_words", TENURED)
                .field("hostile_tenured_words", HOSTILE_TENURED)
                .field("hostile_stride", HOSTILE_STRIDE as u64)
                .field("deadline_cohort", DEADLINE_COHORT as u64),
        )
        .field("storm", Json::Arr(storm_rows))
        .field("deadline_curve", Json::Arr(curve_rows))
        .field("scaling", Json::Arr(scaling_rows))
        .field(
            "summary",
            Json::obj()
                .field("per_slice_ratio_1000_vs_10", scaling_ratio)
                .field("failures", failures.len()),
        );
    let mut text = doc.to_string_pretty();
    text.push('\n');
    std::fs::write(&path, text).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "sched_bench: {n_tenants}-tenant storm solo-identical under all {} policies; \
         EDF met every deadline; 1000-vs-10-tenant per-slice ratio {scaling_ratio:.2}x",
        policies.len()
    );
}
