//! Measures SCC-incremental elaboration and writes `BENCH_pr8.json`.
//!
//! ```sh
//! cargo run --release -p smlc-bench --bin incr_bench            # writes BENCH_pr8.json
//! cargo run --release -p smlc-bench --bin incr_bench -- --json=out.json
//! ```
//!
//! Two experiments, both differential-gated against whole-program
//! elaboration (`SessionBuilder::incremental(false)`):
//!
//! 1. **Edit replay.** A 40-declaration dependency chain is compiled
//!    cold, then recompiled after editing one middle declaration. The
//!    binary asserts only the dirtied suffix re-elaborates (the
//!    `components.recompiled` counter), that the warm output is
//!    byte-identical to the whole-program compile of the edited source,
//!    and reports the warm/cold wall-clock ratio.
//! 2. **Progen sweep.** 200 seeded well-typed programs each compile
//!    through the incremental path and the whole-program path; every
//!    pair must be byte-identical, cold and again after a synthesized
//!    append (which exercises the warm checkpoint-replay path).

use std::time::Instant;

use sml_testkit::progen::{gen_program, GenConfig};
use sml_testkit::Rng;
use smlc::{Json, Session, Variant, METRICS_SCHEMA_VERSION};

const CHAIN_DECS: usize = 40;
const EDIT_AT: usize = 20;
const SEEDS: u64 = 200;

/// Runs `f`, returning its result and the elapsed wall-clock in ms.
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64() * 1e3)
}

/// A `CHAIN_DECS`-declaration chain `val x0 = k` … each reading its
/// predecessor, closed by a `print`. `edited` bumps one literal.
fn chain_program(edited: bool) -> String {
    let mut src = String::from("val x0 = 1\n");
    for i in 1..CHAIN_DECS {
        let k = if edited && i == EDIT_AT { 5 } else { 1 };
        src.push_str(&format!("val x{i} = x{} + {k}\n", i - 1));
    }
    src.push_str(&format!("val _ = print (itos x{})\n", CHAIN_DECS - 1));
    src
}

fn session_pair(v: Variant) -> (Session, Session) {
    let incr = Session::builder().variant(v).build().unwrap();
    let whole = Session::builder()
        .variant(v)
        .incremental(false)
        .build()
        .unwrap();
    (incr, whole)
}

fn main() {
    let mut path = "BENCH_pr8.json".to_owned();
    for a in std::env::args().skip(1) {
        if let Some(p) = a.strip_prefix("--json=") {
            path = p.to_owned();
        } else {
            eprintln!("unknown argument `{a}` (only --json=PATH)");
            std::process::exit(2);
        }
    }

    // ------------------------------------------------------------------
    // Experiment 1: single-declaration edit on a dependency chain.
    // ------------------------------------------------------------------
    let (incr, whole) = session_pair(Variant::Ffb);
    let base = chain_program(false);
    let edited = chain_program(true);

    let (cold, cold_ms) = timed(|| incr.compile(&base).unwrap());
    let n = cold.stats.components.scc_count;
    assert_eq!(cold.stats.components.recompiled, n, "cold compiles all");

    let (warm, warm_ms) = timed(|| incr.compile(&edited).unwrap());
    let recompiled = warm.stats.components.recompiled;
    let dirtied = n - EDIT_AT; // the edited dec and everything after it
    assert_eq!(
        recompiled, dirtied,
        "editing dec {EDIT_AT} of {n} must replay exactly the suffix"
    );
    assert_eq!(warm.stats.components.cache_hits, EDIT_AT);

    let reference = whole.compile(&edited).unwrap();
    assert_eq!(
        format!("{}", warm.machine),
        format!("{}", reference.machine),
        "warm incremental output diverged from whole-program"
    );

    let ratio = recompiled as f64 / n as f64;
    println!("incr_bench: edit replay ({n} components, edit at {EDIT_AT})");
    println!("  cold compile      {cold_ms:9.2} ms  ({n}/{n} recompiled)");
    println!("  warm recompile    {warm_ms:9.2} ms  ({recompiled}/{n} recompiled)");
    println!("  recompiled ratio  {ratio:9.3}");
    println!("  warm/cold wall    {:9.3}", warm_ms / cold_ms);

    // ------------------------------------------------------------------
    // Experiment 2: 200-seed progen differential, cold + warm.
    // ------------------------------------------------------------------
    let cfg = GenConfig::default();
    let (_, sweep_ms) = timed(|| {
        for seed in 0..SEEDS {
            let mut rng = Rng::new(seed);
            let src = gen_program(&mut rng, &cfg);
            let v = *Rng::new(seed ^ 0xC0FFEE).pick(&Variant::ALL);
            let (incr, whole) = session_pair(v);
            let a = incr.compile(&src).unwrap();
            let b = whole.compile(&src).unwrap();
            assert_eq!(
                format!("{}", a.machine),
                format!("{}", b.machine),
                "seed {seed} ({v}): cold incremental output diverged"
            );
            let appended = format!("{src}\nval zz_{seed} = {seed}");
            let a2 = incr.compile(&appended).unwrap();
            let b2 = whole.compile(&appended).unwrap();
            assert!(
                a2.stats.components.cache_hits > 0,
                "seed {seed}: append did not replay from checkpoints"
            );
            assert_eq!(
                format!("{}", a2.machine),
                format!("{}", b2.machine),
                "seed {seed} ({v}): warm incremental output diverged"
            );
        }
    });
    println!("  progen sweep      {sweep_ms:9.1} ms  ({SEEDS} seeds, cold+warm, byte-identical)");

    let doc = Json::obj()
        .field("schema_version", METRICS_SCHEMA_VERSION)
        .field("generator", "incr_bench")
        .field(
            "edit_replay",
            Json::obj()
                .field("components", n)
                .field("edit_at", EDIT_AT)
                .field("recompiled", recompiled)
                .field("recompiled_ratio", ratio)
                .field("cold_wall_ms", cold_ms)
                .field("warm_wall_ms", warm_ms)
                .field("warm_over_cold_wall", warm_ms / cold_ms)
                .field("byte_identical", true),
        )
        .field(
            "progen_sweep",
            Json::obj()
                .field("seeds", SEEDS)
                .field("wall_ms", sweep_ms)
                .field("byte_identical", true),
        );
    let mut text = doc.to_string_pretty();
    text.push('\n');
    std::fs::write(&path, text).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {path}");
}
