//! Measures the shared LTY hash-cons arena and writes the
//! `BENCH_pr6.json` trajectory document.
//!
//! ```sh
//! cargo run --release -p smlc-bench --bin arena_bench              # writes BENCH_pr6.json
//! cargo run --release -p smlc-bench --bin arena_bench -- --json=out.json
//! ```
//!
//! Two levels of measurement, one assertion each:
//!
//! **Grid level** — the full benchmark×variant job grid compiles with
//! the artifact cache off under two sessions: *cold*
//! (`reuse_types(false)`: every compile builds a private LTY table from
//! scratch, the pre-arena batch semantics) and *warm* (the default
//! session: all compiles share one concurrent arena, primed by an
//! unmeasured pass). Passes are interleaved cold/warm to cancel load
//! drift and compared by median. Interning is a small slice of
//! end-to-end compile time, so this is a **no-regression gate**: the
//! warm median must not lose to the cold median by more than a noise
//! allowance.
//!
//! **Intern level** — a replay microbenchmark isolates the layer the
//! arena actually changed. Each simulated compile interns the same
//! deterministic population of types (distinct kinds plus in-compile
//! repeats, shaped like real translation traffic). The cold
//! configuration gives every compile a fresh arena, so each distinct
//! kind pays the insert path (write lock, kind clones, slot push); the
//! warm configuration shares one resident arena, so the same touches
//! are read-lock probes. Here warm must **strictly beat** cold — this
//! is the headline `intern_warm_speedup` in the JSON document.
//!
//! The binary also asserts the arena is outcome-invisible (warm and
//! cold grid artifacts byte-identical to a serial cold reference) and
//! that the arena accounting balances.

use std::time::Instant;

use sml_lambda::{Lty, LtyArena, LtyKind};
use smlc::{CompileError, Compiled, Job, Json, Session, Variant, METRICS_SCHEMA_VERSION};
use smlc_bench::{benchmarks, json_path_from_args, Benchmark};

/// Measured grid passes per configuration (interleaved cold/warm).
const GRID_REPS: usize = 5;
/// Noise allowance for the grid-level no-regression gate.
const GRID_ALLOWANCE: f64 = 1.10;
/// Measured rounds of the intern-level replay.
const INTERN_ROUNDS: usize = 9;
/// Simulated compiles per intern-level round (the grid's job count).
const INTERN_COMPILES: usize = 72;
/// Distinct composite kinds each simulated compile interns.
const INTERN_DISTINCT: u32 = 300;

/// Runs `f`, returning its result and the elapsed wall-clock in ms.
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64() * 1e3)
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// The benchmark×variant job grid, in deterministic order.
fn job_grid(benches: &[Benchmark]) -> Vec<Job> {
    benches
        .iter()
        .flat_map(|b| {
            let src = b.source();
            Variant::ALL
                .iter()
                .map(move |&v| Job::with_variant(src.clone(), v))
        })
        .collect()
}

/// A cache-off session; `warm` picks shared-arena vs per-compile types.
fn session(warm: bool) -> Session {
    Session::builder()
        .cache(false)
        .reuse_types(warm)
        .build()
        .expect("bench session configuration is valid")
}

/// Compiles the grid, panicking on any per-job error (the benchmark
/// suite must be clean) and returning the artifacts.
fn compile_grid(s: &Session, jobs: &[Job]) -> Vec<Compiled> {
    let results: Vec<Result<Compiled, CompileError>> = s.compile_batch(jobs);
    results
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|e| panic!("job {i} failed: {e}")))
        .collect()
}

/// One simulated compile's intern traffic: `INTERN_DISTINCT` distinct
/// composite kinds (every compile builds the *same* family, as
/// recompiles of the same sources do), each parent re-interned once
/// more to model in-compile repetition. Returns a checksum so the work
/// cannot be optimized away.
fn intern_compile(arena: &LtyArena) -> u64 {
    let int = arena.intern(&LtyKind::Int);
    let real = arena.intern(&LtyKind::Real);
    let mut t = int;
    let mut sum = 0u64;
    for i in 0..INTERN_DISTINCT {
        let kind = match i % 3 {
            0 => LtyKind::Arrow(t, real),
            1 => LtyKind::Record(vec![t, int, real]),
            _ => LtyKind::SRecord(vec![real, t]),
        };
        t = arena.intern(&kind);
        // The repeat: translation re-requests types it just built.
        let again: Lty = arena.intern(&kind);
        debug_assert_eq!(t, again);
        sum = sum.wrapping_add(u64::from(again.0));
    }
    sum
}

/// One intern-level round: `INTERN_COMPILES` simulated compiles. Cold
/// builds a fresh arena per compile (the `reuse_types(false)` cost
/// model); warm drives them all through the given resident arena.
fn intern_round(shared: Option<&LtyArena>) -> u64 {
    let mut sum = 0u64;
    for _ in 0..INTERN_COMPILES {
        sum = sum.wrapping_add(match shared {
            Some(arena) => intern_compile(arena),
            None => intern_compile(&LtyArena::new()),
        });
    }
    sum
}

fn main() {
    let path = json_path_from_args(std::env::args().skip(1))
        .unwrap_or_else(|| "BENCH_pr6.json".to_owned());

    let benches = benchmarks();
    let jobs = job_grid(&benches);
    let n_cells = jobs.len() as u64;

    // Reference artifacts: serial and cold, one fresh session per job —
    // maximally independent of batch scheduling.
    eprintln!("serial cold reference ...");
    let reference: Vec<Compiled> = jobs
        .iter()
        .map(|j| {
            Session::builder()
                .variant(j.variant.unwrap_or(Variant::Ffb))
                .cache(false)
                .build()
                .expect("valid")
                .compile(&j.src)
                .expect("reference compiles")
        })
        .collect();

    // Grid level: interleaved cold/warm passes. The warm session is
    // primed by one unmeasured pass — the steady state a long-lived
    // session reaches.
    eprintln!("grid passes ({GRID_REPS} interleaved cold/warm pairs) ...");
    let cold_session = session(false);
    let warm_session = session(true);
    let _ = compile_grid(&warm_session, &jobs);
    let (mut cold_ms, mut warm_ms) = (Vec::new(), Vec::new());
    let (mut cold_artifacts, mut warm_artifacts) = (None, None);
    for _ in 0..GRID_REPS {
        let (arts, ms) = timed(|| compile_grid(&cold_session, &jobs));
        cold_ms.push(ms);
        cold_artifacts = Some(arts);
        let (arts, ms) = timed(|| compile_grid(&warm_session, &jobs));
        warm_ms.push(ms);
        warm_artifacts = Some(arts);
    }
    let (warm_artifacts, cold_artifacts) = (warm_artifacts.unwrap(), cold_artifacts.unwrap());

    // Outcome invariance: warm and cold artifacts are byte-identical to
    // the serial cold reference, and per-compile stats agree.
    for ((w, c), r) in warm_artifacts.iter().zip(&cold_artifacts).zip(&reference) {
        assert_eq!(
            format!("{:?}", w.machine),
            format!("{:?}", r.machine),
            "warm batch artifact diverged from serial cold reference"
        );
        assert_eq!(
            format!("{:?}", c.machine),
            format!("{:?}", r.machine),
            "cold batch artifact diverged from serial cold reference"
        );
        assert_eq!(w.stats.lty, r.stats.lty, "per-compile LTY stats diverged");
        assert_eq!(w.stats.code_size, c.stats.code_size);
    }

    // Arena accounting must balance at quiescence.
    let arena_stats = warm_session
        .arena_stats()
        .expect("warm session owns an arena");
    assert_eq!(
        arena_stats.hits() + arena_stats.misses(),
        arena_stats.queries()
    );
    assert_eq!(arena_stats.misses(), arena_stats.resident() as u64);
    assert!(arena_stats.retries() <= arena_stats.hits());
    assert!(
        cold_session.arena_stats().is_none(),
        "reuse_types(false) must not build an arena"
    );

    // Intern level: interleaved rounds against a primed shared arena vs
    // fresh per-compile arenas.
    eprintln!("intern replay ({INTERN_ROUNDS} interleaved rounds) ...");
    let shared = LtyArena::new();
    let _ = intern_round(Some(&shared)); // prime
    let (mut icold_ms, mut iwarm_ms) = (Vec::new(), Vec::new());
    let mut checksum = 0u64;
    for _ in 0..INTERN_ROUNDS {
        let (s, ms) = timed(|| intern_round(None));
        checksum ^= s;
        icold_ms.push(ms);
        let (s, ms) = timed(|| intern_round(Some(&shared)));
        checksum ^= s;
        iwarm_ms.push(ms);
    }
    assert_eq!(checksum, 0, "cold and warm replays must agree per round");

    let grid_cold = median(&mut cold_ms);
    let grid_warm = median(&mut warm_ms);
    let intern_cold = median(&mut icold_ms);
    let intern_warm = median(&mut iwarm_ms);
    let intern_speedup = intern_cold / intern_warm;

    println!(
        "arena_bench: {n_cells} compile jobs ({} benchmarks x {} variants), cache off",
        benches.len(),
        Variant::ALL.len()
    );
    println!("  grid cold (per-compile tables)  median {grid_cold:9.1} ms");
    println!("  grid warm (shared arena)        median {grid_warm:9.1} ms");
    println!(
        "  grid warm/cold                  {:9.3}",
        grid_warm / grid_cold
    );
    println!(
        "  intern replay cold              median {intern_cold:9.3} ms  ({INTERN_COMPILES} compiles x {} touches)",
        2 + 2 * INTERN_DISTINCT
    );
    println!("  intern replay warm              median {intern_warm:9.3} ms");
    println!("  intern warm speedup             {intern_speedup:9.3}x");
    println!(
        "  arena: {} resident kinds, {} hits / {} queries ({:.1}% hit), {} retries",
        arena_stats.resident(),
        arena_stats.hits(),
        arena_stats.queries(),
        100.0 * arena_stats.hits() as f64 / arena_stats.queries().max(1) as f64,
        arena_stats.retries(),
    );
    println!("  artifacts: byte-identical to serial cold reference");

    assert!(
        grid_warm <= grid_cold * GRID_ALLOWANCE,
        "warm grid compiles regressed past the noise allowance: \
         warm {grid_warm:.1} ms vs cold {grid_cold:.1} ms"
    );
    assert!(
        intern_warm < intern_cold,
        "warm interning must beat cold interning: \
         warm {intern_warm:.3} ms vs cold {intern_cold:.3} ms"
    );

    let pass_json = |ms: &[f64], med: f64| {
        Json::obj()
            .field("reps", ms.len() as u64)
            .field(
                "wall_ms",
                Json::Arr(ms.iter().map(|&m| Json::from(m)).collect()),
            )
            .field("median_ms", med)
    };
    let doc = Json::obj()
        .field("schema_version", METRICS_SCHEMA_VERSION)
        .field("generator", "arena_bench")
        .field(
            "grid",
            Json::obj()
                .field("benchmarks", benches.len())
                .field("variants", Variant::ALL.len())
                .field("cells", n_cells)
                .field("cold_per_compile_tables", pass_json(&cold_ms, grid_cold))
                .field("warm_shared_arena", pass_json(&warm_ms, grid_warm))
                .field("warm_over_cold", grid_warm / grid_cold)
                .field("noise_allowance", GRID_ALLOWANCE),
        )
        .field(
            "intern_replay",
            Json::obj()
                .field("compiles_per_round", INTERN_COMPILES as u64)
                .field("touches_per_compile", u64::from(2 + 2 * INTERN_DISTINCT))
                .field("cold_fresh_arenas", pass_json(&icold_ms, intern_cold))
                .field("warm_resident_arena", pass_json(&iwarm_ms, intern_warm)),
        )
        .field("intern_warm_speedup", intern_speedup)
        .field(
            "arena",
            Json::obj()
                .field("resident", arena_stats.resident() as u64)
                .field("hits", arena_stats.hits())
                .field("misses", arena_stats.misses())
                .field("retries", arena_stats.retries())
                .field("queries", arena_stats.queries()),
        )
        .field("identical_to_serial", true);
    let mut text = doc.to_string_pretty();
    text.push('\n');
    std::fs::write(&path, text).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {path}");
}
