//! Measures the session artifact cache on the full 12×6 benchmark
//! matrix and writes the `BENCH_pr3.json` trajectory document.
//!
//! ```sh
//! cargo run --release -p smlc-bench --bin cache_bench              # writes BENCH_pr3.json
//! cargo run --release -p smlc-bench --bin cache_bench -- --json=out.json
//! ```
//!
//! Three configurations run the identical benchmark×variant grid:
//!
//! 1. a cache-disabled session (the pre-session cost baseline),
//! 2. a reused caching session, twice — the cold pass populates the
//!    cache (every cell a miss), the warm pass must be served entirely
//!    from it (every cell a hit),
//! 3. the single-threaded serial reference ([`run_matrix_serial_of`]).
//!
//! The binary asserts the cache accounting (72 misses cold, 72 hits
//! warm, zero warm misses) and that all four matrices agree on every
//! deterministic per-cell field — outputs, VM counters, code size, LTY
//! stats — i.e. the cache and the parallel driver are outcome-invisible.
//! Wall-clock times and the cache counters land in `BENCH_pr3.json`.

use std::time::Instant;

use smlc::{CacheStats, Json, Session, Variant, METRICS_SCHEMA_VERSION};
use smlc_bench::{
    benchmarks, degraded_cells, matrix_session, run_matrix_in, run_matrix_serial_of, BenchCell,
};

/// Runs `f`, returning its result and the elapsed wall-clock in ms.
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64() * 1e3)
}

/// Asserts two matrices agree on every deterministic per-cell field.
/// Wall-clock fields (phase spans, compile time) are excluded: they are
/// the only fields allowed to differ between configurations.
fn assert_identical(label: &str, a: &[Vec<BenchCell>], b: &[Vec<BenchCell>]) {
    assert_eq!(a.len(), b.len(), "{label}: row counts differ");
    for (ra, rb) in a.iter().zip(b) {
        for (ca, cb) in ra.iter().zip(rb) {
            let clean = |c: &BenchCell| {
                c.ok()
                    .unwrap_or_else(|| {
                        panic!("{label}: {} under {} degraded", c.name(), c.variant())
                    })
                    .clone()
            };
            let (x, y) = (clean(ca), clean(cb));
            let cell = format!("{label}: {} under {}", x.name, x.variant);
            assert_eq!(x.variant, y.variant, "{cell}: variant order");
            assert_eq!(x.outcome.output, y.outcome.output, "{cell}: output");
            assert_eq!(
                x.outcome.stats.cycles, y.outcome.stats.cycles,
                "{cell}: cycles"
            );
            assert_eq!(
                x.outcome.stats.alloc_words, y.outcome.stats.alloc_words,
                "{cell}: alloc"
            );
            assert_eq!(
                x.outcome.stats.cycles_by_class, y.outcome.stats.cycles_by_class,
                "{cell}: cycle classes"
            );
            assert_eq!(
                x.compile.code_size, y.compile.code_size,
                "{cell}: code size"
            );
            assert_eq!(x.compile.lty, y.compile.lty, "{cell}: lty counters");
        }
    }
}

fn cache_json(c: &CacheStats) -> Json {
    Json::obj()
        .field("enabled", c.enabled)
        .field("hits", c.hits)
        .field("misses", c.misses)
        .field("evictions", c.evictions)
        .field("insertions", c.insertions)
        .field("entries", c.entries)
        .field("capacity", c.capacity)
}

fn main() {
    let mut path = "BENCH_pr3.json".to_owned();
    for a in std::env::args().skip(1) {
        if let Some(p) = a.strip_prefix("--json=") {
            path = p.to_owned();
        } else {
            eprintln!("unknown argument `{a}` (only --json=PATH)");
            std::process::exit(2);
        }
    }

    let benches = benchmarks();
    let n_cells = (benches.len() * Variant::ALL.len()) as u64;

    eprintln!("serial reference pass ...");
    let (serial, serial_ms) = timed(|| run_matrix_serial_of(&benches));
    assert!(
        degraded_cells(&serial).is_empty(),
        "reference matrix must be fully clean"
    );

    eprintln!("cache-off pass ...");
    let off_session = Session::builder()
        .cache(false)
        .build()
        .expect("cache-off session configuration is valid");
    let (off, off_ms) = timed(|| run_matrix_in(&off_session, &benches));

    eprintln!("cache-on cold pass ...");
    let session = matrix_session();
    let (cold, cold_ms) = timed(|| run_matrix_in(&session, &benches));
    let after_cold = session.cache_stats();

    eprintln!("cache-on warm pass (same session) ...");
    let (warm, warm_ms) = timed(|| run_matrix_in(&session, &benches));
    let after_warm = session.cache_stats();

    // Cache accounting: the cold pass misses and stores every cell, the
    // warm pass is served entirely from the cache.
    assert_eq!(after_cold.hits, 0, "cold pass must not hit");
    assert_eq!(after_cold.misses, n_cells, "cold pass misses every cell");
    assert_eq!(
        after_cold.insertions, n_cells,
        "cold pass stores every cell"
    );
    assert_eq!(after_cold.evictions, 0, "capacity must hold the full grid");
    let warm_hits = after_warm.hits - after_cold.hits;
    let warm_misses = after_warm.misses - after_cold.misses;
    assert_eq!(warm_hits, n_cells, "warm pass must hit every cell");
    assert_eq!(warm_misses, 0, "warm pass must not recompile");

    // Outcome invariance: cache-off, cold, and warm all byte-identical
    // (on deterministic fields) to the serial cold reference.
    assert_identical("cache-off vs serial", &off, &serial);
    assert_identical("cold vs serial", &cold, &serial);
    assert_identical("warm vs serial", &warm, &serial);

    println!("cache_bench: {n_cells} cells (12 benchmarks x 6 variants)");
    println!("  serial reference  {serial_ms:9.1} ms");
    println!("  cache-off         {off_ms:9.1} ms");
    println!(
        "  cache-on cold     {cold_ms:9.1} ms  ({} misses)",
        after_cold.misses
    );
    println!("  cache-on warm     {warm_ms:9.1} ms  ({warm_hits} hits, {warm_misses} misses)");
    println!("  warm/cold wall    {:9.3}", warm_ms / cold_ms);
    println!("  outcomes: byte-identical to serial cold path");

    let doc = Json::obj()
        .field("schema_version", METRICS_SCHEMA_VERSION)
        .field("generator", "cache_bench")
        .field(
            "grid",
            Json::obj()
                .field("benchmarks", benches.len())
                .field("variants", Variant::ALL.len())
                .field("cells", n_cells),
        )
        .field(
            "passes",
            Json::obj()
                .field("serial_reference", Json::obj().field("wall_ms", serial_ms))
                .field("cache_off", Json::obj().field("wall_ms", off_ms))
                .field(
                    "cache_on_cold",
                    Json::obj()
                        .field("wall_ms", cold_ms)
                        .field("cache", cache_json(&after_cold)),
                )
                .field(
                    "cache_on_warm",
                    Json::obj()
                        .field("wall_ms", warm_ms)
                        .field("warm_hits", warm_hits)
                        .field("warm_misses", warm_misses)
                        .field("cache", cache_json(&after_warm)),
                ),
        )
        .field("warm_over_cold_wall", warm_ms / cold_ms)
        .field("identical_to_serial", true)
        .field("degraded_cells", degraded_cells(&warm).len());
    let mut text = doc.to_string_pretty();
    text.push('\n');
    std::fs::write(&path, text).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {path}");
}
