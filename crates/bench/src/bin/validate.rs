//! Validation tool: compiles and runs every benchmark under every
//! variant, checking for agreement; prints a result matrix.
//!
//! ```sh
//! cargo run --release -p smlc-bench --bin validate
//! cargo run --release -p smlc-bench --bin validate -- --json
//! ```
//!
//! With `--json[=PATH]`, also writes the `BENCH_*.json` trajectory
//! document (default `BENCH_pr1.json`) when every cell succeeded.

use smlc::{compile, Variant, VmResult};
use smlc_bench::{json_path_from_args, write_bench_json, BenchResult};

fn main() {
    let json_path = json_path_from_args(std::env::args().skip(1));
    let mut failures = 0;
    let mut matrix: Vec<Vec<BenchResult>> = Vec::new();
    for b in smlc_bench::benchmarks() {
        let src = b.source();
        let mut outputs: Vec<String> = Vec::new();
        let mut row: Vec<BenchResult> = Vec::new();
        for v in Variant::all() {
            match compile(&src, v) {
                Err(e) => {
                    println!("{:8} {:8} COMPILE ERROR: {e}", b.name, v.name());
                    failures += 1;
                }
                Ok(c) => {
                    let o = c.run();
                    match o.result {
                        VmResult::Value(_) => {
                            println!(
                                "{:8} {:8} OK out={:?} cycles={} alloc={} code={}",
                                b.name,
                                v.name(),
                                o.output.trim(),
                                o.stats.cycles,
                                o.stats.alloc_words,
                                c.stats.code_size
                            );
                            outputs.push(o.output.clone());
                            row.push(BenchResult {
                                name: b.name,
                                variant: v,
                                compile: c.stats,
                                outcome: o,
                            });
                        }
                        other => {
                            println!("{:8} {:8} ABNORMAL {other:?}", b.name, v.name());
                            failures += 1;
                        }
                    }
                }
            }
        }
        if outputs.windows(2).any(|w| w[0] != w[1]) {
            println!("{:8} VARIANTS DISAGREE", b.name);
            failures += 1;
        }
        matrix.push(row);
    }
    if failures > 0 {
        println!("{failures} failure(s)");
        std::process::exit(1);
    }
    println!("all benchmarks agree under all variants");
    if let Some(path) = json_path {
        write_bench_json(&path, &matrix, "validate")
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}
