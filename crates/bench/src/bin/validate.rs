//! Validation tool: compiles and runs every benchmark under every
//! variant, checking for agreement; prints a result matrix.
//!
//! ```sh
//! cargo run --release -p smlc-bench --bin validate
//! ```

use smlc::{compile, Variant, VmResult};

fn main() {
    let mut failures = 0;
    for b in smlc_bench::benchmarks() {
        let src = b.source();
        let mut outputs: Vec<String> = Vec::new();
        for v in Variant::all() {
            match compile(&src, v) {
                Err(e) => {
                    println!("{:8} {:8} COMPILE ERROR: {e}", b.name, v.name());
                    failures += 1;
                }
                Ok(c) => {
                    let o = c.run();
                    match o.result {
                        VmResult::Value(_) => {
                            println!(
                                "{:8} {:8} OK out={:?} cycles={} alloc={} code={}",
                                b.name,
                                v.name(),
                                o.output.trim(),
                                o.stats.cycles,
                                o.stats.alloc_words,
                                c.stats.code_size
                            );
                            outputs.push(o.output);
                        }
                        other => {
                            println!("{:8} {:8} ABNORMAL {other:?}", b.name, v.name());
                            failures += 1;
                        }
                    }
                }
            }
        }
        if outputs.windows(2).any(|w| w[0] != w[1]) {
            println!("{:8} VARIANTS DISAGREE", b.name);
            failures += 1;
        }
    }
    if failures > 0 {
        println!("{failures} failure(s)");
        std::process::exit(1);
    }
    println!("all benchmarks agree under all variants");
}
