//! Validation tool: compiles and runs every benchmark under every
//! variant, checking for agreement; prints a result matrix.
//!
//! ```sh
//! cargo run --release -p smlc-bench --bin validate
//! cargo run --release -p smlc-bench --bin validate -- --json
//! ```
//!
//! Every failure mode — compile error, VM trap, escaped panic, output
//! divergence — is contained to its cell and printed as a `DEGRADED`
//! line. With `--json[=PATH]`, the `BENCH_*.json` trajectory document
//! (default `BENCH_pr1.json`) is written even when cells degraded: the
//! document marks them explicitly, and the process still exits 1 so CI
//! notices.

use smlc_bench::{degraded_cells, json_path_from_args, run_matrix, write_bench_json};

fn main() {
    let json_path = json_path_from_args(std::env::args().skip(1));
    let matrix = run_matrix();
    for row in &matrix {
        for cell in row {
            match cell.ok() {
                Some(r) => println!(
                    "{:8} {:8} OK out={:?} cycles={} alloc={} code={}",
                    r.name,
                    r.variant.name(),
                    r.outcome.output.trim(),
                    r.outcome.stats.cycles,
                    r.outcome.stats.alloc_words,
                    r.compile.code_size
                ),
                None => {
                    let d = cell.degraded().expect("cell is Ok or Degraded");
                    println!(
                        "{:8} {:8} DEGRADED [{}] {}",
                        d.name,
                        d.variant.name(),
                        d.kind,
                        d.detail
                    );
                }
            }
        }
    }
    let failures = degraded_cells(&matrix).len();
    if let Some(path) = json_path {
        write_bench_json(&path, &matrix, "validate")
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {path}");
    }
    if failures > 0 {
        println!("{failures} degraded cell(s)");
        std::process::exit(1);
    }
    println!("all benchmarks agree under all variants");
}
