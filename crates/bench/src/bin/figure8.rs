//! Regenerates the paper's Figure 8: geometric-mean ratios of execution
//! time, heap allocation, code size, and compilation time for the six
//! compilers (baseline `sml.nrp` = 1.00).
//!
//! ```sh
//! cargo run --release -p smlc-bench --bin figure8            # table only
//! cargo run --release -p smlc-bench --bin figure8 -- --json  # + BENCH_pr1.json
//! ```
//!
//! Only rows where every variant ran cleanly contribute to the means;
//! degraded cells are listed after the table and recorded explicitly in
//! the JSON trajectory.

use smlc::Variant;
use smlc_bench::{degraded_cells, geomean, json_path_from_args, run_matrix, write_bench_json};

fn main() {
    let json_path = json_path_from_args(std::env::args().skip(1));
    let matrix = run_matrix();
    let n_variants = Variant::ALL.len();

    let mut exec: Vec<Vec<f64>> = vec![Vec::new(); n_variants];
    let mut alloc: Vec<Vec<f64>> = vec![Vec::new(); n_variants];
    let mut code: Vec<Vec<f64>> = vec![Vec::new(); n_variants];
    let mut ctime: Vec<Vec<f64>> = vec![Vec::new(); n_variants];

    for row in &matrix {
        let clean: Vec<_> = row.iter().filter_map(|c| c.ok()).collect();
        if clean.len() != row.len() {
            continue;
        }
        let be = clean[0].outcome.stats.cycles as f64;
        let ba = clean[0].outcome.stats.alloc_words as f64;
        let bc = clean[0].compile.code_size as f64;
        let bt = clean[0].compile.compile_time.as_secs_f64();
        for (i, r) in clean.iter().enumerate() {
            exec[i].push(r.outcome.stats.cycles as f64 / be);
            alloc[i].push(r.outcome.stats.alloc_words as f64 / ba);
            code[i].push(r.compile.code_size as f64 / bc);
            ctime[i].push(r.compile.compile_time.as_secs_f64() / bt);
        }
    }

    println!("Figure 8: summary comparisons of resource usage (ratios vs sml.nrp)\n");
    print!("{:18}", "Program");
    for v in Variant::ALL {
        print!("  {:>8}", v.name());
    }
    println!();
    for (label, data) in [
        ("Execution time", &exec),
        ("Heap allocation", &alloc),
        ("Code size", &code),
        ("Compilation time", &ctime),
    ] {
        print!("{label:18}");
        for col in data.iter() {
            print!("  {:>8.2}", geomean(col));
        }
        println!();
    }
    let bad = degraded_cells(&matrix);
    if !bad.is_empty() {
        println!();
        println!("{} degraded cell(s) excluded from the means:", bad.len());
        for d in &bad {
            println!(
                "  {} under {} [{}] {}",
                d.name,
                d.variant.name(),
                d.kind,
                d.detail
            );
        }
    }
    if let Some(path) = json_path {
        write_bench_json(&path, &matrix, "figure8")
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}
