//! Regenerates the paper's Figure 8: geometric-mean ratios of execution
//! time, heap allocation, code size, and compilation time for the six
//! compilers (baseline `sml.nrp` = 1.00).

use smlc::Variant;
use smlc_bench::{geomean, run_matrix};

fn main() {
    let matrix = run_matrix();
    let n_variants = Variant::all().len();

    let mut exec: Vec<Vec<f64>> = vec![Vec::new(); n_variants];
    let mut alloc: Vec<Vec<f64>> = vec![Vec::new(); n_variants];
    let mut code: Vec<Vec<f64>> = vec![Vec::new(); n_variants];
    let mut ctime: Vec<Vec<f64>> = vec![Vec::new(); n_variants];

    for row in &matrix {
        let be = row[0].outcome.stats.cycles as f64;
        let ba = row[0].outcome.stats.alloc_words as f64;
        let bc = row[0].compile.code_size as f64;
        let bt = row[0].compile.compile_time.as_secs_f64();
        for (i, r) in row.iter().enumerate() {
            exec[i].push(r.outcome.stats.cycles as f64 / be);
            alloc[i].push(r.outcome.stats.alloc_words as f64 / ba);
            code[i].push(r.compile.code_size as f64 / bc);
            ctime[i].push(r.compile.compile_time.as_secs_f64() / bt);
        }
    }

    println!("Figure 8: summary comparisons of resource usage (ratios vs sml.nrp)\n");
    print!("{:18}", "Program");
    for v in Variant::all() {
        print!("  {:>8}", v.name());
    }
    println!();
    for (label, data) in [
        ("Execution time", &exec),
        ("Heap allocation", &alloc),
        ("Code size", &code),
        ("Compilation time", &ctime),
    ] {
        print!("{label:18}");
        for col in data.iter() {
            print!("  {:>8.2}", geomean(col));
        }
        println!();
    }
}
