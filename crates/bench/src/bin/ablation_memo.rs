//! Ablation for paper §4.5: memo-ized module coercions vs inlining every
//! coercion at every functor application / signature match. Reports the
//! middle-end code size with and without sharing.

use sml_lambda::{translate, LambdaConfig};

fn source(n_apps: usize) -> String {
    let mut out = String::from(
        "signature S = sig type t val mk : real -> t val get : t -> real end\n\
         structure Impl = struct type t = real fun mk x = x fun get (x : t) = x end\n\
         functor F (X : S) = struct val a = X.get (X.mk 1.0) end\n",
    );
    for i in 0..n_apps {
        out.push_str(&format!("structure B{i} = F (Impl)\n"));
    }
    out
}

fn main() {
    println!("Ablation (paper 4.5): memo-ized module coercions");
    println!("functor apps | lexp size (memo) | lexp size (inline) | shared hits");
    for n in [2usize, 8, 32, 128] {
        let src = source(n);
        let prog = sml_ast::parse(&src).expect("parse");
        let elab = sml_elab::elaborate(&prog).expect("elaborate");
        let memo = translate(&elab, &LambdaConfig::default());
        let inline = translate(
            &elab,
            &LambdaConfig {
                memo_coercions: false,
                ..LambdaConfig::default()
            },
        );
        println!(
            "{n:12} | {:>16} | {:>18} | {:>11}",
            memo.lexp.size(),
            inline.lexp.size(),
            memo.stats.shared_hits
        );
    }
}
