//! Pause-budget and tenant-isolation gate: exercises the bounded-pause
//! incremental major collector and the multi-tenant scheduler, then
//! writes the `BENCH_pr7.json` trajectory document.
//!
//! ```sh
//! cargo run --release -p smlc-bench --bin gc_pause_bench            # writes BENCH_pr7.json
//! cargo run --release -p smlc-bench --bin gc_pause_bench -- --json=out.json --seeds=50
//! ```
//!
//! Three gating stages, each of which exits nonzero on regression:
//!
//! 1. **Figure benchmarks.** Every benchmark is compiled once (under
//!    `sml.ffb`) and run three ways on a shrunken generational geometry
//!    that forces real major collections: stop-the-world
//!    (`max_pause_cycles = 0`, the differential baseline), incremental
//!    with a pause budget, and the semispace baseline. Outputs must be
//!    byte-identical, the budgeted run must promote exactly the words
//!    the stop-the-world run promotes, and **every recorded pause must
//!    fit the budget** (`pause_overruns == 0`). The document records the
//!    worst pause before/after and both pause histograms.
//! 2. **Progen differential.** The same three-way comparison over a
//!    seeded generated corpus (default 200 seeds) — the fuzz analogue
//!    of the figure gate.
//! 3. **16-tenant storm.** Fifteen well-behaved tenants plus one
//!    hostile tenant (unbounded live-list growth) on a starved heap
//!    quota are co-scheduled round-robin. The hostile tenant must trap
//!    `HeapExhausted` alone; the other fifteen must finish with results
//!    and output byte-identical to their solo runs.

use sml_testkit::progen::{gen_program, GenConfig};
use sml_testkit::Rng;
use sml_vm::{SchedulerBuilder, TenantOutcome, TenantSpec, N_PAUSE_BUCKETS, PAUSE_BUCKET_LIMITS};
use smlc::{
    GcMode, Json, Outcome, RunStats, Session, Variant, VmConfig, VmResult, METRICS_SCHEMA_VERSION,
};
use smlc_bench::benchmarks;
use std::sync::Arc;

/// Seed salt: disjoint from both the unit tests' corpus and
/// `fuzz_smoke`'s.
const SALT: u64 = 0x5eed_f00d_cafe_0007;

/// Nursery for the major-forcing geometry (words per half).
const NURSERY: usize = 384;

/// Tenured semispace for the major-forcing geometry. Small enough that
/// promotion traffic forces repeated majors on the figure benchmarks,
/// large enough to hold every benchmark's live set.
const TENURED: usize = 8 << 10;

/// The pause budget under test, in cycles. Chosen so the nursery clamp
/// is inert (`4 * NURSERY + 150 <= BUDGET`) — minor-collection
/// scheduling is then identical to the stop-the-world baseline and the
/// promoted-words comparison is exact.
const BUDGET: u64 = 2048;

/// Shrunken geometry shared by the stop-the-world and budgeted runs.
fn small(base: &VmConfig, budget: u64) -> VmConfig {
    VmConfig {
        nursery_words: NURSERY,
        tenured_words: TENURED,
        promote_after: 1,
        max_pause_cycles: budget,
        ..*base
    }
}

fn hist_json(hist: &[u64; N_PAUSE_BUCKETS]) -> Json {
    Json::Arr(hist.iter().map(|&c| Json::from(c)).collect())
}

fn pause_stats_json(o: &Outcome) -> Json {
    let s = &o.stats;
    Json::obj()
        .field("cycles", s.cycles)
        .field("collections", s.n_gcs)
        .field("major_collections", s.n_major_gcs)
        .field("major_slices", s.major_slices)
        .field("promoted_words", s.promoted_words)
        .field("copied_words", s.gc_copied_words)
        .field("barrier_words", s.barrier_words)
        .field("max_minor_pause_cycles", s.max_minor_pause)
        .field("max_major_pause_cycles", s.max_major_pause)
        .field("pause_overruns", s.pause_overruns)
        .field("pause_hist_minor", hist_json(&s.pause_hist_minor))
        .field("pause_hist_major", hist_json(&s.pause_hist_major))
}

/// The worst pause of either class in one run.
fn worst_pause(s: &RunStats) -> u64 {
    s.max_minor_pause.max(s.max_major_pause)
}

/// Checks one stop-the-world / budgeted / semispace triple; pushes any
/// violation into `failures` keyed by `what`.
fn check_triple(
    what: &str,
    stw: &Outcome,
    incr: &Outcome,
    semi: &Outcome,
    failures: &mut Vec<String>,
) {
    if !matches!(stw.result, VmResult::Value(_) | VmResult::Uncaught(_)) {
        failures.push(format!("{what}: abnormal baseline result {:?}", stw.result));
        return;
    }
    if incr.result != stw.result || incr.output != stw.output {
        failures.push(format!("{what}: budgeted run diverges from stop-the-world"));
    }
    if semi.result != stw.result || semi.output != stw.output {
        failures.push(format!(
            "{what}: semispace run diverges from stop-the-world"
        ));
    }
    if incr.stats.promoted_words != stw.stats.promoted_words {
        failures.push(format!(
            "{what}: promoted_words {} (budgeted) != {} (stop-the-world)",
            incr.stats.promoted_words, stw.stats.promoted_words
        ));
    }
    if incr.stats.pause_overruns != 0 {
        failures.push(format!(
            "{what}: {} pause(s) above the {BUDGET}-cycle budget",
            incr.stats.pause_overruns
        ));
    }
    if worst_pause(&incr.stats) > BUDGET {
        failures.push(format!(
            "{what}: worst pause {} exceeds budget {BUDGET}",
            worst_pause(&incr.stats)
        ));
    }
}

fn usage() -> ! {
    eprintln!("usage: gc_pause_bench [--json=PATH] [--seeds=N]");
    std::process::exit(2);
}

fn main() {
    let mut path = "BENCH_pr7.json".to_owned();
    let mut n_seeds: u64 = 200;
    for a in std::env::args().skip(1) {
        if let Some(p) = a.strip_prefix("--json=") {
            path = p.to_owned();
        } else if let Some(n) = a.strip_prefix("--seeds=") {
            n_seeds = n.parse().unwrap_or_else(|_| usage());
        } else {
            usage();
        }
    }

    let variant = Variant::Ffb;
    let base = variant.vm_config();
    let session = Session::with_variant(variant);
    let mut failures: Vec<String> = Vec::new();

    // Stage 1: figure benchmarks.
    let mut rows: Vec<Json> = Vec::new();
    let mut total_majors = 0u64;
    let mut worst_before = 0u64;
    let mut worst_after = 0u64;
    for b in benchmarks() {
        let compiled = session
            .compile(&b.source())
            .unwrap_or_else(|e| panic!("{} failed to compile under {variant}: {e}", b.name));
        let stw = compiled.run_with(&small(&base, 0));
        let incr = compiled.run_with(&small(&base, BUDGET));
        let semi = compiled.run_with(&VmConfig {
            gc_mode: GcMode::Semispace,
            ..base
        });
        check_triple(b.name, &stw, &incr, &semi, &mut failures);
        total_majors += stw.stats.n_major_gcs;
        worst_before = worst_before.max(worst_pause(&stw.stats));
        worst_after = worst_after.max(worst_pause(&incr.stats));
        println!(
            "{:10}  majors {:>3}  worst pause {:>7} -> {:>6}  slices {:>4}  barrier {:>7}",
            b.name,
            stw.stats.n_major_gcs,
            worst_pause(&stw.stats),
            worst_pause(&incr.stats),
            incr.stats.major_slices,
            incr.stats.barrier_words,
        );
        rows.push(
            Json::obj()
                .field("name", b.name)
                .field("stop_the_world", pause_stats_json(&stw))
                .field("incremental", pause_stats_json(&incr)),
        );
    }
    if total_majors == 0 {
        failures.push(format!(
            "geometry too generous: no benchmark forced a major collection \
             (nursery {NURSERY}, tenured {TENURED})"
        ));
    }
    if worst_before <= BUDGET {
        failures.push(format!(
            "stop-the-world worst pause {worst_before} already fits the budget \
             {BUDGET}; the benchmark is not exercising the slicer"
        ));
    }

    // Stage 2: progen differential.
    let gen_cfg = GenConfig {
        items: 3,
        ..GenConfig::default()
    };
    let mut fuzz_failures = 0usize;
    for seed in 0..n_seeds {
        let src = gen_program(&mut Rng::new(seed ^ SALT), &gen_cfg);
        let compiled = match session.compile(&src) {
            Ok(c) => c,
            Err(e) => {
                failures.push(format!("seed {seed}: compile failed: {e}"));
                fuzz_failures += 1;
                continue;
            }
        };
        let stw = compiled.run_with(&small(&base, 0));
        let incr = compiled.run_with(&small(&base, BUDGET));
        let semi = compiled.run_with(&VmConfig {
            gc_mode: GcMode::Semispace,
            ..base
        });
        let before = failures.len();
        check_triple(&format!("seed {seed}"), &stw, &incr, &semi, &mut failures);
        if failures.len() > before {
            fuzz_failures += 1;
        }
    }
    println!(
        "gc_pause_bench: progen differential over {n_seeds} seeds, {fuzz_failures} failure(s)"
    );

    // Stage 3: 16-tenant storm. The hostile tenant retains everything
    // it allocates, so any finite heap quota must trap; the good
    // tenants churn with a bounded live set and must be unaffected.
    let good_src = "
        fun build n = if n = 0 then [] else n :: build (n - 1)
        fun sum [] = 0 | sum (x :: r) = x + sum r
        fun churn 0 acc = acc
          | churn n acc = churn (n - 1) (acc + sum (build 40))
        val _ = print (itos (churn 200 0))
    ";
    let hostile_src = "
        fun grow l = grow (1 :: l)
        val _ = grow []
    ";
    let good = session
        .compile(good_src)
        .unwrap_or_else(|e| panic!("storm tenant failed to compile: {e}"));
    let hostile = session
        .compile(hostile_src)
        .unwrap_or_else(|e| panic!("hostile tenant failed to compile: {e}"));
    let good_cfg = small(&base, BUDGET);
    let hostile_cfg = VmConfig {
        tenured_words: 4096,
        ..small(&base, BUDGET)
    };
    let solo = good.run_with(&good_cfg);
    let mut sched = SchedulerBuilder::new()
        .quantum(10_000)
        .build()
        .expect("default storm scheduler validates");
    const STORM_TENANTS: usize = 16;
    const HOSTILE_SLOT: usize = 7;
    let good_prog = Arc::new(good.machine.clone());
    let hostile_prog = Arc::new(hostile.machine.clone());
    for slot in 0..STORM_TENANTS {
        let spec = if slot == HOSTILE_SLOT {
            TenantSpec::new(hostile_prog.clone(), &hostile_cfg)
        } else {
            TenantSpec::new(good_prog.clone(), &good_cfg)
        };
        sched
            .admit(spec)
            .expect("uncapped storm admits all tenants");
    }
    let (reports, stats) = sched.run_all();
    for (slot, r) in reports.iter().enumerate() {
        if slot == HOSTILE_SLOT {
            if r.outcome != TenantOutcome::HeapExhausted {
                failures.push(format!(
                    "storm: hostile tenant ended {:?}, expected HeapExhausted",
                    r.outcome
                ));
            }
        } else if r.outcome != TenantOutcome::Done
            || r.result != solo.result
            || r.output != solo.output
        {
            failures.push(format!(
                "storm: tenant {slot} degraded alongside the hostile tenant \
                 ({:?}, result {:?})",
                r.outcome, r.result
            ));
        }
    }
    println!(
        "storm: {} tenants, {} done / {} heap-exhausted in {} rounds \
         (max overshoot {} cycles)",
        stats.tenants, stats.done, stats.heap_exhausted, stats.rounds, stats.max_overshoot
    );

    let doc = Json::obj()
        .field("schema_version", METRICS_SCHEMA_VERSION)
        .field("generator", "gc_pause_bench")
        .field("variant", variant.name())
        .field(
            "config",
            Json::obj()
                .field("nursery_words", NURSERY)
                .field("tenured_words", TENURED)
                .field("promote_after", 1u64)
                .field("max_pause_cycles", BUDGET)
                .field(
                    "pause_bucket_limits",
                    Json::Arr(PAUSE_BUCKET_LIMITS.iter().map(|&l| Json::from(l)).collect()),
                ),
        )
        .field("benchmarks", Json::Arr(rows))
        .field(
            "summary",
            Json::obj()
                .field("major_collections", total_majors)
                .field("worst_pause_before", worst_before)
                .field("worst_pause_after", worst_after)
                .field("fuzz_seeds", n_seeds)
                .field("fuzz_failures", fuzz_failures)
                .field(
                    "storm",
                    Json::obj()
                        .field("tenants", stats.tenants)
                        .field("done", stats.done)
                        .field("heap_exhausted", stats.heap_exhausted)
                        .field("rounds", stats.rounds)
                        .field("slices", stats.slices)
                        .field("preemptions", stats.preemptions)
                        .field("max_overshoot", stats.max_overshoot),
                )
                .field("failures", failures.len()),
        );
    let mut text = doc.to_string_pretty();
    text.push('\n');
    std::fs::write(&path, text).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "gc_pause_bench: worst pause {worst_before} -> {worst_after} cycles \
         under a {BUDGET}-cycle budget; all outputs byte-identical"
    );
}
