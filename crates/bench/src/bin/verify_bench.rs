//! Measures the compile-time overhead of the typed-IR verification
//! pipeline on the figure benchmarks and writes the `BENCH_pr5.json`
//! trajectory document.
//!
//! ```sh
//! cargo run --release -p smlc-bench --bin verify_bench              # writes BENCH_pr5.json
//! cargo run --release -p smlc-bench --bin verify_bench -- --json=out.json
//! ```
//!
//! Every benchmark is compiled twice per variant — once with
//! `VerifyIr::Off` and once with `VerifyIr::Always` (three repetitions
//! each, median taken) — and the binary asserts the two contracts the
//! verification pipeline documents:
//!
//! 1. `Off` runs zero checks: verification is pay-for-what-you-use, and
//!    an `Off` compile does not touch the verifiers at all; and
//! 2. the emitted machine code is byte-identical across modes:
//!    verification only ever *checks* an IR, it never rewrites one.
//!
//! A violation of either contract exits nonzero. The per-benchmark
//! timings and check counts land in the JSON document so the verifier
//! overhead is tracked release over release.

use std::time::Instant;

use smlc::{Json, SessionBuilder, Variant, VerifyIr, METRICS_SCHEMA_VERSION};
use smlc_bench::benchmarks;

/// Representation extremes plus the paper's allocation-study variant.
const VARIANTS: [Variant; 3] = [Variant::Nrp, Variant::Ffb, Variant::Fp3];

/// Compile repetitions per (benchmark, variant, mode); the median
/// timing is reported.
const REPS: usize = 3;

fn median_ms(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn main() {
    let mut path = "BENCH_pr5.json".to_owned();
    for a in std::env::args().skip(1) {
        if let Some(p) = a.strip_prefix("--json=") {
            path = p.to_owned();
        } else {
            eprintln!("unknown argument `{a}` (only --json=PATH)");
            std::process::exit(2);
        }
    }

    let mut rows: Vec<Json> = Vec::new();
    let mut off_total = 0.0f64;
    let mut always_total = 0.0f64;

    for &variant in &VARIANTS {
        // No artifact cache: every compile below does full work.
        let off = SessionBuilder::default()
            .variant(variant)
            .cache(false)
            .verify_ir(VerifyIr::Off)
            .build()
            .expect("off session");
        let always = SessionBuilder::default()
            .variant(variant)
            .cache(false)
            .verify_ir(VerifyIr::Always)
            .build()
            .expect("always session");

        for b in benchmarks() {
            let src = b.source();
            let mut off_ms = Vec::new();
            let mut always_ms = Vec::new();
            let mut last = None;
            for _ in 0..REPS {
                let t = Instant::now();
                let co = off
                    .compile(&src)
                    .unwrap_or_else(|e| panic!("{} off/{variant:?}: {e}", b.name));
                off_ms.push(t.elapsed().as_secs_f64() * 1e3);

                let t = Instant::now();
                let ca = always
                    .compile(&src)
                    .unwrap_or_else(|e| panic!("{} always/{variant:?}: {e}", b.name));
                always_ms.push(t.elapsed().as_secs_f64() * 1e3);

                assert_eq!(
                    co.stats.verify.total_checks(),
                    0,
                    "{}: VerifyIr::Off ran verifier checks",
                    b.name
                );
                assert!(
                    ca.stats.verify.total_checks() > 0,
                    "{}: VerifyIr::Always ran no checks",
                    b.name
                );
                assert_eq!(
                    format!("{}", co.machine),
                    format!("{}", ca.machine),
                    "{}: verification changed the emitted code under {}",
                    b.name,
                    variant.name()
                );
                last = Some(ca);
            }
            let ca = last.unwrap();
            let o = median_ms(off_ms);
            let a = median_ms(always_ms);
            off_total += o;
            always_total += a;
            rows.push(
                Json::obj()
                    .field("name", b.name)
                    .field("variant", variant.name())
                    .field("off_ms", o)
                    .field("always_ms", a)
                    .field(
                        "overhead_pct",
                        if o > 0.0 { (a / o - 1.0) * 100.0 } else { 0.0 },
                    )
                    .field("lexp_checks", ca.stats.verify.lexp_checks)
                    .field("cps_checks", ca.stats.verify.cps_checks)
                    .field("bytecode_checks", ca.stats.verify.bytecode_checks)
                    .field("verify_ms", ca.stats.verify.time.as_secs_f64() * 1e3),
            );
            println!(
                "{:8} {:8}  off {o:8.2} ms  always {a:8.2} ms  ({:+6.1}%)",
                b.name,
                variant.name(),
                if o > 0.0 { (a / o - 1.0) * 100.0 } else { 0.0 }
            );
        }
    }

    let overhead = if off_total > 0.0 {
        (always_total / off_total - 1.0) * 100.0
    } else {
        0.0
    };
    println!(
        "verify_bench: off {off_total:.1} ms, always {always_total:.1} ms ({overhead:+.1}% overhead); \
         Off ran zero checks; code byte-identical across modes"
    );

    let doc = Json::obj()
        .field("schema_version", METRICS_SCHEMA_VERSION)
        .field("generator", "verify_bench")
        .field(
            "config",
            Json::obj()
                .field(
                    "variants",
                    VARIANTS
                        .iter()
                        .map(|v| v.name().to_owned())
                        .collect::<Vec<_>>(),
                )
                .field("reps", REPS),
        )
        .field("benchmarks", Json::Arr(rows))
        .field(
            "summary",
            Json::obj()
                .field("off_total_ms", off_total)
                .field("always_total_ms", always_total)
                .field("overhead_pct", overhead)
                .field("off_runs_zero_checks", true)
                .field("code_identical_across_modes", true),
        );
    let mut text = doc.to_string_pretty();
    text.push('\n');
    std::fs::write(&path, text).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {path}");
}
