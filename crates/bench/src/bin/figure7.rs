//! Regenerates the paper's Figure 7: per-benchmark execution-time ratios
//! of all six compilers, with `sml.nrp` as the baseline (1.00).
//!
//! ```sh
//! cargo run --release -p smlc-bench --bin figure7            # table only
//! cargo run --release -p smlc-bench --bin figure7 -- --json  # + BENCH_pr1.json
//! cargo run --release -p smlc-bench --bin figure7 -- --json=out.json
//! ```
//!
//! A degraded cell (compile error, VM trap, panic, or output
//! divergence) prints as `--` and its row is left out of the averages;
//! the JSON trajectory records the failure explicitly.

use smlc::Variant;
use smlc_bench::{degraded_cells, geomean, json_path_from_args, run_matrix, write_bench_json};

fn main() {
    let json_path = json_path_from_args(std::env::args().skip(1));
    let matrix = run_matrix();
    println!("Figure 7: execution time relative to sml.nrp (lower is better)\n");
    print!("{:10}", "program");
    for v in Variant::ALL {
        print!("  {:>8}", v.name());
    }
    println!();
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); 6];
    for row in &matrix {
        let clean_row = row.iter().all(|c| c.ok().is_some());
        let base = row[0].ok().map(|r| r.outcome.stats.cycles as f64);
        print!("{:10}", row[0].name());
        for (i, c) in row.iter().enumerate() {
            match (c.ok(), base) {
                (Some(r), Some(b)) => {
                    let ratio = r.outcome.stats.cycles as f64 / b;
                    if clean_row {
                        ratios[i].push(ratio);
                    }
                    print!("  {ratio:>8.3}");
                }
                _ => print!("  {:>8}", "--"),
            }
        }
        println!();
    }
    print!("{:10}", "Average");
    for r in &ratios {
        print!("  {:>8.3}", geomean(r));
    }
    println!();
    let bad = degraded_cells(&matrix);
    if !bad.is_empty() {
        println!();
        for d in &bad {
            println!(
                "degraded: {} under {} [{}] {}",
                d.name,
                d.variant.name(),
                d.kind,
                d.detail
            );
        }
    }
    if let Some(path) = json_path {
        write_bench_json(&path, &matrix, "figure7")
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}
