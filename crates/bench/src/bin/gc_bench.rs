//! Compares the generational collector against the semispace baseline
//! on the figure benchmarks and writes the `BENCH_pr4.json` trajectory
//! document.
//!
//! ```sh
//! cargo run --release -p smlc-bench --bin gc_bench               # writes BENCH_pr4.json
//! cargo run --release -p smlc-bench --bin gc_bench -- --json=out.json
//! ```
//!
//! Each benchmark is compiled once (under `sml.ffb`, the variant the
//! paper uses for its allocation study) and then run four times on the
//! same artifact:
//!
//! 1. the `Semispace` baseline — the PR 2 collector, bit for bit, and
//! 2. the generational collector at three nursery sizes (16 Ki, 64 Ki,
//!    256 Ki words), the middle one being the default configuration.
//!
//! The binary asserts that every configuration produces the identical
//! result and printed output (the collector must be outcome-invisible),
//! and that the generational default copies fewer total words than the
//! semispace baseline over the benchmarks where the baseline collects
//! at all — long-lived data (the prelude's closures, memo tables) is
//! re-copied by every semispace collection but settles into tenured
//! space under the generational scheme. A regression on either count
//! exits nonzero.

use smlc::{GcMode, Json, Outcome, Session, Variant, VmConfig, VmResult, METRICS_SCHEMA_VERSION};
use smlc_bench::benchmarks;

/// The three nursery sizes swept (words per half). The middle entry is
/// `VmConfig::default().nursery_words`.
const NURSERY_SWEEP: [usize; 3] = [16 << 10, 64 << 10, 256 << 10];

/// The nursery size whose totals gate the copied-words regression check.
const DEFAULT_NURSERY: usize = 64 << 10;

fn gc_stats_json(o: &Outcome) -> Json {
    let s = &o.stats;
    Json::obj()
        .field("cycles", s.cycles)
        .field("alloc_words", s.alloc_words)
        .field("collections", s.n_gcs)
        .field("minor_collections", s.n_minor_gcs)
        .field("major_collections", s.n_major_gcs)
        .field("copied_words", s.gc_copied_words)
        .field("promoted_words", s.promoted_words)
        .field("remembered_set_peak", s.remembered_peak)
        .field("gc_cycles", s.gc_cycles)
        .field("max_minor_pause_cycles", s.max_minor_pause)
        .field("max_major_pause_cycles", s.max_major_pause)
}

fn main() {
    let mut path = "BENCH_pr4.json".to_owned();
    for a in std::env::args().skip(1) {
        if let Some(p) = a.strip_prefix("--json=") {
            path = p.to_owned();
        } else {
            eprintln!("unknown argument `{a}` (only --json=PATH)");
            std::process::exit(2);
        }
    }

    let variant = Variant::Ffb;
    let base_cfg = variant.vm_config();
    let semispace = VmConfig {
        gc_mode: GcMode::Semispace,
        ..base_cfg
    };

    let session = Session::with_variant(variant);
    let mut rows: Vec<Json> = Vec::new();
    // Totals over benchmarks where the baseline actually collects.
    let mut base_copied_total: u64 = 0;
    let mut gen_copied_total: u64 = 0;
    let mut gating_benchmarks = 0usize;

    for b in benchmarks() {
        let compiled = session
            .compile(&b.source())
            .unwrap_or_else(|e| panic!("{} failed to compile under {variant}: {e}", b.name));

        let base = compiled.run_with(&semispace);
        assert!(
            matches!(base.result, VmResult::Value(_)),
            "{} ended abnormally under the semispace baseline: {:?}",
            b.name,
            base.result
        );

        let mut row = Json::obj()
            .field("name", b.name)
            .field("semispace", gc_stats_json(&base));
        let mut sweep = Vec::new();
        for nursery in NURSERY_SWEEP {
            let gen = compiled.run_with(&VmConfig {
                gc_mode: GcMode::Generational,
                nursery_words: nursery,
                ..base_cfg
            });
            assert_eq!(
                gen.result, base.result,
                "{} @ nursery {nursery}: result diverges from the semispace baseline",
                b.name
            );
            assert_eq!(
                gen.output, base.output,
                "{} @ nursery {nursery}: output diverges from the semispace baseline",
                b.name
            );
            if nursery == DEFAULT_NURSERY && base.stats.n_gcs > 0 {
                base_copied_total += base.stats.gc_copied_words;
                gen_copied_total += gen.stats.gc_copied_words;
                gating_benchmarks += 1;
            }
            sweep.push(
                Json::obj()
                    .field("nursery_words", nursery)
                    .field("stats", gc_stats_json(&gen)),
            );
        }
        row = row.field("generational", Json::Arr(sweep));
        rows.push(row);

        println!(
            "{:8}  alloc {:>10}  semispace: {:>3} gcs / {:>9} copied",
            b.name, base.stats.alloc_words, base.stats.n_gcs, base.stats.gc_copied_words
        );
    }

    println!(
        "gc_bench: outputs byte-identical across all collector configurations ({} benchmarks x {} runs)",
        rows.len(),
        NURSERY_SWEEP.len() + 1
    );
    println!(
        "copied words over the {gating_benchmarks} collecting benchmarks: semispace {base_copied_total}, generational {gen_copied_total}"
    );
    let copied_ok = gating_benchmarks == 0 || gen_copied_total < base_copied_total;
    if !copied_ok {
        eprintln!(
            "REGRESSION: generational collector copied {gen_copied_total} words, \
             semispace baseline {base_copied_total}"
        );
    }

    let doc = Json::obj()
        .field("schema_version", METRICS_SCHEMA_VERSION)
        .field("generator", "gc_bench")
        .field("variant", variant.name())
        .field(
            "config",
            Json::obj()
                .field("nursery_sweep_words", NURSERY_SWEEP.to_vec())
                .field("default_nursery_words", DEFAULT_NURSERY)
                .field("tenured_words", base_cfg.tenured_words)
                .field("promote_after", u64::from(base_cfg.promote_after)),
        )
        .field("benchmarks", Json::Arr(rows))
        .field(
            "summary",
            Json::obj()
                .field("gating_benchmarks", gating_benchmarks)
                .field("semispace_copied_words", base_copied_total)
                .field("generational_copied_words", gen_copied_total)
                .field("generational_copies_less", copied_ok)
                .field("outputs_identical", true),
        );
    let mut text = doc.to_string_pretty();
    text.push('\n');
    std::fs::write(&path, text).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {path}");
    if !copied_ok {
        std::process::exit(1);
    }
}
