//! The twelve benchmark programs of the paper's evaluation (§6) and
//! helpers for running them under the six compiler variants.
//!
//! The originals averaged 1820 lines of full SML; these are smaller
//! workloads with the same names and operation mix (see DESIGN.md §3):
//! MBrot/Nucleic/Simple/Ray/BHut are floating-point intensive,
//! Sieve/KB-Comp use continuations and exceptions, VLIW/KB-Comp are
//! higher-order heavy, Life tests set membership with polymorphic
//! equality in its inner loop, Boyer rewrites terms, Lexgen chews
//! strings, and Yacc parses token streams.

use smlc::{compile, CompileStats, Outcome, Variant, VmResult};

/// The shared prelude compiled in front of every benchmark.
pub const PRELUDE: &str = include_str!("../benchmarks/prelude.sml");

/// One benchmark program.
#[derive(Clone, Copy, Debug)]
pub struct Benchmark {
    /// Display name (matching the paper's Figure 7 labels).
    pub name: &'static str,
    /// The SML source (without the prelude).
    pub body: &'static str,
}

impl Benchmark {
    /// The full source: prelude plus benchmark body.
    pub fn source(&self) -> String {
        format!("{PRELUDE}\n{}", self.body)
    }
}

/// All twelve benchmarks, in the paper's Figure 7 order.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark { name: "BHut", body: include_str!("../benchmarks/bhut.sml") },
        Benchmark { name: "Boyer", body: include_str!("../benchmarks/boyer.sml") },
        Benchmark { name: "Sieve", body: include_str!("../benchmarks/sieve.sml") },
        Benchmark { name: "KB-C", body: include_str!("../benchmarks/kbc.sml") },
        Benchmark { name: "Lexgen", body: include_str!("../benchmarks/lexgen.sml") },
        Benchmark { name: "Yacc", body: include_str!("../benchmarks/yacc.sml") },
        Benchmark { name: "Simple", body: include_str!("../benchmarks/simple.sml") },
        Benchmark { name: "Ray", body: include_str!("../benchmarks/ray.sml") },
        Benchmark { name: "Life", body: include_str!("../benchmarks/life.sml") },
        Benchmark { name: "VLIW", body: include_str!("../benchmarks/vliw.sml") },
        Benchmark { name: "MBrot", body: include_str!("../benchmarks/mbrot.sml") },
        Benchmark { name: "Nucleic", body: include_str!("../benchmarks/nucleic.sml") },
    ]
}

/// The result of one benchmark under one variant.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: &'static str,
    /// Compiler variant.
    pub variant: Variant,
    /// Compilation statistics.
    pub compile: CompileStats,
    /// Execution outcome.
    pub outcome: Outcome,
}

/// Compiles and runs one benchmark under one variant.
///
/// # Panics
///
/// Panics on compile errors or abnormal termination — the benchmarks are
/// fixed programs that must run cleanly.
pub fn run_one(b: &Benchmark, v: Variant) -> BenchResult {
    let src = b.source();
    let compiled = compile(&src, v)
        .unwrap_or_else(|e| panic!("{} failed to compile under {v}: {e}", b.name));
    let outcome = compiled.run();
    assert!(
        matches!(outcome.result, VmResult::Value(_)),
        "{} under {v} ended abnormally: {:?} (output {:?})",
        b.name,
        outcome.result,
        outcome.output
    );
    BenchResult { name: b.name, variant: v, compile: compiled.stats, outcome }
}

/// Runs every benchmark under every variant, checking that all variants
/// agree on the printed output (a differential-correctness harness), and
/// returns the full result matrix indexed `[benchmark][variant]`.
pub fn run_matrix() -> Vec<Vec<BenchResult>> {
    benchmarks()
        .iter()
        .map(|b| {
            let row: Vec<BenchResult> =
                Variant::all().iter().map(|v| run_one(b, *v)).collect();
            for r in &row[1..] {
                assert_eq!(
                    r.outcome.output, row[0].outcome.output,
                    "{}: {} disagrees with {}",
                    b.name, r.variant, row[0].variant
                );
            }
            row
        })
        .collect()
}

/// Geometric mean of a slice of ratios.
pub fn geomean(xs: &[f64]) -> f64 {
    let s: f64 = xs.iter().map(|x| x.ln()).sum();
    (s / xs.len() as f64).exp()
}
