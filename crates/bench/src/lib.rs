//! The twelve benchmark programs of the paper's evaluation (§6) and
//! helpers for running them under the six compiler variants.
//!
//! The originals averaged 1820 lines of full SML; these are smaller
//! workloads with the same names and operation mix (see DESIGN.md §3):
//! MBrot/Nucleic/Simple/Ray/BHut are floating-point intensive,
//! Sieve/KB-Comp use continuations and exceptions, VLIW/KB-Comp are
//! higher-order heavy, Life tests set membership with polymorphic
//! equality in its inner loop, Boyer rewrites terms, Lexgen chews
//! strings, and Yacc parses token streams.
//!
//! [`run_matrix`] fans the 12×6 grid out through
//! [`Session::compile_batch`] (workers share the session's LTY
//! hash-cons arena, which is insertion-order-independent, so cells
//! stay scheduling-invariant even warm), then
//! runs the compiled artifacts under the same parallel driver;
//! [`run_matrix_serial`] is the single-threaded reference the
//! differential test compares against — a one-worker [`Session`] over
//! the identical job list. [`matrix_json`] turns a result matrix into
//! the `BENCH_*.json` trajectory document described in
//! `docs/OBSERVABILITY.md`.
//!
//! A matrix is a grid of [`BenchCell`]s, not bare results: a cell whose
//! compilation errors, whose VM run traps, or whose worker panics is
//! isolated and recorded as [`BenchCell::Degraded`] — it shows up
//! explicitly in the trajectory document and is excluded from the
//! geomean summary, but it never kills the rest of the matrix (see
//! `docs/ROBUSTNESS.md`).

#![warn(missing_docs)]

use smlc::{
    par_map, result_tag, CompileError, CompileStats, Compiled, Job, Json, Metrics, Outcome,
    RunMetrics, Session, Variant, VmResult, METRICS_SCHEMA_VERSION,
};

/// The shared prelude compiled in front of every benchmark.
pub const PRELUDE: &str = include_str!("../benchmarks/prelude.sml");

/// One benchmark program.
#[derive(Clone, Copy, Debug)]
pub struct Benchmark {
    /// Display name (matching the paper's Figure 7 labels).
    pub name: &'static str,
    /// The SML source (without the prelude).
    pub body: &'static str,
}

impl Benchmark {
    /// The full source: prelude plus benchmark body.
    pub fn source(&self) -> String {
        format!("{PRELUDE}\n{}", self.body)
    }
}

/// All twelve benchmarks, in the paper's Figure 7 order.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "BHut",
            body: include_str!("../benchmarks/bhut.sml"),
        },
        Benchmark {
            name: "Boyer",
            body: include_str!("../benchmarks/boyer.sml"),
        },
        Benchmark {
            name: "Sieve",
            body: include_str!("../benchmarks/sieve.sml"),
        },
        Benchmark {
            name: "KB-C",
            body: include_str!("../benchmarks/kbc.sml"),
        },
        Benchmark {
            name: "Lexgen",
            body: include_str!("../benchmarks/lexgen.sml"),
        },
        Benchmark {
            name: "Yacc",
            body: include_str!("../benchmarks/yacc.sml"),
        },
        Benchmark {
            name: "Simple",
            body: include_str!("../benchmarks/simple.sml"),
        },
        Benchmark {
            name: "Ray",
            body: include_str!("../benchmarks/ray.sml"),
        },
        Benchmark {
            name: "Life",
            body: include_str!("../benchmarks/life.sml"),
        },
        Benchmark {
            name: "VLIW",
            body: include_str!("../benchmarks/vliw.sml"),
        },
        Benchmark {
            name: "MBrot",
            body: include_str!("../benchmarks/mbrot.sml"),
        },
        Benchmark {
            name: "Nucleic",
            body: include_str!("../benchmarks/nucleic.sml"),
        },
    ]
}

/// The result of one benchmark under one variant.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: &'static str,
    /// Compiler variant.
    pub variant: Variant,
    /// Compilation statistics.
    pub compile: CompileStats,
    /// Execution outcome.
    pub outcome: Outcome,
}

impl BenchResult {
    /// This cell as a [`Metrics`] snapshot (the per-variant schema of
    /// `smlc --stats=json`).
    pub fn metrics(&self) -> Metrics {
        Metrics {
            variant: self.variant.name().to_owned(),
            compile: self.compile.clone(),
            run: Some(RunMetrics {
                result: result_tag(&self.outcome.result),
                stats: self.outcome.stats,
            }),
            dispatch: Some(self.outcome.dispatch),
            cache: None,
            arena: None,
            sched: None,
            server: None,
        }
    }
}

/// Compiles and runs one benchmark under one variant.
///
/// # Panics
///
/// Panics on compile errors or abnormal termination — the benchmarks are
/// fixed programs that must run cleanly. Matrix drivers use the
/// fault-containing [`run_cell`] instead.
pub fn run_one(b: &Benchmark, v: Variant) -> BenchResult {
    let session = Session::with_variant(v);
    let compiled = session
        .compile(&b.source())
        .unwrap_or_else(|e| panic!("{} failed to compile under {v}: {e}", b.name));
    let outcome = session.run(&compiled);
    assert!(
        matches!(outcome.result, VmResult::Value(_)),
        "{} under {v} ended abnormally: {:?} (output {:?})",
        b.name,
        outcome.result,
        outcome.output
    );
    BenchResult {
        name: b.name,
        variant: v,
        compile: compiled.stats,
        outcome,
    }
}

/// A matrix cell that failed: the failure class and enough detail to
/// reproduce, kept in the trajectory instead of aborting the run.
#[derive(Clone, Debug)]
pub struct Degraded {
    /// Benchmark name.
    pub name: &'static str,
    /// Compiler variant.
    pub variant: Variant,
    /// Failure class: `"compile-error"`, `"vm-trap"`, `"panic"`, or
    /// `"output-divergence"`.
    pub kind: &'static str,
    /// Human-readable detail: the compile error, the trap, the panic
    /// message, or the variant the output diverged from.
    pub detail: String,
}

/// One cell of the benchmark matrix: a clean `Value` run, or an
/// isolated failure recorded in place.
#[derive(Clone, Debug)]
pub enum BenchCell {
    /// The benchmark compiled and halted normally.
    Ok(Box<BenchResult>),
    /// The cell failed; the failure is contained here.
    Degraded(Degraded),
}

impl BenchCell {
    /// The successful result, if this cell ran cleanly.
    pub fn ok(&self) -> Option<&BenchResult> {
        match self {
            BenchCell::Ok(r) => Some(r.as_ref()),
            BenchCell::Degraded(_) => None,
        }
    }

    /// The failure record, if this cell degraded.
    pub fn degraded(&self) -> Option<&Degraded> {
        match self {
            BenchCell::Ok(_) => None,
            BenchCell::Degraded(d) => Some(d),
        }
    }

    /// Benchmark name (present in both arms).
    pub fn name(&self) -> &'static str {
        match self {
            BenchCell::Ok(r) => r.name,
            BenchCell::Degraded(d) => d.name,
        }
    }

    /// Compiler variant (present in both arms).
    pub fn variant(&self) -> Variant {
        match self {
            BenchCell::Ok(r) => r.variant,
            BenchCell::Degraded(d) => d.variant,
        }
    }

    /// The trajectory-document JSON for this cell: full [`Metrics`] for
    /// a clean run, or an explicit `{"degraded": true, ...}` record.
    pub fn to_json(&self) -> Json {
        match self {
            BenchCell::Ok(r) => r.metrics().to_json(),
            BenchCell::Degraded(d) => Json::obj()
                .field("variant", d.variant.name())
                .field("degraded", true)
                .field("kind", d.kind)
                .field("detail", d.detail.as_str()),
        }
    }
}

/// Best-effort rendering of a panic payload.
fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of unknown type".to_owned()
    }
}

/// Turns one batch compilation result into a matrix cell by running it
/// under `session`'s VM configuration with full fault containment: the
/// compile error, the VM trap, or even a panic that escapes the VM all
/// come back as [`BenchCell::Degraded`] instead of propagating.
fn cell_of(
    session: &Session,
    b: &Benchmark,
    v: Variant,
    compiled: &Result<Compiled, CompileError>,
) -> BenchCell {
    let degraded = |kind, detail| {
        BenchCell::Degraded(Degraded {
            name: b.name,
            variant: v,
            kind,
            detail,
        })
    };
    let c = match compiled {
        Err(e) => return degraded("compile-error", e.to_string()),
        Ok(c) => c,
    };
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| session.run(c)));
    match attempt {
        Err(payload) => degraded("panic", panic_detail(payload)),
        Ok(outcome) => match outcome.result {
            VmResult::Value(_) => BenchCell::Ok(Box::new(BenchResult {
                name: b.name,
                variant: v,
                compile: c.stats.clone(),
                outcome,
            })),
            ref trap => degraded("vm-trap", format!("{}: {trap:?}", result_tag(trap))),
        },
    }
}

/// Compiles and runs one benchmark under one variant with full fault
/// containment (see [`cell_of`]) in an ephemeral single-cell session.
pub fn run_cell(b: &Benchmark, v: Variant) -> BenchCell {
    let session = Session::with_variant(v);
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        session.compile(&b.source())
    }));
    match attempt {
        Err(payload) => BenchCell::Degraded(Degraded {
            name: b.name,
            variant: v,
            kind: "panic",
            detail: panic_detail(payload),
        }),
        Ok(compiled) => cell_of(&session, b, v, &compiled),
    }
}

/// The session the parallel matrix drivers use: default knobs plus an
/// artifact cache big enough that a repeated matrix (the cache bench's
/// warm pass) is served entirely from cache.
pub fn matrix_session() -> Session {
    Session::builder()
        .cache_capacity(256)
        .build()
        .expect("matrix session configuration is valid")
}

/// Runs every benchmark under every variant in parallel, checking that
/// all variants agree on the printed output (a differential-correctness
/// harness), and returns the full cell matrix indexed
/// `[benchmark][variant]`.
///
/// Cells are handed to worker threads through `Session::compile_batch`'s
/// atomic work queue; the matrix comes back in the same deterministic
/// order as [`run_matrix_serial`], and compilation/execution is fully
/// deterministic per cell (the shared LTY arena is insertion-order-
/// independent and per-cell counters come from per-compile views), so
/// the two produce identical outputs and counters. A cell
/// that fails in any way degrades in place (see [`cell_of`]); it never
/// aborts the matrix.
pub fn run_matrix() -> Vec<Vec<BenchCell>> {
    run_matrix_of(&benchmarks())
}

/// Single-threaded reference implementation of [`run_matrix`].
pub fn run_matrix_serial() -> Vec<Vec<BenchCell>> {
    run_matrix_serial_of(&benchmarks())
}

/// Parallel matrix run over an explicit benchmark list (see
/// [`run_matrix`]).
pub fn run_matrix_of(benches: &[Benchmark]) -> Vec<Vec<BenchCell>> {
    run_matrix_in(&matrix_session(), benches)
}

/// Single-threaded matrix run over an explicit benchmark list: the same
/// job list through a one-worker session.
pub fn run_matrix_serial_of(benches: &[Benchmark]) -> Vec<Vec<BenchCell>> {
    let session = Session::builder()
        .batch_workers(1)
        .cache_capacity(256)
        .build()
        .expect("serial session configuration is valid");
    run_matrix_in(&session, benches)
}

/// Matrix run over an explicit benchmark list through an explicit
/// session: one `compile_batch` over the benchmark×variant job grid,
/// then a run phase under the same worker count, then the differential
/// output check ([`mark_divergence`]). Repeated sources hit the
/// session's artifact cache; `session.cache_stats()` afterwards says
/// how often.
pub fn run_matrix_in(session: &Session, benches: &[Benchmark]) -> Vec<Vec<BenchCell>> {
    let variants = Variant::ALL;
    if benches.is_empty() {
        return Vec::new();
    }
    let jobs: Vec<Job> = benches
        .iter()
        .flat_map(|b| {
            let src = b.source();
            variants.map(|v| Job::with_variant(src.clone(), v))
        })
        .collect();
    let compiled = session.compile_batch(&jobs);
    let cells: Vec<BenchCell> = par_map(&compiled, session.batch_workers(), |i, result| {
        cell_of(
            session,
            &benches[i / variants.len()],
            variants[i % variants.len()],
            result,
        )
    });
    let mut matrix: Vec<Vec<BenchCell>> = cells
        .chunks(variants.len())
        .map(|row| row.to_vec())
        .collect();
    mark_divergence(&mut matrix);
    matrix
}

/// The differential-correctness check: every clean variant of a
/// benchmark must print byte-identical output. The first clean cell of
/// a row is the reference; a clean cell that disagrees with it degrades
/// to an `"output-divergence"` record rather than killing the matrix.
fn mark_divergence(matrix: &mut [Vec<BenchCell>]) {
    for row in matrix {
        let Some((ref_idx, ref_out, ref_variant)) = row
            .iter()
            .enumerate()
            .find_map(|(i, c)| c.ok().map(|r| (i, r.outcome.output.clone(), r.variant)))
        else {
            continue;
        };
        for (i, cell) in row.iter_mut().enumerate() {
            if i == ref_idx {
                continue;
            }
            let diverged = cell.ok().is_some_and(|r| r.outcome.output != ref_out);
            if diverged {
                *cell = BenchCell::Degraded(Degraded {
                    name: cell.name(),
                    variant: cell.variant(),
                    kind: "output-divergence",
                    detail: format!("printed output differs from {}", ref_variant.name()),
                });
            }
        }
    }
}

/// All degraded cells of a matrix, in row-major order.
pub fn degraded_cells(matrix: &[Vec<BenchCell>]) -> Vec<&Degraded> {
    matrix
        .iter()
        .flat_map(|row| row.iter().filter_map(BenchCell::degraded))
        .collect()
}

/// Geometric mean of a slice of ratios.
///
/// The empty product convention applies: an empty slice has geomean 1.0
/// (not NaN), and a single element is (up to rounding) its own mean.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let s: f64 = xs.iter().map(|x| x.ln()).sum();
    (s / xs.len() as f64).exp()
}

/// Renders a cell matrix as the `BENCH_*.json` trajectory document
/// (schema in `docs/OBSERVABILITY.md`): full per-cell [`Metrics`] for
/// clean runs, explicit `degraded` records for failed cells, plus the
/// Figure 8 geomean summary against the `sml.nrp` baseline.
///
/// A row contributes to the geomean summary only when every one of its
/// cells ran cleanly — a degraded baseline makes ratios meaningless,
/// and dropping whole rows keeps every per-variant geomean computed
/// over the same benchmark set. The summary's `degraded_cells` count
/// says how much was excluded; nothing is folded in silently.
pub fn matrix_json(matrix: &[Vec<BenchCell>], generator: &str) -> Json {
    let benches: Vec<Json> = matrix
        .iter()
        .map(|row| {
            let cells: Vec<Json> = row.iter().map(BenchCell::to_json).collect();
            Json::obj()
                .field("name", row[0].name())
                .field("variants", Json::Arr(cells))
        })
        .collect();

    let n_variants = Variant::ALL.len();
    let mut exec: Vec<Vec<f64>> = vec![Vec::new(); n_variants];
    let mut alloc: Vec<Vec<f64>> = vec![Vec::new(); n_variants];
    let mut code: Vec<Vec<f64>> = vec![Vec::new(); n_variants];
    let mut ctime: Vec<Vec<f64>> = vec![Vec::new(); n_variants];
    for row in matrix {
        let clean: Vec<&BenchResult> = row.iter().filter_map(BenchCell::ok).collect();
        if clean.len() != row.len() {
            continue;
        }
        let be = clean[0].outcome.stats.cycles as f64;
        let ba = clean[0].outcome.stats.alloc_words as f64;
        let bc = clean[0].compile.code_size as f64;
        let bt = clean[0].compile.compile_time.as_secs_f64();
        for (i, r) in clean.iter().enumerate() {
            exec[i].push(r.outcome.stats.cycles as f64 / be);
            alloc[i].push(r.outcome.stats.alloc_words as f64 / ba);
            code[i].push(r.compile.code_size as f64 / bc);
            ctime[i].push(r.compile.compile_time.as_secs_f64() / bt);
        }
    }
    let mut summary = Json::obj()
        .field("baseline", Variant::ALL[0].name())
        .field("degraded_cells", degraded_cells(matrix).len());
    for (i, v) in Variant::ALL.iter().enumerate() {
        summary = summary.field(
            v.name(),
            Json::obj()
                .field("exec_cycles", geomean(&exec[i]))
                .field("alloc_words", geomean(&alloc[i]))
                .field("code_size", geomean(&code[i]))
                .field("compile_time", geomean(&ctime[i])),
        );
    }

    Json::obj()
        .field("schema_version", METRICS_SCHEMA_VERSION)
        .field("generator", generator)
        .field("benchmarks", Json::Arr(benches))
        .field("summary", summary)
}

/// Writes a matrix as a trajectory file (see [`matrix_json`]), returning
/// the path it wrote.
///
/// # Errors
///
/// Propagates I/O errors from writing `path`.
pub fn write_bench_json(
    path: &str,
    matrix: &[Vec<BenchCell>],
    generator: &str,
) -> std::io::Result<()> {
    let mut doc = matrix_json(matrix, generator).to_string_pretty();
    doc.push('\n');
    std::fs::write(path, doc)
}

/// Default output path for trajectory files, relative to the working
/// directory (`cargo run` leaves that at the workspace root).
pub const BENCH_JSON_PATH: &str = "BENCH_pr1.json";

/// Parses `--json` / `--json=PATH` out of a bench binary's arguments,
/// returning the trajectory output path if one was requested.
/// Exits with status 2 on any other argument.
pub fn json_path_from_args(args: impl Iterator<Item = String>) -> Option<String> {
    let mut path = None;
    for a in args {
        if a == "--json" {
            path = Some(BENCH_JSON_PATH.to_owned());
        } else if let Some(p) = a.strip_prefix("--json=") {
            path = Some(p.to_owned());
        } else {
            eprintln!("unknown argument `{a}` (only --json[=PATH])");
            std::process::exit(2);
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_empty_is_one() {
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn geomean_of_single_element_is_itself() {
        assert!((geomean(&[2.5]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_reciprocal_pair_is_one() {
        assert!((geomean(&[4.0, 0.25]) - 1.0).abs() < 1e-12);
    }

    /// The parallel matrix must be byte-identical to the serial
    /// reference — same outputs, same deterministic counters. Uses the
    /// two cheapest benchmarks to keep test time sane; figure7/figure8
    /// exercise the full grid.
    #[test]
    fn parallel_matrix_matches_serial() {
        let benches: Vec<Benchmark> = benchmarks()
            .into_iter()
            .filter(|b| b.name == "Sieve" || b.name == "Life")
            .collect();
        assert_eq!(benches.len(), 2);
        let par = run_matrix_of(&benches);
        let ser = run_matrix_serial_of(&benches);
        assert_eq!(par.len(), ser.len());
        for (prow, srow) in par.iter().zip(&ser) {
            for (pc, sc) in prow.iter().zip(srow) {
                let p = pc.ok().expect("benchmark cell should run cleanly");
                let s = sc.ok().expect("benchmark cell should run cleanly");
                assert_eq!(p.name, s.name);
                assert_eq!(p.variant, s.variant);
                assert_eq!(p.outcome.output, s.outcome.output);
                assert_eq!(p.outcome.stats.cycles, s.outcome.stats.cycles);
                assert_eq!(p.outcome.stats.alloc_words, s.outcome.stats.alloc_words);
                assert_eq!(
                    p.outcome.stats.cycles_by_class,
                    s.outcome.stats.cycles_by_class
                );
                assert_eq!(p.compile.code_size, s.compile.code_size);
                assert_eq!(p.compile.lty, s.compile.lty);
            }
        }
    }

    #[test]
    fn empty_matrix_serializes() {
        let doc = matrix_json(&[], "test").to_string_compact();
        assert!(doc.contains("\"benchmarks\":[]"));
        assert!(doc.contains(&format!("\"schema_version\":{METRICS_SCHEMA_VERSION}")));
        assert!(doc.contains("\"degraded_cells\":0"));
    }

    /// A cell whose compilation fails degrades in place; the rest of
    /// the matrix still runs, and the trajectory document records the
    /// failure explicitly while excluding the row from the geomeans.
    #[test]
    fn broken_benchmark_degrades_without_killing_the_matrix() {
        let benches = [
            Benchmark {
                name: "Bad",
                body: "val x = 1 + \"not an int\"",
            },
            Benchmark {
                name: "Sieve",
                body: include_str!("../benchmarks/sieve.sml"),
            },
        ];
        let matrix = run_matrix_of(&benches);
        assert_eq!(matrix.len(), 2);
        let bad = degraded_cells(&matrix);
        assert_eq!(bad.len(), Variant::ALL.len(), "every Bad cell degrades");
        assert!(bad
            .iter()
            .all(|d| d.name == "Bad" && d.kind == "compile-error"));
        assert!(matrix[1].iter().all(|c| c.ok().is_some()));

        let doc = matrix_json(&matrix, "test").to_string_compact();
        assert!(doc.contains("\"degraded\":true"));
        assert!(doc.contains("\"kind\":\"compile-error\""));
        assert!(doc.contains(&format!("\"degraded_cells\":{}", bad.len())));
        // The clean Sieve row is its own baseline, so every summary
        // ratio is computed and finite.
        assert!(!doc.contains("NaN"));
    }

    /// A trapping run (uncaught exception) is recorded as a `vm-trap`
    /// degraded cell with the stable metric tag in its detail.
    #[test]
    fn trapping_cell_is_recorded_as_vm_trap() {
        let b = Benchmark {
            name: "Boom",
            body: "exception Boom val _ = raise Boom",
        };
        let cell = run_cell(&b, Variant::ALL[0]);
        let d = cell.degraded().expect("raise Boom must degrade the cell");
        assert_eq!(d.kind, "vm-trap");
        assert!(d.detail.starts_with("uncaught:"), "detail: {}", d.detail);
    }
}
