//! The twelve benchmark programs of the paper's evaluation (§6) and
//! helpers for running them under the six compiler variants.
//!
//! The originals averaged 1820 lines of full SML; these are smaller
//! workloads with the same names and operation mix (see DESIGN.md §3):
//! MBrot/Nucleic/Simple/Ray/BHut are floating-point intensive,
//! Sieve/KB-Comp use continuations and exceptions, VLIW/KB-Comp are
//! higher-order heavy, Life tests set membership with polymorphic
//! equality in its inner loop, Boyer rewrites terms, Lexgen chews
//! strings, and Yacc parses token streams.
//!
//! [`run_matrix`] fans the 12×6 grid out across worker threads (each
//! compilation owns its LTY interner, so cells are independent);
//! [`run_matrix_serial`] is the single-threaded reference the
//! differential test compares against. [`matrix_json`] turns a result
//! matrix into the `BENCH_*.json` trajectory document described in
//! `docs/OBSERVABILITY.md`.

#![warn(missing_docs)]

use smlc::{
    compile, result_tag, CompileStats, Json, Metrics, Outcome, RunMetrics, Variant, VmResult,
    METRICS_SCHEMA_VERSION,
};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The shared prelude compiled in front of every benchmark.
pub const PRELUDE: &str = include_str!("../benchmarks/prelude.sml");

/// One benchmark program.
#[derive(Clone, Copy, Debug)]
pub struct Benchmark {
    /// Display name (matching the paper's Figure 7 labels).
    pub name: &'static str,
    /// The SML source (without the prelude).
    pub body: &'static str,
}

impl Benchmark {
    /// The full source: prelude plus benchmark body.
    pub fn source(&self) -> String {
        format!("{PRELUDE}\n{}", self.body)
    }
}

/// All twelve benchmarks, in the paper's Figure 7 order.
pub fn benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "BHut",
            body: include_str!("../benchmarks/bhut.sml"),
        },
        Benchmark {
            name: "Boyer",
            body: include_str!("../benchmarks/boyer.sml"),
        },
        Benchmark {
            name: "Sieve",
            body: include_str!("../benchmarks/sieve.sml"),
        },
        Benchmark {
            name: "KB-C",
            body: include_str!("../benchmarks/kbc.sml"),
        },
        Benchmark {
            name: "Lexgen",
            body: include_str!("../benchmarks/lexgen.sml"),
        },
        Benchmark {
            name: "Yacc",
            body: include_str!("../benchmarks/yacc.sml"),
        },
        Benchmark {
            name: "Simple",
            body: include_str!("../benchmarks/simple.sml"),
        },
        Benchmark {
            name: "Ray",
            body: include_str!("../benchmarks/ray.sml"),
        },
        Benchmark {
            name: "Life",
            body: include_str!("../benchmarks/life.sml"),
        },
        Benchmark {
            name: "VLIW",
            body: include_str!("../benchmarks/vliw.sml"),
        },
        Benchmark {
            name: "MBrot",
            body: include_str!("../benchmarks/mbrot.sml"),
        },
        Benchmark {
            name: "Nucleic",
            body: include_str!("../benchmarks/nucleic.sml"),
        },
    ]
}

/// The result of one benchmark under one variant.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: &'static str,
    /// Compiler variant.
    pub variant: Variant,
    /// Compilation statistics.
    pub compile: CompileStats,
    /// Execution outcome.
    pub outcome: Outcome,
}

impl BenchResult {
    /// This cell as a [`Metrics`] snapshot (the per-variant schema of
    /// `smlc --stats=json`).
    pub fn metrics(&self) -> Metrics {
        Metrics {
            variant: self.variant.name().to_owned(),
            compile: self.compile.clone(),
            run: Some(RunMetrics {
                result: result_tag(&self.outcome.result),
                stats: self.outcome.stats,
            }),
        }
    }
}

/// Compiles and runs one benchmark under one variant.
///
/// # Panics
///
/// Panics on compile errors or abnormal termination — the benchmarks are
/// fixed programs that must run cleanly.
pub fn run_one(b: &Benchmark, v: Variant) -> BenchResult {
    let src = b.source();
    let compiled =
        compile(&src, v).unwrap_or_else(|e| panic!("{} failed to compile under {v}: {e}", b.name));
    let outcome = compiled.run();
    assert!(
        matches!(outcome.result, VmResult::Value(_)),
        "{} under {v} ended abnormally: {:?} (output {:?})",
        b.name,
        outcome.result,
        outcome.output
    );
    BenchResult {
        name: b.name,
        variant: v,
        compile: compiled.stats,
        outcome,
    }
}

/// Runs every benchmark under every variant in parallel, checking that
/// all variants agree on the printed output (a differential-correctness
/// harness), and returns the full result matrix indexed
/// `[benchmark][variant]`.
///
/// Cells are handed to worker threads through an atomic work queue;
/// the matrix comes back in the same deterministic order as
/// [`run_matrix_serial`], and compilation/execution is fully
/// deterministic per cell (each compilation owns its LTY interner), so
/// the two produce identical outputs and counters.
pub fn run_matrix() -> Vec<Vec<BenchResult>> {
    run_matrix_of(&benchmarks())
}

/// Single-threaded reference implementation of [`run_matrix`].
pub fn run_matrix_serial() -> Vec<Vec<BenchResult>> {
    run_matrix_serial_of(&benchmarks())
}

/// Parallel matrix run over an explicit benchmark list (see
/// [`run_matrix`]).
pub fn run_matrix_of(benches: &[Benchmark]) -> Vec<Vec<BenchResult>> {
    let variants = Variant::all();
    let n_cells = benches.len() * variants.len();
    if n_cells == 0 {
        return Vec::new();
    }
    let next = AtomicUsize::new(0);
    let n_workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n_cells);

    let mut done: Vec<(usize, BenchResult)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n_workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_cells {
                            break;
                        }
                        let b = &benches[i / variants.len()];
                        let v = variants[i % variants.len()];
                        out.push((i, run_one(b, v)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("benchmark worker panicked"))
            .collect()
    });
    done.sort_by_key(|(i, _)| *i);

    let cells: Vec<BenchResult> = done.into_iter().map(|(_, r)| r).collect();
    let matrix: Vec<Vec<BenchResult>> = cells
        .chunks(variants.len())
        .map(|row| row.to_vec())
        .collect();
    assert_differential(&matrix);
    matrix
}

/// Single-threaded matrix run over an explicit benchmark list.
pub fn run_matrix_serial_of(benches: &[Benchmark]) -> Vec<Vec<BenchResult>> {
    let matrix: Vec<Vec<BenchResult>> = benches
        .iter()
        .map(|b| Variant::all().iter().map(|v| run_one(b, *v)).collect())
        .collect();
    assert_differential(&matrix);
    matrix
}

/// The differential-correctness check: every variant of a benchmark must
/// print byte-identical output.
fn assert_differential(matrix: &[Vec<BenchResult>]) {
    for row in matrix {
        for r in &row[1..] {
            assert_eq!(
                r.outcome.output, row[0].outcome.output,
                "{}: {} disagrees with {}",
                r.name, r.variant, row[0].variant
            );
        }
    }
}

/// Geometric mean of a slice of ratios.
///
/// The empty product convention applies: an empty slice has geomean 1.0
/// (not NaN), and a single element is (up to rounding) its own mean.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let s: f64 = xs.iter().map(|x| x.ln()).sum();
    (s / xs.len() as f64).exp()
}

/// Renders a result matrix as the `BENCH_*.json` trajectory document
/// (schema in `docs/OBSERVABILITY.md`): full per-cell [`Metrics`] plus
/// the Figure 8 geomean summary against the `sml.nrp` baseline.
pub fn matrix_json(matrix: &[Vec<BenchResult>], generator: &str) -> Json {
    let benches: Vec<Json> = matrix
        .iter()
        .map(|row| {
            let cells: Vec<Json> = row.iter().map(|r| r.metrics().to_json()).collect();
            Json::obj()
                .field("name", row[0].name)
                .field("variants", Json::Arr(cells))
        })
        .collect();

    let n_variants = Variant::all().len();
    let mut exec: Vec<Vec<f64>> = vec![Vec::new(); n_variants];
    let mut alloc: Vec<Vec<f64>> = vec![Vec::new(); n_variants];
    let mut code: Vec<Vec<f64>> = vec![Vec::new(); n_variants];
    let mut ctime: Vec<Vec<f64>> = vec![Vec::new(); n_variants];
    for row in matrix {
        let be = row[0].outcome.stats.cycles as f64;
        let ba = row[0].outcome.stats.alloc_words as f64;
        let bc = row[0].compile.code_size as f64;
        let bt = row[0].compile.compile_time.as_secs_f64();
        for (i, r) in row.iter().enumerate() {
            exec[i].push(r.outcome.stats.cycles as f64 / be);
            alloc[i].push(r.outcome.stats.alloc_words as f64 / ba);
            code[i].push(r.compile.code_size as f64 / bc);
            ctime[i].push(r.compile.compile_time.as_secs_f64() / bt);
        }
    }
    let mut summary = Json::obj().field("baseline", Variant::all()[0].name());
    for (i, v) in Variant::all().iter().enumerate() {
        summary = summary.field(
            v.name(),
            Json::obj()
                .field("exec_cycles", geomean(&exec[i]))
                .field("alloc_words", geomean(&alloc[i]))
                .field("code_size", geomean(&code[i]))
                .field("compile_time", geomean(&ctime[i])),
        );
    }

    Json::obj()
        .field("schema_version", METRICS_SCHEMA_VERSION)
        .field("generator", generator)
        .field("benchmarks", Json::Arr(benches))
        .field("summary", summary)
}

/// Writes a matrix as a trajectory file (see [`matrix_json`]), returning
/// the path it wrote.
///
/// # Errors
///
/// Propagates I/O errors from writing `path`.
pub fn write_bench_json(
    path: &str,
    matrix: &[Vec<BenchResult>],
    generator: &str,
) -> std::io::Result<()> {
    let mut doc = matrix_json(matrix, generator).to_string_pretty();
    doc.push('\n');
    std::fs::write(path, doc)
}

/// Default output path for trajectory files, relative to the working
/// directory (`cargo run` leaves that at the workspace root).
pub const BENCH_JSON_PATH: &str = "BENCH_pr1.json";

/// Parses `--json` / `--json=PATH` out of a bench binary's arguments,
/// returning the trajectory output path if one was requested.
/// Exits with status 2 on any other argument.
pub fn json_path_from_args(args: impl Iterator<Item = String>) -> Option<String> {
    let mut path = None;
    for a in args {
        if a == "--json" {
            path = Some(BENCH_JSON_PATH.to_owned());
        } else if let Some(p) = a.strip_prefix("--json=") {
            path = Some(p.to_owned());
        } else {
            eprintln!("unknown argument `{a}` (only --json[=PATH])");
            std::process::exit(2);
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_empty_is_one() {
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn geomean_of_single_element_is_itself() {
        assert!((geomean(&[2.5]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_reciprocal_pair_is_one() {
        assert!((geomean(&[4.0, 0.25]) - 1.0).abs() < 1e-12);
    }

    /// The parallel matrix must be byte-identical to the serial
    /// reference — same outputs, same deterministic counters. Uses the
    /// two cheapest benchmarks to keep test time sane; figure7/figure8
    /// exercise the full grid.
    #[test]
    fn parallel_matrix_matches_serial() {
        let benches: Vec<Benchmark> = benchmarks()
            .into_iter()
            .filter(|b| b.name == "Sieve" || b.name == "Life")
            .collect();
        assert_eq!(benches.len(), 2);
        let par = run_matrix_of(&benches);
        let ser = run_matrix_serial_of(&benches);
        assert_eq!(par.len(), ser.len());
        for (prow, srow) in par.iter().zip(&ser) {
            for (p, s) in prow.iter().zip(srow) {
                assert_eq!(p.name, s.name);
                assert_eq!(p.variant, s.variant);
                assert_eq!(p.outcome.output, s.outcome.output);
                assert_eq!(p.outcome.stats.cycles, s.outcome.stats.cycles);
                assert_eq!(p.outcome.stats.alloc_words, s.outcome.stats.alloc_words);
                assert_eq!(
                    p.outcome.stats.cycles_by_class,
                    s.outcome.stats.cycles_by_class
                );
                assert_eq!(p.compile.code_size, s.compile.code_size);
                assert_eq!(p.compile.lty, s.compile.lty);
            }
        }
    }

    #[test]
    fn empty_matrix_serializes() {
        let doc = matrix_json(&[], "test").to_string_compact();
        assert!(doc.contains("\"benchmarks\":[]"));
        assert!(doc.contains("\"schema_version\":1"));
    }
}
