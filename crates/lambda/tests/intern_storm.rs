//! Concurrency property tests for the shared LTY hash-cons arena.
//!
//! The arena promises *exact* global accounting under contention: after
//! any number of threads intern any mix of types, the per-shard counters
//! must balance — `hits + misses == queries`, `misses == resident`
//! (every miss installed exactly one kind), `retries <= hits` (a retry
//! is a write-lock re-check that found the kind, which also counts as a
//! hit), and the query total must equal the number of `intern` calls
//! issued across all threads. These invariants are what make the
//! `arena` block of the metrics schema trustworthy; see
//! `docs/OBSERVABILITY.md`.

use std::sync::Arc;
use std::thread;

use sml_lambda::{InternMode, LtyArena, LtyInterner, LtyKind};

/// Number of atoms the arena pre-interns at construction (`Int`, `Real`,
/// `Boxed`, `RBoxed`, `Bottom`).
const N_ATOMS: u64 = 5;

/// Interns a deterministic family of `depth` nested arrow/record types
/// directly into the arena, returning how many `intern` calls were made.
///
/// Every thread builds the *same* family, so across T threads the
/// arena's resident set must equal a single thread's distinct-kind
/// count while hits absorb the other (T - 1) rounds.
fn storm(arena: &LtyArena, depth: u32) -> u64 {
    let mut calls = 0u64;
    let mut t = arena.intern(&LtyKind::Int);
    calls += 1;
    let r = arena.intern(&LtyKind::Real);
    calls += 1;
    for i in 0..depth {
        // Alternate shapes so kinds spread across shards.
        let next = if i % 3 == 0 {
            LtyKind::Arrow(t, r)
        } else if i % 3 == 1 {
            LtyKind::Record(vec![t, r, t])
        } else {
            LtyKind::SRecord(vec![r, t])
        };
        t = arena.intern(&next);
        calls += 1;
    }
    calls
}

/// The number of *distinct* kinds `storm` touches: the two atoms plus
/// one new composite per loop iteration (each iteration's kind embeds
/// the previous handle, so no two iterations collide).
fn storm_distinct(depth: u32) -> u64 {
    2 + depth as u64
}

#[test]
fn multi_thread_storm_keeps_exact_stats() {
    const THREADS: usize = 8;
    const DEPTH: u32 = 2_000;

    let arena = Arc::new(LtyArena::new());
    let calls: u64 = thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let arena = Arc::clone(&arena);
                s.spawn(move || storm(&arena, DEPTH))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });

    let stats = arena.stats();
    // Construction pre-interns the atoms: those count as misses and
    // queries too, so fold them into the expected totals.
    assert_eq!(
        stats.queries(),
        calls + N_ATOMS,
        "every intern call is exactly one arena query"
    );
    assert_eq!(stats.hits() + stats.misses(), stats.queries());
    assert_eq!(
        stats.misses(),
        stats.resident() as u64,
        "every miss installs exactly one kind"
    );
    // All threads intern the same family, so the resident set is the
    // 5 pre-interned atoms plus one composite per loop iteration (the
    // `Int`/`Real` calls inside `storm` hit kinds already resident from
    // construction).
    assert_eq!(stats.resident() as u64, N_ATOMS + storm_distinct(DEPTH) - 2);
    assert!(
        stats.retries() <= stats.hits(),
        "a retry is a hit discovered under the write lock"
    );

    // Shard totals are consistent with the rollup.
    let by_shard: u64 = stats.shards.iter().map(|s| s.hits + s.misses).sum();
    assert_eq!(by_shard, stats.queries());
    let resident_by_shard: usize = stats.shards.iter().map(|s| s.resident).sum();
    assert_eq!(resident_by_shard, stats.resident());
}

#[test]
fn concurrent_views_agree_on_handles_and_kinds() {
    // Two views on one arena, driven from different threads, must map
    // equal structures to equal handles (child-before-parent interning
    // makes handle equality structural equality).
    let arena = Arc::new(LtyArena::new());
    let build = |arena: Arc<LtyArena>| {
        thread::spawn(move || {
            let mut view = LtyInterner::with_arena(arena);
            let int = view.int();
            let real = view.real();
            let pair = view.record(vec![int, real]);
            let f = view.arrow(pair, int);
            view.record(vec![f, f, pair])
        })
    };
    let a = build(Arc::clone(&arena)).join().unwrap();
    let b = build(Arc::clone(&arena)).join().unwrap();
    assert_eq!(a, b, "equal structures must get equal handles");

    let check = LtyInterner::with_arena(Arc::clone(&arena));
    match check.kind(a).clone() {
        LtyKind::Record(fs) => {
            assert_eq!(fs.len(), 3);
            assert_eq!(fs[0], fs[1]);
        }
        other => panic!("expected a record kind, got {other:?}"),
    }
}

#[test]
fn structural_mode_still_works_single_threaded() {
    // The `InternMode::Structural` ablation (paper Table: hash-cons
    // off) bypasses the arena entirely: types live in a private local
    // store, equality falls back to deep comparison, and the ablation
    // still type-checks the same programs.
    let mut s = LtyInterner::new(InternMode::Structural);
    assert!(s.arena().is_none(), "structural views never share an arena");

    let int = s.int();
    let real = s.real();
    let a1 = s.arrow(int, real);
    let a2 = s.arrow(int, real);
    // Structural mode does not deduplicate handles...
    assert_ne!(a1, a2, "structural mode must not hash-cons");
    // ...but `same` still proves them equal, via deep comparison.
    assert!(s.same(a1, a2));
    let st = s.stats();
    assert!(
        st.deep_compares > 0,
        "structural equality must deep-compare"
    );
    assert_eq!(st.hashcons_hits, 0);
    assert_eq!(st.hashcons_misses as usize, s.len());
}
