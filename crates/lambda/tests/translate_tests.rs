//! End-to-end translation tests: source → Absyn → LEXP, checking the
//! typed-IR invariant under every compiler configuration.

use sml_lambda::{translate, type_of, InternMode, LambdaConfig, Lexp, Translation};
use std::collections::HashMap;

fn configs() -> Vec<(&'static str, LambdaConfig)> {
    vec![
        (
            "nrp",
            LambdaConfig {
                type_based: false,
                unboxed_floats: false,
                memo_coercions: true,
                intern_mode: InternMode::HashCons,
            },
        ),
        (
            "rep",
            LambdaConfig {
                type_based: true,
                unboxed_floats: false,
                memo_coercions: true,
                intern_mode: InternMode::HashCons,
            },
        ),
        (
            "ffb",
            LambdaConfig {
                type_based: true,
                unboxed_floats: true,
                memo_coercions: true,
                intern_mode: InternMode::HashCons,
            },
        ),
        (
            "ffb-nomemo",
            LambdaConfig {
                type_based: true,
                unboxed_floats: true,
                memo_coercions: false,
                intern_mode: InternMode::HashCons,
            },
        ),
    ]
}

fn trans(src: &str, cfg: &LambdaConfig) -> Translation {
    let prog = sml_ast::parse(src).unwrap_or_else(|e| panic!("parse: {e}"));
    let elab = sml_elab::elaborate(&prog).unwrap_or_else(|e| panic!("elab: {e}"));
    translate(&elab, cfg)
}

fn trans_mtd(src: &str, cfg: &LambdaConfig) -> Translation {
    let prog = sml_ast::parse(src).unwrap_or_else(|e| panic!("parse: {e}"));
    let mut elab = sml_elab::elaborate(&prog).unwrap_or_else(|e| panic!("elab: {e}"));
    sml_elab::minimum_typing(&mut elab);
    translate(&elab, cfg)
}

/// Checks the typed-IR invariant for a program under every config.
fn check_all(src: &str) {
    for (name, cfg) in configs() {
        let mut tr = trans(src, &cfg);
        if let Err(e) = type_of(&tr.lexp, &mut HashMap::new(), &mut tr.interner) {
            panic!("[{name}] ill-typed LEXP for program:\n{src}\nerror: {e}");
        }
        let mut tr = trans_mtd(src, &cfg);
        if let Err(e) = type_of(&tr.lexp, &mut HashMap::new(), &mut tr.interner) {
            panic!("[{name}+mtd] ill-typed LEXP for program:\n{src}\nerror: {e}");
        }
    }
}

#[test]
fn arithmetic() {
    check_all("val x = 1 + 2 * 3 val y = 1.5 + 2.5 val z = x + floor y");
}

#[test]
fn functions_and_polymorphism() {
    check_all(
        "fun id x = x
         fun compose f g x = f (g x)
         val a = id 3
         val b = id 2.5
         val c = compose id id 7",
    );
}

#[test]
fn quad_example_from_paper() {
    // The paper's §1 motivating example: a polymorphic quad applied to a
    // monomorphic real function requires wrapping h.
    check_all(
        "fun quad f x = f (f (f (f x)))
         fun h (x : real) = x * x * x + x * 2.0 + 1.0
         val result = h (h 1.05) * quad h 1.05",
    );
}

#[test]
fn lists_and_recursion() {
    check_all(
        "fun map f nil = nil | map f (x :: r) = f x :: map f r
         fun sum nil = 0 | sum (x :: r) = x + sum r
         val s = sum (map (fn x => x + 1) [1, 2, 3])",
    );
}

#[test]
fn float_lists_are_recursively_boxed() {
    // Figure 2: (real * real) list elements coerce to standard boxed
    // representations at cons/decon.
    check_all(
        "fun unzip nil = (nil, nil)
           | unzip ((a, b) :: rest) =
               let val (xs, ys) = unzip rest in (a :: xs, b :: ys) end
         val z = unzip [(4.51, 3.14), (4.51, 2.33), (7.81, 3.45)]",
    );
}

#[test]
fn datatypes_and_matches() {
    check_all(
        "datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree
         fun insert (t, x : int) =
           case t of
             Leaf => Node (Leaf, x, Leaf)
           | Node (l, y, r) =>
               if x < y then Node (insert (l, x), y, r)
               else Node (l, y, insert (r, x))
         val t = insert (insert (Leaf, 3), 1)",
    );
}

#[test]
fn float_datatype_payloads() {
    check_all(
        "datatype shape = Circle of real * real * real | Square of real
         fun area (Circle (_, _, r)) = r * r * 3.14159
           | area (Square s) = s * s
         val a = area (Circle (1.0, 2.0, 3.0)) + area (Square 2.0)",
    );
}

#[test]
fn exceptions() {
    check_all(
        "exception Neg of int
         fun f x = if x < 0 then raise Neg x else x
         val r = f 3 handle Neg n => 0 - n | _ => 0",
    );
}

#[test]
fn refs_and_arrays() {
    check_all(
        "val r = ref 0
         val _ = r := !r + 1
         val fr = ref 1.5
         val _ = fr := !fr + 1.0
         val a = array (10, 0.0)
         val _ = aupdate (a, 3, 2.5)
         val x = asub (a, 3)
         val n = alength a",
    );
}

#[test]
fn strings_and_chars() {
    check_all(
        "val s = \"hello\" ^ \" \" ^ \"world\"
         val n = size s
         val c = strsub (s, 0)
         val i = ord c
         val c2 = chr (i + 1)
         val b = s = \"hello world\"
         val lt = \"abc\" < \"abd\"",
    );
}

#[test]
fn polymorphic_equality() {
    check_all(
        "fun member (x, nil) = false
           | member (x, y :: r) = x = y orelse member (x, r)
         val a = member (3, [1, 2, 3])
         val b = member ((1, 2.0), [(1, 2.0)])",
    );
}

#[test]
fn while_and_sequence() {
    check_all(
        "val i = ref 0
         val s = ref 0
         val _ = while !i < 10 do (s := !s + !i; i := !i + 1)",
    );
}

#[test]
fn callcc_and_throw() {
    check_all(
        "val x = callcc (fn k => 1 + throw k 41)
         val y = callcc (fn k => 2.5)",
    );
}

#[test]
fn structures_and_thinning() {
    check_all(
        "signature S = sig val f : real -> real val c : real end
         structure Impl = struct
           fun f x = x * 2.0
           val c = 3.14
           val hidden = \"not visible\"
         end
         structure A : S = Impl
         val r = A.f A.c",
    );
}

#[test]
fn abstraction_coerces_to_standard_reps() {
    check_all(
        "signature SIG = sig type t val mk : real * real -> t val get : t -> real end
         structure Impl = struct
           type t = real * real
           fun mk (a, b) = (a, b)
           fun get ((a, b) : t) = a
         end
         abstraction A : SIG = Impl
         val v = A.get (A.mk (1.0, 2.0))",
    );
}

#[test]
fn functor_application_with_coercions() {
    check_all(
        "signature ORD = sig type t val le : t * t -> bool end
         functor MaxFn (X : ORD) = struct
           fun max (a, b) = if X.le (a, b) then b else a
         end
         structure RealOrd = struct type t = real fun le (a : real, b) = a <= b end
         structure M = MaxFn (RealOrd)
         val m = M.max (1.5, 2.5)",
    );
}

#[test]
fn functor_with_datatype_spec_coercions() {
    // Paper §4.3: constructor projections through abstract types.
    check_all(
        "signature SIG = sig
           type t
           datatype w = FOO of t
           val p : w
         end
         functor F (S : SIG) = struct
           val xs = case S.p of S.FOO x => [x]
         end
         structure A = struct
           type t = real * real
           datatype w = FOO of t
           val p = FOO (1.0, 2.0)
         end
         structure B = F (A)",
    );
}

#[test]
fn nested_structure_coercions() {
    check_all(
        "structure Outer = struct
           structure Inner = struct val v = 2.5 fun scale x = x * v end
           val w = Inner.scale 4.0
         end
         val z = Outer.Inner.scale Outer.w",
    );
}

#[test]
fn nrp_mode_has_no_coercion_code() {
    // In the non-type-based compiler everything is standard boxed, so no
    // wrap/unwrap pairs are inserted at instantiations.
    let cfg = LambdaConfig {
        type_based: false,
        unboxed_floats: false,
        memo_coercions: true,
        intern_mode: InternMode::HashCons,
    };
    let tr = trans(
        "fun id x = x
         val a = id 3
         val b = id 2.5",
        &cfg,
    );
    // Float literals are boxed (that is the standard representation),
    // but no function wrappers or record rebuilds are ever needed.
    assert_eq!(tr.stats.fn_wrappers, 0);
    assert_eq!(tr.stats.record_rebuilds, 0);
}

#[test]
fn ffb_mode_wraps_reals_at_polymorphic_uses() {
    let cfg = LambdaConfig::default();
    let tr = trans(
        "fun id x = x
         val b = id 2.5",
        &cfg,
    );
    assert!(tr.stats.wraps > 0, "id at real requires wrapping coercions");
}

#[test]
fn shared_coercions_reduce_size() {
    // Two identical functor applications share one module coercion when
    // memo-ization is on.
    let src = "signature S = sig type t val mk : real -> t end
               functor F (X : S) = struct val a = X.mk 1.0 val b = X.mk 2.0 end
               structure R = struct type t = real fun mk x = x end
               structure A = F (R)
               structure B = F (R)";
    let memo = trans(src, &LambdaConfig::default());
    let nomemo = trans(
        src,
        &LambdaConfig {
            memo_coercions: false,
            ..LambdaConfig::default()
        },
    );
    assert!(
        memo.lexp.size() <= nomemo.lexp.size(),
        "memoized: {} nodes, inlined: {} nodes",
        memo.lexp.size(),
        nomemo.lexp.size()
    );
}

#[test]
fn mtd_removes_wrappers() {
    // Without MTD, locally-monomorphic `scale` stays polymorphic and its
    // float argument is boxed; with MTD the coercions disappear.
    let src = "fun apply f x = f x
               fun double (y : real) = y + y
               val r = apply double 3.0";
    let cfg = LambdaConfig::default();
    let plain = trans(src, &cfg);
    let mtd = trans_mtd(src, &cfg);
    assert!(
        mtd.stats.wraps <= plain.stats.wraps,
        "mtd {} wraps vs plain {} wraps",
        mtd.stats.wraps,
        plain.stats.wraps
    );
}

#[test]
fn pattern_binds_and_tuples() {
    check_all(
        "val (a, b) = (1, 2.5)
         val {x, y} = {x = 1.0, y = 2.0}
         val sum = a + floor (b + x + y)",
    );
}

#[test]
fn deep_patterns() {
    check_all(
        "datatype t = A of (int * real) list | B
         fun f (A ((n, r) :: _)) = r
           | f (A nil) = 0.0
           | f B = 1.0
         val x = f (A [(1, 2.0)]) + f B",
    );
}

#[test]
fn handle_with_multiple_exceptions() {
    check_all(
        "exception E1
         exception E2 of real
         fun risky 0 = raise E1
           | risky 1 = raise E2 1.5
           | risky n = n
         val r = (risky 0 handle E1 => 10 | E2 x => floor x)",
    );
}

#[test]
fn string_patterns() {
    check_all(
        "fun greet \"hello\" = 1 | greet \"bye\" = 2 | greet _ = 0
         val g = greet \"bye\"",
    );
}

fn count_nodes(e: &Lexp) -> usize {
    e.size()
}

#[test]
fn structural_interning_still_correct() {
    let cfg = LambdaConfig {
        intern_mode: InternMode::Structural,
        ..LambdaConfig::default()
    };
    let mut tr = trans(
        "fun map f nil = nil | map f (x :: r) = f x :: map f r
         val s = map (fn x => x + 1.0) [1.0, 2.0]",
        &cfg,
    );
    assert!(type_of(&tr.lexp, &mut HashMap::new(), &mut tr.interner).is_ok());
    assert!(
        tr.interner.deep_compares > 0,
        "structural mode exercises deep compares"
    );
    assert!(count_nodes(&tr.lexp) > 0);
}

#[test]
fn dense_matches_emit_switch() {
    fn has_switch(e: &Lexp) -> bool {
        match e {
            Lexp::SwitchInt(..) => true,
            Lexp::Fn(_, _, _, b) => has_switch(b),
            Lexp::App(f, a) => has_switch(f) || has_switch(a),
            Lexp::Fix(fs, b) => fs.iter().any(|(_, _, f)| has_switch(f)) || has_switch(b),
            Lexp::Let(_, a, b) => has_switch(a) || has_switch(b),
            Lexp::Record(es) | Lexp::SRecord(es) | Lexp::PrimApp(_, es) => {
                es.iter().any(has_switch)
            }
            Lexp::Select(_, e) | Lexp::Wrap(_, e) | Lexp::Unwrap(_, e) | Lexp::Raise(e, _) => {
                has_switch(e)
            }
            Lexp::If(c, t, f) => has_switch(c) || has_switch(t) || has_switch(f),
            Lexp::Handle(e, h) => has_switch(e) || has_switch(h),
            _ => false,
        }
    }
    let tr = trans(
        "datatype d = A | B | C | D
         fun code A = 1 | code B = 2 | code C = 3 | code D = 4
         val x = code B",
        &LambdaConfig::default(),
    );
    assert!(
        has_switch(&tr.lexp),
        "dense constant match must compile to SwitchInt"
    );
}
