//! Lambda types (LTY) with global static hash-consing (paper §4.1, §4.5).
//!
//! An [`Lty`] is an index into an [`LtyInterner`]. With hash-consing
//! enabled (the default), structurally equal types share one index, so
//! the equality test at the head of `coerce` is a constant-time integer
//! comparison — the optimization the paper calls "crucial for the
//! efficient compilation of functor applications". The interner can be
//! switched to [`InternMode::Structural`] to reproduce the paper's
//! no-hash-consing compile-time blowup (see the `ablation_hashcons`
//! bench).

use std::collections::HashMap;
use std::fmt;

/// A hash-consed lambda type.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Lty(pub u32);

/// The structure of a lambda type.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum LtyKind {
    /// `INTty`: a tagged 31-bit integer (also chars, bools, unit, and
    /// constant data constructors).
    Int,
    /// `REALty`: an unboxed IEEE double (lives in float registers).
    Real,
    /// `RECORDty [t1, ..., tn]`: a record whose field representations are
    /// known.
    Record(Vec<Lty>),
    /// `ARROWty (t, t')`: a function.
    Arrow(Lty, Lty),
    /// `BOXEDty`: one word — a pointer to an object whose fields may or
    /// may not be boxed, or a tagged integer.
    Boxed,
    /// `RBOXEDty`: one word pointing to a *recursively boxed* object in
    /// the standard boxed representation (the representation non-type-
    /// based compilers use for everything).
    RBoxed,
    /// `SRECORDty`: a structure record (module object).
    SRecord(Vec<Lty>),
    /// `PRECORDty`: a partial view of a structure record — only the
    /// listed `(slot, type)` pairs are known. Used for external
    /// structures under separate compilation (paper §4.5).
    PRecord(Vec<(usize, Lty)>),
    /// The type of expressions that never return (`raise`); compatible
    /// with everything.
    Bottom,
}

/// Whether the interner deduplicates types.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InternMode {
    /// Global static hash-consing: equality is index equality.
    HashCons,
    /// No dedup: every `intern` allocates, equality is a deep structural
    /// walk. Only for the ablation experiment.
    Structural,
}

/// A point-in-time snapshot of interner statistics, cheap to copy out
/// of the pipeline into [`CompileStats`-level] reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LtyStats {
    /// Number of distinct interned types.
    pub interned: usize,
    /// Total `intern` calls.
    pub intern_calls: u64,
    /// Calls served from the hash-cons table.
    pub hashcons_hits: u64,
    /// Calls that allocated a new entry.
    pub hashcons_misses: u64,
    /// Deep structural comparisons (structural mode only).
    pub deep_compares: u64,
}

impl LtyStats {
    /// Fraction of `intern` calls served from the hash-cons table, in
    /// `[0, 1]`; `0.0` before any call.
    pub fn hit_rate(&self) -> f64 {
        if self.intern_calls == 0 {
            0.0
        } else {
            self.hashcons_hits as f64 / self.intern_calls as f64
        }
    }
}

/// The lambda-type interner.
#[derive(Debug)]
pub struct LtyInterner {
    kinds: Vec<LtyKind>,
    map: HashMap<LtyKind, u32>,
    mode: InternMode,
    /// Statistics: number of `intern` calls (ablation metric).
    pub intern_calls: u64,
    /// Statistics: `intern` calls that found an existing entry
    /// (hash-cons hits). Always zero in structural mode.
    pub hashcons_hits: u64,
    /// Statistics: `intern` calls that allocated a new entry. In
    /// structural mode every call is a miss.
    pub hashcons_misses: u64,
    /// Statistics: number of deep equality comparisons performed in
    /// structural mode.
    pub deep_compares: u64,
}

impl LtyInterner {
    /// Creates an interner; pre-interns the common atomic types.
    pub fn new(mode: InternMode) -> LtyInterner {
        let mut i = LtyInterner {
            kinds: Vec::new(),
            map: HashMap::new(),
            mode,
            intern_calls: 0,
            hashcons_hits: 0,
            hashcons_misses: 0,
            deep_compares: 0,
        };
        // Fixed order: see the `int`, `real`, `boxed`, `rboxed`,
        // `bottom` helpers.
        i.intern(LtyKind::Int);
        i.intern(LtyKind::Real);
        i.intern(LtyKind::Boxed);
        i.intern(LtyKind::RBoxed);
        i.intern(LtyKind::Bottom);
        i
    }

    /// Interns a kind, returning its handle.
    pub fn intern(&mut self, kind: LtyKind) -> Lty {
        self.intern_calls += 1;
        match self.mode {
            InternMode::HashCons => {
                if let Some(&id) = self.map.get(&kind) {
                    self.hashcons_hits += 1;
                    return Lty(id);
                }
                self.hashcons_misses += 1;
                let id = self.kinds.len() as u32;
                self.kinds.push(kind.clone());
                self.map.insert(kind, id);
                Lty(id)
            }
            InternMode::Structural => {
                self.hashcons_misses += 1;
                let id = self.kinds.len() as u32;
                self.kinds.push(kind);
                Lty(id)
            }
        }
    }

    /// Fraction of `intern` calls served from the hash-cons table, in
    /// `[0, 1]`; `0.0` before any call.
    pub fn hit_rate(&self) -> f64 {
        self.stats().hit_rate()
    }

    /// A copyable snapshot of the interner's statistics.
    pub fn stats(&self) -> LtyStats {
        LtyStats {
            interned: self.kinds.len(),
            intern_calls: self.intern_calls,
            hashcons_hits: self.hashcons_hits,
            hashcons_misses: self.hashcons_misses,
            deep_compares: self.deep_compares,
        }
    }

    /// Which interning discipline this table uses.
    pub fn mode(&self) -> InternMode {
        self.mode
    }

    /// The structure of `t`.
    pub fn kind(&self, t: Lty) -> &LtyKind {
        &self.kinds[t.0 as usize]
    }

    /// `INTty`.
    pub fn int(&self) -> Lty {
        Lty(0)
    }

    /// `REALty`.
    pub fn real(&self) -> Lty {
        Lty(1)
    }

    /// `BOXEDty`.
    pub fn boxed(&self) -> Lty {
        Lty(2)
    }

    /// `RBOXEDty`.
    pub fn rboxed(&self) -> Lty {
        Lty(3)
    }

    /// The bottom type (non-returning expressions).
    pub fn bottom(&self) -> Lty {
        Lty(4)
    }

    /// `RECORDty` from field types.
    pub fn record(&mut self, fields: Vec<Lty>) -> Lty {
        self.intern(LtyKind::Record(fields))
    }

    /// `ARROWty`.
    pub fn arrow(&mut self, a: Lty, b: Lty) -> Lty {
        self.intern(LtyKind::Arrow(a, b))
    }

    /// `SRECORDty`.
    pub fn srecord(&mut self, fields: Vec<Lty>) -> Lty {
        self.intern(LtyKind::SRecord(fields))
    }

    /// Equality test: constant-time under hash-consing, a deep structural
    /// comparison otherwise (the ablation's cost center).
    pub fn same(&mut self, a: Lty, b: Lty) -> bool {
        match self.mode {
            InternMode::HashCons => a == b,
            InternMode::Structural => {
                self.deep_compares += 1;
                self.deep_same(a, b)
            }
        }
    }

    fn deep_same(&self, a: Lty, b: Lty) -> bool {
        if a == b {
            return true;
        }
        match (&self.kinds[a.0 as usize], &self.kinds[b.0 as usize]) {
            (LtyKind::Int, LtyKind::Int)
            | (LtyKind::Real, LtyKind::Real)
            | (LtyKind::Boxed, LtyKind::Boxed)
            | (LtyKind::RBoxed, LtyKind::RBoxed)
            | (LtyKind::Bottom, LtyKind::Bottom) => true,
            (LtyKind::Record(x), LtyKind::Record(y))
            | (LtyKind::SRecord(x), LtyKind::SRecord(y)) => {
                x.len() == y.len() && x.iter().zip(y).all(|(p, q)| self.deep_same(*p, *q))
            }
            (LtyKind::Arrow(a1, r1), LtyKind::Arrow(a2, r2)) => {
                self.deep_same(*a1, *a2) && self.deep_same(*r1, *r2)
            }
            (LtyKind::PRecord(x), LtyKind::PRecord(y)) => {
                x.len() == y.len()
                    && x.iter()
                        .zip(y)
                        .all(|((i, p), (j, q))| i == j && self.deep_same(*p, *q))
            }
            _ => false,
        }
    }

    /// The paper's `dup` operation (§4.2): the standard-boxed counterpart
    /// of a type. `dup(RECORD[t...])` is a record of `RBOXED` fields,
    /// `dup(ARROW)` is `RBOXED -> RBOXED`, everything else collapses to
    /// `BOXED`.
    pub fn dup(&mut self, t: Lty) -> Lty {
        match self.kind(t).clone() {
            LtyKind::Record(fs) => {
                let rb = self.rboxed();
                self.record(vec![rb; fs.len()])
            }
            LtyKind::SRecord(fs) => {
                let rb = self.rboxed();
                self.srecord(vec![rb; fs.len()])
            }
            LtyKind::Arrow(..) => {
                let rb = self.rboxed();
                self.arrow(rb, rb)
            }
            _ => self.boxed(),
        }
    }

    /// True if values of this type occupy one machine word holding either
    /// a tagged integer or a pointer (GC-scannable).
    pub fn is_word(&self, t: Lty) -> bool {
        !matches!(self.kind(t), LtyKind::Real)
    }

    /// Number of distinct interned types (statistics).
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True if no types are interned (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Renders a type for diagnostics.
    pub fn show(&self, t: Lty) -> String {
        let mut s = String::new();
        self.show_into(t, &mut s);
        s
    }

    fn show_into(&self, t: Lty, out: &mut String) {
        use fmt::Write;
        match self.kind(t) {
            LtyKind::Int => out.push_str("INT"),
            LtyKind::Bottom => out.push_str("BOT"),
            LtyKind::Real => out.push_str("REAL"),
            LtyKind::Boxed => out.push_str("BOXED"),
            LtyKind::RBoxed => out.push_str("RBOXED"),
            LtyKind::Record(fs) => {
                out.push('[');
                for (i, f) in fs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    self.show_into(*f, out);
                }
                out.push(']');
            }
            LtyKind::SRecord(fs) => {
                out.push_str("S[");
                for (i, f) in fs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    self.show_into(*f, out);
                }
                out.push(']');
            }
            LtyKind::PRecord(fs) => {
                out.push_str("P[");
                for (i, (slot, f)) in fs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{slot}:");
                    self.show_into(*f, out);
                }
                out.push(']');
            }
            LtyKind::Arrow(a, b) => {
                out.push('(');
                self.show_into(*a, out);
                out.push_str("->");
                self.show_into(*b, out);
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedupes() {
        let mut i = LtyInterner::new(InternMode::HashCons);
        let a = i.record(vec![i.int(), i.real()]);
        let b = i.record(vec![i.int(), i.real()]);
        assert_eq!(a, b);
        assert!(i.same(a, b));
    }

    #[test]
    fn hit_miss_counters_partition_calls() {
        let mut i = LtyInterner::new(InternMode::HashCons);
        let calls_before = i.intern_calls;
        let a = i.record(vec![i.int(), i.real()]); // miss
        let _b = i.record(vec![i.int(), i.real()]); // hit
        let _c = i.arrow(a, a); // miss
        assert_eq!(i.intern_calls, calls_before + 3);
        assert_eq!(i.intern_calls, i.hashcons_hits + i.hashcons_misses);
        assert!(i.hashcons_hits >= 1);
        assert!(i.hit_rate() > 0.0 && i.hit_rate() < 1.0);

        let mut s = LtyInterner::new(InternMode::Structural);
        s.record(vec![s.int()]);
        s.record(vec![s.int()]);
        assert_eq!(s.hashcons_hits, 0, "structural mode never hits");
        assert_eq!(s.intern_calls, s.hashcons_misses);
    }

    #[test]
    fn structural_mode_allocates_but_compares() {
        let mut i = LtyInterner::new(InternMode::Structural);
        let a = i.record(vec![i.int(), i.real()]);
        let b = i.record(vec![i.int(), i.real()]);
        assert_ne!(a, b, "no dedup");
        assert!(i.same(a, b), "deep equality still holds");
        assert!(i.deep_compares > 0);
    }

    #[test]
    fn dup_shapes() {
        let mut i = LtyInterner::new(InternMode::HashCons);
        let rec = i.record(vec![i.real(), i.int()]);
        let d = i.dup(rec);
        let rb = i.rboxed();
        assert_eq!(i.kind(d), &LtyKind::Record(vec![rb, rb]));
        let arr = i.arrow(i.int(), i.real());
        let d = i.dup(arr);
        assert_eq!(i.kind(d), &LtyKind::Arrow(rb, rb));
        assert_eq!(i.dup(i.real()), i.boxed());
        assert_eq!(i.dup(i.int()), i.boxed());
    }

    #[test]
    fn show_renders() {
        let mut i = LtyInterner::new(InternMode::HashCons);
        let t = i.arrow(i.int(), i.real());
        let r = i.record(vec![t, i.boxed()]);
        assert_eq!(i.show(r), "[(INT->REAL),BOXED]");
    }

    #[test]
    fn is_word() {
        let i = LtyInterner::new(InternMode::HashCons);
        assert!(i.is_word(i.int()));
        assert!(i.is_word(i.boxed()));
        assert!(!i.is_word(i.real()));
    }
}
