//! Lambda types (LTY) with global static hash-consing (paper §4.1, §4.5).
//!
//! An [`Lty`] is a stable handle into a process-wide [`LtyArena`]: a
//! sharded, insertion-order-independent concurrent hash-cons store.
//! With hash-consing enabled (the default), structurally equal types
//! share one handle, so the equality test at the head of `coerce` is a
//! constant-time integer comparison — the optimization the paper calls
//! "crucial for the efficient compilation of functor applications"
//! (§4.5). The paper keeps one global static hash table for exactly
//! this reason; the arena is that table, made safe to share across the
//! parallel batch driver's worker threads.
//!
//! # Arena, views, and determinism
//!
//! The arena is split into [`N_SHARDS`] shards. A kind's shard is
//! chosen by a process-stable content hash, and within a shard slots
//! are handed out under the shard lock in first-intern order. A handle
//! packs `(slot, shard)` into one `u32`. Handle *values* therefore
//! depend on which thread happens to intern a type first — but the
//! hash-cons invariant (equal structure ⟺ equal handle, maintained by
//! interning children before parents) holds no matter the schedule,
//! and nothing downstream ever inspects a raw handle value: codegen
//! decisions flow through [`LtyKind`] structure only, and the emitted
//! bytecode carries no `Lty` at all. That is why warm parallel batches
//! are byte-identical to cold serial compiles (see
//! `docs/ARCHITECTURE.md` for the full argument).
//!
//! Compiles do not talk to the arena directly; each owns an
//! [`LtyInterner`] *view*. The view memoizes its own lookups and keeps
//! per-compile counters, so the statistics a compile reports are a
//! pure function of the source being compiled — identical whether the
//! arena was cold or pre-warmed by other compiles, and identical under
//! any thread schedule.
//!
//! The interner can be switched to [`InternMode::Structural`] to
//! reproduce the paper's no-hash-consing compile-time blowup (see the
//! `ablation_hashcons` bench). Structural views are self-contained and
//! single-threaded; they never touch an arena.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A hash-consed lambda type: a packed `(slot, shard)` handle into an
/// [`LtyArena`] (or, in [`InternMode::Structural`], a plain index into
/// the view's local table).
///
/// Under hash-consing, handle equality is structural equality — the
/// constant-time test of paper §4.1. Handle values are meaningful only
/// relative to the arena that issued them; they are never serialized
/// and never reach generated code.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Lty(pub u32);

/// The structure of a lambda type.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum LtyKind {
    /// `INTty`: a tagged 31-bit integer (also chars, bools, unit, and
    /// constant data constructors).
    Int,
    /// `REALty`: an unboxed IEEE double (lives in float registers).
    Real,
    /// `RECORDty [t1, ..., tn]`: a record whose field representations are
    /// known.
    Record(Vec<Lty>),
    /// `ARROWty (t, t')`: a function.
    Arrow(Lty, Lty),
    /// `BOXEDty`: one word — a pointer to an object whose fields may or
    /// may not be boxed, or a tagged integer.
    Boxed,
    /// `RBOXEDty`: one word pointing to a *recursively boxed* object in
    /// the standard boxed representation (the representation non-type-
    /// based compilers use for everything).
    RBoxed,
    /// `SRECORDty`: a structure record (module object).
    SRecord(Vec<Lty>),
    /// `PRECORDty`: a partial view of a structure record — only the
    /// listed `(slot, type)` pairs are known. Used for external
    /// structures under separate compilation (paper §4.5).
    PRecord(Vec<(usize, Lty)>),
    /// The type of expressions that never return (`raise`); compatible
    /// with everything.
    Bottom,
}

/// Whether the interner deduplicates types.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InternMode {
    /// Global static hash-consing through a shared [`LtyArena`]:
    /// equality is handle equality.
    HashCons,
    /// No dedup: every `intern` allocates locally, equality is a deep
    /// structural walk. Only for the ablation experiment; never shared
    /// across threads.
    Structural,
}

/// A point-in-time snapshot of a view's per-compile statistics, cheap
/// to copy out of the pipeline into `CompileStats`-level reporting.
///
/// All fields describe *this view only* — the types and intern calls
/// attributable to one compile — never the shared arena. That makes
/// them deterministic: a compile reports the same numbers whether the
/// arena was cold or warm, serial or eight-way parallel. Arena-wide
/// totals live in [`InternStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LtyStats {
    /// Number of distinct types this view interned (first touches).
    pub interned: usize,
    /// Total `intern` calls through this view.
    pub intern_calls: u64,
    /// Calls that repeated a type this view had already interned.
    pub hashcons_hits: u64,
    /// Calls that touched a type for the first time in this view.
    /// Always equals `interned`.
    pub hashcons_misses: u64,
    /// Deep structural comparisons (structural mode only).
    pub deep_compares: u64,
}

impl LtyStats {
    /// Fraction of `intern` calls served from the view's memo table, in
    /// `[0, 1]`; `0.0` before any call.
    pub fn hit_rate(&self) -> f64 {
        if self.intern_calls == 0 {
            0.0
        } else {
            self.hashcons_hits as f64 / self.intern_calls as f64
        }
    }
}

/// Number of shards in an [`LtyArena`] (a power of two; the low
/// [`SHARD_BITS`] bits of a handle name the shard).
pub const N_SHARDS: usize = 1 << SHARD_BITS as usize;

/// Bits of an [`Lty`] handle that encode the shard index.
const SHARD_BITS: u32 = 4;

/// Largest slot index a handle can carry (`u32` minus the shard bits).
const MAX_SLOT: u32 = u32::MAX >> SHARD_BITS;

/// Capacity of slot chunk 0; chunk `c` holds `CHUNK0_CAP << c` kinds.
const CHUNK0_CAP: u32 = 256;

/// Chunks per shard. Geometric growth means 21 chunks cover
/// `(2^21 - 1) * 256` slots — beyond the `MAX_SLOT` handle limit.
const N_CHUNKS: usize = 21;

/// The atomic types every interner pre-interns, in the fixed order the
/// `int`/`real`/`boxed`/`rboxed`/`bottom` helpers rely on.
const ATOMS: [LtyKind; 5] = [
    LtyKind::Int,
    LtyKind::Real,
    LtyKind::Boxed,
    LtyKind::RBoxed,
    LtyKind::Bottom,
];

/// Multiplier/rotation of the Fx word-hash family — the same
/// process-stable construction as `smlc::fxhash`, duplicated here
/// because `sml_lambda` sits below the `smlc` crate in the graph.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const FX_ROTATE: u32 = 5;

/// A deterministic (process-stable, thread-independent) hasher used to
/// pick a kind's shard. `std`'s default SipHash is seeded per process,
/// which would still be *consistent* within a process, but a fixed
/// hash keeps shard assignment reproducible run-to-run for debugging
/// and makes the determinism argument independent of `std` internals.
#[derive(Default)]
struct StableHasher {
    state: u64,
}

impl Hasher for StableHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }
}

impl StableHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(FX_ROTATE) ^ word).wrapping_mul(FX_SEED);
    }
}

/// Stable content hash of a kind (child handles are hashed as their
/// `u32` values, which is self-consistent within one arena).
fn stable_hash(kind: &LtyKind) -> u64 {
    let mut h = StableHasher::default();
    kind.hash(&mut h);
    h.finish()
}

#[inline]
fn shard_of(kind: &LtyKind) -> usize {
    // Top bits of the multiply-rotate hash are the best mixed.
    (stable_hash(kind) >> (64 - SHARD_BITS)) as usize
}

#[inline]
fn encode(shard: usize, slot: u32) -> Lty {
    debug_assert!(shard < N_SHARDS);
    assert!(slot <= MAX_SLOT, "LTY arena shard overflow");
    Lty((slot << SHARD_BITS) | shard as u32)
}

#[inline]
fn decode(t: Lty) -> (usize, u32) {
    ((t.0 & (N_SHARDS as u32 - 1)) as usize, t.0 >> SHARD_BITS)
}

/// Append-only slot storage for one shard: a ladder of geometrically
/// growing chunks. Chunks and cells are `OnceLock`s, so readers can
/// resolve a handle to its kind with no lock at all while a writer
/// (serialized by the shard's map lock) appends behind them. Existing
/// cells are never moved — a `&LtyKind` stays valid for the arena's
/// lifetime.
struct SlotStore {
    chunks: [OnceLock<Box<[OnceLock<LtyKind>]>>; N_CHUNKS],
    /// Published slot count; written under the shard write lock with
    /// `Release` ordering *after* the cell itself is initialized.
    len: AtomicU64,
}

/// Splits a slot index into (chunk, offset-within-chunk). Chunk `c`
/// holds `256 << c` slots starting at slot `((1 << c) - 1) * 256`.
#[inline]
fn locate(slot: u32) -> (usize, usize) {
    let c = ((slot / CHUNK0_CAP) + 1).ilog2();
    let start = ((1u32 << c) - 1) * CHUNK0_CAP;
    (c as usize, (slot - start) as usize)
}

impl SlotStore {
    fn new() -> SlotStore {
        SlotStore {
            chunks: std::array::from_fn(|_| OnceLock::new()),
            len: AtomicU64::new(0),
        }
    }

    /// Appends a kind, returning its slot. Caller must hold the shard's
    /// map write lock (writers are serialized per shard).
    fn push(&self, kind: LtyKind) -> u32 {
        let slot = self.len.load(Ordering::Relaxed) as u32;
        assert!(slot <= MAX_SLOT, "LTY arena shard overflow");
        let (c, off) = locate(slot);
        let chunk = self.chunks[c].get_or_init(|| {
            (0..(CHUNK0_CAP << c as u32))
                .map(|_| OnceLock::new())
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        chunk[off].set(kind).expect("slot written twice");
        self.len.store(slot as u64 + 1, Ordering::Release);
        slot
    }

    /// Resolves a slot to its kind. Lock-free: valid handles always point
    /// at initialized cells (the handle existed only after the cell was
    /// published).
    fn get(&self, slot: u32) -> &LtyKind {
        let (c, off) = locate(slot);
        self.chunks[c]
            .get()
            .and_then(|chunk| chunk[off].get())
            .expect("dangling Lty handle: slot not interned in this arena")
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Acquire) as usize
    }
}

/// One shard of the arena: a lock-protected kind→slot map, the
/// append-only slot storage it indexes, and exact traffic counters.
struct Shard {
    map: RwLock<HashMap<LtyKind, u32>>,
    slots: SlotStore,
    hits: AtomicU64,
    misses: AtomicU64,
    retries: AtomicU64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            map: RwLock::new(HashMap::new()),
            slots: SlotStore::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        }
    }
}

/// Traffic and residency counters for one arena shard. All counts are
/// exact — maintained with atomic increments on the intern path, so a
/// quiescent snapshot (e.g. after a batch joins its workers) balances
/// to the query total.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Distinct kinds resident in this shard.
    pub resident: usize,
    /// Arena queries served from this shard's existing entries.
    pub hits: u64,
    /// Arena queries that allocated a new slot in this shard.
    pub misses: u64,
    /// Write-lock acquisitions that found the kind already inserted by
    /// a racing thread (counted as hits; a measure of contention).
    pub retries: u64,
}

/// A snapshot of arena-wide interning statistics, per shard.
///
/// Unlike [`LtyStats`] (per-compile, deterministic), these totals
/// describe the shared arena across *all* compiles of a session, so
/// the per-shard split of hits and misses — and `retries` especially —
/// depends on thread scheduling. The invariants that always hold at
/// quiescence: `hits + misses == queries`, `misses == resident`, and
/// `retries <= hits`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InternStats {
    /// One entry per arena shard, in shard order.
    pub shards: Vec<ShardStats>,
}

impl InternStats {
    /// Total distinct kinds resident across all shards.
    pub fn resident(&self) -> usize {
        self.shards.iter().map(|s| s.resident).sum()
    }

    /// Total queries served from existing entries.
    pub fn hits(&self) -> u64 {
        self.shards.iter().map(|s| s.hits).sum()
    }

    /// Total queries that allocated a new slot.
    pub fn misses(&self) -> u64 {
        self.shards.iter().map(|s| s.misses).sum()
    }

    /// Total contention retries (lost insert races, resolved as hits).
    pub fn retries(&self) -> u64 {
        self.shards.iter().map(|s| s.retries).sum()
    }

    /// Total arena queries (`hits + misses`).
    pub fn queries(&self) -> u64 {
        self.hits() + self.misses()
    }
}

/// The shared, sharded LTY hash-cons arena (the paper's "global static
/// hash table", §4.1).
///
/// The arena is append-only: kinds are interned, never removed, and a
/// kind's handle never changes. Interning takes a read lock on the
/// kind's shard for the common already-present case and upgrades to a
/// write lock (re-checking under it) only to insert; resolving a
/// handle back to its kind takes no lock at all. Equal structures
/// always receive equal handles — callers intern children before
/// parents, so a parent's kind (which embeds child *handles*) is
/// already canonical when it reaches the arena, regardless of which
/// thread gets there first.
pub struct LtyArena {
    shards: [Shard; N_SHARDS],
    atoms: [Lty; 5],
}

impl fmt::Debug for LtyArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LtyArena")
            .field("resident", &self.stats().resident())
            .finish()
    }
}

impl Default for LtyArena {
    fn default() -> LtyArena {
        LtyArena::new()
    }
}

impl LtyArena {
    /// Creates an empty arena with the five atomic types pre-interned.
    pub fn new() -> LtyArena {
        let mut arena = LtyArena {
            shards: std::array::from_fn(|_| Shard::new()),
            atoms: [Lty(0); 5],
        };
        // Atom handles are content-derived like everything else; the
        // pre-intern only guarantees they exist before any view does.
        arena.atoms = ATOMS.map(|k| arena.intern(&k));
        arena
    }

    /// Interns a kind, returning its canonical handle. Safe to call
    /// from any thread; equal kinds always return equal handles.
    pub fn intern(&self, kind: &LtyKind) -> Lty {
        let ix = shard_of(kind);
        let shard = &self.shards[ix];
        if let Some(&slot) = shard.map.read().expect("lty shard poisoned").get(kind) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            return encode(ix, slot);
        }
        let mut map = shard.map.write().expect("lty shard poisoned");
        if let Some(&slot) = map.get(kind) {
            // Lost the insert race: another thread interned this kind
            // between our read unlock and write lock. Same handle either
            // way — that is the insertion-order independence.
            shard.retries.fetch_add(1, Ordering::Relaxed);
            shard.hits.fetch_add(1, Ordering::Relaxed);
            return encode(ix, slot);
        }
        let slot = shard.slots.push(kind.clone());
        map.insert(kind.clone(), slot);
        shard.misses.fetch_add(1, Ordering::Relaxed);
        encode(ix, slot)
    }

    /// Resolves a handle to its structure. Lock-free.
    ///
    /// # Panics
    ///
    /// Panics on a handle not issued by this arena (a programming
    /// error: handles must never cross arenas).
    pub fn kind(&self, t: Lty) -> &LtyKind {
        let (shard, slot) = decode(t);
        self.shards[shard].slots.get(slot)
    }

    /// Total distinct kinds resident in the arena.
    pub fn resident(&self) -> usize {
        self.shards.iter().map(|s| s.slots.len()).sum()
    }

    /// A per-shard snapshot of the arena's counters. Exact at
    /// quiescence (see [`InternStats`]).
    pub fn stats(&self) -> InternStats {
        InternStats {
            shards: self
                .shards
                .iter()
                .map(|s| ShardStats {
                    resident: s.slots.len(),
                    hits: s.hits.load(Ordering::Relaxed),
                    misses: s.misses.load(Ordering::Relaxed),
                    retries: s.retries.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// A per-compile *view* of the lambda-type store.
///
/// In [`InternMode::HashCons`] the view fronts a shared [`LtyArena`]:
/// it forwards first touches to the arena and memoizes the resulting
/// handles locally, so repeat interns within the compile never take
/// the arena lock and — more importantly — so the view's counters
/// ([`LtyStats`]) describe this compile alone, independent of how warm
/// the arena already is and of thread scheduling.
///
/// In [`InternMode::Structural`] the view is the whole store: a local
/// `Vec` with no deduplication, reproducing the representation the
/// paper ablates against. Structural views are never shared.
#[derive(Debug)]
pub struct LtyInterner {
    mode: InternMode,
    /// The shared store (`HashCons` mode only).
    arena: Option<Arc<LtyArena>>,
    /// First-touch memo: kind → canonical handle, for kinds this view
    /// has interned. Doubles as the per-compile hit/miss ledger.
    seen: HashMap<LtyKind, Lty>,
    /// Local storage (`Structural` mode only).
    local: Vec<LtyKind>,
    /// Handles of the pre-interned atoms, in [`ATOMS`] order.
    atoms: [Lty; 5],
    /// Statistics: number of `intern` calls (ablation metric).
    pub intern_calls: u64,
    /// Statistics: `intern` calls that repeated a kind this view had
    /// already interned. Always zero in structural mode.
    pub hashcons_hits: u64,
    /// Statistics: `intern` calls that touched a kind for the first
    /// time in this view. In structural mode every call is a miss.
    pub hashcons_misses: u64,
    /// Statistics: number of deep equality comparisons performed in
    /// structural mode.
    pub deep_compares: u64,
}

impl LtyInterner {
    /// Creates a self-contained interner; pre-interns the common atomic
    /// types. `HashCons` mode gets a fresh private arena — use
    /// [`LtyInterner::with_arena`] to share one.
    pub fn new(mode: InternMode) -> LtyInterner {
        match mode {
            InternMode::HashCons => LtyInterner::with_arena(Arc::new(LtyArena::new())),
            InternMode::Structural => {
                let mut i = LtyInterner {
                    mode,
                    arena: None,
                    seen: HashMap::new(),
                    local: Vec::new(),
                    atoms: [Lty(0); 5],
                    intern_calls: 0,
                    hashcons_hits: 0,
                    hashcons_misses: 0,
                    deep_compares: 0,
                };
                i.atoms = ATOMS.map(|k| i.intern(k));
                i
            }
        }
    }

    /// Creates a hash-consing view onto a shared arena. The atoms are
    /// re-interned through the view (five calls, five first touches),
    /// so a view's counters start exactly like a cold interner's.
    pub fn with_arena(arena: Arc<LtyArena>) -> LtyInterner {
        let mut i = LtyInterner {
            mode: InternMode::HashCons,
            arena: Some(arena),
            seen: HashMap::new(),
            local: Vec::new(),
            atoms: [Lty(0); 5],
            intern_calls: 0,
            hashcons_hits: 0,
            hashcons_misses: 0,
            deep_compares: 0,
        };
        i.atoms = ATOMS.map(|k| i.intern(k));
        i
    }

    /// The shared arena behind this view, if it is a hash-consing view.
    pub fn arena(&self) -> Option<&Arc<LtyArena>> {
        self.arena.as_ref()
    }

    /// Interns a kind, returning its handle.
    pub fn intern(&mut self, kind: LtyKind) -> Lty {
        self.intern_calls += 1;
        match self.mode {
            InternMode::HashCons => {
                if let Some(&t) = self.seen.get(&kind) {
                    self.hashcons_hits += 1;
                    return t;
                }
                self.hashcons_misses += 1;
                let arena = self.arena.as_ref().expect("hash-cons view has an arena");
                let t = arena.intern(&kind);
                self.seen.insert(kind, t);
                t
            }
            InternMode::Structural => {
                self.hashcons_misses += 1;
                let id = self.local.len() as u32;
                self.local.push(kind);
                Lty(id)
            }
        }
    }

    /// Fraction of `intern` calls served from the view's memo table, in
    /// `[0, 1]`; `0.0` before any call.
    pub fn hit_rate(&self) -> f64 {
        self.stats().hit_rate()
    }

    /// A copyable snapshot of this view's per-compile statistics.
    pub fn stats(&self) -> LtyStats {
        LtyStats {
            interned: self.len(),
            intern_calls: self.intern_calls,
            hashcons_hits: self.hashcons_hits,
            hashcons_misses: self.hashcons_misses,
            deep_compares: self.deep_compares,
        }
    }

    /// Which interning discipline this view uses.
    pub fn mode(&self) -> InternMode {
        self.mode
    }

    /// The structure of `t`.
    pub fn kind(&self, t: Lty) -> &LtyKind {
        match &self.arena {
            Some(a) => a.kind(t),
            None => &self.local[t.0 as usize],
        }
    }

    /// `INTty`.
    pub fn int(&self) -> Lty {
        self.atoms[0]
    }

    /// `REALty`.
    pub fn real(&self) -> Lty {
        self.atoms[1]
    }

    /// `BOXEDty`.
    pub fn boxed(&self) -> Lty {
        self.atoms[2]
    }

    /// `RBOXEDty`.
    pub fn rboxed(&self) -> Lty {
        self.atoms[3]
    }

    /// The bottom type (non-returning expressions).
    pub fn bottom(&self) -> Lty {
        self.atoms[4]
    }

    /// `RECORDty` from field types.
    pub fn record(&mut self, fields: Vec<Lty>) -> Lty {
        self.intern(LtyKind::Record(fields))
    }

    /// `ARROWty`.
    pub fn arrow(&mut self, a: Lty, b: Lty) -> Lty {
        self.intern(LtyKind::Arrow(a, b))
    }

    /// `SRECORDty`.
    pub fn srecord(&mut self, fields: Vec<Lty>) -> Lty {
        self.intern(LtyKind::SRecord(fields))
    }

    /// Equality test: constant-time under hash-consing, a deep structural
    /// comparison otherwise (the ablation's cost center).
    pub fn same(&mut self, a: Lty, b: Lty) -> bool {
        match self.mode {
            InternMode::HashCons => a == b,
            InternMode::Structural => {
                self.deep_compares += 1;
                self.deep_same(a, b)
            }
        }
    }

    fn deep_same(&self, a: Lty, b: Lty) -> bool {
        if a == b {
            return true;
        }
        match (self.kind(a), self.kind(b)) {
            (LtyKind::Int, LtyKind::Int)
            | (LtyKind::Real, LtyKind::Real)
            | (LtyKind::Boxed, LtyKind::Boxed)
            | (LtyKind::RBoxed, LtyKind::RBoxed)
            | (LtyKind::Bottom, LtyKind::Bottom) => true,
            (LtyKind::Record(x), LtyKind::Record(y))
            | (LtyKind::SRecord(x), LtyKind::SRecord(y)) => {
                x.len() == y.len() && x.iter().zip(y).all(|(p, q)| self.deep_same(*p, *q))
            }
            (LtyKind::Arrow(a1, r1), LtyKind::Arrow(a2, r2)) => {
                self.deep_same(*a1, *a2) && self.deep_same(*r1, *r2)
            }
            (LtyKind::PRecord(x), LtyKind::PRecord(y)) => {
                x.len() == y.len()
                    && x.iter()
                        .zip(y)
                        .all(|((i, p), (j, q))| i == j && self.deep_same(*p, *q))
            }
            _ => false,
        }
    }

    /// The paper's `dup` operation (§4.2): the standard-boxed counterpart
    /// of a type. `dup(RECORD[t...])` is a record of `RBOXED` fields,
    /// `dup(ARROW)` is `RBOXED -> RBOXED`, everything else collapses to
    /// `BOXED`.
    pub fn dup(&mut self, t: Lty) -> Lty {
        match self.kind(t).clone() {
            LtyKind::Record(fs) => {
                let rb = self.rboxed();
                self.record(vec![rb; fs.len()])
            }
            LtyKind::SRecord(fs) => {
                let rb = self.rboxed();
                self.srecord(vec![rb; fs.len()])
            }
            LtyKind::Arrow(..) => {
                let rb = self.rboxed();
                self.arrow(rb, rb)
            }
            _ => self.boxed(),
        }
    }

    /// True if values of this type occupy one machine word holding either
    /// a tagged integer or a pointer (GC-scannable).
    pub fn is_word(&self, t: Lty) -> bool {
        !matches!(self.kind(t), LtyKind::Real)
    }

    /// Number of distinct types this view has interned (statistics).
    pub fn len(&self) -> usize {
        match self.mode {
            InternMode::HashCons => self.seen.len(),
            InternMode::Structural => self.local.len(),
        }
    }

    /// True if no types are interned (never, in practice — every view
    /// pre-interns the atoms).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders a type for diagnostics.
    pub fn show(&self, t: Lty) -> String {
        let mut s = String::new();
        self.show_into(t, &mut s);
        s
    }

    fn show_into(&self, t: Lty, out: &mut String) {
        use fmt::Write;
        match self.kind(t) {
            LtyKind::Int => out.push_str("INT"),
            LtyKind::Bottom => out.push_str("BOT"),
            LtyKind::Real => out.push_str("REAL"),
            LtyKind::Boxed => out.push_str("BOXED"),
            LtyKind::RBoxed => out.push_str("RBOXED"),
            LtyKind::Record(fs) => {
                out.push('[');
                for (i, f) in fs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    self.show_into(*f, out);
                }
                out.push(']');
            }
            LtyKind::SRecord(fs) => {
                out.push_str("S[");
                for (i, f) in fs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    self.show_into(*f, out);
                }
                out.push(']');
            }
            LtyKind::PRecord(fs) => {
                out.push_str("P[");
                for (i, (slot, f)) in fs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{slot}:");
                    self.show_into(*f, out);
                }
                out.push(']');
            }
            LtyKind::Arrow(a, b) => {
                out.push('(');
                self.show_into(*a, out);
                out.push_str("->");
                self.show_into(*b, out);
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedupes() {
        let mut i = LtyInterner::new(InternMode::HashCons);
        let a = i.record(vec![i.int(), i.real()]);
        let b = i.record(vec![i.int(), i.real()]);
        assert_eq!(a, b);
        assert!(i.same(a, b));
    }

    #[test]
    fn hit_miss_counters_partition_calls() {
        let mut i = LtyInterner::new(InternMode::HashCons);
        let calls_before = i.intern_calls;
        let a = i.record(vec![i.int(), i.real()]); // miss
        let _b = i.record(vec![i.int(), i.real()]); // hit
        let _c = i.arrow(a, a); // miss
        assert_eq!(i.intern_calls, calls_before + 3);
        assert_eq!(i.intern_calls, i.hashcons_hits + i.hashcons_misses);
        assert!(i.hashcons_hits >= 1);
        assert!(i.hit_rate() > 0.0 && i.hit_rate() < 1.0);

        let mut s = LtyInterner::new(InternMode::Structural);
        s.record(vec![s.int()]);
        s.record(vec![s.int()]);
        assert_eq!(s.hashcons_hits, 0, "structural mode never hits");
        assert_eq!(s.intern_calls, s.hashcons_misses);
    }

    #[test]
    fn structural_mode_allocates_but_compares() {
        let mut i = LtyInterner::new(InternMode::Structural);
        let a = i.record(vec![i.int(), i.real()]);
        let b = i.record(vec![i.int(), i.real()]);
        assert_ne!(a, b, "no dedup");
        assert!(i.same(a, b), "deep equality still holds");
        assert!(i.deep_compares > 0);
    }

    #[test]
    fn dup_shapes() {
        let mut i = LtyInterner::new(InternMode::HashCons);
        let rec = i.record(vec![i.real(), i.int()]);
        let d = i.dup(rec);
        let rb = i.rboxed();
        assert_eq!(i.kind(d), &LtyKind::Record(vec![rb, rb]));
        let arr = i.arrow(i.int(), i.real());
        let d = i.dup(arr);
        assert_eq!(i.kind(d), &LtyKind::Arrow(rb, rb));
        assert_eq!(i.dup(i.real()), i.boxed());
        assert_eq!(i.dup(i.int()), i.boxed());
    }

    #[test]
    fn show_renders() {
        let mut i = LtyInterner::new(InternMode::HashCons);
        let t = i.arrow(i.int(), i.real());
        let r = i.record(vec![t, i.boxed()]);
        assert_eq!(i.show(r), "[(INT->REAL),BOXED]");
    }

    #[test]
    fn is_word() {
        let i = LtyInterner::new(InternMode::HashCons);
        assert!(i.is_word(i.int()));
        assert!(i.is_word(i.boxed()));
        assert!(!i.is_word(i.real()));
    }

    #[test]
    fn views_on_one_arena_agree_on_handles() {
        let arena = Arc::new(LtyArena::new());
        let mut v1 = LtyInterner::with_arena(arena.clone());
        let mut v2 = LtyInterner::with_arena(arena.clone());
        // Opposite construction orders; handles must match pairwise.
        let a1 = v1.arrow(v1.int(), v1.real());
        let r1 = v1.record(vec![a1, v1.boxed()]);
        let r2 = {
            let b = v2.boxed();
            let a2 = v2.arrow(v2.int(), v2.real());
            v2.record(vec![a2, b])
        };
        assert_eq!(v1.int(), v2.int());
        assert_eq!(r1, r2, "same structure, same handle, either order");
        assert_eq!(v1.kind(r1), v2.kind(r2));
    }

    #[test]
    fn per_view_stats_are_warm_cold_invariant() {
        // A view over a pre-warmed arena must report the same LtyStats
        // as a view over a cold one — per-compile determinism.
        let mut cold = LtyInterner::new(InternMode::HashCons);
        let build = |i: &mut LtyInterner| {
            let a = i.arrow(i.int(), i.int());
            let r = i.record(vec![a, a, i.real()]);
            i.srecord(vec![r, a]);
            i.record(vec![a, a, i.real()]); // repeat: per-view hit
        };
        build(&mut cold);

        let arena = Arc::new(LtyArena::new());
        let mut warmer = LtyInterner::with_arena(arena.clone());
        build(&mut warmer); // pre-warm the arena
        let mut warm = LtyInterner::with_arena(arena);
        build(&mut warm);

        assert_eq!(cold.stats(), warm.stats());
        assert_eq!(warm.stats().interned as u64, warm.stats().hashcons_misses);
    }

    #[test]
    fn slot_store_grows_past_first_chunk() {
        // Enough distinct kinds that shards spill into chunk 1 and
        // beyond; every handle must still resolve.
        let mut i = LtyInterner::new(InternMode::HashCons);
        let mut handles = Vec::new();
        let mut prev = i.int();
        for n in 0..20_000u32 {
            let leaf = if n % 2 == 0 { i.int() } else { i.real() };
            prev = i.arrow(prev, leaf);
            handles.push(prev);
        }
        let arena = i.arena().expect("hash-cons view").clone();
        assert_eq!(arena.resident(), i.len());
        for (n, h) in handles.iter().enumerate() {
            match i.kind(*h) {
                LtyKind::Arrow(_, leaf) => {
                    let want = if n % 2 == 0 { i.int() } else { i.real() };
                    assert_eq!(*leaf, want);
                }
                k => panic!("expected arrow, got {k:?}"),
            }
        }
    }

    #[test]
    fn arena_stats_balance_single_threaded() {
        let arena = Arc::new(LtyArena::new());
        let mut v = LtyInterner::with_arena(arena.clone());
        let a = v.arrow(v.int(), v.real());
        v.record(vec![a, a]);
        v.record(vec![a, a]); // view hit: no arena query at all
        let s = arena.stats();
        assert_eq!(s.shards.len(), N_SHARDS);
        assert_eq!(s.queries(), s.hits() + s.misses());
        assert_eq!(s.misses() as usize, s.resident());
        assert_eq!(s.retries(), 0, "no contention single-threaded");
        assert_eq!(s.resident(), arena.resident());
    }

    #[test]
    fn locate_covers_chunk_boundaries() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(255), (0, 255));
        assert_eq!(locate(256), (1, 0));
        assert_eq!(locate(767), (1, 511));
        assert_eq!(locate(768), (2, 0));
        assert_eq!(locate(1791), (2, 1023));
        assert_eq!(locate(1792), (3, 0));
        // Chunk capacities and starts are consistent.
        let mut start = 0u64;
        for c in 0..N_CHUNKS as u32 {
            assert_eq!(locate(start as u32), (c as usize, 0));
            start += (CHUNK0_CAP << c) as u64;
            if start > MAX_SLOT as u64 {
                break;
            }
        }
    }

    #[test]
    fn handle_roundtrip_encode_decode() {
        for shard in [0usize, 1, 7, 15] {
            for slot in [0u32, 1, 255, 256, 1 << 20, MAX_SLOT] {
                let t = encode(shard, slot);
                assert_eq!(decode(t), (shard, slot));
            }
        }
    }
}
