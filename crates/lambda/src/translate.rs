//! Translation of typed abstract syntax into the typed lambda language
//! (paper §4.3-4.4).
//!
//! All static semantic objects (types, signatures, structures, functors)
//! are translated into LTYs; coercions are inserted at each abstraction
//! and instantiation site marked by the front end. Under a non-type-based
//! configuration (`sml.nrp`/`sml.fag`), every type collapses to the
//! standard boxed representation and all coercions become identities.

use crate::coerce::{coerce_exp, CoerceStats, CoercionCache, VarGen};
use crate::lexp::{LVar, Lexp, Primop};
use crate::lty::{InternMode, Lty, LtyInterner, LtyKind};
use sml_elab::{
    Access, CompTy, ConInfo, Elaboration, Prim, StrTy, TDec, TExp, TExpKind, TStrExp, ThinItem,
    VarId,
};
use sml_types::{ConRep, Scheme, Tv, Ty, TyconKind};
use std::collections::{HashMap, HashSet};

/// Configuration of the lambda translation, distinguishing the paper's
/// compiler variants.
#[derive(Clone, Copy, Debug)]
pub struct LambdaConfig {
    /// Propagate type information (representation analysis); false for
    /// `sml.nrp`/`sml.fag`, which use standard boxed representations
    /// everywhere.
    pub type_based: bool,
    /// Represent `real` unboxed (`sml.ffb`/`sml.fp3`); when false, reals
    /// are boxed even under representation analysis (`sml.rep`/`sml.mtd`).
    pub unboxed_floats: bool,
    /// Memo-ize module-level coercions (paper §4.5).
    pub memo_coercions: bool,
    /// Hash-cons lambda types (paper §4.5); `Structural` reproduces the
    /// compile-time blowup ablation.
    pub intern_mode: InternMode,
}

impl Default for LambdaConfig {
    fn default() -> LambdaConfig {
        LambdaConfig {
            type_based: true,
            unboxed_floats: true,
            memo_coercions: true,
            intern_mode: InternMode::HashCons,
        }
    }
}

/// The result of translation.
#[derive(Debug)]
pub struct Translation {
    /// The whole program as one lambda expression (evaluates to unit).
    pub lexp: Lexp,
    /// The type interner (needed by the CPS back end).
    pub interner: LtyInterner,
    /// Coercion statistics.
    pub stats: CoerceStats,
    /// Number of lambda variables allocated.
    pub n_vars: u32,
    /// Match-compilation warnings (nonexhaustive matches/bindings,
    /// redundant rules).
    pub warnings: Vec<String>,
}

/// Translates an elaborated program into LEXP.
pub fn translate(elab: &Elaboration, cfg: &LambdaConfig) -> Translation {
    translate_seeded(elab, cfg, LtyInterner::new(cfg.intern_mode))
}

/// Translates through the given interner view, so a long-lived driver
/// (a compilation session) can amortize the hash-cons arena across
/// compiles by opening each compile's view on one shared
/// [`crate::lty::LtyArena`]. Hash-consing guarantees structural
/// equality iff handle equality whether or not the arena is warm, so a
/// warm arena changes only interning speed, never the translation —
/// and the view's hit/miss accounting stays per-compile either way. A
/// seed whose mode disagrees with `cfg.intern_mode` is discarded and
/// replaced by a fresh interner.
pub fn translate_seeded(elab: &Elaboration, cfg: &LambdaConfig, seed: LtyInterner) -> Translation {
    let interner = if seed.mode() == cfg.intern_mode {
        seed
    } else {
        LtyInterner::new(cfg.intern_mode)
    };
    let mut tr = Translator {
        elab,
        cfg: *cfg,
        interner,
        vg: VarGen::new(),
        vmap: HashMap::new(),
        cache: CoercionCache::new(cfg.memo_coercions),
        stats: CoerceStats::default(),
        warnings: Vec::new(),
    };
    let body = tr.tr_decs(&elab.decs, &mut |_| Lexp::unit());
    let lexp = {
        let cache = std::mem::take(&mut tr.cache);
        cache.emit(&mut tr.interner, &mut tr.vg, &mut tr.stats, body)
    };
    let n_vars = tr.vg.fresh();
    Translation {
        lexp,
        interner: tr.interner,
        stats: tr.stats,
        n_vars,
        warnings: tr.warnings,
    }
}

pub(crate) struct Translator<'a> {
    pub(crate) elab: &'a Elaboration,
    pub(crate) cfg: LambdaConfig,
    pub(crate) interner: LtyInterner,
    pub(crate) vg: VarGen,
    pub(crate) vmap: HashMap<VarId, LVar>,
    pub(crate) cache: CoercionCache,
    pub(crate) stats: CoerceStats,
    pub(crate) warnings: Vec<String>,
}

impl Translator<'_> {
    /// The lambda variable for an Absyn variable.
    pub(crate) fn lv(&mut self, v: VarId) -> LVar {
        if let Some(x) = self.vmap.get(&v) {
            return *x;
        }
        let x = self.vg.fresh();
        self.vmap.insert(v, x);
        x
    }

    pub(crate) fn coerce(&mut self, e: Lexp, from: Lty, to: Lty) -> Lexp {
        coerce_exp(
            &mut self.interner,
            &mut self.vg,
            &mut self.stats,
            e,
            from,
            to,
        )
    }

    fn module_coerce(&mut self, e: Lexp, from: Lty, to: Lty) -> Lexp {
        self.cache.module_coerce(
            &mut self.interner,
            &mut self.vg,
            &mut self.stats,
            e,
            from,
            to,
        )
    }

    // ----- type translation (paper Figure 6) -------------------------------

    /// Translates an ML type to an LTY.
    pub(crate) fn ltc(&mut self, ty: &Ty) -> Lty {
        if !self.cfg.type_based {
            return self.ltc_untyped(ty);
        }
        let mut marked = HashSet::new();
        mark_con_vars(ty, false, &mut marked);
        self.ltc_go(ty, &marked)
    }

    fn ltc_untyped(&mut self, ty: &Ty) -> Lty {
        // Standard boxed representations: every value is one word; only
        // the arrow structure is preserved (functions take one boxed
        // argument and return one boxed result).
        match ty.head() {
            Ty::Arrow(a, b) => {
                let a = self.ltc_untyped(&a);
                let b = self.ltc_untyped(&b);
                let rb = self.interner.rboxed();
                let a = match self.interner.kind(a) {
                    LtyKind::Arrow(..) => a,
                    _ => rb,
                };
                self.interner.arrow(a, b)
            }
            _ => self.interner.rboxed(),
        }
    }

    fn ltc_go(&mut self, ty: &Ty, marked: &HashSet<VarKey>) -> Lty {
        match ty.head() {
            Ty::Var(v) => {
                if marked.contains(&var_key(&v)) {
                    self.interner.rboxed()
                } else {
                    self.interner.boxed()
                }
            }
            Ty::Con(c, _) => match c.kind {
                TyconKind::Int | TyconKind::Char => self.interner.int(),
                TyconKind::Real => {
                    if self.cfg.unboxed_floats {
                        self.interner.real()
                    } else {
                        self.interner.rboxed()
                    }
                }
                TyconKind::Data if c.stamp == sml_types::Tycon::bool().stamp => self.interner.int(),
                TyconKind::String
                | TyconKind::Exn
                | TyconKind::Ref
                | TyconKind::Array
                | TyconKind::Cont
                | TyconKind::Data => self.interner.boxed(),
                TyconKind::Abstract => self.interner.rboxed(),
            },
            Ty::Record(fs) => {
                if fs.is_empty() {
                    return self.interner.int();
                }
                let fields: Vec<Lty> = fs.iter().map(|(_, t)| self.ltc_go(t, marked)).collect();
                self.interner.record(fields)
            }
            Ty::Arrow(a, b) => {
                let a = self.ltc_go(&a, marked);
                let b = self.ltc_go(&b, marked);
                self.interner.arrow(a, b)
            }
        }
    }

    /// LTY of a variable as stored (its scheme body, generic variables
    /// translated by the marking rule).
    pub(crate) fn ltc_scheme(&mut self, s: &Scheme) -> Lty {
        self.ltc(&s.body)
    }

    /// LTY of a structure type (`SRECORDty`).
    pub(crate) fn ltc_strty(&mut self, st: &StrTy) -> Lty {
        let fields: Vec<Lty> =
            st.0.iter()
                .map(|(_, c)| match c {
                    CompTy::Val(s) => self.ltc_scheme(s),
                    CompTy::Exn => self.interner.boxed(),
                    CompTy::Str(sub) => self.ltc_strty(sub),
                })
                .collect();
        self.interner.srecord(fields)
    }

    /// The representation LTY of a constructor's payload (origin scheme,
    /// generic variables recursively boxed — the Figure 2 convention).
    pub(crate) fn payload_rep(&mut self, con: &ConInfo) -> Lty {
        if con.tag.is_some() {
            // Exception payloads always use the standard one-word boxed
            // representation (they may cross abstraction boundaries).
            return self.interner.rboxed();
        }
        let full = self.ltc(&con.rep_scheme().body);
        match *self.interner.kind(full) {
            LtyKind::Arrow(arg, _) => arg,
            _ => panic!("payload_rep of constant constructor"),
        }
    }

    // ----- declarations -----------------------------------------------------

    pub(crate) fn tr_decs(&mut self, decs: &[TDec], k: &mut dyn FnMut(&mut Self) -> Lexp) -> Lexp {
        match decs.split_first() {
            None => k(self),
            Some((d, rest)) => {
                let mut k2 = |me: &mut Self| me.tr_decs(rest, k);
                self.tr_dec(d, &mut k2)
            }
        }
    }

    fn tr_dec(&mut self, dec: &TDec, k: &mut dyn FnMut(&mut Self) -> Lexp) -> Lexp {
        match dec {
            TDec::Val { pat, exp } => {
                let e = self.tr_exp(exp);
                let elty = self.ltc(&exp.ty);
                let v = self.vg.fresh();
                let bind_exn = self.elab.builtins.bind_exn;
                let fail = {
                    let tag = self.tr_access(&Access::Var(bind_exn));
                    // Result type of the failure is irrelevant; the match
                    // compiler patches it to the continuation's type.
                    tag
                };
                let body = self.compile_bind(v, elty, pat, fail, k);
                Lexp::Let(v, Box::new(e), Box::new(body))
            }
            TDec::PolyVal { var, exp } => {
                let e = self.tr_exp(exp);
                let v = self.lv(*var);
                Lexp::Let(v, Box::new(e), Box::new(k(self)))
            }
            TDec::Fun { vars, exps } => {
                let mut bindings = Vec::new();
                for (var, exp) in vars.iter().zip(exps) {
                    let v = self.lv(*var);
                    let scheme = self.elab.vars.scheme(*var).clone();
                    let lty = self.ltc_scheme(&scheme);
                    let e = self.tr_exp(exp);
                    // The body was translated at the (identical) zonked
                    // type; coerce defensively in case of representation
                    // drift between instance and scheme views.
                    let elty = self.ltc(&exp.ty);
                    let e = self.coerce(e, elty, lty);
                    bindings.push((v, lty, e));
                }
                Lexp::Fix(bindings, Box::new(k(self)))
            }
            TDec::Exception { var, name } => {
                let v = self.lv(*var);
                Lexp::Let(
                    v,
                    Box::new(Lexp::Record(vec![Lexp::Str(name.as_str().to_owned())])),
                    Box::new(k(self)),
                )
            }
            TDec::Structure { var, def } => {
                let e = self.tr_strexp(def);
                let v = self.lv(*var);
                Lexp::Let(v, Box::new(e), Box::new(k(self)))
            }
            TDec::Functor {
                var,
                param,
                param_ty,
                result_ty,
                body,
            } => {
                let p = self.lv(*param);
                let plty = self.ltc_strty(param_ty);
                let b = self.tr_strexp(body);
                let blty = self.ltc_strty(result_ty);
                let v = self.lv(*var);
                Lexp::Let(
                    v,
                    Box::new(Lexp::Fn(p, plty, blty, Box::new(b))),
                    Box::new(k(self)),
                )
            }
        }
    }

    // ----- structure expressions ---------------------------------------------

    fn tr_strexp(&mut self, se: &TStrExp) -> Lexp {
        match se {
            TStrExp::Access(a) => self.tr_access(a),
            TStrExp::Struct { decs, exports } => {
                let exports = exports.clone();
                self.tr_decs(decs, &mut move |me: &mut Self| {
                    let fields: Vec<Lexp> = exports
                        .iter()
                        .map(|ex| match &ex.item {
                            sml_elab::ExportItem::Val { access, .. }
                            | sml_elab::ExportItem::Exn { access }
                            | sml_elab::ExportItem::Str { access, .. } => me.tr_access(access),
                        })
                        .collect();
                    Lexp::SRecord(fields)
                })
            }
            TStrExp::Thin { base, items, .. } => {
                let b = self.tr_strexp(base);
                let blty = self.strexp_lty(base);
                let v = self.vg.fresh();
                let rec = self.tr_thin_items(v, blty, items);
                Lexp::Let(v, Box::new(b), Box::new(rec))
            }
            TStrExp::FctApp { fct, arg, from, to } => {
                let f = self.tr_access(fct);
                let a = self.tr_strexp(arg);
                let app = Lexp::App(Box::new(f), Box::new(a));
                let from_lty = self.ltc_strty(from);
                let to_lty = self.ltc_strty(to);
                self.module_coerce(app, from_lty, to_lty)
            }
        }
    }

    /// The LTY of a structure expression (for thinning selects). For
    /// `Access` bases the exact SRECORD shape is unknown here, but every
    /// select from `BOXED` yields `RBOXED`, so the thinning coercions
    /// still apply correctly; `Struct`/`Thin`/`FctApp` shapes come from
    /// their `StrTy`.
    fn strexp_lty(&mut self, se: &TStrExp) -> Lty {
        match se {
            TStrExp::Thin { to, .. } | TStrExp::FctApp { to, .. } => self.ltc_strty(to),
            _ => self.interner.boxed(),
        }
    }

    fn tr_thin_items(&mut self, base: LVar, base_lty: Lty, items: &[ThinItem]) -> Lexp {
        let fields: Vec<Lexp> = items
            .iter()
            .map(|item| match item {
                ThinItem::Val { slot, from, to } => {
                    let sel = Lexp::Select(*slot, Box::new(Lexp::Var(base)));
                    let from_lty = self.slot_lty(base_lty, *slot, from);
                    let to_lty = self.ltc_scheme(to);
                    self.module_coerce(sel, from_lty, to_lty)
                }
                ThinItem::Exn { slot } => Lexp::Select(*slot, Box::new(Lexp::Var(base))),
                ThinItem::Str { slot, items, .. } => {
                    let v = self.vg.fresh();
                    let sub_lty = self.slot_lty_raw(base_lty, *slot);
                    let body = self.tr_thin_items(v, sub_lty, items);
                    Lexp::Let(
                        v,
                        Box::new(Lexp::Select(*slot, Box::new(Lexp::Var(base)))),
                        Box::new(body),
                    )
                }
            })
            .collect();
        Lexp::SRecord(fields)
    }

    fn slot_lty(&mut self, base: Lty, slot: usize, from: &Scheme) -> Lty {
        match self.interner.kind(base).clone() {
            LtyKind::SRecord(fs) if slot < fs.len() => fs[slot],
            _ => self.ltc_scheme(from),
        }
    }

    fn slot_lty_raw(&mut self, base: Lty, slot: usize) -> Lty {
        match self.interner.kind(base).clone() {
            LtyKind::SRecord(fs) if slot < fs.len() => fs[slot],
            _ => self.interner.boxed(),
        }
    }

    pub(crate) fn tr_access(&mut self, a: &Access) -> Lexp {
        match a {
            Access::Var(v) => Lexp::Var(self.lv(*v)),
            Access::Select(inner, i) => Lexp::Select(*i, Box::new(self.tr_access(inner))),
        }
    }

    // ----- expressions ----------------------------------------------------------

    pub(crate) fn tr_exp(&mut self, exp: &TExp) -> Lexp {
        match &exp.kind {
            TExpKind::Int(n) => Lexp::Int(*n),
            TExpKind::Char(c) => Lexp::Int(*c as i64),
            TExpKind::Real(x) => {
                let want = self.ltc(&exp.ty);
                let real = self.interner.real();
                self.coerce(Lexp::Real(*x), real, want)
            }
            TExpKind::Str(s) => Lexp::Str(s.clone()),
            TExpKind::Var { access, scheme, .. } => {
                let e = self.tr_access(access);
                let from = self.ltc_scheme(scheme);
                let to = self.ltc(&exp.ty);
                self.coerce(e, from, to)
            }
            TExpKind::Prim { prim, inst } => {
                // A primitive used as a value: eta-expand.
                self.eta_prim(*prim, inst, &exp.ty)
            }
            TExpKind::Con { con, inst } => self.con_value(con, inst, &exp.ty),
            TExpKind::Record(fields) => {
                if fields.is_empty() {
                    return Lexp::unit();
                }
                let es: Vec<Lexp> = fields.iter().map(|(_, e)| self.tr_exp(e)).collect();
                Lexp::Record(es)
            }
            TExpKind::Select { label, arg } => {
                let a = self.tr_exp(arg);
                let arg_lty = self.ltc(&arg.ty);
                let Ty::Record(fs) = arg.ty.zonk() else {
                    panic!("select from non-record type {}", arg.ty.zonk())
                };
                let idx = fs
                    .iter()
                    .position(|(l, _)| l == label)
                    .expect("elaboration resolved the label");
                let sel = Lexp::Select(idx, Box::new(a));
                let field_lty = match self.interner.kind(arg_lty).clone() {
                    LtyKind::Record(fl) => fl[idx],
                    _ => self.interner.rboxed(),
                };
                let want = self.ltc(&exp.ty);
                self.coerce(sel, field_lty, want)
            }
            TExpKind::App(f, a) => self.tr_app(f, a, &exp.ty),
            TExpKind::Fn { rules, arg_ty } => {
                let p = self.vg.fresh();
                let plty = self.ltc(arg_ty);
                let res_lty = self.ltc(&rules[0].exp.ty);
                let match_tag = Access::Var(self.elab.builtins.match_exn);
                let fail_tag = self.tr_access(&match_tag);
                let body = self.compile_match(p, plty, rules, fail_tag, res_lty);
                Lexp::Fn(p, plty, res_lty, Box::new(body))
            }
            TExpKind::Case(scrut, rules) => {
                let s = self.tr_exp(scrut);
                let slty = self.ltc(&scrut.ty);
                let v = self.vg.fresh();
                let res_lty = self.ltc(&exp.ty);
                let match_tag = Access::Var(self.elab.builtins.match_exn);
                let fail_tag = self.tr_access(&match_tag);
                let body = self.compile_match(v, slty, rules, fail_tag, res_lty);
                Lexp::Let(v, Box::new(s), Box::new(body))
            }
            TExpKind::If(c, t, e) => {
                let c = self.tr_exp(c);
                let t = self.tr_exp(t);
                let e = self.tr_exp(e);
                Lexp::If(Box::new(c), Box::new(t), Box::new(e))
            }
            TExpKind::While(c, b) => {
                let loop_v = self.vg.fresh();
                let dummy = self.vg.fresh();
                let int = self.interner.int();
                let loop_ty = self.interner.arrow(int, int);
                let c = self.tr_exp(c);
                let b = self.tr_exp(b);
                let junk = self.vg.fresh();
                let again = Lexp::App(Box::new(Lexp::Var(loop_v)), Box::new(Lexp::Int(0)));
                let body = Lexp::If(
                    Box::new(c),
                    Box::new(Lexp::Let(junk, Box::new(b), Box::new(again))),
                    Box::new(Lexp::Int(0)),
                );
                Lexp::Fix(
                    vec![(loop_v, loop_ty, Lexp::Fn(dummy, int, int, Box::new(body)))],
                    Box::new(Lexp::App(
                        Box::new(Lexp::Var(loop_v)),
                        Box::new(Lexp::Int(0)),
                    )),
                )
            }
            TExpKind::Seq(es) => {
                let mut out = None;
                for e in es {
                    let t = self.tr_exp(e);
                    out = Some(match out {
                        None => t,
                        Some(prev) => {
                            let v = self.vg.fresh();
                            Lexp::Let(v, Box::new(prev), Box::new(t))
                        }
                    });
                }
                out.expect("non-empty sequence")
            }
            TExpKind::Let(decs, body) => {
                let body = body.clone();
                self.tr_decs(decs, &mut move |me: &mut Self| me.tr_exp(&body))
            }
            TExpKind::Raise(e) => {
                let v = self.tr_exp(e);
                let lty = self.ltc(&exp.ty);
                Lexp::Raise(Box::new(v), lty)
            }
            TExpKind::Handle(e, rules) => {
                let body = self.tr_exp(e);
                let x = self.vg.fresh();
                let boxed = self.interner.boxed();
                let res_lty = self.ltc(&exp.ty);
                let hbody = self.compile_handler(x, rules, res_lty);
                Lexp::Handle(
                    Box::new(body),
                    Box::new(Lexp::Fn(x, boxed, res_lty, Box::new(hbody))),
                )
            }
        }
    }

    fn tr_app(&mut self, f: &TExp, a: &TExp, res_ty: &Ty) -> Lexp {
        match &f.kind {
            TExpKind::Prim { prim, inst } => self.tr_prim_app(*prim, inst, a, res_ty),
            TExpKind::Con { con, inst } => {
                let arg = self.tr_exp(a);
                let arg_lty = self.ltc(&a.ty);
                self.con_inject(con, inst, arg, arg_lty)
            }
            _ => {
                let tf = self.tr_exp(f);
                let ta = self.tr_exp(a);
                Lexp::App(Box::new(tf), Box::new(ta))
            }
        }
    }

    /// Constructor used as a value (not directly applied): eta-expand.
    fn con_value(&mut self, con: &ConInfo, inst: &[Ty], ty: &Ty) -> Lexp {
        match con.rep {
            ConRep::Constant(n) => Lexp::Int(n as i64),
            ConRep::ExnConst => {
                let tag = con.tag.clone().expect("exception has a tag");
                self.tr_access(&tag)
            }
            _ => {
                // fn x => inject x
                let Ty::Arrow(argt, _) = ty.zonk() else {
                    panic!("carrying constructor at non-arrow type")
                };
                let x = self.vg.fresh();
                let arg_lty = self.ltc(&argt);
                let body = self.con_inject(con, inst, Lexp::Var(x), arg_lty);
                let boxed = self.interner.boxed();
                Lexp::Fn(x, arg_lty, boxed, Box::new(body))
            }
        }
    }

    /// Builds a constructor injection.
    pub(crate) fn con_inject(
        &mut self,
        con: &ConInfo,
        _inst: &[Ty],
        arg: Lexp,
        arg_lty: Lty,
    ) -> Lexp {
        match con.rep {
            ConRep::Constant(_) => unreachable!("constant constructors are not applied"),
            ConRep::Transparent => {
                // The paper's pointer WRAP: the payload record *is* the
                // value, viewed at the one-word datatype representation.
                // The explicit node keeps branch types consistent and
                // pairs with the UNWRAP at destruction sites (cancelled
                // by the optimizer).
                let rep = self.payload_rep(con);
                let payload = self.coerce(arg, arg_lty, rep);
                Lexp::Wrap(rep, Box::new(payload))
            }
            ConRep::Tagged(tag) => {
                let rep = self.payload_rep(con);
                let int = self.interner.int();
                let rec_lty = self.interner.record(vec![int, rep]);
                let payload = self.coerce(arg, arg_lty, rep);
                Lexp::Wrap(
                    rec_lty,
                    Box::new(Lexp::Record(vec![Lexp::Int(tag as i64), payload])),
                )
            }
            ConRep::Exn => {
                let taga = con.tag.clone().expect("exception has a tag");
                let tag = self.tr_access(&taga);
                let rb = self.interner.rboxed();
                let boxed = self.interner.boxed();
                let rec_lty = self.interner.record(vec![boxed, rb]);
                let payload = self.coerce(arg, arg_lty, rb);
                Lexp::Wrap(rec_lty, Box::new(Lexp::Record(vec![tag, payload])))
            }
            ConRep::ExnConst => unreachable!("constant exceptions are not applied"),
        }
    }

    // ----- primitives ------------------------------------------------------------

    /// Resolves an overloaded or polymorphic source primitive occurrence
    /// to a concrete [`Primop`] using its (post-MTD) instantiation.
    fn resolve_prim(&mut self, prim: Prim, inst: &[Ty]) -> ResolvedPrim {
        use Primop::*;
        let head = inst.first().map(|t| t.zonk());
        let class = |t: &Option<Ty>| -> OvHead {
            match t {
                Some(Ty::Con(c, _)) => match c.kind {
                    TyconKind::Int | TyconKind::Char => OvHead::Int,
                    TyconKind::Real => OvHead::Real,
                    TyconKind::String => OvHead::Str,
                    TyconKind::Data if c.stamp == sml_types::Tycon::bool().stamp => OvHead::Int,
                    TyconKind::Data if c.stamp == sml_types::Tycon::order().stamp => OvHead::Int,
                    _ => OvHead::Other,
                },
                Some(Ty::Record(fs)) if fs.is_empty() => OvHead::Int,
                _ => OvHead::Other,
            }
        };
        let h = class(&head);
        match prim {
            Prim::OAdd => ResolvedPrim::Op(if h == OvHead::Real { FAdd } else { IAdd }),
            Prim::OSub => ResolvedPrim::Op(if h == OvHead::Real { FSub } else { ISub }),
            Prim::OMul => ResolvedPrim::Op(if h == OvHead::Real { FMul } else { IMul }),
            Prim::ONeg => ResolvedPrim::Op(if h == OvHead::Real { FNeg } else { INeg }),
            Prim::OLt => ResolvedPrim::Op(match h {
                OvHead::Real => FLt,
                OvHead::Str => StrLt,
                _ => ILt,
            }),
            Prim::OLe => ResolvedPrim::Op(match h {
                OvHead::Real => FLe,
                OvHead::Str => StrLe,
                _ => ILe,
            }),
            Prim::OGt => ResolvedPrim::Op(match h {
                OvHead::Real => FGt,
                OvHead::Str => StrGt,
                _ => IGt,
            }),
            Prim::OGe => ResolvedPrim::Op(match h {
                OvHead::Real => FGe,
                OvHead::Str => StrGe,
                _ => IGe,
            }),
            // Polymorphic equality specialization (paper §4.4): known
            // monomorphic instances become primitive comparisons.
            Prim::PolyEq => ResolvedPrim::Op(match h {
                OvHead::Int => IEq,
                OvHead::Real => FEq,
                OvHead::Str => StrEq,
                OvHead::Other => PolyEq,
            }),
            Prim::PolyNe => match h {
                OvHead::Int => ResolvedPrim::Op(INe),
                OvHead::Real => ResolvedPrim::Op(FNe),
                OvHead::Str => ResolvedPrim::Op(StrNe),
                OvHead::Other => ResolvedPrim::NegatedPolyEq,
            },
            Prim::IAdd => ResolvedPrim::Op(IAdd),
            Prim::ISub => ResolvedPrim::Op(ISub),
            Prim::IMul => ResolvedPrim::Op(IMul),
            Prim::IDiv => ResolvedPrim::CheckedDiv(IDiv),
            Prim::IMod => ResolvedPrim::CheckedDiv(IMod),
            Prim::INeg => ResolvedPrim::Op(INeg),
            Prim::ILt => ResolvedPrim::Op(ILt),
            Prim::ILe => ResolvedPrim::Op(ILe),
            Prim::IGt => ResolvedPrim::Op(IGt),
            Prim::IGe => ResolvedPrim::Op(IGe),
            Prim::IEq => ResolvedPrim::Op(IEq),
            Prim::INe => ResolvedPrim::Op(INe),
            Prim::FAdd => ResolvedPrim::Op(FAdd),
            Prim::FSub => ResolvedPrim::Op(FSub),
            Prim::FMul => ResolvedPrim::Op(FMul),
            Prim::FDiv => ResolvedPrim::Op(FDiv),
            Prim::FNeg => ResolvedPrim::Op(FNeg),
            Prim::FLt => ResolvedPrim::Op(FLt),
            Prim::FLe => ResolvedPrim::Op(FLe),
            Prim::FGt => ResolvedPrim::Op(FGt),
            Prim::FGe => ResolvedPrim::Op(FGe),
            Prim::FEq => ResolvedPrim::Op(FEq),
            Prim::FNe => ResolvedPrim::Op(FNe),
            Prim::FSqrt => ResolvedPrim::Op(FSqrt),
            Prim::FSin => ResolvedPrim::Op(FSin),
            Prim::FCos => ResolvedPrim::Op(FCos),
            Prim::FAtan => ResolvedPrim::Op(FAtan),
            Prim::FExp => ResolvedPrim::Op(FExp),
            Prim::FLn => ResolvedPrim::Op(FLn),
            Prim::Floor => ResolvedPrim::Op(Floor),
            Prim::IntToReal => ResolvedPrim::Op(IntToReal),
            Prim::StrSize => ResolvedPrim::Op(StrSize),
            Prim::StrSub => ResolvedPrim::CheckedStrSub,
            Prim::StrCat => ResolvedPrim::Op(StrCat),
            Prim::StrEq => ResolvedPrim::Op(StrEq),
            Prim::StrLt => ResolvedPrim::Op(StrLt),
            Prim::StrLe => ResolvedPrim::Op(StrLe),
            Prim::StrGt => ResolvedPrim::Op(StrGt),
            Prim::StrGe => ResolvedPrim::Op(StrGe),
            Prim::Ord => ResolvedPrim::Identity,
            Prim::Chr => ResolvedPrim::CheckedChr,
            Prim::IntToString => ResolvedPrim::Op(IntToString),
            Prim::RealToString => ResolvedPrim::Op(RealToString),
            Prim::MakeRef => ResolvedPrim::Op(MakeRef),
            Prim::Deref => ResolvedPrim::Op(Deref),
            Prim::Assign => {
                // Unboxed update (paper §4.4): assigning a value the
                // types prove to be a non-pointer skips the write
                // barrier.
                if self.cfg.type_based && class(&head) == OvHead::Int {
                    ResolvedPrim::Op(UnboxedAssign)
                } else {
                    ResolvedPrim::Op(Assign)
                }
            }
            Prim::ArrayMake => ResolvedPrim::CheckedArrayMake,
            Prim::ArraySub => ResolvedPrim::CheckedArraySub,
            Prim::ArrayUpdate => {
                if self.cfg.type_based && class(&head) == OvHead::Int {
                    ResolvedPrim::CheckedArrayUpdate(UnboxedArrayUpdate)
                } else {
                    ResolvedPrim::CheckedArrayUpdate(ArrayUpdate)
                }
            }
            Prim::ArrayLength => ResolvedPrim::Op(ArrayLength),
            Prim::Callcc => ResolvedPrim::Callcc,
            Prim::Throw => ResolvedPrim::Throw,
            Prim::Print => ResolvedPrim::Op(Print),
        }
    }

    /// Translates a saturated primitive application `prim a`.
    fn tr_prim_app(&mut self, prim: Prim, inst: &[Ty], a: &TExp, res_ty: &Ty) -> Lexp {
        let resolved = self.resolve_prim(prim, inst);
        let want_res = self.ltc(res_ty);
        match resolved {
            ResolvedPrim::Identity => self.tr_exp(a),
            ResolvedPrim::Callcc => {
                let f = self.tr_exp(a);
                let flty = self.ltc(&a.ty);
                let boxed = self.interner.boxed();
                let want_f = self.interner.arrow(boxed, boxed);
                let f = self.coerce(f, flty, want_f);
                let call = Lexp::PrimApp(Primop::Callcc, vec![f]);
                self.coerce(call, boxed, want_res)
            }
            ResolvedPrim::Throw => {
                // `throw k` yields a function of the thrown value;
                // eta-expand over it, coercing to the continuation's
                // standard (recursively boxed) value representation.
                let k = self.tr_exp(a);
                let klty = self.ltc(&a.ty);
                let boxed = self.interner.boxed();
                let k = self.coerce(k, klty, boxed);
                let x = self.vg.fresh();
                let rb = self.interner.rboxed();
                let val_lty = match res_ty.zonk() {
                    Ty::Arrow(vt, _) => self.ltc(&vt),
                    _ => rb,
                };
                let kv = self.vg.fresh();
                let val = self.coerce(Lexp::Var(x), val_lty, rb);
                let body = Lexp::PrimApp(Primop::Throw, vec![Lexp::Var(kv), val]);
                Lexp::Let(
                    kv,
                    Box::new(k),
                    Box::new(Lexp::Fn(x, val_lty, rb, Box::new(body))),
                )
            }
            ResolvedPrim::NegatedPolyEq => {
                let e = self.prim_call(Primop::PolyEq, a);
                Lexp::If(Box::new(e), Box::new(Lexp::Int(0)), Box::new(Lexp::Int(1)))
            }
            ResolvedPrim::CheckedDiv(op) => {
                let (args, binding) = self.prim_args(a);
                let (x, y) = two(args);
                let yv = self.vg.fresh();
                let div_tag = self.exn_const(self.elab.builtins.div_exn);
                let check = Lexp::If(
                    Box::new(Lexp::PrimApp(
                        Primop::IEq,
                        vec![Lexp::Var(yv), Lexp::Int(0)],
                    )),
                    Box::new(Lexp::Raise(Box::new(div_tag), want_res)),
                    Box::new(Lexp::PrimApp(op, vec![x, Lexp::Var(yv)])),
                );
                wrap_binding(binding, Lexp::Let(yv, Box::new(y), Box::new(check)))
            }
            ResolvedPrim::CheckedChr => {
                let arg = self.tr_exp(a);
                let v = self.vg.fresh();
                let chr_tag = self.exn_const(self.elab.builtins.chr_exn);
                let in_range = Lexp::If(
                    Box::new(Lexp::PrimApp(Primop::ILt, vec![Lexp::Var(v), Lexp::Int(0)])),
                    Box::new(Lexp::Int(0)),
                    Box::new(Lexp::PrimApp(
                        Primop::ILt,
                        vec![Lexp::Var(v), Lexp::Int(256)],
                    )),
                );
                let body = Lexp::If(
                    Box::new(in_range),
                    Box::new(Lexp::Var(v)),
                    Box::new(Lexp::Raise(Box::new(chr_tag), want_res)),
                );
                Lexp::Let(v, Box::new(arg), Box::new(body))
            }
            ResolvedPrim::CheckedStrSub => {
                // Bounds check against the string size.
                let (args, binding) = self.prim_args(a);
                let (s, idx) = two(args);
                let sv = self.vg.fresh();
                let iv = self.vg.fresh();
                let sub_tag = self.exn_const(self.elab.builtins.subscript_exn);
                let ok = Lexp::If(
                    Box::new(Lexp::PrimApp(
                        Primop::ILt,
                        vec![Lexp::Var(iv), Lexp::Int(0)],
                    )),
                    Box::new(Lexp::Int(0)),
                    Box::new(Lexp::PrimApp(
                        Primop::ILt,
                        vec![
                            Lexp::Var(iv),
                            Lexp::PrimApp(Primop::StrSize, vec![Lexp::Var(sv)]),
                        ],
                    )),
                );
                let body = Lexp::If(
                    Box::new(ok),
                    Box::new(Lexp::PrimApp(
                        Primop::StrSub,
                        vec![Lexp::Var(sv), Lexp::Var(iv)],
                    )),
                    Box::new(Lexp::Raise(Box::new(sub_tag), want_res)),
                );
                wrap_binding(
                    binding,
                    Lexp::Let(
                        sv,
                        Box::new(s),
                        Box::new(Lexp::Let(iv, Box::new(idx), Box::new(body))),
                    ),
                )
            }
            ResolvedPrim::CheckedArrayMake => {
                let (args, binding) = self.prim_args(a);
                let (n, init) = two(args);
                let nv = self.vg.fresh();
                let size_tag = self.exn_const(self.elab.builtins.size_exn);
                let init_lty = self.arg_field_lty(a, 1);
                let rb = self.interner.rboxed();
                let init = self.coerce(init, init_lty, rb);
                let body = Lexp::If(
                    Box::new(Lexp::PrimApp(
                        Primop::ILt,
                        vec![Lexp::Var(nv), Lexp::Int(0)],
                    )),
                    Box::new(Lexp::Raise(Box::new(size_tag), want_res)),
                    Box::new(Lexp::PrimApp(Primop::ArrayMake, vec![Lexp::Var(nv), init])),
                );
                wrap_binding(binding, Lexp::Let(nv, Box::new(n), Box::new(body)))
            }
            ResolvedPrim::CheckedArraySub => {
                let (args, binding) = self.prim_args(a);
                let (arr, idx) = two(args);
                let av = self.vg.fresh();
                let iv = self.vg.fresh();
                let sub_tag = self.exn_const(self.elab.builtins.subscript_exn);
                let ok = Lexp::If(
                    Box::new(Lexp::PrimApp(
                        Primop::ILt,
                        vec![Lexp::Var(iv), Lexp::Int(0)],
                    )),
                    Box::new(Lexp::Int(0)),
                    Box::new(Lexp::PrimApp(
                        Primop::ILt,
                        vec![
                            Lexp::Var(iv),
                            Lexp::PrimApp(Primop::ArrayLength, vec![Lexp::Var(av)]),
                        ],
                    )),
                );
                let rb = self.interner.rboxed();
                let fetch = Lexp::PrimApp(Primop::ArraySub, vec![Lexp::Var(av), Lexp::Var(iv)]);
                let fetch = self.coerce(fetch, rb, want_res);
                let body = Lexp::If(
                    Box::new(ok),
                    Box::new(fetch),
                    Box::new(Lexp::Raise(Box::new(sub_tag), want_res)),
                );
                wrap_binding(
                    binding,
                    Lexp::Let(
                        av,
                        Box::new(arr),
                        Box::new(Lexp::Let(iv, Box::new(idx), Box::new(body))),
                    ),
                )
            }
            ResolvedPrim::CheckedArrayUpdate(op) => {
                let (args, binding) = self.prim_args(a);
                let (arr, idx, val) = three(args);
                let av = self.vg.fresh();
                let iv = self.vg.fresh();
                let sub_tag = self.exn_const(self.elab.builtins.subscript_exn);
                let val_lty = self.arg_field_lty(a, 2);
                let rb = self.interner.rboxed();
                let val = self.coerce(val, val_lty, rb);
                let ok = Lexp::If(
                    Box::new(Lexp::PrimApp(
                        Primop::ILt,
                        vec![Lexp::Var(iv), Lexp::Int(0)],
                    )),
                    Box::new(Lexp::Int(0)),
                    Box::new(Lexp::PrimApp(
                        Primop::ILt,
                        vec![
                            Lexp::Var(iv),
                            Lexp::PrimApp(Primop::ArrayLength, vec![Lexp::Var(av)]),
                        ],
                    )),
                );
                let body = Lexp::If(
                    Box::new(ok),
                    Box::new(Lexp::PrimApp(op, vec![Lexp::Var(av), Lexp::Var(iv), val])),
                    Box::new(Lexp::Raise(Box::new(sub_tag), want_res)),
                );
                wrap_binding(
                    binding,
                    Lexp::Let(
                        av,
                        Box::new(arr),
                        Box::new(Lexp::Let(iv, Box::new(idx), Box::new(body))),
                    ),
                )
            }
            ResolvedPrim::Op(op) => {
                let e = self.prim_call(op, a);
                let (_, res) = op.sig(&mut self.interner);
                self.coerce(e, res, want_res)
            }
        }
    }

    fn exn_const(&mut self, v: VarId) -> Lexp {
        self.tr_access(&Access::Var(v))
    }

    /// LTY of the `idx`th field of a tupled primitive argument.
    fn arg_field_lty(&mut self, a: &TExp, idx: usize) -> Lty {
        match a.ty.zonk() {
            Ty::Record(fs) if idx < fs.len() => self.ltc(&fs[idx].1),
            _ => self.interner.rboxed(),
        }
    }

    /// Builds a primitive call, coercing each argument to the primitive's
    /// expected representation.
    fn prim_call(&mut self, op: Primop, a: &TExp) -> Lexp {
        let (want, _) = op.sig(&mut self.interner);
        if want.len() == 1 {
            let arg = self.tr_exp(a);
            let from = self.ltc(&a.ty);
            let arg = self.coerce(arg, from, want[0]);
            return Lexp::PrimApp(op, vec![arg]);
        }
        let (args, binding) = self.prim_args(a);
        let coerced: Vec<Lexp> = args
            .into_iter()
            .enumerate()
            .map(|(i, e)| {
                let from = self.arg_field_lty(a, i);
                self.coerce(e, from, want[i])
            })
            .collect();
        wrap_binding(binding, Lexp::PrimApp(op, coerced))
    }

    /// Splits a tupled primitive argument into component expressions
    /// (directly when it is literally a tuple, via selects otherwise).
    /// The returned binding, if any, must wrap the expression that
    /// consumes the components (see [`wrap_binding`]).
    fn prim_args(&mut self, a: &TExp) -> (Vec<Lexp>, Option<(LVar, Lexp)>) {
        match (&a.kind, a.ty.zonk()) {
            (TExpKind::Record(fields), _) => {
                (fields.iter().map(|(_, e)| self.tr_exp(e)).collect(), None)
            }
            (_, Ty::Record(fs)) => {
                let v = self.vg.fresh();
                let tup = self.tr_exp(a);
                let tup_lty = self.ltc(&a.ty);
                let mut out = Vec::new();
                for (i, (_, fty)) in fs.iter().enumerate() {
                    let sel = Lexp::Select(i, Box::new(Lexp::Var(v)));
                    let field_lty = match self.interner.kind(tup_lty).clone() {
                        LtyKind::Record(fl) => fl[i],
                        _ => self.interner.rboxed(),
                    };
                    let want = self.ltc(fty);
                    out.push(self.coerce(sel, field_lty, want));
                }
                (out, Some((v, tup)))
            }
            _ => panic!("primitive applied to non-tuple of type {}", a.ty.zonk()),
        }
    }

    /// A primitive used as a first-class value: eta-expand to a function.
    fn eta_prim(&mut self, prim: Prim, inst: &[Ty], ty: &Ty) -> Lexp {
        let Ty::Arrow(argt, rest) = ty.zonk() else {
            panic!("primitive at non-arrow type")
        };
        let x = self.vg.fresh();
        let arg_lty = self.ltc(&argt);
        // Build a synthetic application `prim x`.
        let var_exp = TExp {
            kind: TExpKind::Var {
                access: Access::Var(PSEUDO_VAR),
                scheme: Scheme::mono((*argt).clone()),
                inst: Vec::new(),
            },
            ty: (*argt).clone(),
        };
        // We cannot reuse tr_prim_app directly with a fake TExp var (it
        // would need a VarId); instead inline the argument by
        // constructing the call around Lexp::Var(x).
        let res_lty = self.ltc(&rest);
        let body = self.eta_prim_body(prim, inst, Lexp::Var(x), &argt, &rest);
        let _ = var_exp;
        Lexp::Fn(x, arg_lty, res_lty, Box::new(body))
    }

    fn eta_prim_body(
        &mut self,
        prim: Prim,
        inst: &[Ty],
        arg: Lexp,
        arg_ty: &Ty,
        res_ty: &Ty,
    ) -> Lexp {
        // Bind the argument to a pseudo TExp by translating through a
        // wrapper: reuse tr_prim_app by substituting a `Let`-bound
        // variable. The simplest correct approach: build the call
        // manually for the common shapes.
        let resolved = self.resolve_prim(prim, inst);
        let want_res = self.ltc(res_ty);
        match resolved {
            ResolvedPrim::Identity => arg,
            ResolvedPrim::Op(op) => {
                let (want, res) = op.sig(&mut self.interner);
                let call = if want.len() == 1 {
                    let from = self.ltc(arg_ty);
                    let a = self.coerce(arg, from, want[0]);
                    Lexp::PrimApp(op, vec![a])
                } else {
                    let v = self.vg.fresh();
                    let arg_lty = self.ltc(arg_ty);
                    let Ty::Record(fs) = arg_ty.zonk() else {
                        panic!("tupled primitive at non-record type")
                    };
                    let mut args = Vec::new();
                    for (i, (_, fty)) in fs.iter().enumerate() {
                        let sel = Lexp::Select(i, Box::new(Lexp::Var(v)));
                        let field_lty = match self.interner.kind(arg_lty).clone() {
                            LtyKind::Record(fl) => fl[i],
                            _ => self.interner.rboxed(),
                        };
                        let want_i = self.ltc(fty);
                        let _ = want_i;
                        args.push(self.coerce(sel, field_lty, want[i]));
                    }
                    Lexp::Let(v, Box::new(arg), Box::new(Lexp::PrimApp(op, args)))
                };
                self.coerce(call, res, want_res)
            }
            // The checked/special primitives are eta-expanded by
            // re-binding the argument and dispatching through a synthetic
            // application; build a TExp-free version via a Let and the
            // saturated translator on a variable reference is not
            // available, so handle the few special cases directly.
            _ => {
                let v = self.vg.fresh();
                let arg_lty = self.ltc(arg_ty);
                let fake = TExp {
                    kind: TExpKind::Var {
                        access: Access::Var(PSEUDO_VAR),
                        scheme: Scheme::mono(arg_ty.clone()),
                        inst: Vec::new(),
                    },
                    ty: arg_ty.clone(),
                };
                // Temporarily map the pseudo var to `v`.
                self.vmap.insert(PSEUDO_VAR, v);
                // The pseudo variable has a monomorphic scheme equal to
                // its type, so `var_reps` sees from == to.
                let call = self.tr_prim_app_on_var(prim, inst, &fake, res_ty);
                let _ = arg_lty;
                Lexp::Let(v, Box::new(arg), Box::new(call))
            }
        }
    }

    fn tr_prim_app_on_var(&mut self, prim: Prim, inst: &[Ty], fake: &TExp, res_ty: &Ty) -> Lexp {
        self.tr_prim_app(prim, inst, fake, res_ty)
    }
}

/// Pseudo Absyn variable used for eta-expansion of special primitives;
/// outside the real VarTable range.
const PSEUDO_VAR: VarId = VarId(u32::MAX);

#[derive(PartialEq, Eq, Clone, Copy)]
enum OvHead {
    Int,
    Real,
    Str,
    Other,
}

enum ResolvedPrim {
    Op(Primop),
    Identity,
    NegatedPolyEq,
    CheckedDiv(Primop),
    CheckedChr,
    CheckedStrSub,
    CheckedArrayMake,
    CheckedArraySub,
    CheckedArrayUpdate(Primop),
    Callcc,
    Throw,
}

#[derive(PartialEq, Eq, Hash)]
enum VarKey {
    Unbound(u32),
    Gen(u32),
}

fn var_key(v: &sml_types::TvRef) -> VarKey {
    match &*v.0.borrow() {
        Tv::Unbound { id, .. } => VarKey::Unbound(*id),
        Tv::Gen(i) => VarKey::Gen(*i),
        Tv::Link(_) => unreachable!("head resolves links"),
    }
}

/// Marks type variables that appear anywhere under a (rigid or flexible)
/// type constructor (paper Figure 6: such variables translate to
/// `RBOXEDty` because datatype contents use standard representations).
fn mark_con_vars(ty: &Ty, under_con: bool, marked: &mut HashSet<VarKey>) {
    match ty.head() {
        Ty::Var(v) => {
            if under_con {
                marked.insert(var_key(&v));
            }
        }
        Ty::Con(_, args) => {
            for a in &args {
                mark_con_vars(a, true, marked);
            }
        }
        Ty::Record(fs) => {
            for (_, t) in &fs {
                mark_con_vars(t, under_con, marked);
            }
        }
        Ty::Arrow(a, b) => {
            mark_con_vars(&a, under_con, marked);
            mark_con_vars(&b, under_con, marked);
        }
    }
}

/// Wraps `body` in the tuple binding returned by `prim_args`, if any.
fn wrap_binding(binding: Option<(LVar, Lexp)>, body: Lexp) -> Lexp {
    match binding {
        Some((v, tup)) => Lexp::Let(v, Box::new(tup), Box::new(body)),
        None => body,
    }
}

fn two(mut v: Vec<Lexp>) -> (Lexp, Lexp) {
    assert_eq!(v.len(), 2, "expected a pair");
    let b = v.pop().expect("two elements");
    let a = v.pop().expect("two elements");
    (a, b)
}

fn three(mut v: Vec<Lexp>) -> (Lexp, Lexp, Lexp) {
    assert_eq!(v.len(), 3, "expected a triple");
    let c = v.pop().expect("three elements");
    let b = v.pop().expect("three elements");
    let a = v.pop().expect("three elements");
    (a, b, c)
}
