//! The typed lambda language LEXP (paper §4.1).
//!
//! A simply-typed, call-by-value lambda language: lambda, application,
//! constants, records and selection, a typed `WRAP`/`UNWRAP` pair for
//! representation coercions, exceptions, and saturated primitive
//! applications. Every binder is annotated with an [`Lty`]; the types of
//! all other expressions are computed bottom-up ([`type_of`]).

use crate::lty::{Lty, LtyInterner, LtyKind};
use std::collections::HashMap;

/// A lambda-language variable.
pub type LVar = u32;

/// Primitive operators of the lambda language (and of the CPS language
/// after conversion).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum Primop {
    IAdd,
    ISub,
    IMul,
    IDiv,
    IMod,
    INeg,
    ILt,
    ILe,
    IGt,
    IGe,
    IEq,
    INe,
    FAdd,
    FSub,
    FMul,
    FDiv,
    FNeg,
    FLt,
    FLe,
    FGt,
    FGe,
    FEq,
    FNe,
    FSqrt,
    FSin,
    FCos,
    FAtan,
    FExp,
    FLn,
    Floor,
    IntToReal,
    StrSize,
    StrSub,
    StrCat,
    StrEq,
    StrNe,
    StrLt,
    StrLe,
    StrGt,
    StrGe,
    IntToString,
    RealToString,
    /// Structural equality on standard-representation objects (the slow,
    /// polymorphic fallback).
    PolyEq,
    MakeRef,
    Deref,
    Assign,
    /// Assignment known to store a non-pointer: skips the generational
    /// write barrier (paper §4.4, footnote 4).
    UnboxedAssign,
    ArrayMake,
    ArraySub,
    ArrayUpdate,
    /// Array update known to store a non-pointer.
    UnboxedArrayUpdate,
    ArrayLength,
    Callcc,
    Throw,
    Print,
    /// Pointer identity (used for exception-tag dispatch).
    PtrEq,
    /// Runtime boxity test (pointer vs tagged integer).
    IsBoxed,
}

impl Primop {
    /// The operator's argument/result lambda types.
    /// `Callcc`/`Throw` have context-dependent results and are handled
    /// specially by the checker.
    pub fn sig(self, i: &mut LtyInterner) -> (Vec<Lty>, Lty) {
        use Primop::*;
        let int = i.int();
        let real = i.real();
        let boxed = i.boxed();
        let rb = i.rboxed();
        match self {
            IAdd | ISub | IMul | IDiv | IMod => (vec![int, int], int),
            INeg => (vec![int], int),
            ILt | ILe | IGt | IGe | IEq | INe => (vec![int, int], int),
            FAdd | FSub | FMul | FDiv => (vec![real, real], real),
            FNeg | FSqrt | FSin | FCos | FAtan | FExp | FLn => (vec![real], real),
            FLt | FLe | FGt | FGe | FEq | FNe => (vec![real, real], int),
            Floor => (vec![real], int),
            IntToReal => (vec![int], real),
            StrSize => (vec![boxed], int),
            StrSub => (vec![boxed, int], int),
            StrCat => (vec![boxed, boxed], boxed),
            StrEq | StrNe | StrLt | StrLe | StrGt | StrGe => (vec![boxed, boxed], int),
            IntToString => (vec![int], boxed),
            RealToString => (vec![real], boxed),
            PolyEq => (vec![boxed, boxed], int),
            MakeRef => (vec![rb], boxed),
            Deref => (vec![boxed], rb),
            Assign | UnboxedAssign => (vec![boxed, rb], int),
            ArrayMake => (vec![int, rb], boxed),
            ArraySub => (vec![boxed, int], rb),
            ArrayUpdate | UnboxedArrayUpdate => (vec![boxed, int, rb], int),
            ArrayLength => (vec![boxed], int),
            Callcc => {
                let f = i.arrow(boxed, boxed);
                (vec![f], boxed)
            }
            Throw => (vec![boxed, rb], rb),
            Print => (vec![boxed], int),
            PtrEq => (vec![boxed, boxed], int),
            IsBoxed => (vec![boxed], int),
        }
    }

    /// True if the operator has an observable effect (must not be
    /// dead-code eliminated or reordered).
    pub fn has_effect(self) -> bool {
        use Primop::*;
        matches!(
            self,
            IDiv | IMod // can be preceded by an explicit zero test, but keep conservative
                | MakeRef
                | Assign
                | UnboxedAssign
                | ArrayMake
                | ArraySub // bounds are pre-checked, but keep ordering
                | ArrayUpdate
                | UnboxedArrayUpdate
                | Deref
                | Callcc
                | Throw
                | Print
        )
    }
}

/// A typed lambda expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Lexp {
    /// Variable reference.
    Var(LVar),
    /// Integer constant (also chars, bools, unit, constant constructors).
    Int(i64),
    /// Real constant.
    Real(f64),
    /// String constant.
    Str(String),
    /// `fn (v : t) => body`, annotated with the declared result type
    /// (callers and the CPS converter must agree on the result layout).
    Fn(LVar, Lty, Lty, Box<Lexp>),
    /// Application.
    App(Box<Lexp>, Box<Lexp>),
    /// Mutually recursive function definitions; each body must be a
    /// [`Lexp::Fn`] and the annotation is its arrow type.
    Fix(Vec<(LVar, Lty, Lexp)>, Box<Lexp>),
    /// `let v = e1 in e2`.
    Let(LVar, Box<Lexp>, Box<Lexp>),
    /// Record construction (fields in order).
    Record(Vec<Lexp>),
    /// Structure-record construction (module objects).
    SRecord(Vec<Lexp>),
    /// Field selection.
    Select(usize, Box<Lexp>),
    /// Saturated primitive application.
    PrimApp(Primop, Vec<Lexp>),
    /// Two-way branch on a boolean integer.
    If(Box<Lexp>, Box<Lexp>, Box<Lexp>),
    /// Integer dispatch with optional default.
    SwitchInt(Box<Lexp>, Vec<(i64, Lexp)>, Option<Box<Lexp>>),
    /// `WRAP(t, e)`: box a value of type `t` into one word (paper §4.1).
    Wrap(Lty, Box<Lexp>),
    /// `UNWRAP(t, e)`: unbox one word into a value of type `t`.
    Unwrap(Lty, Box<Lexp>),
    /// Raise an exception; annotated with the (arbitrary) result type.
    Raise(Box<Lexp>, Lty),
    /// `handle`: the second expression is the handler function
    /// `exn -> t`.
    Handle(Box<Lexp>, Box<Lexp>),
}

impl Lexp {
    /// Convenience: unit value.
    pub fn unit() -> Lexp {
        Lexp::Int(0)
    }

    /// Number of AST nodes (a rough code-size metric for the middle end).
    pub fn size(&self) -> usize {
        match self {
            Lexp::Var(_) | Lexp::Int(_) | Lexp::Real(_) | Lexp::Str(_) => 1,
            Lexp::Fn(_, _, _, b) => 1 + b.size(),
            Lexp::App(f, a) => 1 + f.size() + a.size(),
            Lexp::Fix(fs, b) => 1 + b.size() + fs.iter().map(|(_, _, e)| e.size()).sum::<usize>(),
            Lexp::Let(_, a, b) => 1 + a.size() + b.size(),
            Lexp::Record(es) | Lexp::SRecord(es) | Lexp::PrimApp(_, es) => {
                1 + es.iter().map(Lexp::size).sum::<usize>()
            }
            Lexp::Select(_, e) | Lexp::Wrap(_, e) | Lexp::Unwrap(_, e) | Lexp::Raise(e, _) => {
                1 + e.size()
            }
            Lexp::If(c, t, e) => 1 + c.size() + t.size() + e.size(),
            Lexp::SwitchInt(s, arms, d) => {
                1 + s.size()
                    + arms.iter().map(|(_, e)| e.size()).sum::<usize>()
                    + d.as_ref().map_or(0, |e| e.size())
            }
            Lexp::Handle(e, h) => 1 + e.size() + h.size(),
        }
    }
}

/// Checks whether two lambda types are compatible at a value flow edge.
///
/// `BOXED` and `RBOXED` are one-word types interchangeable with any other
/// one-word type (the coercions that make this safe are explicit `WRAP`/
/// `UNWRAP` nodes). The crucial invariant is that `REAL` (an unboxed
/// float, living in float registers) never flows into a one-word context
/// without a `WRAP`.
pub fn compat(i: &mut LtyInterner, a: Lty, b: Lty) -> bool {
    if i.same(a, b) {
        return true;
    }
    if matches!(i.kind(a), LtyKind::Bottom) || matches!(i.kind(b), LtyKind::Bottom) {
        return true;
    }
    let a_word = i.is_word(a);
    let b_word = i.is_word(b);
    let a_box = matches!(i.kind(a), LtyKind::Boxed | LtyKind::RBoxed);
    let b_box = matches!(i.kind(b), LtyKind::Boxed | LtyKind::RBoxed);
    if (a_box && b_word) || (b_box && a_word) {
        return true;
    }
    match (i.kind(a).clone(), i.kind(b).clone()) {
        (LtyKind::Arrow(a1, r1), LtyKind::Arrow(a2, r2)) => compat(i, a1, a2) && compat(i, r1, r2),
        (LtyKind::Record(x), LtyKind::Record(y)) | (LtyKind::SRecord(x), LtyKind::SRecord(y)) => {
            x.len() == y.len() && x.iter().zip(&y).all(|(p, q)| compat(i, *p, *q))
        }
        _ => false,
    }
}

/// Computes (and checks) the type of `e` under `env`.
///
/// # Errors
///
/// Returns a description of the first internal type inconsistency; this
/// indicates a compiler bug, and the tests use it as an invariant check
/// after translation and after each optimization.
pub fn type_of(e: &Lexp, env: &mut HashMap<LVar, Lty>, i: &mut LtyInterner) -> Result<Lty, String> {
    match e {
        Lexp::Var(v) => env
            .get(v)
            .copied()
            .ok_or_else(|| format!("unbound lvar {v}")),
        Lexp::Int(_) => Ok(i.int()),
        Lexp::Real(_) => Ok(i.real()),
        Lexp::Str(_) => Ok(i.boxed()),
        Lexp::Fn(v, t, r, b) => {
            env.insert(*v, *t);
            let bt = type_of(b, env, i)?;
            if !compat(i, bt, *r) {
                return Err(format!(
                    "fn body has {} but declares result {}",
                    i.show(bt),
                    i.show(*r)
                ));
            }
            Ok(i.arrow(*t, *r))
        }
        Lexp::App(f, a) => {
            let ft = type_of(f, env, i)?;
            let at = type_of(a, env, i)?;
            match *i.kind(ft) {
                LtyKind::Arrow(p, r) => {
                    if !compat(i, at, p) {
                        return Err(format!(
                            "application argument {} does not match parameter {}",
                            i.show(at),
                            i.show(p)
                        ));
                    }
                    Ok(r)
                }
                LtyKind::Boxed | LtyKind::RBoxed => Ok(i.rboxed()),
                _ => Err(format!("applying non-function of type {}", i.show(ft))),
            }
        }
        Lexp::Fix(fs, b) => {
            for (v, t, _) in fs {
                env.insert(*v, *t);
            }
            for (v, t, body) in fs {
                let bt = type_of(body, env, i)?;
                if !compat(i, bt, *t) {
                    return Err(format!(
                        "fix binding {v}: declared {} but body has {}",
                        i.show(*t),
                        i.show(bt)
                    ));
                }
            }
            type_of(b, env, i)
        }
        Lexp::Let(v, a, b) => {
            let at = type_of(a, env, i)?;
            env.insert(*v, at);
            type_of(b, env, i)
        }
        Lexp::Record(es) => {
            let ts = es
                .iter()
                .map(|e| type_of(e, env, i))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(i.record(ts))
        }
        Lexp::SRecord(es) => {
            let ts = es
                .iter()
                .map(|e| type_of(e, env, i))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(i.srecord(ts))
        }
        Lexp::Select(idx, e) => {
            let t = type_of(e, env, i)?;
            match i.kind(t).clone() {
                LtyKind::Record(fs) | LtyKind::SRecord(fs) => fs
                    .get(*idx)
                    .copied()
                    .ok_or_else(|| format!("select {idx} out of bounds for {}", i.show(t))),
                LtyKind::PRecord(fs) => fs
                    .iter()
                    .find(|(s, _)| s == idx)
                    .map(|(_, t)| *t)
                    .ok_or_else(|| format!("select {idx} not in partial record")),
                LtyKind::Boxed | LtyKind::RBoxed => Ok(i.rboxed()),
                _ => Err(format!("select from non-record {}", i.show(t))),
            }
        }
        Lexp::PrimApp(op, es) => {
            let ts = es
                .iter()
                .map(|e| type_of(e, env, i))
                .collect::<Result<Vec<_>, _>>()?;
            let (want, res) = op.sig(i);
            if want.len() != ts.len() {
                return Err(format!("{op:?} arity mismatch"));
            }
            for (got, want) in ts.iter().zip(&want) {
                if !compat(i, *got, *want) {
                    return Err(format!(
                        "{op:?} argument {} does not match {}",
                        i.show(*got),
                        i.show(*want)
                    ));
                }
            }
            Ok(res)
        }
        Lexp::If(c, t, f) => {
            let ct = type_of(c, env, i)?;
            let int = i.int();
            if !compat(i, ct, int) {
                return Err(format!("if condition has type {}", i.show(ct)));
            }
            let tt = type_of(t, env, i)?;
            let ft = type_of(f, env, i)?;
            if !compat(i, tt, ft) {
                return Err(format!(
                    "if branches disagree: {} vs {}",
                    i.show(tt),
                    i.show(ft)
                ));
            }
            if matches!(i.kind(tt), LtyKind::Bottom) {
                Ok(ft)
            } else {
                Ok(tt)
            }
        }
        Lexp::SwitchInt(s, arms, d) => {
            let st = type_of(s, env, i)?;
            let int = i.int();
            if !compat(i, st, int) {
                return Err("switch scrutinee not an int".into());
            }
            let mut out: Option<Lty> = None;
            for (_, arm) in arms {
                let t = type_of(arm, env, i)?;
                if out.is_none() || matches!(i.kind(out.unwrap()), LtyKind::Bottom) {
                    out = Some(t);
                }
            }
            if let Some(def) = d {
                let t = type_of(def, env, i)?;
                if out.is_none() || matches!(i.kind(out.unwrap()), LtyKind::Bottom) {
                    out = Some(t);
                }
            }
            out.ok_or_else(|| "empty switch".into())
        }
        Lexp::Wrap(t, e) => {
            let et = type_of(e, env, i)?;
            if !compat(i, et, *t) && !i.same(et, *t) {
                return Err(format!("wrap of {} at type {}", i.show(et), i.show(*t)));
            }
            Ok(i.boxed())
        }
        Lexp::Unwrap(t, e) => {
            let et = type_of(e, env, i)?;
            let boxed = i.boxed();
            if !compat(i, et, boxed) {
                return Err(format!("unwrap of non-boxed {}", i.show(et)));
            }
            Ok(*t)
        }
        Lexp::Raise(e, t) => {
            let et = type_of(e, env, i)?;
            let boxed = i.boxed();
            if !compat(i, et, boxed) {
                return Err("raise of non-exception".into());
            }
            let _ = et;
            Ok(*t)
        }
        Lexp::Handle(e, h) => {
            let et = type_of(e, env, i)?;
            let ht = type_of(h, env, i)?;
            match *i.kind(ht) {
                LtyKind::Arrow(_, r) => {
                    if !compat(i, r, et) {
                        return Err("handler result type mismatch".into());
                    }
                    Ok(et)
                }
                _ => Err("handler is not a function".into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lty::InternMode;

    fn check(e: &Lexp) -> Result<Lty, String> {
        let mut i = LtyInterner::new(InternMode::HashCons);
        type_of(e, &mut HashMap::new(), &mut i)
    }

    #[test]
    fn literals() {
        assert!(check(&Lexp::Int(3)).is_ok());
        assert!(check(&Lexp::Real(1.5)).is_ok());
        assert!(check(&Lexp::Str("s".into())).is_ok());
    }

    #[test]
    fn fn_and_app() {
        let mut i = LtyInterner::new(InternMode::HashCons);
        let int = i.int();
        // (fn x : int => x + 1) 41
        let e = Lexp::App(
            Box::new(Lexp::Fn(
                0,
                int,
                int,
                Box::new(Lexp::PrimApp(
                    Primop::IAdd,
                    vec![Lexp::Var(0), Lexp::Int(1)],
                )),
            )),
            Box::new(Lexp::Int(41)),
        );
        let t = type_of(&e, &mut HashMap::new(), &mut i).unwrap();
        assert_eq!(t, i.int());
    }

    #[test]
    fn real_into_word_context_rejected() {
        // A raw REAL may not be used where a word is expected without a
        // WRAP.
        let e = Lexp::PrimApp(Primop::PolyEq, vec![Lexp::Real(1.0), Lexp::Real(2.0)]);
        assert!(check(&e).is_err());
        // With wraps it is fine.
        let mut i = LtyInterner::new(InternMode::HashCons);
        let real = i.real();
        let e = Lexp::PrimApp(
            Primop::PolyEq,
            vec![
                Lexp::Wrap(real, Box::new(Lexp::Real(1.0))),
                Lexp::Wrap(real, Box::new(Lexp::Real(2.0))),
            ],
        );
        assert!(type_of(&e, &mut HashMap::new(), &mut i).is_ok());
    }

    #[test]
    fn records_and_select() {
        let e = Lexp::Select(
            1,
            Box::new(Lexp::Record(vec![Lexp::Int(1), Lexp::Real(2.0)])),
        );
        let mut i = LtyInterner::new(InternMode::HashCons);
        let t = type_of(&e, &mut HashMap::new(), &mut i).unwrap();
        assert_eq!(t, i.real());
        let bad = Lexp::Select(5, Box::new(Lexp::Record(vec![Lexp::Int(1)])));
        assert!(check(&bad).is_err());
    }

    #[test]
    fn wrap_unwrap_roundtrip_types() {
        let mut i = LtyInterner::new(InternMode::HashCons);
        let real = i.real();
        let e = Lexp::Unwrap(real, Box::new(Lexp::Wrap(real, Box::new(Lexp::Real(3.0)))));
        let t = type_of(&e, &mut HashMap::new(), &mut i).unwrap();
        assert_eq!(t, i.real());
    }

    #[test]
    fn size_counts_nodes() {
        let e = Lexp::PrimApp(Primop::IAdd, vec![Lexp::Int(1), Lexp::Int(2)]);
        assert_eq!(e.size(), 3);
    }
}
