//! The typed lambda middle end of the `smlc` compiler (paper §4).
//!
//! Provides hash-consed lambda types (LTY) backed by a sharded
//! concurrent arena, the typed lambda language
//! (LEXP), the `coerce` compilation function with memo-ized module
//! coercions, pattern-match compilation, and the translation from typed
//! abstract syntax into LEXP with representation-analysis coercions
//! inserted at every abstraction and instantiation site.
//!
//! # Examples
//!
//! ```
//! use sml_lambda::{translate, LambdaConfig};
//! let prog = sml_ast::parse("val x = 1.5 + 2.5").unwrap();
//! let elab = sml_elab::elaborate(&prog).unwrap();
//! let tr = translate(&elab, &LambdaConfig::default());
//! assert!(tr.lexp.size() > 0);
//! ```

#![deny(missing_docs)]

pub mod coerce;
pub mod exhaustive;
pub mod lexp;
pub mod lty;
pub mod matchcomp;
pub mod translate;
pub mod verify;

pub use coerce::{coerce_exp, is_identity, CoerceStats, CoercionCache, VarGen};
pub use exhaustive::{check_rules, irrefutable};
pub use lexp::{compat, type_of, LVar, Lexp, Primop};
pub use lty::{InternMode, InternStats, Lty, LtyArena, LtyInterner, LtyKind, LtyStats, ShardStats};
pub use translate::{translate, translate_seeded, LambdaConfig, Translation};
pub use verify::{verify_lexp, LexpVerifySummary, LexpViolation};
