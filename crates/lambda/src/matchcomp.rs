//! Compilation of pattern matches into tests on the lambda language
//! (part of the paper's Lambda Translator box, Figure 3).
//!
//! Rules are compiled in order with shared failure join points (one
//! `Fix`-bound continuation per remaining rule), so generated code is
//! linear in the pattern size. Constructor tests follow the runtime
//! representations assigned by the registry: constants are word
//! comparisons, tagged constructors test boxity and then the tag field,
//! transparent constructors test boxity only, and exception constructors
//! compare runtime tag pointers.

use crate::exhaustive::{check_rules, irrefutable};
use crate::lexp::{LVar, Lexp, Primop};
use crate::lty::{Lty, LtyKind};
use crate::translate::Translator;
use sml_elab::{ConInfo, TExp, TPat, TPatKind, TRule};
use sml_types::{ConRep, Ty};

impl<'tr> Translator<'tr> {
    /// Compiles a full match over `scrut` (already bound, with type
    /// `scrut_lty`); on no match, raises the exception `fail_tag`.
    pub(crate) fn compile_match(
        &mut self,
        scrut: LVar,
        scrut_lty: Lty,
        rules: &[TRule],
        fail_tag: Lexp,
        res_lty: Lty,
    ) -> Lexp {
        let (exhaustive, redundant) = check_rules(rules);
        if !exhaustive {
            self.warnings
                .push("warning: match nonexhaustive".to_owned());
        }
        for i in redundant {
            self.warnings
                .push(format!("warning: match rule {} is redundant", i + 1));
        }
        let bot = self.interner.bottom();
        let fail = Lexp::Raise(Box::new(fail_tag), bot);
        self.compile_rules(scrut, scrut_lty, rules, fail, res_lty)
    }

    /// Compiles an exception handler body over the packet variable `x`;
    /// unmatched packets are re-raised.
    pub(crate) fn compile_handler(&mut self, x: LVar, rules: &[TRule], res_lty: Lty) -> Lexp {
        let bot = self.interner.bottom();
        let fail = Lexp::Raise(Box::new(Lexp::Var(x)), bot);
        let boxed = self.interner.boxed();
        self.compile_rules(x, boxed, rules, fail, res_lty)
    }

    /// Compiles a `val pat = e` binding: on match, continue with `k`; on
    /// mismatch raise `Bind`.
    pub(crate) fn compile_bind(
        &mut self,
        scrut: LVar,
        scrut_lty: Lty,
        pat: &TPat,
        fail_tag: Lexp,
        k: &mut dyn FnMut(&mut Translator<'tr>) -> Lexp,
    ) -> Lexp {
        if !irrefutable(pat) {
            self.warnings
                .push("warning: binding nonexhaustive".to_owned());
        }
        let bot = self.interner.bottom();
        let fail = Lexp::Raise(Box::new(fail_tag), bot);
        self.match_tests(vec![(scrut, scrut_lty, pat)], &mut Rhs::Cont(k), &fail)
    }

    fn compile_rules(
        &mut self,
        scrut: LVar,
        scrut_lty: Lty,
        rules: &[TRule],
        final_fail: Lexp,
        res_lty: Lty,
    ) -> Lexp {
        if rules.is_empty() {
            return final_fail;
        }
        if let Some(e) = self.try_switch(scrut, rules, &final_fail) {
            return e;
        }
        if rules.len() == 1 {
            return self.match_tests(
                vec![(scrut, scrut_lty, &rules[0].pat)],
                &mut Rhs::Exp(&rules[0].exp),
                &final_fail,
            );
        }
        // Failure join points: f_i tries rule i.
        let joins: Vec<LVar> = (1..rules.len()).map(|_| self.vg.fresh()).collect();
        let int = self.interner.int();
        let join_ty = self.interner.arrow(int, res_lty);
        let mut bindings = Vec::new();
        for (i, rule) in rules.iter().enumerate().skip(1) {
            let fail = if i + 1 < rules.len() {
                Lexp::App(Box::new(Lexp::Var(joins[i])), Box::new(Lexp::Int(0)))
            } else {
                final_fail.clone()
            };
            let code = self.match_tests(
                vec![(scrut, scrut_lty, &rule.pat)],
                &mut Rhs::Exp(&rule.exp),
                &fail,
            );
            let dummy = self.vg.fresh();
            bindings.push((
                joins[i - 1],
                join_ty,
                Lexp::Fn(dummy, int, res_lty, Box::new(code)),
            ));
        }
        let first_fail = Lexp::App(Box::new(Lexp::Var(joins[0])), Box::new(Lexp::Int(0)));
        let first = self.match_tests(
            vec![(scrut, scrut_lty, &rules[0].pat)],
            &mut Rhs::Exp(&rules[0].exp),
            &first_fail,
        );
        Lexp::Fix(bindings, Box::new(first))
    }

    /// Integer switch compilation (paper §5.2: "pattern matches are
    /// compiled into switch statements"): when every rule tests an
    /// integer, character, or constant-constructor value — with at most a
    /// trailing irrefutable default — emit a dense `SwitchInt` instead of
    /// a comparison chain.
    fn try_switch(&mut self, scrut: LVar, rules: &[TRule], final_fail: &Lexp) -> Option<Lexp> {
        if rules.len() < 3 {
            return None;
        }
        let mut arms: Vec<(i64, &TExp)> = Vec::new();
        let mut default: Option<&TExp> = None;
        for (i, r) in rules.iter().enumerate() {
            match &r.pat.kind {
                TPatKind::Int(n) => arms.push((*n, &r.exp)),
                TPatKind::Char(c) => arms.push((*c as i64, &r.exp)),
                TPatKind::Con { con, arg: None, .. } => match con.rep {
                    ConRep::Constant(k) => arms.push((k as i64, &r.exp)),
                    _ => return None,
                },
                TPatKind::Wild if i + 1 == rules.len() => {
                    default = Some(&r.exp);
                }
                TPatKind::Var(v) if i + 1 == rules.len() => {
                    self.vmap.insert(*v, scrut);
                    default = Some(&r.exp);
                }
                _ => return None,
            }
        }
        if arms.len() < 3 {
            return None;
        }
        // Distinct, reasonably dense values only (a sparse table would
        // waste space; the chain is fine there).
        let mut seen = std::collections::HashSet::new();
        let (mut lo, mut hi) = (i64::MAX, i64::MIN);
        for (n, _) in &arms {
            if !seen.insert(*n) {
                return None; // redundant match arm; let the chain handle it
            }
            lo = lo.min(*n);
            hi = hi.max(*n);
        }
        if hi - lo >= 2 * arms.len() as i64 + 8 {
            return None;
        }
        let compiled: Vec<(i64, Lexp)> = arms.iter().map(|(n, e)| (*n, self.tr_exp(e))).collect();
        let def = match default {
            Some(e) => self.tr_exp(e),
            None => final_fail.clone(),
        };
        Some(Lexp::SwitchInt(
            Box::new(Lexp::Var(scrut)),
            compiled,
            Some(Box::new(def)),
        ))
    }

    /// Compiles a conjunction of pattern obligations; `rhs` is emitted
    /// when all succeed, `fail` (a small expression, cloned per test) when
    /// any fails.
    fn match_tests(
        &mut self,
        mut work: Vec<(LVar, Lty, &TPat)>,
        rhs: &mut Rhs<'_, '_, 'tr>,
        fail: &Lexp,
    ) -> Lexp {
        let Some((occ, occ_lty, pat)) = work.pop() else {
            return match rhs {
                Rhs::Exp(e) => self.tr_exp(e),
                Rhs::Cont(k) => k(self),
            };
        };
        match &pat.kind {
            TPatKind::Wild => self.match_tests(work, rhs, fail),
            TPatKind::Var(v) => {
                self.vmap.insert(*v, occ);
                self.match_tests(work, rhs, fail)
            }
            TPatKind::As(v, inner) => {
                self.vmap.insert(*v, occ);
                work.push((occ, occ_lty, inner));
                self.match_tests(work, rhs, fail)
            }
            TPatKind::Int(n) => {
                let rest = self.match_tests(work, rhs, fail);
                Lexp::If(
                    Box::new(Lexp::PrimApp(
                        Primop::IEq,
                        vec![Lexp::Var(occ), Lexp::Int(*n)],
                    )),
                    Box::new(rest),
                    Box::new(fail.clone()),
                )
            }
            TPatKind::Char(c) => {
                let rest = self.match_tests(work, rhs, fail);
                Lexp::If(
                    Box::new(Lexp::PrimApp(
                        Primop::IEq,
                        vec![Lexp::Var(occ), Lexp::Int(*c as i64)],
                    )),
                    Box::new(rest),
                    Box::new(fail.clone()),
                )
            }
            TPatKind::Str(s) => {
                let rest = self.match_tests(work, rhs, fail);
                Lexp::If(
                    Box::new(Lexp::PrimApp(
                        Primop::StrEq,
                        vec![Lexp::Var(occ), Lexp::Str(s.clone())],
                    )),
                    Box::new(rest),
                    Box::new(fail.clone()),
                )
            }
            TPatKind::Record { fields, .. } => {
                // Bind each listed field, then continue.
                let Ty::Record(all) = pat.ty.zonk() else {
                    panic!("record pattern at non-record type {}", pat.ty.zonk())
                };
                let mut lets: Vec<(LVar, Lexp)> = Vec::new();
                for (lab, sub) in fields {
                    let idx = all
                        .iter()
                        .position(|(l, _)| l == lab)
                        .expect("field resolved by elaboration");
                    let field_lty = match self.interner.kind(occ_lty).clone() {
                        LtyKind::Record(fl) => fl[idx],
                        _ => self.interner.rboxed(),
                    };
                    let want = self.ltc(&sub.ty);
                    let sel = Lexp::Select(idx, Box::new(Lexp::Var(occ)));
                    let sel = self.coerce(sel, field_lty, want);
                    let v = self.vg.fresh();
                    lets.push((v, sel));
                    work.push((v, want, sub));
                }
                let mut body = self.match_tests(work, rhs, fail);
                for (v, e) in lets.into_iter().rev() {
                    body = Lexp::Let(v, Box::new(e), Box::new(body));
                }
                body
            }
            TPatKind::Con { con, arg, .. } => {
                self.con_test(occ, occ_lty, con, arg.as_deref(), work, rhs, fail)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn con_test(
        &mut self,
        occ: LVar,
        _occ_lty: Lty,
        con: &ConInfo,
        arg: Option<&TPat>,
        work: Vec<(LVar, Lty, &TPat)>,
        rhs: &mut Rhs<'_, '_, 'tr>,
        fail: &Lexp,
    ) -> Lexp {
        // Build the payload binding (if any) and the remaining tests.
        let inner = |me: &mut Self,
                     work: Vec<(LVar, Lty, &TPat)>,
                     rhs: &mut Rhs<'_, '_, 'tr>,
                     fail: &Lexp,
                     payload: Option<(Lexp, Lty)>|
         -> Lexp {
            match (payload, arg) {
                (Some((raw, raw_lty)), Some(sub)) => {
                    let want = me.ltc(&sub.ty);
                    let coerced = me.coerce(raw, raw_lty, want);
                    let v = me.vg.fresh();
                    let mut w = work;
                    w.push((v, want, sub));
                    let body = me.match_tests(w, rhs, fail);
                    Lexp::Let(v, Box::new(coerced), Box::new(body))
                }
                (None, None) => me.match_tests(work, rhs, fail),
                _ => panic!("constructor arity mismatch in pattern"),
            }
        };

        match con.rep {
            ConRep::Constant(k) => {
                debug_assert!(arg.is_none());
                let rest = inner(self, work, rhs, fail, None);
                if con.span == 1 {
                    return rest;
                }
                Lexp::If(
                    Box::new(Lexp::PrimApp(
                        Primop::IEq,
                        vec![Lexp::Var(occ), Lexp::Int(k as i64)],
                    )),
                    Box::new(rest),
                    Box::new(fail.clone()),
                )
            }
            ConRep::Transparent => {
                // Cast to the precise payload representation so the
                // back end lays out selections correctly (flat float
                // records have raw fields).
                let rep = self.payload_rep(con);
                let raw = Lexp::Unwrap(rep, Box::new(Lexp::Var(occ)));
                let rest = inner(self, work, rhs, fail, Some((raw, rep)));
                if con.span == 1 {
                    return rest;
                }
                Lexp::If(
                    Box::new(Lexp::PrimApp(Primop::IsBoxed, vec![Lexp::Var(occ)])),
                    Box::new(rest),
                    Box::new(fail.clone()),
                )
            }
            ConRep::Tagged(tag) => {
                // The value is a `[tag, payload]` record; cast to its
                // precise shape so a raw-float payload is loaded from the
                // right offset.
                let rep = self.payload_rep(con);
                let int = self.interner.int();
                let rec_lty = self.interner.record(vec![int, rep]);
                let cv = self.vg.fresh();
                let raw = Lexp::Select(1, Box::new(Lexp::Var(cv)));
                let rest = inner(self, work, rhs, fail, Some((raw, rep)));
                let rest = Lexp::Let(
                    cv,
                    Box::new(Lexp::Unwrap(rec_lty, Box::new(Lexp::Var(occ)))),
                    Box::new(rest),
                );
                if con.span == 1 {
                    return rest;
                }
                let tag_test = Lexp::If(
                    Box::new(Lexp::PrimApp(
                        Primop::IEq,
                        vec![
                            Lexp::Select(0, Box::new(Lexp::Var(occ))),
                            Lexp::Int(tag as i64),
                        ],
                    )),
                    Box::new(rest),
                    Box::new(fail.clone()),
                );
                Lexp::If(
                    Box::new(Lexp::PrimApp(Primop::IsBoxed, vec![Lexp::Var(occ)])),
                    Box::new(tag_test),
                    Box::new(fail.clone()),
                )
            }
            ConRep::ExnConst => {
                let taga = con.tag.clone().expect("exception tag");
                let tag = self.tr_access(&taga);
                let rest = inner(self, work, rhs, fail, None);
                Lexp::If(
                    Box::new(Lexp::PrimApp(Primop::PtrEq, vec![Lexp::Var(occ), tag])),
                    Box::new(rest),
                    Box::new(fail.clone()),
                )
            }
            ConRep::Exn => {
                let taga = con.tag.clone().expect("exception tag");
                let tag = self.tr_access(&taga);
                let rb = self.interner.rboxed();
                let raw = Lexp::Select(1, Box::new(Lexp::Var(occ)));
                let rest = inner(self, work, rhs, fail, Some((raw, rb)));
                // A carrying exception packet is [tag, value]; compare the
                // inner tag pointer. Constant exception values are tag
                // records themselves, whose field 0 is a string — never
                // pointer-equal to a tag.
                Lexp::If(
                    Box::new(Lexp::PrimApp(
                        Primop::PtrEq,
                        vec![Lexp::Select(0, Box::new(Lexp::Var(occ))), tag],
                    )),
                    Box::new(rest),
                    Box::new(fail.clone()),
                )
            }
        }
    }
}

/// The right-hand side of a match: either a typed expression or a
/// continuation producing the rest of a declaration sequence.
enum Rhs<'e, 'k, 'tr> {
    Exp(&'e TExp),
    Cont(&'k mut dyn FnMut(&mut Translator<'tr>) -> Lexp),
}
