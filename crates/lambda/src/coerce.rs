//! The `coerce` compilation function (paper §4.2) with memo-ized
//! module-level coercions (paper §4.5).
//!
//! `coerce(t1, t2)` produces a lambda-term transformer converting a value
//! with representation `t1` into one with representation `t2`:
//!
//! * equal types need no coercion (a constant-time handle comparison:
//!   LTYs are hash-consed in the shared [`crate::lty::LtyArena`], so
//!   equal structure means equal handle no matter which compile — or
//!   which batch worker thread — interned the type first);
//! * `BOXED` on either side is a primitive `WRAP`/`UNWRAP`;
//! * `RBOXED` recursively coerces through `dup` (Leroy-style recursive
//!   wrapping);
//! * records coerce fieldwise; functions get wrapper lambdas.

use crate::lexp::{LVar, Lexp};
use crate::lty::{Lty, LtyInterner, LtyKind};
use std::collections::HashMap;

/// A fresh-variable generator for the lambda language.
#[derive(Debug, Default)]
pub struct VarGen(u32);

impl VarGen {
    /// Starts at `first` (so translated `VarId`s can be mapped densely).
    pub fn new() -> VarGen {
        VarGen(0)
    }

    /// A fresh variable.
    pub fn fresh(&mut self) -> LVar {
        let v = self.0;
        self.0 += 1;
        v
    }
}

/// Counters describing the coercions a translation inserted.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CoerceStats {
    /// Total `coerce` requests.
    pub requests: u64,
    /// Requests that were identities (no code emitted).
    pub identities: u64,
    /// Wrap/unwrap primitives emitted.
    pub wraps: u64,
    /// Function wrappers emitted.
    pub fn_wrappers: u64,
    /// Record rebuilds emitted.
    pub record_rebuilds: u64,
    /// Shared (memo-ized) coercion applications.
    pub shared_hits: u64,
}

impl CoerceStats {
    /// Every counter as a `(name, value)` pair, in declaration order.
    /// The single source of truth for metric emitters — a field added
    /// here is automatically picked up by `--stats=json`.
    pub fn counters(&self) -> [(&'static str, u64); 6] {
        [
            ("requests", self.requests),
            ("identities", self.identities),
            ("wraps", self.wraps),
            ("fn_wrappers", self.fn_wrappers),
            ("record_rebuilds", self.record_rebuilds),
            ("memo_hits", self.shared_hits),
        ]
    }
}

/// True if converting `from` to `to` requires no code at all.
///
/// With tagged 31-bit integers, every one-word value (tagged int,
/// pointer to any record or closure) already *is* a valid `BOXED` value,
/// so `WRAP`/`UNWRAP` against `BOXED` is free for all word types —
/// exactly SML/NJ's situation, where `iwrap` "could apply the tag" but
/// the tag is always present (paper §5.1). Only floats need real boxing.
pub fn is_identity(i: &mut LtyInterner, from: Lty, to: Lty) -> bool {
    if i.same(from, to) {
        return true;
    }
    match (i.kind(from).clone(), i.kind(to).clone()) {
        (LtyKind::Bottom, _) | (_, LtyKind::Bottom) => true,
        // Any one-word value is already BOXED; only floats need boxing.
        (a, LtyKind::Boxed) => !matches!(a, LtyKind::Real),
        (LtyKind::Boxed, b) => !matches!(b, LtyKind::Real),
        (LtyKind::Int, LtyKind::Int) | (LtyKind::Real, LtyKind::Real) => true,
        (LtyKind::Record(a), LtyKind::Record(b)) | (LtyKind::SRecord(a), LtyKind::SRecord(b)) => {
            a.len() == b.len() && a.iter().zip(&b).all(|(x, y)| is_identity(i, *x, *y))
        }
        // A function wrapper is skippable only when both the values AND
        // the calling conventions agree: a record-typed argument position
        // is spread into registers, so it never identity-matches a
        // one-word argument position.
        (LtyKind::Arrow(a1, r1), LtyKind::Arrow(a2, r2)) => {
            spread_compat(i, a1, a2) && spread_compat(i, r1, r2)
        }
        (LtyKind::RBoxed, _) => {
            let d = i.dup(to);
            is_identity(i, d, to)
        }
        (_, LtyKind::RBoxed) => {
            let d = i.dup(from);
            is_identity(i, from, d)
        }
        _ => false,
    }
}

/// Whether two argument/result positions use the same register
/// convention *and* identical value representations.
fn spread_compat(i: &mut LtyInterner, x: Lty, y: Lty) -> bool {
    match (i.kind(x).clone(), i.kind(y).clone()) {
        (LtyKind::Record(a), LtyKind::Record(b)) => {
            a.len() == b.len() && a.iter().zip(&b).all(|(p, q)| is_identity(i, *p, *q))
        }
        (LtyKind::Record(_), _) | (_, LtyKind::Record(_)) => false,
        _ => is_identity(i, x, y),
    }
}

/// Emits code coercing `e : from` to representation `to`.
///
/// # Panics
///
/// Panics on structurally incompatible types, which indicates a compiler
/// bug upstream (elaboration guarantees compatible shapes).
pub fn coerce_exp(
    i: &mut LtyInterner,
    vg: &mut VarGen,
    stats: &mut CoerceStats,
    e: Lexp,
    from: Lty,
    to: Lty,
) -> Lexp {
    stats.requests += 1;
    if is_identity(i, from, to) {
        stats.identities += 1;
        return e;
    }
    coerce_inner(i, vg, stats, e, from, to)
}

fn coerce_inner(
    i: &mut LtyInterner,
    vg: &mut VarGen,
    stats: &mut CoerceStats,
    e: Lexp,
    from: Lty,
    to: Lty,
) -> Lexp {
    if is_identity(i, from, to) {
        return e;
    }
    match (i.kind(from).clone(), i.kind(to).clone()) {
        // RBOXED: recursively boxed; go through dup (paper §4.2).
        (LtyKind::RBoxed, _) => {
            let d = i.dup(to);
            coerce_inner(i, vg, stats, e, d, to)
        }
        (_, LtyKind::RBoxed) => {
            let d = i.dup(from);
            coerce_inner(i, vg, stats, e, from, d)
        }
        // BOXED: primitive wrap/unwrap.
        (_, LtyKind::Boxed) => {
            stats.wraps += 1;
            Lexp::Wrap(from, Box::new(e))
        }
        (LtyKind::Boxed, _) => {
            stats.wraps += 1;
            Lexp::Unwrap(to, Box::new(e))
        }
        (LtyKind::Record(fs), LtyKind::Record(gs)) if fs.len() == gs.len() => {
            stats.record_rebuilds += 1;
            let v = vg.fresh();
            let fields = fs
                .iter()
                .zip(&gs)
                .enumerate()
                .map(|(idx, (f, g))| {
                    let sel = Lexp::Select(idx, Box::new(Lexp::Var(v)));
                    coerce_exp(i, vg, stats, sel, *f, *g)
                })
                .collect();
            Lexp::Let(v, Box::new(e), Box::new(Lexp::Record(fields)))
        }
        (LtyKind::SRecord(fs), LtyKind::SRecord(gs)) if fs.len() == gs.len() => {
            stats.record_rebuilds += 1;
            let v = vg.fresh();
            let fields = fs
                .iter()
                .zip(&gs)
                .enumerate()
                .map(|(idx, (f, g))| {
                    let sel = Lexp::Select(idx, Box::new(Lexp::Var(v)));
                    coerce_exp(i, vg, stats, sel, *f, *g)
                })
                .collect();
            Lexp::Let(v, Box::new(e), Box::new(Lexp::SRecord(fields)))
        }
        (LtyKind::Arrow(a1, r1), LtyKind::Arrow(a2, r2)) => {
            // fn x : a2 => coerce_r1_r2 (f (coerce_a2_a1 x))
            stats.fn_wrappers += 1;
            let f = vg.fresh();
            let x = vg.fresh();
            let arg = coerce_exp(i, vg, stats, Lexp::Var(x), a2, a1);
            let call = Lexp::App(Box::new(Lexp::Var(f)), Box::new(arg));
            let body = coerce_exp(i, vg, stats, call, r1, r2);
            Lexp::Let(
                f,
                Box::new(e),
                Box::new(Lexp::Fn(x, a2, r2, Box::new(body))),
            )
        }
        (fk, tk) => panic!(
            "coerce: incompatible representations {} vs {} ({fk:?} vs {tk:?})",
            i.show(from),
            i.show(to)
        ),
    }
}

/// Memo-ized coercions for module objects (paper §4.5): coercions between
/// the same pair of (hash-consed) LTYs share one generated function
/// instead of being inlined at every functor application or signature
/// match.
///
/// The memo key is the `(from, to)` handle pair. Handles are canonical
/// within the arena, so the key is exactly "this pair of structures";
/// the cache itself is per-compile (insertion-ordered `defs` keep
/// emitted output deterministic), only type *identity* is shared.
#[derive(Debug, Default)]
pub struct CoercionCache {
    enabled: bool,
    map: HashMap<(Lty, Lty), LVar>,
    /// Generated shared coercion functions `(name, from, to)`.
    defs: Vec<(LVar, Lty, Lty)>,
}

impl CoercionCache {
    /// Creates a cache; when `enabled` is false every module coercion is
    /// inlined (the `ablation_memo` experiment).
    pub fn new(enabled: bool) -> CoercionCache {
        CoercionCache {
            enabled,
            map: HashMap::new(),
            defs: Vec::new(),
        }
    }

    /// Coerces a module object, going through a shared function when
    /// caching is enabled.
    pub fn module_coerce(
        &mut self,
        i: &mut LtyInterner,
        vg: &mut VarGen,
        stats: &mut CoerceStats,
        e: Lexp,
        from: Lty,
        to: Lty,
    ) -> Lexp {
        stats.requests += 1;
        if is_identity(i, from, to) {
            stats.identities += 1;
            return e;
        }
        if !self.enabled {
            return coerce_inner(i, vg, stats, e, from, to);
        }
        let f = match self.map.get(&(from, to)) {
            Some(f) => {
                stats.shared_hits += 1;
                *f
            }
            None => {
                let f = vg.fresh();
                self.map.insert((from, to), f);
                self.defs.push((f, from, to));
                f
            }
        };
        Lexp::App(Box::new(Lexp::Var(f)), Box::new(e))
    }

    /// Number of distinct shared coercion functions generated.
    pub fn n_shared(&self) -> usize {
        self.defs.len()
    }

    /// Wraps `body` with the definitions of all shared coercion
    /// functions.
    pub fn emit(
        mut self,
        i: &mut LtyInterner,
        vg: &mut VarGen,
        stats: &mut CoerceStats,
        body: Lexp,
    ) -> Lexp {
        if self.defs.is_empty() {
            return body;
        }
        // Generating a body may itself request module coercions; those
        // are inlined (the cache is consumed here).
        let defs = std::mem::take(&mut self.defs);
        let mut bindings = Vec::new();
        for (f, from, to) in defs {
            let x = vg.fresh();
            let fbody = coerce_inner(i, vg, stats, Lexp::Var(x), from, to);
            let fun_ty = i.arrow(from, to);
            bindings.push((f, fun_ty, Lexp::Fn(x, from, to, Box::new(fbody))));
        }
        Lexp::Fix(bindings, Box::new(body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexp::type_of;
    use crate::lty::InternMode;
    use std::collections::HashMap as Map;

    fn setup() -> (LtyInterner, VarGen, CoerceStats) {
        (
            LtyInterner::new(InternMode::HashCons),
            VarGen::new(),
            CoerceStats::default(),
        )
    }

    #[test]
    fn identity_cases() {
        let (mut i, _, _) = setup();
        let int = i.int();
        let boxed = i.boxed();
        let rb = i.rboxed();
        assert!(is_identity(&mut i, int, int));
        assert!(is_identity(&mut i, boxed, rb));
        let r1 = i.record(vec![int, boxed]);
        let r2 = i.record(vec![int, rb]);
        assert!(is_identity(&mut i, r1, r2));
        let real = i.real();
        assert!(!is_identity(&mut i, real, boxed));
    }

    #[test]
    fn real_to_boxed_is_wrap() {
        let (mut i, mut vg, mut st) = setup();
        let real = i.real();
        let boxed = i.boxed();
        let e = coerce_exp(&mut i, &mut vg, &mut st, Lexp::Real(1.5), real, boxed);
        assert!(matches!(e, Lexp::Wrap(..)));
        assert_eq!(st.wraps, 1);
        let t = type_of(&e, &mut Map::new(), &mut i).unwrap();
        assert_eq!(t, i.boxed());
    }

    #[test]
    fn flat_record_to_rboxed_rebuilds() {
        // coerce([REAL, REAL] -> RBOXED) wraps each field (Figure 2's
        // recursive boxing).
        let (mut i, mut vg, mut st) = setup();
        let real = i.real();
        let flat = i.record(vec![real, real]);
        let rb = i.rboxed();
        let rec = Lexp::Record(vec![Lexp::Real(1.0), Lexp::Real(2.0)]);
        let e = coerce_exp(&mut i, &mut vg, &mut st, rec, flat, rb);
        assert_eq!(st.record_rebuilds, 1);
        assert_eq!(st.wraps, 2, "each REAL field is wrapped");
        let t = type_of(&e, &mut Map::new(), &mut i).unwrap();
        // Result is a record of boxed fields — a standard representation.
        assert!(matches!(i.kind(t), LtyKind::Record(fs) if fs.len() == 2));
    }

    #[test]
    fn rboxed_to_flat_record_unwraps() {
        let (mut i, mut vg, mut st) = setup();
        let real = i.real();
        let flat = i.record(vec![real, real]);
        let rb = i.rboxed();
        let v = vg.fresh();
        let e = coerce_exp(&mut i, &mut vg, &mut st, Lexp::Var(v), rb, flat);
        let mut env = Map::new();
        env.insert(v, rb);
        let t = type_of(&e, &mut env, &mut i).unwrap();
        assert!(i.same(t, flat));
        assert_eq!(st.wraps, 2);
    }

    #[test]
    fn function_wrapper_shape() {
        // The paper's h' example: wrapping real -> real for polymorphic
        // use.
        let (mut i, mut vg, mut st) = setup();
        let real = i.real();
        let rb = i.rboxed();
        let mono = i.arrow(real, real);
        let poly = i.arrow(rb, rb);
        let f = vg.fresh();
        let e = coerce_exp(&mut i, &mut vg, &mut st, Lexp::Var(f), mono, poly);
        assert_eq!(st.fn_wrappers, 1);
        assert_eq!(st.wraps, 2, "argument funwrap + result fwrap");
        let mut env = Map::new();
        env.insert(f, mono);
        let t = type_of(&e, &mut env, &mut i).unwrap();
        assert!(matches!(i.kind(t), LtyKind::Arrow(..)));
    }

    #[test]
    fn coercion_roundtrip_preserves_type() {
        // coerce(t, RBOXED) then coerce(RBOXED, t) yields type t again.
        let (mut i, mut vg, mut st) = setup();
        let real = i.real();
        let int = i.int();
        let flat = i.record(vec![real, int]);
        let rb = i.rboxed();
        let v = vg.fresh();
        let boxed_e = coerce_exp(&mut i, &mut vg, &mut st, Lexp::Var(v), flat, rb);
        let back = coerce_exp(&mut i, &mut vg, &mut st, boxed_e, rb, flat);
        let mut env = Map::new();
        env.insert(v, flat);
        let t = type_of(&back, &mut env, &mut i).unwrap();
        assert!(i.same(t, flat));
    }

    #[test]
    fn memoized_module_coercions_share() {
        let (mut i, mut vg, mut st) = setup();
        let real = i.real();
        let flat = i.record(vec![real, real]);
        let rb = i.rboxed();
        let s1 = i.srecord(vec![flat]);
        let s2 = i.srecord(vec![rb]);
        let mut cache = CoercionCache::new(true);
        let a = cache.module_coerce(&mut i, &mut vg, &mut st, Lexp::Var(100), s1, s2);
        let b = cache.module_coerce(&mut i, &mut vg, &mut st, Lexp::Var(101), s1, s2);
        assert_eq!(cache.n_shared(), 1, "one shared function for both sites");
        assert_eq!(st.shared_hits, 1);
        // Both applications call the same function.
        let (Lexp::App(f1, _), Lexp::App(f2, _)) = (&a, &b) else {
            panic!()
        };
        assert_eq!(f1, f2);
        // Emitting produces a well-typed program.
        let mut env = Map::new();
        env.insert(100, s1);
        env.insert(101, s2);
        let body = Lexp::Int(0);
        let prog = cache.emit(&mut i, &mut vg, &mut st, body);
        assert!(matches!(prog, Lexp::Fix(..)));
    }

    #[test]
    fn disabled_cache_inlines() {
        let (mut i, mut vg, mut st) = setup();
        let real = i.real();
        let flat = i.record(vec![real]);
        let rb = i.rboxed();
        let s1 = i.srecord(vec![flat]);
        let s2 = i.srecord(vec![rb]);
        let mut cache = CoercionCache::new(false);
        let a = cache.module_coerce(&mut i, &mut vg, &mut st, Lexp::Var(100), s1, s2);
        assert_eq!(cache.n_shared(), 0);
        assert!(matches!(a, Lexp::Let(..)));
    }
}
