//! Match exhaustiveness and redundancy analysis (Maranget's usefulness
//! algorithm, specialized to our typed patterns).
//!
//! SML compilers warn on nonexhaustive matches and bindings and on
//! redundant rules; the lambda translator runs this analysis while
//! compiling each match and records the warnings on the
//! [`Translation`](crate::translate::Translation).

use sml_elab::{TPat, TPatKind, TRule};
use sml_types::ConRep;
use std::collections::HashSet;

/// The abstract head of a pattern column.
#[derive(Clone, PartialEq, Debug)]
enum Head {
    /// Constructor `index` of a datatype with `span` constructors and
    /// the given payload arity (0 or 1).
    Con {
        index: usize,
        span: usize,
        arity: usize,
    },
    /// A record/tuple of the given width (always a complete signature).
    Record(usize),
    /// An integer or character constant (never complete).
    Int(i64),
    /// A string constant (never complete).
    Str(String),
}

/// A simplified pattern for the matrix algorithm.
#[derive(Clone, Debug)]
enum P {
    Wild,
    Head(Head, Vec<P>),
}

fn simplify(p: &TPat) -> P {
    match &p.kind {
        TPatKind::Wild | TPatKind::Var(_) => P::Wild,
        TPatKind::As(_, inner) => simplify(inner),
        TPatKind::Int(n) => P::Head(Head::Int(*n), Vec::new()),
        TPatKind::Char(c) => P::Head(Head::Int(*c as i64), Vec::new()),
        TPatKind::Str(s) => P::Head(Head::Str(s.clone()), Vec::new()),
        TPatKind::Con { con, arg, .. } => {
            // Exceptions have unbounded "span": never complete.
            let span = if matches!(con.rep, ConRep::Exn | ConRep::ExnConst) {
                usize::MAX
            } else {
                con.span
            };
            let args: Vec<P> = arg.iter().map(|a| simplify(a)).collect();
            P::Head(
                Head::Con {
                    index: con.index,
                    span,
                    arity: args.len(),
                },
                args,
            )
        }
        TPatKind::Record { fields, flexible } => {
            if *flexible {
                // Listed fields of a flexible record still constrain; but
                // treating the whole pattern as a wildcard only weakens
                // the analysis toward "exhaustive", never toward false
                // warnings about redundancy... conservatively use the
                // listed fields as a record of that width.
                let args: Vec<P> = fields.iter().map(|(_, p)| simplify(p)).collect();
                P::Head(Head::Record(args.len()), args)
            } else {
                let args: Vec<P> = fields.iter().map(|(_, p)| simplify(p)).collect();
                P::Head(Head::Record(args.len()), args)
            }
        }
    }
}

/// Is a row of wildcards of width `n` useful against `matrix`? True
/// means some value escapes every row.
fn useful_wild(matrix: &[Vec<P>], n: usize) -> bool {
    if matrix.is_empty() {
        return true;
    }
    if n == 0 {
        return false;
    }
    // Collect column-0 heads.
    let mut heads: Vec<Head> = Vec::new();
    for row in matrix {
        if let P::Head(h, _) = &row[0] {
            if !heads.contains(h) {
                heads.push(h.clone());
            }
        }
    }
    let complete = match heads.first() {
        Some(Head::Record(_)) => true,
        Some(Head::Con { span, .. }) => {
            *span != usize::MAX
                && heads
                    .iter()
                    .filter_map(|h| match h {
                        Head::Con { index, .. } => Some(*index),
                        _ => None,
                    })
                    .collect::<HashSet<_>>()
                    .len()
                    == *span
        }
        _ => false, // constants are never complete
    };
    if complete {
        for h in &heads {
            if useful_wild(&specialize(matrix, h), n - 1 + head_arity(h)) {
                return true;
            }
        }
        false
    } else {
        useful_wild(&default(matrix), n - 1)
    }
}

/// Is row `q` useful against `matrix` (for redundancy checking)?
fn useful(matrix: &[Vec<P>], q: &[P]) -> bool {
    if matrix.is_empty() {
        return true;
    }
    if q.is_empty() {
        return false;
    }
    match &q[0] {
        P::Head(h, args) => {
            let mut q2: Vec<P> = args.clone();
            q2.extend_from_slice(&q[1..]);
            useful(&specialize(matrix, h), &q2)
        }
        P::Wild => {
            // Split on the heads present; if they form a complete
            // signature, the wildcard must be useful under some head;
            // otherwise check the default matrix.
            let mut heads: Vec<Head> = Vec::new();
            for row in matrix {
                if let P::Head(h, _) = &row[0] {
                    if !heads.contains(h) {
                        heads.push(h.clone());
                    }
                }
            }
            let complete = match heads.first() {
                Some(Head::Record(_)) => true,
                Some(Head::Con { span, .. }) => {
                    *span != usize::MAX
                        && heads
                            .iter()
                            .filter_map(|h| match h {
                                Head::Con { index, .. } => Some(*index),
                                _ => None,
                            })
                            .collect::<HashSet<_>>()
                            .len()
                            == *span
                }
                _ => false,
            };
            if complete {
                for h in &heads {
                    let mut q2: Vec<P> = vec![P::Wild; head_arity(h)];
                    q2.extend_from_slice(&q[1..]);
                    if useful(&specialize(matrix, h), &q2) {
                        return true;
                    }
                }
                false
            } else {
                useful(&default(matrix), &q[1..])
            }
        }
    }
}

fn head_arity(h: &Head) -> usize {
    match h {
        Head::Con { arity, .. } => *arity,
        Head::Record(n) => *n,
        Head::Int(_) | Head::Str(_) => 0,
    }
}

fn specialize(matrix: &[Vec<P>], h: &Head) -> Vec<Vec<P>> {
    let arity = head_arity(h);
    let mut out = Vec::new();
    for row in matrix {
        match &row[0] {
            P::Wild => {
                let mut r = vec![P::Wild; arity];
                r.extend_from_slice(&row[1..]);
                out.push(r);
            }
            P::Head(h2, args) if heads_match(h2, h) => {
                let mut r = args.clone();
                // Constructors compared by index may differ in recorded
                // payload arity (constant vs carrying); pad.
                while r.len() < arity {
                    r.push(P::Wild);
                }
                r.extend_from_slice(&row[1..]);
                out.push(r);
            }
            _ => {}
        }
    }
    out
}

fn heads_match(a: &Head, b: &Head) -> bool {
    match (a, b) {
        (Head::Con { index: i, .. }, Head::Con { index: j, .. }) => i == j,
        (Head::Record(n), Head::Record(m)) => n == m,
        (Head::Int(x), Head::Int(y)) => x == y,
        (Head::Str(x), Head::Str(y)) => x == y,
        _ => false,
    }
}

fn default(matrix: &[Vec<P>]) -> Vec<Vec<P>> {
    matrix
        .iter()
        .filter_map(|row| match &row[0] {
            P::Wild => Some(row[1..].to_vec()),
            _ => None,
        })
        .collect()
}

/// Checks a rule list; returns `(exhaustive, redundant_rule_indices)`.
pub fn check_rules(rules: &[TRule]) -> (bool, Vec<usize>) {
    let pats: Vec<Vec<P>> = rules.iter().map(|r| vec![simplify(&r.pat)]).collect();
    let mut redundant = Vec::new();
    for i in 1..pats.len() {
        if !useful(&pats[..i], &pats[i]) {
            redundant.push(i);
        }
    }
    let exhaustive = !useful_wild(&pats, 1);
    (exhaustive, redundant)
}

/// Checks a single binding pattern; true when irrefutable.
pub fn irrefutable(pat: &TPat) -> bool {
    !useful_wild(&[vec![simplify(pat)]], 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(src: &str) -> Vec<TRule> {
        // Elaborate `fun f <clauses>` and pull the match rules back out.
        let prog = sml_ast::parse(src).unwrap();
        let elab = sml_elab::elaborate(&prog).unwrap();
        for d in elab.decs.iter().rev() {
            if let sml_elab::TDec::Fun { exps, .. } = d {
                if let sml_elab::TExpKind::Fn { rules, .. } = &exps[0].kind {
                    return rules.clone();
                }
            }
        }
        panic!("no fun found");
    }

    #[test]
    fn exhaustive_bool() {
        let r = rules_of("fun f true = 1 | f false = 0");
        assert_eq!(check_rules(&r), (true, vec![]));
    }

    #[test]
    fn nonexhaustive_missing_constructor() {
        let r = rules_of("datatype t = A | B | C fun f A = 1 | f B = 2");
        assert_eq!(check_rules(&r), (false, vec![]));
    }

    #[test]
    fn wildcard_makes_exhaustive() {
        let r = rules_of("datatype t = A | B | C fun f A = 1 | f _ = 2");
        assert_eq!(check_rules(&r), (true, vec![]));
    }

    #[test]
    fn redundant_rule_detected() {
        let r = rules_of("fun f true = 1 | f false = 0 | f x = 2");
        let (ex, red) = check_rules(&r);
        assert!(ex);
        assert_eq!(red, vec![2]);
    }

    #[test]
    fn int_patterns_never_complete() {
        let r = rules_of("fun f 0 = 1 | f 1 = 2");
        assert!(!check_rules(&r).0);
        let r = rules_of("fun f 0 = 1 | f n = n");
        assert!(check_rules(&r).0);
    }

    #[test]
    fn nested_tuples_and_lists() {
        let r = rules_of("fun f (x :: _, 0) = x | f (nil, n) = n");
        // Misses (x :: _, nonzero).
        assert!(!check_rules(&r).0);
        let r = rules_of("fun f (x :: _, _) = x | f (nil, n) = n");
        assert!(check_rules(&r).0);
    }

    #[test]
    fn exception_matches_never_exhaustive() {
        let prog =
            sml_ast::parse("exception A exception B val x = (1 handle A => 2 | B => 3)").unwrap();
        let elab = sml_elab::elaborate(&prog).unwrap();
        let mut found = false;
        for d in &elab.decs {
            if let sml_elab::TDec::Val { exp, .. } = d {
                if let sml_elab::TExpKind::Handle(_, rules) = &exp.kind {
                    assert!(!check_rules(rules).0);
                    found = true;
                }
            }
        }
        assert!(found);
    }

    #[test]
    fn irrefutable_patterns() {
        let prog = sml_ast::parse("val (a, b) = (1, 2) val (x :: _) = [1]").unwrap();
        let elab = sml_elab::elaborate(&prog).unwrap();
        let pats: Vec<&TPat> = elab
            .decs
            .iter()
            .filter_map(|d| match d {
                sml_elab::TDec::Val { pat, .. } => Some(pat),
                _ => None,
            })
            .collect();
        assert!(irrefutable(pats[0]), "tuple pattern is irrefutable");
        assert!(!irrefutable(pats[1]), "cons pattern is refutable");
    }

    #[test]
    fn deep_constructor_coverage() {
        let r = rules_of(
            "datatype t = L | N of t * t
             fun f L = 0 | f (N (L, _)) = 1 | f (N (N (_, _), _)) = 2",
        );
        assert_eq!(check_rules(&r), (true, vec![]));
    }
}
