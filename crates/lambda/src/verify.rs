//! Post-translation LEXP verifier.
//!
//! Re-derives the LTY of every LEXP term bottom-up against the
//! hash-consed type table and reports the first well-formedness
//! violation as a structured [`LexpViolation`] with a stable `rule`
//! tag (schema in `docs/VERIFY_IR.md`). This is deliberately an
//! independent re-implementation of the derivation rather than a
//! wrapper over [`crate::lexp::type_of`]: a checker that shares code
//! with the phase it audits inherits that phase's bugs.
//!
//! On top of the plain type reconstruction the verifier enforces one
//! rule the legacy checker does not: **WRAP/UNWRAP pairing** — an
//! `UNWRAP` applied directly to a `WRAP` must agree on the wrapped
//! type; `UNWRAP(int, WRAP(real, e))` type-checks under the lenient
//! box/word compatibility relation but is a guaranteed miscompile (the
//! float would be reinterpreted as a word). (`SRecord` module-boundary
//! fields are deliberately *not* forced to one-word standard
//! representation: under the unboxed-float variants, flat float fields
//! in structure records are exactly the optimization being measured.)

use crate::lexp::{compat, LVar, Lexp};
use crate::lty::{Lty, LtyInterner, LtyKind};
use std::collections::HashMap;

/// A structured well-formedness violation found by [`verify_lexp`].
///
/// `rule` is a stable machine-readable identifier; `detail` is the
/// human-readable description (types shown via the interner).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexpViolation {
    /// Stable rule tag, e.g. `"wrap-unwrap-pair"`.
    pub rule: &'static str,
    /// What went wrong, with the offending types spelled out.
    pub detail: String,
}

impl std::fmt::Display for LexpViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.rule, self.detail)
    }
}

/// Work counters reported by a successful [`verify_lexp`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct LexpVerifySummary {
    /// LEXP nodes whose type was re-derived.
    pub nodes: u64,
    /// `WRAP`/`UNWRAP` coercions checked for pairing discipline.
    pub coercions: u64,
    /// Module-boundary (`SRecord`) fields re-typed.
    pub boundary_fields: u64,
}

struct Check<'i> {
    i: &'i mut LtyInterner,
    sum: LexpVerifySummary,
}

fn violation(rule: &'static str, detail: String) -> LexpViolation {
    LexpViolation { rule, detail }
}

/// Verifies a translated (and coercion-inserted) LEXP program.
///
/// Returns work counters on success and the first [`LexpViolation`]
/// otherwise. Never mutates the term; the interner is only extended
/// with derived types (hash-consing keeps that idempotent).
pub fn verify_lexp(e: &Lexp, i: &mut LtyInterner) -> Result<LexpVerifySummary, LexpViolation> {
    let mut ck = Check {
        i,
        sum: LexpVerifySummary::default(),
    };
    ck.infer(e, &mut HashMap::new())?;
    Ok(ck.sum)
}

impl Check<'_> {
    fn infer(&mut self, e: &Lexp, env: &mut HashMap<LVar, Lty>) -> Result<Lty, LexpViolation> {
        self.sum.nodes += 1;
        match e {
            Lexp::Var(v) => env
                .get(v)
                .copied()
                .ok_or_else(|| violation("unbound-var", format!("unbound lvar {v}"))),
            Lexp::Int(_) => Ok(self.i.int()),
            Lexp::Real(_) => Ok(self.i.real()),
            Lexp::Str(_) => Ok(self.i.boxed()),
            Lexp::Fn(v, t, r, b) => {
                env.insert(*v, *t);
                let bt = self.infer(b, env)?;
                if !compat(self.i, bt, *r) {
                    return Err(violation(
                        "fn-result",
                        format!(
                            "fn body has {} but declares result {}",
                            self.i.show(bt),
                            self.i.show(*r)
                        ),
                    ));
                }
                Ok(self.i.arrow(*t, *r))
            }
            Lexp::App(f, a) => {
                let ft = self.infer(f, env)?;
                let at = self.infer(a, env)?;
                match *self.i.kind(ft) {
                    LtyKind::Arrow(p, r) => {
                        if !compat(self.i, at, p) {
                            return Err(violation(
                                "app-arg",
                                format!(
                                    "application argument {} does not match parameter {}",
                                    self.i.show(at),
                                    self.i.show(p)
                                ),
                            ));
                        }
                        Ok(r)
                    }
                    LtyKind::Boxed | LtyKind::RBoxed => Ok(self.i.rboxed()),
                    _ => Err(violation(
                        "app-non-function",
                        format!("applying non-function of type {}", self.i.show(ft)),
                    )),
                }
            }
            Lexp::Fix(fs, b) => {
                for (v, t, _) in fs {
                    env.insert(*v, *t);
                }
                for (v, t, body) in fs {
                    let bt = self.infer(body, env)?;
                    if !compat(self.i, bt, *t) {
                        return Err(violation(
                            "fix-binding",
                            format!(
                                "fix binding {v}: declared {} but body has {}",
                                self.i.show(*t),
                                self.i.show(bt)
                            ),
                        ));
                    }
                }
                self.infer(b, env)
            }
            Lexp::Let(v, a, b) => {
                let at = self.infer(a, env)?;
                env.insert(*v, at);
                self.infer(b, env)
            }
            Lexp::Record(es) => {
                let ts = es
                    .iter()
                    .map(|e| self.infer(e, env))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(self.i.record(ts))
            }
            Lexp::SRecord(es) => {
                let ts = es
                    .iter()
                    .map(|e| self.infer(e, env))
                    .collect::<Result<Vec<_>, _>>()?;
                self.sum.boundary_fields += ts.len() as u64;
                Ok(self.i.srecord(ts))
            }
            Lexp::Select(idx, e) => {
                let t = self.infer(e, env)?;
                match self.i.kind(t).clone() {
                    LtyKind::Record(fs) | LtyKind::SRecord(fs) => {
                        fs.get(*idx).copied().ok_or_else(|| {
                            violation(
                                "select-bounds",
                                format!("select {idx} out of bounds for {}", self.i.show(t)),
                            )
                        })
                    }
                    LtyKind::PRecord(fs) => fs
                        .iter()
                        .find(|(s, _)| s == idx)
                        .map(|(_, t)| *t)
                        .ok_or_else(|| {
                            violation(
                                "select-bounds",
                                format!("select {idx} not in partial record"),
                            )
                        }),
                    LtyKind::Boxed | LtyKind::RBoxed => Ok(self.i.rboxed()),
                    _ => Err(violation(
                        "select-non-record",
                        format!("select from non-record {}", self.i.show(t)),
                    )),
                }
            }
            Lexp::PrimApp(op, es) => {
                let ts = es
                    .iter()
                    .map(|e| self.infer(e, env))
                    .collect::<Result<Vec<_>, _>>()?;
                let (want, res) = op.sig(self.i);
                if want.len() != ts.len() {
                    return Err(violation(
                        "prim-arity",
                        format!(
                            "{op:?} applied to {} arguments, expects {}",
                            ts.len(),
                            want.len()
                        ),
                    ));
                }
                for (got, want) in ts.iter().zip(&want) {
                    if !compat(self.i, *got, *want) {
                        return Err(violation(
                            "prim-arg",
                            format!(
                                "{op:?} argument {} does not match {}",
                                self.i.show(*got),
                                self.i.show(*want)
                            ),
                        ));
                    }
                }
                Ok(res)
            }
            Lexp::If(c, t, f) => {
                let ct = self.infer(c, env)?;
                let int = self.i.int();
                if !compat(self.i, ct, int) {
                    return Err(violation(
                        "if-cond",
                        format!("if condition has type {}", self.i.show(ct)),
                    ));
                }
                let tt = self.infer(t, env)?;
                let ft = self.infer(f, env)?;
                if !compat(self.i, tt, ft) {
                    return Err(violation(
                        "if-branches",
                        format!(
                            "if branches disagree: {} vs {}",
                            self.i.show(tt),
                            self.i.show(ft)
                        ),
                    ));
                }
                if matches!(self.i.kind(tt), LtyKind::Bottom) {
                    Ok(ft)
                } else {
                    Ok(tt)
                }
            }
            Lexp::SwitchInt(s, arms, d) => {
                let st = self.infer(s, env)?;
                let int = self.i.int();
                if !compat(self.i, st, int) {
                    return Err(violation(
                        "switch-scrutinee",
                        format!("switch scrutinee has type {}", self.i.show(st)),
                    ));
                }
                let mut out: Option<Lty> = None;
                for (_, arm) in arms {
                    let t = self.infer(arm, env)?;
                    if out.is_none() || matches!(self.i.kind(out.unwrap()), LtyKind::Bottom) {
                        out = Some(t);
                    }
                }
                if let Some(def) = d {
                    let t = self.infer(def, env)?;
                    if out.is_none() || matches!(self.i.kind(out.unwrap()), LtyKind::Bottom) {
                        out = Some(t);
                    }
                }
                out.ok_or_else(|| violation("switch-empty", "empty switch".into()))
            }
            Lexp::Wrap(t, e) => {
                self.sum.coercions += 1;
                let et = self.infer(e, env)?;
                if !compat(self.i, et, *t) && !self.i.same(et, *t) {
                    return Err(violation(
                        "wrap-type",
                        format!("wrap of {} at type {}", self.i.show(et), self.i.show(*t)),
                    ));
                }
                Ok(self.i.boxed())
            }
            Lexp::Unwrap(t, e) => {
                self.sum.coercions += 1;
                // Pairing discipline: a directly nested WRAP must agree
                // on the coerced type, or the unwrap reads back a
                // different representation than was stored.
                if let Lexp::Wrap(wt, _) = &**e {
                    if !compat(self.i, *wt, *t) {
                        return Err(violation(
                            "wrap-unwrap-pair",
                            format!(
                                "unwrap at {} of value wrapped at {}",
                                self.i.show(*t),
                                self.i.show(*wt)
                            ),
                        ));
                    }
                }
                let et = self.infer(e, env)?;
                let boxed = self.i.boxed();
                if !compat(self.i, et, boxed) {
                    return Err(violation(
                        "unwrap-non-boxed",
                        format!("unwrap of non-boxed {}", self.i.show(et)),
                    ));
                }
                Ok(*t)
            }
            Lexp::Raise(e, t) => {
                let et = self.infer(e, env)?;
                let boxed = self.i.boxed();
                if !compat(self.i, et, boxed) {
                    return Err(violation(
                        "raise-non-exn",
                        format!("raise of non-exception {}", self.i.show(et)),
                    ));
                }
                Ok(*t)
            }
            Lexp::Handle(e, h) => {
                let et = self.infer(e, env)?;
                let ht = self.infer(h, env)?;
                match *self.i.kind(ht) {
                    LtyKind::Arrow(_, r) => {
                        if !compat(self.i, r, et) {
                            return Err(violation(
                                "handle-result",
                                format!(
                                    "handler result {} does not match body {}",
                                    self.i.show(r),
                                    self.i.show(et)
                                ),
                            ));
                        }
                        Ok(et)
                    }
                    _ => Err(violation(
                        "handle-non-fn",
                        format!("handler is not a function: {}", self.i.show(ht)),
                    )),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lty::InternMode;

    fn interner() -> LtyInterner {
        LtyInterner::new(InternMode::HashCons)
    }

    #[test]
    fn accepts_wrap_unwrap_roundtrip() {
        let mut i = interner();
        let real = i.real();
        let e = Lexp::Unwrap(real, Box::new(Lexp::Wrap(real, Box::new(Lexp::Real(1.5)))));
        let sum = verify_lexp(&e, &mut i).expect("well-formed");
        assert_eq!(sum.coercions, 2);
        assert!(sum.nodes >= 3);
    }

    #[test]
    fn rejects_mismatched_wrap_unwrap_pair() {
        let mut i = interner();
        let real = i.real();
        let int = i.int();
        let e = Lexp::Unwrap(real, Box::new(Lexp::Wrap(int, Box::new(Lexp::Int(7)))));
        let v = verify_lexp(&e, &mut i).unwrap_err();
        assert_eq!(v.rule, "wrap-unwrap-pair");
    }

    #[test]
    fn accepts_raw_real_in_structure_record() {
        // Unboxed-float variants put flat REAL fields in structure
        // records; the verifier must re-type them, not reject them.
        let mut i = interner();
        let e = Lexp::SRecord(vec![Lexp::Int(1), Lexp::Real(2.0)]);
        verify_lexp(&e, &mut i).expect("flat float structure field is legal");
    }

    #[test]
    fn rejects_unbound_variable_with_rule_tag() {
        let mut i = interner();
        let e = Lexp::Var(42);
        let v = verify_lexp(&e, &mut i).unwrap_err();
        assert_eq!(v.rule, "unbound-var");
    }

    #[test]
    fn rejects_select_out_of_bounds() {
        let mut i = interner();
        let e = Lexp::Select(5, Box::new(Lexp::Record(vec![Lexp::Int(1)])));
        let v = verify_lexp(&e, &mut i).unwrap_err();
        assert_eq!(v.rule, "select-bounds");
    }
}
