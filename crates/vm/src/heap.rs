//! The runtime heap: tagged values, two-part object descriptors (paper
//! Figure 1c), and a Cheney semispace copying collector.
//!
//! A value is one 32-bit word: a tagged 31-bit integer (low bit set) or a
//! 4-byte-aligned pointer (low bit clear). An object is a descriptor word
//! followed by its *scanned* one-word fields and then its *raw* words
//! (unboxed floats, string bytes); the descriptor records both lengths,
//! exactly the "two short integers" of the paper's reordered flat
//! records.

/// Object classification stored in the descriptor's low bits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum ObjKind {
    Record = 0,
    Array = 1,
    Ref = 2,
    Str = 3,
    BoxedFloat = 4,
}

const KIND_MASK: u32 = 0b111;
const FORWARD: u32 = 0b111;
const SCAN_SHIFT: u32 = 3;
const SCAN_BITS: u32 = 15;
const RAW_SHIFT: u32 = 18;

/// Builds a descriptor word.
pub fn descriptor(kind: ObjKind, nscan: u32, nraw: u32) -> u32 {
    debug_assert!(nscan < (1 << SCAN_BITS));
    (kind as u32) | (nscan << SCAN_SHIFT) | (nraw << RAW_SHIFT)
}

/// Decodes `(kind, nscan, nraw)` from a descriptor.
pub fn decode(desc: u32) -> (u32, u32, u32) {
    (
        desc & KIND_MASK,
        (desc >> SCAN_SHIFT) & ((1 << SCAN_BITS) - 1),
        desc >> RAW_SHIFT,
    )
}

/// Tags an integer.
pub fn tag_int(n: i64) -> u32 {
    ((n as u32) << 1) | 1
}

/// Untags an integer (sign-extended from 31 bits).
pub fn untag_int(w: u32) -> i64 {
    ((w as i32) >> 1) as i64
}

/// True if the word is a pointer.
pub fn is_ptr(w: u32) -> bool {
    w & 1 == 0 && w != 0
}

/// The heap. The low `static_end` words form an immortal region for
/// pooled string literals; the rest is split into two semispaces.
pub struct Heap {
    mem: Vec<u32>,
    static_free: usize,
    static_end: usize,
    semi_words: usize,
    /// Current allocation space base (word index).
    from_base: usize,
    /// Next free word in the current space.
    free: usize,
    /// Words allocated since the last collection (minor-GC trigger).
    since_gc: usize,
    /// Simulated nursery size in words: a collection runs whenever this
    /// many words have been allocated.
    pub nursery_words: usize,
    /// Total words ever allocated (the heap-allocation metric).
    pub alloc_words: u64,
    /// Total objects ever allocated (bump-pointer allocations, including
    /// strings; excludes the immortal literal pool).
    pub n_allocs: u64,
    /// Total words copied by the collector.
    pub copied_words: u64,
    /// Number of collections.
    pub n_gcs: u64,
}

impl Heap {
    /// Creates a heap with the given semispace size (words) and immortal
    /// region capacity.
    pub fn new(semi_words: usize, static_words: usize) -> Heap {
        let total = static_words + 2 * semi_words;
        Heap {
            mem: vec![0; total],
            static_free: 1, // keep address 0 invalid
            static_end: static_words,
            semi_words,
            from_base: static_words,
            free: static_words,
            since_gc: 0,
            nursery_words: 64 * 1024,
            alloc_words: 0,
            n_allocs: 0,
            copied_words: 0,
            n_gcs: 0,
        }
    }

    fn ptr_of(idx: usize) -> u32 {
        (idx as u32) << 2
    }

    fn idx_of(ptr: u32) -> usize {
        (ptr >> 2) as usize
    }

    /// Reads the word at `ptr + off` words.
    pub fn load(&self, ptr: u32, off: usize) -> u32 {
        self.mem[Heap::idx_of(ptr) + off]
    }

    /// Writes the word at `ptr + off`.
    pub fn store(&mut self, ptr: u32, off: usize, v: u32) {
        self.mem[Heap::idx_of(ptr) + off] = v;
    }

    /// Reads a raw float at word offset `off`.
    pub fn load_f64(&self, ptr: u32, off: usize) -> f64 {
        let i = Heap::idx_of(ptr) + off;
        let bits = (self.mem[i] as u64) | ((self.mem[i + 1] as u64) << 32);
        f64::from_bits(bits)
    }

    /// Writes a raw float at word offset `off` (two single-word stores).
    pub fn store_f64(&mut self, ptr: u32, off: usize, v: f64) {
        let i = Heap::idx_of(ptr) + off;
        let bits = v.to_bits();
        self.mem[i] = bits as u32;
        self.mem[i + 1] = (bits >> 32) as u32;
    }

    /// The descriptor of the object at `ptr`.
    pub fn desc(&self, ptr: u32) -> u32 {
        self.mem[Heap::idx_of(ptr) - 1]
    }

    /// True if a collection should run before allocating `want` words.
    pub fn needs_gc(&self, want: usize) -> bool {
        self.since_gc + want + 1 > self.nursery_words
            || self.free + want + 1 > self.from_base + self.semi_words
    }

    /// True if the current semispace can hold `want` more body words
    /// (plus a descriptor). When this still fails right after a
    /// collection, the live data genuinely does not fit: the heap is
    /// exhausted.
    pub fn has_room(&self, want: usize) -> bool {
        self.free + want < self.from_base + self.semi_words
    }

    fn bump(&mut self, total_words: usize) -> Option<usize> {
        if self.free + total_words >= self.from_base + self.semi_words {
            return None; // semispace exhausted; caller traps
        }
        let at = self.free + 1; // descriptor goes at `free`
        self.free += total_words + 1;
        self.since_gc += total_words + 1;
        self.alloc_words += (total_words + 1) as u64;
        self.n_allocs += 1;
        Some(at)
    }

    /// Allocates an object with `nscan` scanned one-word fields and
    /// `nraw` raw float fields (two words each), uninitialized; returns
    /// the pointer, or `None` when the semispace is exhausted (the VM
    /// turns that into a [`HeapExhausted`](crate::VmResult::HeapExhausted)
    /// trap after a final collection attempt).
    pub fn alloc(&mut self, kind: ObjKind, nscan: u32, nraw: u32) -> Option<u32> {
        // Zero-length objects still get one body word so the collector
        // has room for a forwarding pointer.
        let at = self.bump(((nscan + 2 * nraw) as usize).max(1))?;
        self.mem[at - 1] = descriptor(kind, nscan, nraw);
        Some(Heap::ptr_of(at))
    }

    /// The longest string the descriptor encoding can represent, in
    /// bytes. Longer strings must be rejected before allocation.
    pub const MAX_STRING_BYTES: usize = (1 << SCAN_BITS) - 1;

    /// The longest array the descriptor encoding can represent, in
    /// elements (the scanned-field count doubles as the length).
    pub const MAX_ARRAY_LEN: usize = (1 << SCAN_BITS) - 1;

    /// Allocates a string in the collected heap; `None` when the
    /// semispace is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if the string exceeds [`Heap::MAX_STRING_BYTES`] — callers
    /// must check first and trap rather than allocate.
    pub fn alloc_string(&mut self, s: &str) -> Option<u32> {
        let bytes = s.as_bytes();
        assert!(
            bytes.len() <= Heap::MAX_STRING_BYTES,
            "string too long for descriptor"
        );
        let nraw = bytes.len().div_ceil(4);
        let at = self.bump(nraw.max(1))?;
        self.mem[at - 1] = (ObjKind::Str as u32) | ((bytes.len() as u32) << SCAN_SHIFT);
        for (i, chunk) in bytes.chunks(4).enumerate() {
            let mut w = 0u32;
            for (j, b) in chunk.iter().enumerate() {
                w |= (*b as u32) << (8 * j);
            }
            self.mem[at + i] = w;
        }
        Some(Heap::ptr_of(at))
    }

    /// Allocates a string in the immortal region (for pooled literals).
    pub fn alloc_static_string(&mut self, s: &str) -> u32 {
        let bytes = s.as_bytes();
        let nraw = bytes.len().div_ceil(4);
        assert!(
            self.static_free + nraw.max(1) < self.static_end,
            "string pool region exhausted"
        );
        let at = self.static_free + 1;
        self.static_free += nraw.max(1) + 1;
        self.mem[at - 1] = (ObjKind::Str as u32) | ((bytes.len() as u32) << SCAN_SHIFT);
        for (i, chunk) in bytes.chunks(4).enumerate() {
            let mut w = 0u32;
            for (j, b) in chunk.iter().enumerate() {
                w |= (*b as u32) << (8 * j);
            }
            self.mem[at + i] = w;
        }
        Heap::ptr_of(at)
    }

    /// Reads a string object back out.
    pub fn read_string(&self, ptr: u32) -> String {
        let at = Heap::idx_of(ptr);
        let desc = self.mem[at - 1];
        debug_assert_eq!(desc & KIND_MASK, ObjKind::Str as u32);
        let len = (desc >> SCAN_SHIFT) as usize;
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            let w = self.mem[at + i / 4];
            out.push(((w >> (8 * (i % 4))) & 0xff) as u8);
        }
        String::from_utf8_lossy(&out).into_owned()
    }

    /// Byte length of a string object.
    pub fn string_len(&self, ptr: u32) -> usize {
        (self.desc(ptr) >> SCAN_SHIFT) as usize
    }

    /// Byte at index `i` of a string object.
    pub fn string_byte(&self, ptr: u32, i: usize) -> u8 {
        let at = Heap::idx_of(ptr);
        let w = self.mem[at + i / 4];
        ((w >> (8 * (i % 4))) & 0xff) as u8
    }

    /// Body words occupied by an object with the given decoded
    /// descriptor (empty objects pad to one word of forwarding space).
    fn body_words(kind: u32, nscan: u32, nraw: u32) -> usize {
        let n = if kind == ObjKind::Str as u32 {
            (nscan as usize).div_ceil(4)
        } else if kind == ObjKind::Array as u32 {
            nscan as usize
        } else {
            (nscan + nraw * 2) as usize
        };
        n.max(1)
    }

    /// Validates that `ptr` is a plausible object pointer and that the
    /// word range `[off, off + words)` lies inside that object's body.
    /// Returns the violation reason on failure; the VM converts it into
    /// a [`Fault`](crate::VmResult::Fault) trap instead of indexing out
    /// of bounds.
    pub fn check_access(&self, ptr: u32, off: usize, words: usize) -> Result<(), String> {
        if !is_ptr(ptr) {
            return Err(format!("memory access through non-pointer {ptr:#x}"));
        }
        let at = Heap::idx_of(ptr);
        if at == 0 || at >= self.mem.len() {
            return Err(format!("pointer {ptr:#x} outside the heap"));
        }
        let desc = self.mem[at - 1];
        let (kind, nscan, nraw) = decode(desc);
        if kind == FORWARD {
            return Err(format!("access to forwarded object at {ptr:#x}"));
        }
        let total = Heap::body_words(kind, nscan, nraw);
        if off + words > total {
            return Err(format!(
                "access to words [{off}, {}) outside object of {total} body words at {ptr:#x}",
                off + words
            ));
        }
        if at + total > self.mem.len() {
            return Err(format!("object at {ptr:#x} extends past the heap end"));
        }
        Ok(())
    }

    /// Validates that `ptr` refers to a string object whose bytes lie in
    /// bounds; returns the violation reason otherwise.
    pub fn check_string(&self, ptr: u32) -> Result<(), String> {
        self.check_access(ptr, 0, 0)?;
        let (kind, nscan, _) = decode(self.desc(ptr));
        if kind != ObjKind::Str as u32 {
            return Err(format!(
                "string operation on non-string object (kind {kind}) at {ptr:#x}"
            ));
        }
        let at = Heap::idx_of(ptr);
        if at + (nscan as usize).div_ceil(4) > self.mem.len() {
            return Err(format!("string at {ptr:#x} extends past the heap end"));
        }
        Ok(())
    }

    /// Cheney copying collection. `roots` are updated in place.
    pub fn collect(&mut self, roots: &mut [&mut u32]) {
        self.n_gcs += 1;
        let to_base = if self.from_base == self.static_end {
            self.static_end + self.semi_words
        } else {
            self.static_end
        };
        let mut free = to_base;
        let mut scan = to_base;

        // Forward the roots.
        for r in roots.iter_mut() {
            **r = self.forward(**r, &mut free);
        }
        // Scan copied objects.
        while scan < free {
            let desc = self.mem[scan];
            let (kind, nscan, nraw) = decode(desc);
            let fields = scan + 1;
            let n = if kind == ObjKind::Str as u32 {
                // Strings: descriptor stores byte length; all raw.
                (nscan as usize).div_ceil(4)
            } else if kind == ObjKind::Array as u32 {
                let len = nscan as usize;
                for i in 0..len {
                    let v = self.mem[fields + i];
                    self.mem[fields + i] = self.forward(v, &mut free);
                }
                len
            } else {
                for i in 0..nscan as usize {
                    let v = self.mem[fields + i];
                    self.mem[fields + i] = self.forward(v, &mut free);
                }
                (nscan + nraw * 2) as usize
            };
            let _ = n;
            let total = match kind {
                k if k == ObjKind::Str as u32 => (nscan as usize).div_ceil(4),
                k if k == ObjKind::Array as u32 => nscan as usize,
                _ => (nscan + nraw * 2) as usize,
            };
            // Empty objects occupy one pad word (forwarding space).
            scan = fields + total.max(1);
        }
        self.from_base = to_base;
        self.free = free;
        self.since_gc = 0;
    }

    fn forward(&mut self, v: u32, free: &mut usize) -> u32 {
        if !is_ptr(v) {
            return v;
        }
        let at = Heap::idx_of(v);
        if at < self.static_end {
            return v; // immortal
        }
        let desc = self.mem[at - 1];
        if desc & KIND_MASK == FORWARD {
            return self.mem[at]; // already copied; new addr in field 0
        }
        let (kind, nscan, nraw) = decode(desc);
        let total = match kind {
            k if k == ObjKind::Str as u32 => (nscan as usize).div_ceil(4),
            k if k == ObjKind::Array as u32 => nscan as usize,
            _ => (nscan + nraw * 2) as usize,
        };
        let new_at = *free + 1;
        self.mem[*free] = desc;
        for i in 0..total {
            self.mem[new_at + i] = self.mem[at + i];
        }
        // Keep the one-word pad of empty objects (forwarding space).
        *free = new_at + total.max(1);
        self.copied_words += (total.max(1) + 1) as u64;
        let new_ptr = Heap::ptr_of(new_at);
        self.mem[at - 1] = FORWARD;
        self.mem[at] = new_ptr;
        new_ptr
    }

    /// Structural equality on standard-representation values; returns
    /// the verdict and the number of words visited (the runtime cost).
    pub fn poly_eq(&self, a: u32, b: u32) -> (bool, u64) {
        let mut cost = 1u64;
        let eq = self.peq(a, b, &mut cost, 0);
        (eq, cost)
    }

    fn peq(&self, a: u32, b: u32, cost: &mut u64, depth: u32) -> bool {
        *cost += 1;
        if a == b {
            return true;
        }
        if depth > 10_000 {
            return false; // pathological; give up (circular refs are eq by ptr)
        }
        if !is_ptr(a) || !is_ptr(b) {
            return false;
        }
        let (ka, sa, ra) = decode(self.desc(a));
        let (kb, sb, rb) = decode(self.desc(b));
        if ka != kb {
            return false;
        }
        if ka == ObjKind::Ref as u32 || ka == ObjKind::Array as u32 {
            return false; // identity compared above
        }
        if ka == ObjKind::Str as u32 {
            let la = self.string_len(a);
            if la != self.string_len(b) {
                return false;
            }
            *cost += la as u64 / 4 + 1;
            return (0..la).all(|i| self.string_byte(a, i) == self.string_byte(b, i));
        }
        if ka == ObjKind::BoxedFloat as u32 {
            *cost += 2;
            return self.load_f64(a, 0) == self.load_f64(b, 0);
        }
        // Records: scanned fields recursively, raw words bitwise.
        if sa != sb || ra != rb {
            return false;
        }
        for i in 0..sa as usize {
            if !self.peq(self.load(a, i), self.load(b, i), cost, depth + 1) {
                return false;
            }
        }
        for i in 0..(ra * 2) as usize {
            *cost += 1;
            if self.load(a, sa as usize + i) != self.load(b, sb as usize + i) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagging_roundtrip() {
        assert_eq!(untag_int(tag_int(42)), 42);
        assert_eq!(untag_int(tag_int(-7)), -7);
        assert_eq!(untag_int(tag_int(0)), 0);
        assert!(!is_ptr(tag_int(5)));
    }

    #[test]
    fn descriptor_roundtrip() {
        let d = descriptor(ObjKind::Record, 3, 2);
        assert_eq!(decode(d), (0, 3, 2));
    }

    #[test]
    fn alloc_and_access() {
        let mut h = Heap::new(4096, 128);
        let p = h.alloc(ObjKind::Record, 2, 1).unwrap();
        h.store(p, 0, tag_int(1));
        h.store(p, 1, tag_int(2));
        h.store_f64(p, 2, 3.25);
        assert_eq!(untag_int(h.load(p, 0)), 1);
        assert_eq!(h.load_f64(p, 2), 3.25);
        assert!(h.alloc_words >= 5);
    }

    #[test]
    fn strings() {
        let mut h = Heap::new(4096, 128);
        let p = h.alloc_string("hello").unwrap();
        assert_eq!(h.read_string(p), "hello");
        assert_eq!(h.string_len(p), 5);
        assert_eq!(h.string_byte(p, 1), b'e');
        let q = h.alloc_static_string("lit");
        assert_eq!(h.read_string(q), "lit");
    }

    #[test]
    fn gc_preserves_structure() {
        let mut h = Heap::new(4096, 128);
        let inner = h.alloc(ObjKind::Record, 1, 1).unwrap();
        h.store(inner, 0, tag_int(9));
        h.store_f64(inner, 1, 2.5);
        let outer = h.alloc(ObjKind::Record, 2, 0).unwrap();
        h.store(outer, 0, inner);
        h.store(outer, 1, tag_int(7));
        let mut root = outer;
        // Garbage to make the collection meaningful.
        for _ in 0..100 {
            h.alloc(ObjKind::Record, 2, 0).unwrap();
        }
        h.collect(&mut [&mut root]);
        assert_ne!(root, outer, "object moved");
        let inner2 = h.load(root, 0);
        assert_eq!(untag_int(h.load(root, 1)), 7);
        assert_eq!(untag_int(h.load(inner2, 0)), 9);
        assert_eq!(h.load_f64(inner2, 1), 2.5);
        assert!(h.copied_words >= 7);
        assert_eq!(h.n_gcs, 1);
    }

    #[test]
    fn gc_shares_copies() {
        // Two roots to the same object stay shared.
        let mut h = Heap::new(4096, 128);
        let obj = h.alloc(ObjKind::Record, 1, 0).unwrap();
        h.store(obj, 0, tag_int(5));
        let mut r1 = obj;
        let mut r2 = obj;
        h.collect(&mut [&mut r1, &mut r2]);
        assert_eq!(r1, r2);
    }

    #[test]
    fn gc_skips_static() {
        let mut h = Heap::new(4096, 128);
        let s = h.alloc_static_string("immortal");
        let mut root = s;
        h.collect(&mut [&mut root]);
        assert_eq!(root, s, "static strings never move");
        assert_eq!(h.read_string(root), "immortal");
    }

    #[test]
    fn poly_eq_cases() {
        let mut h = Heap::new(4096, 128);
        let a = h.alloc(ObjKind::Record, 1, 1).unwrap();
        h.store(a, 0, tag_int(1));
        h.store_f64(a, 1, 2.5);
        let b = h.alloc(ObjKind::Record, 1, 1).unwrap();
        h.store(b, 0, tag_int(1));
        h.store_f64(b, 1, 2.5);
        let c = h.alloc(ObjKind::Record, 1, 1).unwrap();
        h.store(c, 0, tag_int(1));
        h.store_f64(c, 1, 9.0);
        assert!(h.poly_eq(a, b).0);
        assert!(!h.poly_eq(a, c).0);
        let s1 = h.alloc_string("abc").unwrap();
        let s2 = h.alloc_string("abc").unwrap();
        let s3 = h.alloc_string("abd").unwrap();
        assert!(h.poly_eq(s1, s2).0);
        assert!(!h.poly_eq(s1, s3).0);
        // Refs compare by identity.
        let r1 = h.alloc(ObjKind::Ref, 1, 0).unwrap();
        let r2 = h.alloc(ObjKind::Ref, 1, 0).unwrap();
        h.store(r1, 0, tag_int(1));
        h.store(r2, 0, tag_int(1));
        assert!(!h.poly_eq(r1, r2).0);
        assert!(h.poly_eq(r1, r1).0);
    }

    #[test]
    fn nursery_triggers() {
        let mut h = Heap::new(1 << 20, 128);
        h.nursery_words = 64;
        assert!(!h.needs_gc(10));
        for _ in 0..30 {
            h.alloc(ObjKind::Record, 2, 0).unwrap();
        }
        assert!(h.needs_gc(10));
    }
}
